//! Assembly: fold a validated component chain into the engine types.
//!
//! [`TopologySpec::build`] turns a node list into the exact
//! [`IoStack`]/[`Cluster`] pair the experiment runner historically
//! hardcoded. Each component [`install`](crate::Component::install)s its
//! configuration into a [`StackBuilder`]; the builder then constructs the
//! cluster, creates the files, and wires the middleware knobs. The
//! prebuilt topologies ([`TopologySpec::local`], [`TopologySpec::pfs`])
//! reproduce the pre-topology assembly byte for byte — same config
//! fields, same construction order, same RNG consumption.

use crate::spec::DeviceNode;
use crate::{TopologyError, TopologySpec};
use bps_core::record::FileId;
use bps_core::retry::RetryPolicy;
use bps_core::sink::RecordSink;
use bps_core::time::Dur;
use bps_fs::cluster::{Cluster, ClusterConfig};
use bps_fs::layout::StripeLayout;
use bps_fs::localfs::LocalFs;
use bps_fs::pfs::ParallelFs;
use bps_middleware::prefetch::PrefetchConfig;
use bps_middleware::sieving::SievingConfig;
use bps_middleware::stack::{FsBackend, IoStack};
use bps_sim::device::DiskSched;
use bps_sim::fault::FaultPlan;
use bps_sim::rng::Jitter;

/// How striped files place their stripes (mirrors the runner's layout
/// policy without depending on the experiments crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Round-robin stripes over all servers.
    DefaultStripe,
    /// Pin file `i` entirely to server `i % servers`.
    PinnedPerFile,
}

/// The file-system choice a component installed.
#[derive(Debug, Clone, PartialEq)]
pub enum FsChoice {
    /// Local file system with an optional per-call overhead override.
    Local {
        /// Per-call overhead in microseconds, `None` for the default.
        overhead_us: Option<u64>,
    },
    /// Striped parallel file system.
    Parallel {
        /// Number of I/O servers.
        servers: usize,
    },
}

/// The interconnect configuration a `Net` component installed.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChoice {
    /// Payload loss probability; `None` or `0.0` is lossless.
    pub loss_rate: Option<f64>,
    /// Retransmit timeout in milliseconds.
    pub retransmit_delay_ms: Option<u64>,
    /// Emit `Layer::Network` records for remote payload legs.
    pub record: bool,
}

impl NetChoice {
    /// Retransmit timeout used when a lossy `Net` node does not set one.
    pub const DEFAULT_RETRANSMIT_MS: u64 = 10;
}

/// Accumulates each component's contribution during assembly.
#[derive(Debug, Default)]
pub struct StackBuilder {
    /// A `Collective` node is present (documentation marker: the
    /// engine's collective execution always follows the workload).
    pub collective: bool,
    /// Sieving override: `Some(true)` ROMIO default, `Some(false)`
    /// disabled, `None` inherit from the environment.
    pub sieving: Option<bool>,
    /// Read-ahead window in bytes, if a `Prefetch` node is present.
    pub prefetch_window: Option<u64>,
    /// The file-system node (validation guarantees exactly one).
    pub fs: Option<FsChoice>,
    /// The interconnect node, if declared.
    pub net: Option<NetChoice>,
    /// The device node; `None` means the implicit HDD default.
    pub device: Option<DeviceNode>,
}

/// Everything the surrounding experiment supplies that is not part of
/// the topology itself: scale, seeding, fault plan, and the middleware
/// defaults a topology may override.
#[derive(Debug, Clone)]
pub struct BuildEnv<'a> {
    /// Number of client nodes (clamped to at least 1).
    pub clients: usize,
    /// Per-request server CPU cost.
    pub server_cpu: Dur,
    /// Simulation seed.
    pub seed: u64,
    /// Sizes of the files to create, in workload order.
    pub file_sizes: &'a [u64],
    /// Stripe placement for parallel file systems.
    pub layout: Layout,
    /// Sieving configuration used when no `Sieving` node overrides it.
    pub sieving: SievingConfig,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Fault plan; a lossy `Net` node composes link loss on top.
    pub fault: FaultPlan,
}

/// A built stack plus the file handles for the workload's files.
pub struct BuiltStack<S: RecordSink> {
    /// The assembled I/O stack, ready for `run_workload`.
    pub stack: IoStack<S>,
    /// One handle per entry of `BuildEnv::file_sizes`.
    pub files: Vec<FileId>,
}

impl TopologySpec {
    /// Validate the chain and assemble it over `sink`.
    pub fn build<S: RecordSink>(
        &self,
        env: &BuildEnv<'_>,
        sink: S,
    ) -> Result<BuiltStack<S>, TopologyError> {
        self.validate()?;
        let mut b = StackBuilder::default();
        for node in self.nodes() {
            node.component().install(&mut b);
        }
        let fs = b.fs.expect("validation guarantees a file-system node");
        let device = b.device.unwrap_or(DeviceNode::Hdd);

        let mut record_net = false;
        let mut fault = env.fault.clone();
        if let Some(net) = &b.net {
            record_net = net.record;
            if let Some(rate) = net.loss_rate {
                if rate > 0.0 {
                    fault = fault.with_link_loss(
                        rate,
                        Dur::from_millis(
                            net.retransmit_delay_ms
                                .unwrap_or(NetChoice::DEFAULT_RETRANSMIT_MS),
                        ),
                    );
                }
            }
        }

        let servers = match fs {
            FsChoice::Parallel { servers } => servers,
            FsChoice::Local { .. } => 1,
        };
        let cfg = ClusterConfig {
            servers,
            clients: env.clients.max(1),
            device: device.to_spec(),
            sched: DiskSched::Fifo,
            server_cpu: env.server_cpu,
            jitter: Jitter::DEFAULT,
            seed: env.seed,
            record_device_layer: false,
            record_net_layer: record_net,
            fault,
        };
        let cluster = Cluster::with_sink(&cfg, sink);

        let (backend, files) = match fs {
            FsChoice::Local { overhead_us } => {
                let mut local = LocalFs::new(0);
                if let Some(us) = overhead_us {
                    local = local.with_overhead(Dur::from_micros(us));
                }
                let files = env.file_sizes.iter().map(|&s| local.create(s)).collect();
                (FsBackend::Local(local), files)
            }
            FsChoice::Parallel { servers } => {
                let mut pfs = ParallelFs::new(servers);
                let files = env
                    .file_sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let layout = match env.layout {
                            Layout::DefaultStripe => StripeLayout::default_over(servers),
                            Layout::PinnedPerFile => StripeLayout::pinned(i % servers),
                        };
                        pfs.create(s, layout)
                    })
                    .collect();
                (FsBackend::Parallel(pfs), files)
            }
        };

        let mut stack = IoStack::new(cluster, backend);
        if let Some(enabled) = b.sieving {
            stack.sieving = if enabled {
                SievingConfig::romio_default()
            } else {
                SievingConfig::disabled()
            };
        } else {
            stack.sieving = env.sieving;
        }
        if let Some(window) = b.prefetch_window {
            stack.prefetch = Some(PrefetchConfig { window });
        }
        stack.retry = env.retry;
        Ok(BuiltStack { stack, files })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;
    use bps_core::trace::Trace;

    fn env(file_sizes: &[u64]) -> BuildEnv<'_> {
        BuildEnv {
            clients: 2,
            server_cpu: Dur::from_micros(25),
            seed: 7,
            file_sizes,
            layout: Layout::DefaultStripe,
            sieving: SievingConfig::romio_default(),
            retry: RetryPolicy::default(),
            fault: FaultPlan::none(),
        }
    }

    #[test]
    fn local_prebuilt_assembles_single_server() {
        let sizes = [1 << 20];
        let built = TopologySpec::local(DeviceNode::Hdd)
            .build(&env(&sizes), Trace::new())
            .unwrap();
        assert!(matches!(built.stack.backend, FsBackend::Local(_)));
        assert_eq!(built.files.len(), 1);
        assert!(built.stack.prefetch.is_none());
    }

    #[test]
    fn pfs_prebuilt_assembles_striped_servers() {
        let sizes = [1 << 20, 1 << 20];
        let built = TopologySpec::pfs(4)
            .build(&env(&sizes), Trace::new())
            .unwrap();
        assert!(matches!(built.stack.backend, FsBackend::Parallel(_)));
        assert_eq!(built.files.len(), 2);
    }

    #[test]
    fn middleware_nodes_configure_the_stack() {
        let sizes = [1 << 20];
        let spec = TopologySpec::new(vec![
            NodeSpec::Sieving { enabled: false },
            NodeSpec::Prefetch { window_kb: 256 },
            NodeSpec::Pfs { servers: 2 },
            NodeSpec::Device {
                device: DeviceNode::Ssd,
            },
        ]);
        let built = spec.build(&env(&sizes), Trace::new()).unwrap();
        assert_eq!(built.stack.sieving, SievingConfig::disabled());
        assert_eq!(
            built.stack.prefetch,
            Some(PrefetchConfig { window: 256 << 10 })
        );
    }

    #[test]
    fn invalid_topology_refuses_to_build() {
        let sizes = [1 << 20];
        let err =
            match TopologySpec::new(vec![NodeSpec::Collective]).build(&env(&sizes), Trace::new()) {
                Err(e) => e,
                Ok(_) => panic!("expected validation failure"),
            };
        assert!(err.0.contains("file-system node"), "{err}");
    }
}
