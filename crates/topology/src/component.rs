//! The behavioural view of a topology node.
//!
//! Each [`NodeSpec`](crate::NodeSpec) lowers to one [`Component`]: a node
//! with a typed input and output port, a human-readable description (used
//! by `reproduce topology`), and an [`Component::install`] hook that
//! contributes its configuration to the [`StackBuilder`](crate::StackBuilder)
//! fold in [`crate::build`]. Requests flow downward through the ports:
//!
//! * [`PortKind::App`] — application-level requests (process, file,
//!   extent), possibly noncontiguous.
//! * [`PortKind::File`] — contiguous file-system requests after the
//!   middleware layers have exchanged, sieved, or extended them.
//! * [`PortKind::Block`] — block-level device requests.
//!
//! A chain is well-typed when each node's output port matches the next
//! node's input port; [`TopologySpec::validate`](crate::TopologySpec::validate)
//! enforces the ordering rules that guarantee this.

use crate::build::{FsChoice, NetChoice, StackBuilder};
use crate::spec::{DeviceNode, NodeSpec};
use bps_sim::net::Link;

/// What flows across a port boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// Application requests, as the workload issued them.
    App,
    /// Contiguous file-system requests.
    File,
    /// Block-level device requests.
    Block,
}

impl std::fmt::Display for PortKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PortKind::App => "app",
            PortKind::File => "file",
            PortKind::Block => "block",
        })
    }
}

/// One node of the component graph: receives requests on its input port,
/// transforms or forwards them, and hands them to the node below.
pub trait Component {
    /// Kind name, matching [`crate::VALID_COMPONENTS`].
    fn kind(&self) -> &'static str;
    /// Port this node receives requests on.
    fn input(&self) -> PortKind;
    /// Port this node emits requests on.
    fn output(&self) -> PortKind;
    /// One-line human description of what the node does, with its
    /// effective parameters.
    fn describe(&self) -> String;
    /// Contribute this node's configuration to the stack under assembly.
    fn install(&self, builder: &mut StackBuilder);
}

struct CollectiveNode;

impl Component for CollectiveNode {
    fn kind(&self) -> &'static str {
        "Collective"
    }
    fn input(&self) -> PortKind {
        PortKind::App
    }
    fn output(&self) -> PortKind {
        PortKind::App
    }
    fn describe(&self) -> String {
        "two-phase collective exchange (group size follows the workload's process count)".into()
    }
    fn install(&self, builder: &mut StackBuilder) {
        builder.collective = true;
    }
}

struct SievingNode {
    enabled: bool,
}

impl Component for SievingNode {
    fn kind(&self) -> &'static str {
        "Sieving"
    }
    fn input(&self) -> PortKind {
        PortKind::App
    }
    fn output(&self) -> PortKind {
        PortKind::App
    }
    fn describe(&self) -> String {
        if self.enabled {
            "ROMIO-default data sieving (4 MB covering reads)".into()
        } else {
            "data sieving disabled (one request per region)".into()
        }
    }
    fn install(&self, builder: &mut StackBuilder) {
        builder.sieving = Some(self.enabled);
    }
}

struct PrefetchNode {
    window_kb: u64,
}

impl Component for PrefetchNode {
    fn kind(&self) -> &'static str {
        "Prefetch"
    }
    fn input(&self) -> PortKind {
        PortKind::App
    }
    fn output(&self) -> PortKind {
        PortKind::App
    }
    fn describe(&self) -> String {
        format!("sequential read-ahead, {} KB window", self.window_kb)
    }
    fn install(&self, builder: &mut StackBuilder) {
        builder.prefetch_window = Some(self.window_kb << 10);
    }
}

struct LocalFsNode {
    overhead_us: Option<u64>,
}

impl Component for LocalFsNode {
    fn kind(&self) -> &'static str {
        "LocalFs"
    }
    fn input(&self) -> PortKind {
        PortKind::App
    }
    fn output(&self) -> PortKind {
        PortKind::File
    }
    fn describe(&self) -> String {
        match self.overhead_us {
            Some(us) => format!("local file system on one server, {us} us per-call overhead"),
            None => "local file system on one server".into(),
        }
    }
    fn install(&self, builder: &mut StackBuilder) {
        builder.fs = Some(FsChoice::Local {
            overhead_us: self.overhead_us,
        });
    }
}

struct PfsNode {
    servers: usize,
}

impl Component for PfsNode {
    fn kind(&self) -> &'static str {
        "Pfs"
    }
    fn input(&self) -> PortKind {
        PortKind::App
    }
    fn output(&self) -> PortKind {
        PortKind::File
    }
    fn describe(&self) -> String {
        format!(
            "parallel file system, 64 KB stripes over {} server{}",
            self.servers,
            if self.servers == 1 { "" } else { "s" }
        )
    }
    fn install(&self, builder: &mut StackBuilder) {
        builder.fs = Some(FsChoice::Parallel {
            servers: self.servers,
        });
    }
}

struct NetNode {
    loss_rate: Option<f64>,
    retransmit_delay_ms: Option<u64>,
    record: Option<bool>,
}

impl Component for NetNode {
    fn kind(&self) -> &'static str {
        "Net"
    }
    fn input(&self) -> PortKind {
        PortKind::File
    }
    fn output(&self) -> PortKind {
        PortKind::File
    }
    fn describe(&self) -> String {
        let mut d = format!("gigabit ethernet, {}", Link::gigabit_ethernet().describe());
        match self.loss_rate {
            Some(rate) if rate > 0.0 => {
                d.push_str(&format!(
                    ", loss rate {rate}, retransmit after {} ms",
                    self.retransmit_delay_ms
                        .unwrap_or(NetChoice::DEFAULT_RETRANSMIT_MS)
                ));
            }
            _ => d.push_str(", lossless"),
        }
        if self.record.unwrap_or(false) {
            d.push_str(", recording network-layer spans");
        }
        d
    }
    fn install(&self, builder: &mut StackBuilder) {
        builder.net = Some(NetChoice {
            loss_rate: self.loss_rate,
            retransmit_delay_ms: self.retransmit_delay_ms,
            record: self.record.unwrap_or(false),
        });
    }
}

struct DeviceComponent {
    device: DeviceNode,
}

impl Component for DeviceComponent {
    fn kind(&self) -> &'static str {
        "Device"
    }
    fn input(&self) -> PortKind {
        PortKind::File
    }
    fn output(&self) -> PortKind {
        PortKind::Block
    }
    fn describe(&self) -> String {
        match &self.device {
            DeviceNode::Hdd => "HDD, SATA 7200 rpm 250 GB profile".into(),
            DeviceNode::Ssd => "SSD, PCIe x4 100 GB profile (4 channels)".into(),
            DeviceNode::Raid0 { members } => {
                format!("RAID-0 over {members} SATA 7200 rpm members")
            }
            DeviceNode::Ram {
                fixed_us,
                rate,
                capacity,
            } => format!(
                "RAM-backed: {fixed_us} us fixed + {} MB/s, {} MB capacity",
                rate / 1_000_000,
                capacity / 1_000_000
            ),
        }
    }
    fn install(&self, builder: &mut StackBuilder) {
        builder.device = Some(self.device.clone());
    }
}

impl NodeSpec {
    /// Lower this declaration to its behavioural component.
    pub fn component(&self) -> Box<dyn Component> {
        match self.clone() {
            NodeSpec::Collective => Box::new(CollectiveNode),
            NodeSpec::Sieving { enabled } => Box::new(SievingNode { enabled }),
            NodeSpec::Prefetch { window_kb } => Box::new(PrefetchNode { window_kb }),
            NodeSpec::LocalFs { overhead_us } => Box::new(LocalFsNode { overhead_us }),
            NodeSpec::Pfs { servers } => Box::new(PfsNode { servers }),
            NodeSpec::Net {
                loss_rate,
                retransmit_delay_ms,
                record,
            } => Box::new(NetNode {
                loss_rate,
                retransmit_delay_ms,
                record,
            }),
            NodeSpec::Device { device } => Box::new(DeviceComponent { device }),
        }
    }
}

impl crate::TopologySpec {
    /// Pretty-print the component graph: one line per node showing its
    /// ports and effective configuration. `workload` is an optional
    /// source-line description shown above the chain; a missing `Device`
    /// node is rendered as the implicit HDD default.
    pub fn render(&self, workload: Option<&str>) -> String {
        let mut lines = Vec::new();
        if let Some(w) = workload {
            lines.push(format!(
                "  {:<10} {:>5} -> {:<5}  {}",
                "Workload", "", "app", w
            ));
        }
        let mut components: Vec<(Box<dyn Component>, bool)> = self
            .nodes()
            .iter()
            .map(|n| (n.component(), false))
            .collect();
        let has_device = self
            .nodes()
            .iter()
            .any(|n| matches!(n, NodeSpec::Device { .. }));
        if !has_device {
            let implicit = NodeSpec::Device {
                device: DeviceNode::Hdd,
            };
            components.push((implicit.component(), true));
        }
        for (c, implicit) in &components {
            lines.push(format!(
                "  {:<10} {:>5} -> {:<5}  {}{}",
                c.kind(),
                c.input().to_string(),
                c.output().to_string(),
                c.describe(),
                if *implicit { " [implicit default]" } else { "" }
            ));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologySpec;

    #[test]
    fn chains_are_port_typed() {
        let spec = TopologySpec::new(vec![
            NodeSpec::Collective,
            NodeSpec::Sieving { enabled: true },
            NodeSpec::Prefetch { window_kb: 128 },
            NodeSpec::Pfs { servers: 4 },
            NodeSpec::Net {
                loss_rate: None,
                retransmit_delay_ms: None,
                record: None,
            },
            NodeSpec::Device {
                device: DeviceNode::Hdd,
            },
        ]);
        spec.validate().unwrap();
        let comps: Vec<_> = spec.nodes().iter().map(|n| n.component()).collect();
        assert_eq!(comps.first().unwrap().input(), PortKind::App);
        assert_eq!(comps.last().unwrap().output(), PortKind::Block);
        for pair in comps.windows(2) {
            assert_eq!(pair[0].output(), pair[1].input());
        }
    }

    #[test]
    fn render_shows_ports_and_implicit_device() {
        let out =
            TopologySpec::new(vec![NodeSpec::Pfs { servers: 2 }]).render(Some("test workload"));
        assert!(out.contains("Workload"), "{out}");
        assert!(out.contains("app -> file"), "{out}");
        assert!(out.contains("[implicit default]"), "{out}");
        let lossy = TopologySpec::new(vec![
            NodeSpec::Pfs { servers: 2 },
            NodeSpec::Net {
                loss_rate: Some(0.02),
                retransmit_delay_ms: None,
                record: Some(true),
            },
        ])
        .render(None);
        assert!(lossy.contains("loss rate 0.02"), "{lossy}");
        assert!(lossy.contains("recording network-layer spans"), "{lossy}");
    }
}
