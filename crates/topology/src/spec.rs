//! Declarable topology nodes and the validated node list.
//!
//! [`NodeSpec`] is the serde surface: what a scenario JSON `"topology"`
//! array contains. [`TopologySpec`] wraps the ordered list and owns the
//! structural rules (exactly one file system, middleware above it, `Net`
//! only above `Pfs`, `Device` last). Behaviour lives in
//! [`crate::component`]; assembly lives in [`crate::build`].

use crate::TopologyError;
use bps_core::time::Dur;
use bps_fs::cluster::DeviceSpec;
use bps_sim::device::hdd::HddProfile;
use bps_sim::device::ssd::SsdProfile;
use serde::{Deserialize, Error, Serialize, Value};

/// The component kinds a topology may contain, in canonical stack order.
/// Used verbatim in unknown-component error messages.
pub const VALID_COMPONENTS: [&str; 7] = [
    "Collective",
    "Sieving",
    "Prefetch",
    "LocalFs",
    "Pfs",
    "Net",
    "Device",
];

/// Which device model sits at the bottom of the stack.
///
/// Profiles are the calibrated ones the paper's experiments use; a node
/// selects a profile rather than re-specifying raw device parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeviceNode {
    /// Rotating disk: the SATA 7200 rpm, 250 GB profile.
    Hdd,
    /// Flash SSD: the PCIe x4, 100 GB profile.
    Ssd,
    /// RAID-0 array of SATA member disks.
    Raid0 {
        /// Number of member disks.
        members: usize,
    },
    /// Constant-cost device (calibration and tests).
    Ram {
        /// Fixed per-op latency in microseconds.
        fixed_us: u64,
        /// Bytes per second.
        rate: u64,
        /// Capacity in bytes.
        capacity: u64,
    },
}

impl DeviceNode {
    /// Lower to the cluster's device specification.
    pub fn to_spec(&self) -> DeviceSpec {
        match self {
            DeviceNode::Hdd => DeviceSpec::Hdd(HddProfile::sata_7200_250gb()),
            DeviceNode::Ssd => DeviceSpec::Ssd(SsdProfile::pcie_x4_100gb()),
            DeviceNode::Raid0 { members } => DeviceSpec::Raid0 {
                member: HddProfile::sata_7200_250gb(),
                members: *members,
            },
            DeviceNode::Ram {
                fixed_us,
                rate,
                capacity,
            } => DeviceSpec::Ram {
                fixed: Dur::from_micros(*fixed_us),
                rate: *rate,
                capacity: *capacity,
            },
        }
    }
}

/// One declarable node of the component graph.
///
/// In JSON a unit node is a bare string (`"Collective"`) and a configured
/// node is a single-key object (`{"Pfs": {"servers": 4}}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeSpec {
    /// Two-phase collective I/O marker. Group size always follows the
    /// workload's process count, so this node documents the exchange
    /// layer rather than configuring it.
    Collective,
    /// Data sieving for noncontiguous requests.
    Sieving {
        /// `true` for ROMIO-default covering reads, `false` for one file
        /// system request per region.
        enabled: bool,
    },
    /// Sequential read-ahead.
    Prefetch {
        /// Window fetched beyond each sequential read, in KB.
        window_kb: u64,
    },
    /// Local file system on a single server.
    LocalFs {
        /// Optional per-call overhead in microseconds (`null` for the
        /// profile default).
        overhead_us: Option<u64>,
    },
    /// Striped parallel file system.
    Pfs {
        /// Number of I/O servers.
        servers: usize,
    },
    /// The client/server interconnect (Gigabit Ethernet model).
    Net {
        /// Probability a payload transfer is lost and retransmitted;
        /// `null` or `0.0` for a lossless link.
        loss_rate: Option<f64>,
        /// Retransmit timeout in milliseconds (defaults to 10).
        retransmit_delay_ms: Option<u64>,
        /// Emit `Layer::Network` records for each remote chunk's payload
        /// leg (defaults to `false`; network records never count toward
        /// the paper's four metrics).
        record: Option<bool>,
    },
    /// The storage device on each server.
    Device {
        /// Device model selector.
        device: DeviceNode,
    },
}

impl NodeSpec {
    /// The component kind name, matching [`VALID_COMPONENTS`].
    pub fn kind(&self) -> &'static str {
        match self {
            NodeSpec::Collective => "Collective",
            NodeSpec::Sieving { .. } => "Sieving",
            NodeSpec::Prefetch { .. } => "Prefetch",
            NodeSpec::LocalFs { .. } => "LocalFs",
            NodeSpec::Pfs { .. } => "Pfs",
            NodeSpec::Net { .. } => "Net",
            NodeSpec::Device { .. } => "Device",
        }
    }
}

/// An ordered, validated component chain.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    nodes: Vec<NodeSpec>,
}

impl TopologySpec {
    /// Wrap a node list. Call [`TopologySpec::validate`] before building.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        TopologySpec { nodes }
    }

    /// The nodes, in declaration order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The prebuilt single-server stack the runner's `Hdd`/`Ssd` storage
    /// historically hardcoded: a local file system straight onto `device`.
    pub fn local(device: DeviceNode) -> Self {
        TopologySpec::new(vec![
            NodeSpec::LocalFs { overhead_us: None },
            NodeSpec::Device { device },
        ])
    }

    /// The prebuilt parallel stack the runner's `Pvfs` storage
    /// historically hardcoded: a striped file system over `servers`
    /// servers, each chunk crossing a lossless Gigabit link to an HDD.
    pub fn pfs(servers: usize) -> Self {
        TopologySpec::new(vec![
            NodeSpec::Pfs { servers },
            NodeSpec::Net {
                loss_rate: None,
                retransmit_delay_ms: None,
                record: None,
            },
            NodeSpec::Device {
                device: DeviceNode::Hdd,
            },
        ])
    }

    /// Check the structural rules of the chain. Errors name the offending
    /// node by index and kind.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let err = |i: usize, kind: &str, msg: &str| {
            Err(TopologyError(format!("topology node {i} ({kind}): {msg}")))
        };
        if self.nodes.is_empty() {
            return Err(TopologyError(
                "topology must contain at least one node (a `LocalFs` or `Pfs` file system)".into(),
            ));
        }
        let mut fs_at: Option<usize> = None;
        let mut net_at: Option<usize> = None;
        let mut middleware_seen: Vec<&'static str> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let kind = node.kind();
            match node {
                NodeSpec::Collective | NodeSpec::Sieving { .. } | NodeSpec::Prefetch { .. } => {
                    if fs_at.is_some() {
                        return err(
                            i,
                            kind,
                            "middleware layers must come before the file-system node",
                        );
                    }
                    if middleware_seen.contains(&kind) {
                        return err(i, kind, "each middleware layer may appear at most once");
                    }
                    if let NodeSpec::Prefetch { window_kb: 0 } = node {
                        return err(i, kind, "read-ahead window must be positive");
                    }
                    middleware_seen.push(kind);
                }
                NodeSpec::LocalFs { .. } | NodeSpec::Pfs { .. } => {
                    if fs_at.is_some() {
                        return err(
                            i,
                            kind,
                            "a topology has exactly one file-system node, found a second",
                        );
                    }
                    if let NodeSpec::Pfs { servers: 0 } = node {
                        return err(i, kind, "a parallel file system needs at least one server");
                    }
                    fs_at = Some(i);
                }
                NodeSpec::Net { .. } => {
                    match fs_at.map(|at| &self.nodes[at]) {
                        None => {
                            return err(i, kind, "`Net` must come after the file-system node");
                        }
                        Some(NodeSpec::LocalFs { .. }) => {
                            return err(
                                i,
                                kind,
                                "`Net` is only meaningful above a `Pfs` node (local file system I/O never crosses the interconnect)",
                            );
                        }
                        Some(_) => {}
                    }
                    if net_at.is_some() {
                        return err(i, kind, "at most one `Net` node is allowed");
                    }
                    if let NodeSpec::Net {
                        loss_rate: Some(rate),
                        ..
                    } = node
                    {
                        if !(0.0..1.0).contains(rate) {
                            return err(i, kind, "loss_rate must be in [0, 1)");
                        }
                    }
                    net_at = Some(i);
                }
                NodeSpec::Device { device } => {
                    if fs_at.is_none() {
                        return err(i, kind, "`Device` must come after the file-system node");
                    }
                    if i + 1 != self.nodes.len() {
                        return err(i, kind, "`Device` must be the last node");
                    }
                    match device {
                        DeviceNode::Raid0 { members: 0 } => {
                            return err(i, kind, "a RAID-0 array needs at least one member");
                        }
                        DeviceNode::Ram { rate: 0, .. } => {
                            return err(i, kind, "a RAM device needs a positive byte rate");
                        }
                        _ => {}
                    }
                }
            }
        }
        if fs_at.is_none() {
            return Err(TopologyError(
                "topology needs exactly one file-system node (`LocalFs` or `Pfs`)".into(),
            ));
        }
        Ok(())
    }
}

/// The kind name of a raw JSON topology entry: a bare string, or the key
/// of a single-key object.
fn entry_kind(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::Object(fields) if fields.len() == 1 => Some(fields[0].0.clone()),
        _ => None,
    }
}

impl Serialize for TopologySpec {
    fn to_value(&self) -> Value {
        Value::Array(self.nodes.iter().map(Serialize::to_value).collect())
    }
}

impl Deserialize for TopologySpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Array(items) => items,
            other => {
                return Err(Error(format!(
                    "topology must be an array of component nodes, got {}",
                    other.kind()
                )))
            }
        };
        let mut nodes = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let kind = entry_kind(item).ok_or_else(|| {
                Error(format!(
                    "topology node {i}: expected a component name or a single-key object, got {}",
                    item.kind()
                ))
            })?;
            if !VALID_COMPONENTS.contains(&kind.as_str()) {
                return Err(Error(format!(
                    "topology node {i}: unknown component `{kind}` (valid components: {})",
                    VALID_COMPONENTS.join(", ")
                )));
            }
            let node = NodeSpec::from_value(item)
                .map_err(|e| Error(format!("topology node {i} ({kind}): {e}")))?;
            nodes.push(node);
        }
        Ok(TopologySpec::new(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(json: &str) -> Result<TopologySpec, serde_json::Error> {
        serde_json::from_str(json)
    }

    #[test]
    fn prebuilt_topologies_validate() {
        TopologySpec::local(DeviceNode::Hdd).validate().unwrap();
        TopologySpec::local(DeviceNode::Ssd).validate().unwrap();
        TopologySpec::pfs(4).validate().unwrap();
    }

    #[test]
    fn json_roundtrip_preserves_every_node_kind() {
        let spec = TopologySpec::new(vec![
            NodeSpec::Collective,
            NodeSpec::Sieving { enabled: false },
            NodeSpec::Prefetch { window_kb: 256 },
            NodeSpec::Pfs { servers: 4 },
            NodeSpec::Net {
                loss_rate: Some(0.01),
                retransmit_delay_ms: Some(5),
                record: Some(true),
            },
            NodeSpec::Device {
                device: DeviceNode::Raid0 { members: 3 },
            },
        ]);
        let json = serde_json::to_string(&spec).unwrap();
        let back = parse(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn bare_string_and_object_forms_parse() {
        let spec =
            parse(r#"["Collective", {"Pfs": {"servers": 2}}, {"Device": {"device": "Ssd"}}]"#)
                .unwrap();
        assert_eq!(spec.nodes()[0], NodeSpec::Collective);
        assert_eq!(spec.nodes()[1], NodeSpec::Pfs { servers: 2 });
        spec.validate().unwrap();
    }

    #[test]
    fn unknown_component_names_the_node_and_lists_valid_kinds() {
        let e = parse(r#"[{"Pfs": {"servers": 2}}, "Cache"]"#).unwrap_err();
        assert_eq!(
            e.0,
            "topology node 1: unknown component `Cache` (valid components: \
             Collective, Sieving, Prefetch, LocalFs, Pfs, Net, Device)"
        );
    }

    #[test]
    fn malformed_node_errors_carry_index_and_kind() {
        let e = parse(r#"[{"Pfs": {"servers": "four"}}]"#).unwrap_err();
        assert!(e.0.starts_with("topology node 0 (Pfs):"), "{}", e.0);
        let e = parse(r#"[42]"#).unwrap_err();
        assert!(e.0.contains("expected a component name"), "{}", e.0);
    }

    #[test]
    fn structural_rules_are_enforced() {
        let bad = |nodes: Vec<NodeSpec>, needle: &str| {
            let e = TopologySpec::new(nodes).validate().unwrap_err();
            assert!(e.0.contains(needle), "{}", e.0);
        };
        bad(vec![], "at least one node");
        bad(vec![NodeSpec::Collective], "exactly one file-system node");
        bad(
            vec![
                NodeSpec::LocalFs { overhead_us: None },
                NodeSpec::Pfs { servers: 2 },
            ],
            "found a second",
        );
        bad(
            vec![
                NodeSpec::LocalFs { overhead_us: None },
                NodeSpec::Collective,
            ],
            "before the file-system node",
        );
        bad(
            vec![
                NodeSpec::Collective,
                NodeSpec::Collective,
                NodeSpec::Pfs { servers: 2 },
            ],
            "at most once",
        );
        bad(
            vec![
                NodeSpec::LocalFs { overhead_us: None },
                NodeSpec::Net {
                    loss_rate: None,
                    retransmit_delay_ms: None,
                    record: None,
                },
            ],
            "only meaningful above a `Pfs`",
        );
        bad(
            vec![
                NodeSpec::Device {
                    device: DeviceNode::Hdd,
                },
                NodeSpec::LocalFs { overhead_us: None },
            ],
            "after the file-system node",
        );
        bad(
            vec![
                NodeSpec::Pfs { servers: 2 },
                NodeSpec::Device {
                    device: DeviceNode::Hdd,
                },
                NodeSpec::Net {
                    loss_rate: None,
                    retransmit_delay_ms: None,
                    record: None,
                },
            ],
            "last node",
        );
        bad(vec![NodeSpec::Pfs { servers: 0 }], "at least one server");
        bad(
            vec![
                NodeSpec::Pfs { servers: 2 },
                NodeSpec::Net {
                    loss_rate: Some(1.5),
                    retransmit_delay_ms: None,
                    record: None,
                },
            ],
            "loss_rate",
        );
    }
}
