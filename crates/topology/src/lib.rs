//! Composable I/O stack topologies.
//!
//! Every experiment in this repository simulates the same vertical path: an
//! application workload issues requests, zero or more middleware layers
//! transform them (collective exchange, data sieving, read-ahead), a file
//! system maps them onto servers, a network carries remote chunks, and a
//! device executes them. Historically that path was hardcoded in the
//! experiment runner; this crate re-expresses it as a *component graph* —
//! a linear chain of typed nodes that can be declared as data:
//!
//! ```text
//! Workload -> [Collective | Sieving | Prefetch]* -> {LocalFs | Pfs} -> Net -> Device
//! ```
//!
//! The pieces:
//!
//! * [`NodeSpec`] — one declarable node (serde-friendly; this is what a
//!   scenario JSON `"topology"` array contains).
//! * [`TopologySpec`] — an ordered list of nodes plus validation that the
//!   chain is well-typed (exactly one file system, middleware above it,
//!   `Net` only above a parallel file system, `Device` last).
//! * [`Component`] — the behavioural view of a node: its typed input and
//!   output ports, a human description, and an `install` hook that
//!   contributes its configuration to a [`StackBuilder`].
//! * [`TopologySpec::build`] — folds the components into the existing
//!   engine types ([`bps_middleware::stack::IoStack`] over
//!   [`bps_fs::cluster::Cluster`]), so a declared graph runs on exactly
//!   the same simulation loop as the historical hardcoded stacks.
//!
//! The prebuilt constructors [`TopologySpec::local`] and
//! [`TopologySpec::pfs`] reproduce those historical stacks node for node:
//! an experiment that omits `"topology"` gets a byte-identical run.

pub mod build;
pub mod component;
pub mod spec;

pub use crate::build::{BuildEnv, BuiltStack, Layout, StackBuilder};
pub use crate::component::{Component, PortKind};
pub use crate::spec::{DeviceNode, NodeSpec, TopologySpec, VALID_COMPONENTS};

/// A topology that cannot be validated or built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError(pub String);

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TopologyError {}
