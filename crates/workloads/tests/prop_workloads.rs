//! Property tests: every generator's streams stay in bounds, partition
//! their data, and report accurate totals.

use bps_core::extent::Extent;
use bps_workloads::hpio::Hpio;
use bps_workloads::ior::Ior;
use bps_workloads::iozone::{Iozone, IozoneMode};
use bps_workloads::spec::{AppOp, Workload};
use proptest::prelude::*;

fn op_extents(op: &AppOp) -> Vec<Extent> {
    match op {
        AppOp::Read { extent, .. } | AppOp::Write { extent, .. } => vec![*extent],
        AppOp::ReadNoncontig { regions, .. } | AppOp::CollectiveReadNoncontig { regions, .. } => {
            regions.clone()
        }
        AppOp::Compute { .. } => vec![],
    }
}

proptest! {
    /// IOzone: all accesses stay inside the file; `required_bytes` matches
    /// the stream; sequential modes cover the file exactly.
    #[test]
    fn iozone_in_bounds(
        file_size in 1u64..5_000_000,
        record in 1u64..200_000,
        procs in 1usize..5,
        mode_idx in 0usize..6,
    ) {
        let mode = [
            IozoneMode::SeqRead, IozoneMode::SeqWrite, IozoneMode::ReRead,
            IozoneMode::ReWrite, IozoneMode::RandomRead, IozoneMode::BackwardRead,
        ][mode_idx];
        let w = Iozone { mode, file_size, record_size: record, processes: procs, seed: 1 };
        let mut total = 0u64;
        for pid in 0..procs {
            for op in w.stream(pid) {
                for e in op_extents(&op) {
                    prop_assert!(e.end() <= file_size, "{e:?} beyond {file_size}");
                    prop_assert!(e.len > 0);
                }
                total += op.required_bytes();
            }
        }
        prop_assert_eq!(total, w.required_bytes());
    }

    /// IOR: segments partition the file; streams tile their segments.
    #[test]
    fn ior_partition(file_size in 1u64..10_000_000, transfer in 1u64..300_000, procs in 1usize..33) {
        let w = Ior { file_size, transfer_size: transfer, processes: procs, write: false };
        let mut covered = 0u64;
        let mut pos = 0u64;
        for pid in 0..procs {
            let seg = w.segment(pid);
            prop_assert_eq!(seg.offset, pos);
            pos = seg.end();
            let mut seg_pos = seg.offset;
            for op in w.stream(pid) {
                if let AppOp::Read { extent, .. } = op {
                    prop_assert_eq!(extent.offset, seg_pos);
                    prop_assert!(extent.len <= transfer);
                    seg_pos = extent.end();
                    covered += extent.len;
                }
            }
            prop_assert_eq!(seg_pos, seg.end());
        }
        prop_assert_eq!(pos, file_size);
        prop_assert_eq!(covered, file_size);
    }

    /// HPIO: regions are disjoint, equally strided, partitioned across
    /// processes without loss, and required bytes ignore the holes.
    #[test]
    fn hpio_regions_disjoint(
        count in 0u64..5_000,
        size in 1u64..2_000,
        spacing in 0u64..5_000,
        per_call in 1u64..512,
        procs in 1usize..5,
    ) {
        let w = Hpio {
            region_count: count,
            region_size: size,
            region_spacing: spacing,
            regions_per_call: per_call,
            processes: procs,
            collective: false,
        };
        let mut starts = Vec::new();
        for pid in 0..procs {
            for op in w.stream(pid) {
                if let AppOp::ReadNoncontig { regions, .. } = op {
                    prop_assert!(regions.len() as u64 <= per_call);
                    for r in &regions {
                        prop_assert_eq!(r.len, size);
                        prop_assert_eq!(r.offset % w.stride(), 0);
                        prop_assert!(r.end() <= w.file_span());
                        starts.push(r.offset);
                    }
                }
            }
        }
        starts.sort_unstable();
        starts.dedup();
        prop_assert_eq!(starts.len() as u64, count);
        prop_assert_eq!(w.required_bytes(), count * size);
    }
}
