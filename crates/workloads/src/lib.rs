//! # bps-workloads — the paper's benchmark programs as op-stream generators
//!
//! The paper drives its four experiment sets with three benchmarks; each is
//! reproduced here as a pure generator of per-process application operation
//! streams (no I/O, no simulation — just *what* each process asks for):
//!
//! * [`iozone`] — IOzone: sequential/random/backward reads and writes,
//!   re-read/re-write, configurable record size, single-process mode and
//!   multi-process throughput mode (one file per process). Drives Sets 1–3a.
//! * [`ior`] — IOR: N processes share one file; each reads its own 1/N
//!   segment with fixed-size sequential transfers. Drives Set 3b.
//! * [`hpio`] — HPIO: noncontiguous accesses described by region count,
//!   region size and region spacing. Drives Set 4 (data sieving).
//! * [`synthetic`] — extra generators (uniform random, Zipf hot spots,
//!   bursty on/off) used by examples and robustness tests.
//! * [`replay`] — turn a recorded trace back into op streams, so real
//!   applications can be replayed against simulated configurations.
//!
//! Every generator also has a serializable description in
//! [`workload_spec::WorkloadSpec`], so scenario files can name any
//! workload as data and build it at run time.
//!
//! Streams are lazy iterators so a 16 GB / 4 KB-record run does not
//! materialize four million ops up front.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hpio;
pub mod ior;
pub mod iozone;
pub mod replay;
pub mod spec;
pub mod synthetic;
pub mod workload_spec;

pub use spec::{AppOp, OpStream, Workload};
pub use workload_spec::WorkloadSpec;
