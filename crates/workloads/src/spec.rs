//! The workload vocabulary: operations, streams, and the generator trait.

use bps_core::extent::Extent;
use bps_core::time::Dur;

/// One application-level operation. Files are referenced by index into the
/// workload's file table ([`Workload::file_sizes`]); the experiment harness
/// binds indices to actual simulated files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppOp {
    /// Contiguous read.
    Read {
        /// File table index.
        file: usize,
        /// Byte range.
        extent: Extent,
    },
    /// Contiguous write.
    Write {
        /// File table index.
        file: usize,
        /// Byte range.
        extent: Extent,
    },
    /// Noncontiguous read (one MPI-IO call over many regions) — the data
    /// sieving input.
    ReadNoncontig {
        /// File table index.
        file: usize,
        /// The regions the application actually needs.
        regions: Vec<Extent>,
    },
    /// Collective noncontiguous read: every process of the workload issues
    /// one of these together (two-phase I/O). All processes must emit a
    /// matching call or the run deadlocks at the barrier.
    CollectiveReadNoncontig {
        /// File table index (must agree across processes).
        file: usize,
        /// The regions *this* process needs.
        regions: Vec<Extent>,
    },
    /// Pure computation between I/O phases.
    Compute {
        /// CPU time.
        dur: Dur,
    },
}

impl AppOp {
    /// Bytes of file data this op requires (0 for compute).
    pub fn required_bytes(&self) -> u64 {
        match self {
            AppOp::Read { extent, .. } | AppOp::Write { extent, .. } => extent.len,
            AppOp::ReadNoncontig { regions, .. }
            | AppOp::CollectiveReadNoncontig { regions, .. } => regions.iter().map(|r| r.len).sum(),
            AppOp::Compute { .. } => 0,
        }
    }
}

/// A lazy per-process operation stream.
pub type OpStream = Box<dyn Iterator<Item = AppOp> + Send>;

/// A benchmark program: how many processes, which files, and what each
/// process does.
///
/// `Sync` is a supertrait so a sweep executor can drive the same workload
/// from several threads at once; implementations are plain descriptions
/// (`stream` returns a fresh iterator), so this costs them nothing.
pub trait Workload: Sync {
    /// Display name ("iozone", "ior", "hpio", ...).
    fn name(&self) -> &'static str;

    /// Number of application processes.
    fn processes(&self) -> usize;

    /// Sizes of the files the workload touches; index = file table index.
    fn file_sizes(&self) -> Vec<u64>;

    /// The op stream of process `pid` (0-based, `pid < processes()`).
    fn stream(&self, pid: usize) -> OpStream;

    /// Total bytes the application requires across all processes.
    /// Default: sums the streams (generators with closed forms override).
    fn required_bytes(&self) -> u64 {
        (0..self.processes())
            .map(|p| self.stream(p).map(|op| op.required_bytes()).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_bytes_per_op() {
        let r = AppOp::Read {
            file: 0,
            extent: Extent::new(0, 100),
        };
        assert_eq!(r.required_bytes(), 100);
        let nc = AppOp::ReadNoncontig {
            file: 0,
            regions: vec![Extent::new(0, 10), Extent::new(50, 20)],
        };
        assert_eq!(nc.required_bytes(), 30);
        let c = AppOp::Compute {
            dur: Dur::from_millis(1),
        };
        assert_eq!(c.required_bytes(), 0);
    }
}
