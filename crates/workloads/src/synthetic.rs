//! Synthetic workloads beyond the paper's benchmarks.
//!
//! Used by examples and robustness tests: uniform-random access, Zipf
//! hot-spot access, and bursty on/off phases with compute gaps (the pattern
//! that makes BPS's idle-time exclusion matter most).

use crate::spec::{AppOp, OpStream, Workload};
use bps_core::extent::Extent;
use bps_core::time::Dur;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Access-pattern flavor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Pattern {
    /// Uniformly random record positions.
    Uniform,
    /// Zipf-distributed record positions with the given exponent (> 0);
    /// small exponents are near-uniform, large ones hammer a few records.
    Zipf {
        /// Skew exponent (> 0).
        exponent: f64,
    },
}

/// A synthetic mixed read/write workload.
#[derive(Debug, Clone)]
pub struct Synthetic {
    /// Bytes per file (one file per process).
    pub file_size: u64,
    /// Record size in bytes.
    pub record_size: u64,
    /// Operations per process.
    pub ops_per_process: u64,
    /// Fraction of reads in [0, 1]; the rest are writes.
    pub read_fraction: f64,
    /// Position distribution.
    pub pattern: Pattern,
    /// Number of processes.
    pub processes: usize,
    /// Compute time inserted between ops (0 = none). Every `burst_len` ops,
    /// an *extra long* gap of 10× this is inserted, creating bursts.
    pub think_time: Dur,
    /// Ops per burst (0 disables bursting).
    pub burst_len: u64,
    /// Seed.
    pub seed: u64,
}

/// Precomputed Zipf CDF sampler over `n` records.
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: u64, exponent: f64) -> Self {
        let n = n.clamp(1, 1 << 20) as usize; // cap table size
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, u: f64) -> u64 {
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        "synthetic"
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn file_sizes(&self) -> Vec<u64> {
        vec![self.file_size; self.processes]
    }

    fn stream(&self, pid: usize) -> OpStream {
        assert!(pid < self.processes, "pid {pid} out of range");
        let records = (self.file_size / self.record_size).max(1);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ ((pid as u64) << 40) ^ 0xABCD);
        let zipf = match self.pattern {
            Pattern::Zipf { exponent } => Some(ZipfSampler::new(records, exponent)),
            Pattern::Uniform => None,
        };
        let rec = self.record_size;
        let read_fraction = self.read_fraction;
        let think = self.think_time;
        let burst = self.burst_len;
        let total = self.ops_per_process;
        let file_size = self.file_size;
        let file = pid;
        let mut emitted = 0u64;
        let mut pending_gap: Option<Dur> = None;
        Box::new(std::iter::from_fn(move || {
            if let Some(d) = pending_gap.take() {
                return Some(AppOp::Compute { dur: d });
            }
            if emitted >= total {
                return None;
            }
            emitted += 1;
            // Queue the post-op gap.
            if !think.is_zero() {
                let long = burst > 0 && emitted.is_multiple_of(burst);
                pending_gap = Some(if long { think * 10 } else { think });
            }
            let idx = match &zipf {
                Some(z) => z.sample(rng.gen::<f64>()) % records,
                None => rng.gen_range(0..records),
            };
            let extent = Extent::new(idx * rec, rec.min(file_size - idx * rec));
            Some(if rng.gen::<f64>() < read_fraction {
                AppOp::Read { file, extent }
            } else {
                AppOp::Write { file, extent }
            })
        }))
    }
}

impl Synthetic {
    /// A small, fully-read uniform workload useful in examples.
    pub fn uniform_read(file_size: u64, record_size: u64, ops: u64, seed: u64) -> Self {
        Synthetic {
            file_size,
            record_size,
            ops_per_process: ops,
            read_fraction: 1.0,
            pattern: Pattern::Uniform,
            processes: 1,
            think_time: Dur::ZERO,
            burst_len: 0,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_and_bounds() {
        let w = Synthetic::uniform_read(1 << 20, 4096, 100, 1);
        let ops: Vec<AppOp> = w.stream(0).collect();
        assert_eq!(ops.len(), 100);
        for op in &ops {
            if let AppOp::Read { extent, .. } = op {
                assert!(extent.end() <= 1 << 20);
                assert!(extent.len > 0);
            } else {
                panic!("expected read");
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_pid() {
        let w = Synthetic::uniform_read(1 << 20, 4096, 50, 7);
        let a: Vec<AppOp> = w.stream(0).collect();
        let b: Vec<AppOp> = w.stream(0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn write_fraction_respected_roughly() {
        let mut w = Synthetic::uniform_read(1 << 20, 4096, 1000, 3);
        w.read_fraction = 0.3;
        let reads = w
            .stream(0)
            .filter(|op| matches!(op, AppOp::Read { .. }))
            .count();
        assert!((200..400).contains(&reads), "reads {reads}");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut w = Synthetic::uniform_read(1 << 22, 4096, 2000, 5);
        w.pattern = Pattern::Zipf { exponent: 1.2 };
        let mut counts = std::collections::HashMap::new();
        for op in w.stream(0) {
            if let AppOp::Read { extent, .. } = op {
                *counts.entry(extent.offset).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        // The hottest record should be dramatically hotter than uniform
        // (2000 ops over 1024 records would give ~2 per record).
        assert!(max > 20, "max count {max}");
    }

    #[test]
    fn bursts_insert_long_gaps() {
        let mut w = Synthetic::uniform_read(1 << 20, 4096, 10, 1);
        w.think_time = Dur::from_micros(100);
        w.burst_len = 5;
        let gaps: Vec<Dur> = w
            .stream(0)
            .filter_map(|op| match op {
                AppOp::Compute { dur } => Some(dur),
                _ => None,
            })
            .collect();
        assert_eq!(gaps.len(), 10);
        assert_eq!(
            gaps.iter().filter(|d| **d == Dur::from_millis(1)).count(),
            2
        );
    }

    #[test]
    fn zipf_sampler_cdf_monotone() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(z.sample(0.0), 0);
        assert!(z.sample(0.999999) >= 90);
    }
}
