//! HPIO-like noncontiguous workload generator.
//!
//! "This benchmark program can generate various data access patterns by
//! changing three parameters: region count, region spacing, and region
//! size" (paper §IV.B). The paper's Set 4 fixes region count = 4 096 000
//! and region size = 256 B, and sweeps region spacing from 8 B to 4096 B so
//! that data sieving reads ever more hole bytes.
//!
//! Each process issues `region_count / regions_per_call` noncontiguous read
//! calls (one MPI-IO call each), covering `regions_per_call` equally spaced
//! regions. Processes partition the region sequence block-wise.

use crate::spec::{AppOp, OpStream, Workload};
use bps_core::extent::Extent;

/// An HPIO run description.
#[derive(Debug, Clone)]
pub struct Hpio {
    /// Total number of regions across all processes.
    pub region_count: u64,
    /// Bytes per region.
    pub region_size: u64,
    /// Bytes of hole between consecutive regions.
    pub region_spacing: u64,
    /// Regions bundled into one noncontiguous call (ROMIO receives the
    /// whole datatype at once).
    pub regions_per_call: u64,
    /// Number of MPI processes.
    pub processes: usize,
    /// Issue collective (two-phase) reads instead of independent ones.
    pub collective: bool,
}

impl Hpio {
    /// The paper's Set 4 shape with a scaled region count.
    pub fn paper_shape(region_count: u64, region_spacing: u64, processes: usize) -> Self {
        Hpio {
            region_count,
            region_size: 256,
            region_spacing,
            regions_per_call: 4096,
            processes,
            collective: false,
        }
    }

    /// The same shape issued as collective (two-phase) reads.
    pub fn collective(mut self) -> Self {
        self.collective = true;
        self
    }

    /// Stride between region starts.
    pub fn stride(&self) -> u64 {
        self.region_size + self.region_spacing
    }

    /// Total file size spanned by all regions.
    pub fn file_span(&self) -> u64 {
        if self.region_count == 0 {
            return 0;
        }
        (self.region_count - 1) * self.stride() + self.region_size
    }

    /// Regions assigned to process `pid` (block partition).
    fn region_range(&self, pid: usize) -> (u64, u64) {
        let n = self.processes as u64;
        let base = self.region_count / n;
        let rem = self.region_count % n;
        let p = pid as u64;
        let start = p * base + p.min(rem);
        let count = base + u64::from(p < rem);
        (start, count)
    }
}

impl Workload for Hpio {
    fn name(&self) -> &'static str {
        "hpio"
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn file_sizes(&self) -> Vec<u64> {
        vec![self.file_span()]
    }

    fn stream(&self, pid: usize) -> OpStream {
        assert!(pid < self.processes, "pid {pid} out of range");
        let (first, count) = self.region_range(pid);
        let stride = self.stride();
        let size = self.region_size;
        let per_call = self.regions_per_call.max(1);
        let calls = count.div_ceil(per_call);
        let collective = self.collective;
        Box::new((0..calls).map(move |c| {
            let call_first = first + c * per_call;
            let call_count = per_call.min(first + count - call_first);
            let regions = (0..call_count)
                .map(|r| Extent::new((call_first + r) * stride, size))
                .collect();
            if collective {
                AppOp::CollectiveReadNoncontig { file: 0, regions }
            } else {
                AppOp::ReadNoncontig { file: 0, regions }
            }
        }))
    }

    fn required_bytes(&self) -> u64 {
        self.region_count * self.region_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_equally_spaced() {
        let w = Hpio {
            region_count: 10,
            region_size: 256,
            region_spacing: 1024,
            regions_per_call: 4,
            processes: 1,
            collective: false,
        };
        let ops: Vec<AppOp> = w.stream(0).collect();
        assert_eq!(ops.len(), 3); // 4 + 4 + 2 regions
        if let AppOp::ReadNoncontig { regions, .. } = &ops[0] {
            assert_eq!(regions.len(), 4);
            assert_eq!(regions[0], Extent::new(0, 256));
            assert_eq!(regions[1], Extent::new(1280, 256));
        } else {
            panic!();
        }
        if let AppOp::ReadNoncontig { regions, .. } = &ops[2] {
            assert_eq!(regions.len(), 2);
        }
    }

    #[test]
    fn required_bytes_ignores_holes() {
        let w = Hpio::paper_shape(1000, 4096, 4);
        assert_eq!(w.required_bytes(), 1000 * 256);
    }

    #[test]
    fn file_span_includes_holes() {
        let w = Hpio {
            region_count: 3,
            region_size: 10,
            region_spacing: 90,
            regions_per_call: 8,
            processes: 1,
            collective: false,
        };
        // Regions at 0, 100, 200 of 10 bytes each.
        assert_eq!(w.file_span(), 210);
        assert_eq!(w.file_sizes(), vec![210]);
    }

    #[test]
    fn processes_partition_regions() {
        let w = Hpio::paper_shape(1003, 8, 4);
        let mut total = 0u64;
        let mut seen_starts: Vec<u64> = Vec::new();
        for pid in 0..4 {
            for op in w.stream(pid) {
                if let AppOp::ReadNoncontig { regions, .. } = op {
                    total += regions.len() as u64;
                    seen_starts.extend(regions.iter().map(|r| r.offset));
                }
            }
        }
        assert_eq!(total, 1003);
        seen_starts.sort_unstable();
        seen_starts.dedup();
        assert_eq!(seen_starts.len(), 1003); // no overlap between processes
    }

    #[test]
    fn zero_regions_is_empty() {
        let w = Hpio {
            region_count: 0,
            region_size: 256,
            region_spacing: 8,
            regions_per_call: 16,
            processes: 1,
            collective: false,
        };
        assert_eq!(w.stream(0).count(), 0);
        assert_eq!(w.file_span(), 0);
    }

    #[test]
    fn collective_mode_emits_collective_ops() {
        let w = Hpio::paper_shape(100, 8, 2).collective();
        for pid in 0..2 {
            for op in w.stream(pid) {
                assert!(matches!(op, AppOp::CollectiveReadNoncontig { .. }));
            }
        }
        // required_bytes unchanged by the mode.
        assert_eq!(w.required_bytes(), 100 * 256);
    }

    #[test]
    fn wider_spacing_grows_span_not_required() {
        let narrow = Hpio::paper_shape(100, 8, 1);
        let wide = Hpio::paper_shape(100, 4096, 1);
        assert_eq!(narrow.required_bytes(), wide.required_bytes());
        assert!(wide.file_span() > narrow.file_span());
    }
}
