//! Trace replay: turn a recorded [`Trace`] back into per-process op
//! streams.
//!
//! This closes the toolkit loop: record a real application with
//! `bps-trace`, then replay its access pattern through the simulated I/O
//! stack to ask what-if questions ("would this app be faster on the SSD?
//! with 8 I/O servers?") — scoring each configuration by BPS.
//!
//! Replay preserves each process's operation order, sizes, offsets, and
//! the *think time* between consecutive operations (the gap between one
//! op's end and the next op's start becomes an [`AppOp::Compute`]).
//! Service times are discarded — the simulated stack supplies its own.

use crate::spec::{AppOp, OpStream, Workload};
use bps_core::extent::Extent;
use bps_core::record::{IoOp, IoRecord, Layer, ProcessId};
use bps_core::trace::Trace;
use std::collections::BTreeMap;

/// A replayable workload distilled from a recorded trace.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Per-process op sequences, in original start order.
    per_process: Vec<Vec<AppOp>>,
    /// File sizes inferred from the highest access end per file.
    file_sizes: Vec<u64>,
}

impl Replay {
    /// Distill the application layer of a trace. File ids are compacted
    /// into a dense index space; think times below `min_think_ns` are
    /// dropped (back-to-back ops).
    pub fn from_trace(trace: &Trace) -> Replay {
        const MIN_THINK_NS: u64 = 1_000;
        // Dense file index mapping and size inference.
        let mut file_index: BTreeMap<u32, usize> = BTreeMap::new();
        let mut file_sizes: Vec<u64> = Vec::new();
        let mut per_pid: BTreeMap<ProcessId, Vec<&IoRecord>> = BTreeMap::new();
        for r in trace.layer(Layer::Application) {
            let idx = *file_index.entry(r.file.0).or_insert_with(|| {
                file_sizes.push(0);
                file_sizes.len() - 1
            });
            file_sizes[idx] = file_sizes[idx].max(r.offset + r.bytes);
            per_pid.entry(r.pid).or_default().push(r);
        }
        let per_process = per_pid
            .into_values()
            .map(|mut records| {
                records.sort_by_key(|r| (r.start, r.end));
                let mut ops = Vec::with_capacity(records.len() * 2);
                let mut last_end = None;
                for r in records {
                    if let Some(prev) = last_end {
                        let gap = r.start.since(prev);
                        if gap.0 >= MIN_THINK_NS {
                            ops.push(AppOp::Compute { dur: gap });
                        }
                    }
                    last_end = Some(r.end.max(last_end.unwrap_or(r.end)));
                    let file = file_index[&r.file.0];
                    let extent = Extent::new(r.offset, r.bytes);
                    ops.push(match r.op {
                        IoOp::Read => AppOp::Read { file, extent },
                        IoOp::Write => AppOp::Write { file, extent },
                    });
                }
                ops
            })
            .collect();
        Replay {
            per_process,
            file_sizes,
        }
    }
}

impl Workload for Replay {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn processes(&self) -> usize {
        self.per_process.len()
    }

    fn file_sizes(&self) -> Vec<u64> {
        self.file_sizes.clone()
    }

    fn stream(&self, pid: usize) -> OpStream {
        Box::new(self.per_process[pid].clone().into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_core::record::FileId;
    use bps_core::time::{Dur, Nanos};

    fn rec(pid: u32, file: u32, offset: u64, bytes: u64, s_us: u64, e_us: u64) -> IoRecord {
        IoRecord::new(
            ProcessId(pid),
            IoOp::Read,
            FileId(file),
            offset,
            bytes,
            Nanos::from_micros(s_us),
            Nanos::from_micros(e_us),
            Layer::Application,
        )
    }

    #[test]
    fn preserves_order_sizes_and_offsets() {
        let t = Trace::from_records(vec![
            rec(0, 5, 0, 4096, 0, 100),
            rec(0, 5, 4096, 8192, 100, 250),
        ]);
        let r = Replay::from_trace(&t);
        assert_eq!(r.processes(), 1);
        assert_eq!(r.file_sizes(), vec![4096 + 8192]);
        let ops: Vec<AppOp> = r.stream(0).collect();
        assert_eq!(
            ops,
            vec![
                AppOp::Read {
                    file: 0,
                    extent: Extent::new(0, 4096)
                },
                AppOp::Read {
                    file: 0,
                    extent: Extent::new(4096, 8192)
                },
            ]
        );
    }

    #[test]
    fn think_time_becomes_compute() {
        let t = Trace::from_records(vec![
            rec(0, 1, 0, 512, 0, 100),
            rec(0, 1, 512, 512, 600, 700), // 500 us gap
        ]);
        let r = Replay::from_trace(&t);
        let ops: Vec<AppOp> = r.stream(0).collect();
        assert_eq!(ops.len(), 3);
        assert_eq!(
            ops[1],
            AppOp::Compute {
                dur: Dur::from_micros(500)
            }
        );
    }

    #[test]
    fn processes_split_and_files_compact() {
        let t = Trace::from_records(vec![
            rec(3, 100, 0, 512, 0, 10),
            rec(7, 200, 0, 1024, 0, 10),
        ]);
        let r = Replay::from_trace(&t);
        assert_eq!(r.processes(), 2);
        assert_eq!(r.file_sizes().len(), 2);
        // Each process references its own compacted file index.
        let a: Vec<AppOp> = r.stream(0).collect();
        let b: Vec<AppOp> = r.stream(1).collect();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn writes_replay_as_writes() {
        let mut w = rec(0, 0, 0, 512, 0, 10);
        w.op = IoOp::Write;
        let t = Trace::from_records(vec![w]);
        let r = Replay::from_trace(&t);
        assert!(matches!(r.stream(0).next().unwrap(), AppOp::Write { .. }));
    }

    #[test]
    fn empty_trace_empty_replay() {
        let r = Replay::from_trace(&Trace::new());
        assert_eq!(r.processes(), 0);
        assert!(r.file_sizes().is_empty());
        assert_eq!(r.required_bytes(), 0);
    }

    #[test]
    fn overlapping_records_do_not_create_negative_gaps() {
        // Concurrent records from one pid (threaded app): gap logic must
        // not panic and order stays by start time.
        let t = Trace::from_records(vec![
            rec(0, 0, 0, 512, 0, 1000),
            rec(0, 0, 512, 512, 100, 200),
        ]);
        let r = Replay::from_trace(&t);
        let ops: Vec<AppOp> = r.stream(0).collect();
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, AppOp::Read { .. }))
                .count(),
            2
        );
    }
}
