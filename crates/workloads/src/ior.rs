//! IOR-like workload generator.
//!
//! The paper's Set 3b: "We ran IOR with the MPI-IO interface to access a
//! shared PVFS2 file ... Each of n MPI processes is responsible for reading
//! its own 1/n of a 32 GB file. Each process continuously issues requests of
//! fixed transfer size (64KB) with sequential offsets."

use crate::spec::{AppOp, OpStream, Workload};
use bps_core::extent::Extent;

/// An IOR run: a shared file partitioned into per-process segments.
#[derive(Debug, Clone)]
pub struct Ior {
    /// Total bytes of the shared file.
    pub file_size: u64,
    /// Fixed transfer size per request.
    pub transfer_size: u64,
    /// Number of MPI processes.
    pub processes: usize,
    /// Write instead of read.
    pub write: bool,
}

impl Ior {
    /// The paper's configuration shape: `n` processes reading a shared file
    /// with 64 KB transfers.
    pub fn shared_read(n: usize, file_size: u64) -> Self {
        Ior {
            file_size,
            transfer_size: 64 << 10,
            processes: n,
            write: false,
        }
    }

    /// The byte range owned by process `pid`.
    pub fn segment(&self, pid: usize) -> Extent {
        let n = self.processes as u64;
        let base = self.file_size / n;
        let rem = self.file_size % n;
        let p = pid as u64;
        // First `rem` processes get one extra byte to cover the remainder.
        let start = p * base + p.min(rem);
        let len = base + u64::from(p < rem);
        Extent::new(start, len)
    }
}

impl Workload for Ior {
    fn name(&self) -> &'static str {
        "ior"
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn file_sizes(&self) -> Vec<u64> {
        vec![self.file_size] // one shared file
    }

    fn stream(&self, pid: usize) -> OpStream {
        assert!(pid < self.processes, "pid {pid} out of range");
        let seg = self.segment(pid);
        let t = self.transfer_size;
        let write = self.write;
        let count = seg.len.div_ceil(t);
        Box::new((0..count).map(move |i| {
            let offset = seg.offset + i * t;
            let len = t.min(seg.end() - offset);
            let extent = Extent::new(offset, len);
            if write {
                AppOp::Write { file: 0, extent }
            } else {
                AppOp::Read { file: 0, extent }
            }
        }))
    }

    fn required_bytes(&self) -> u64 {
        self.file_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_partition_the_file() {
        for n in [1usize, 3, 7, 32] {
            let w = Ior::shared_read(n, 1_000_003); // awkward size
            let mut pos = 0;
            for pid in 0..n {
                let seg = w.segment(pid);
                assert_eq!(seg.offset, pos, "pid {pid}");
                pos = seg.end();
            }
            assert_eq!(pos, 1_000_003);
        }
    }

    #[test]
    fn streams_cover_segments_with_fixed_transfers() {
        let w = Ior::shared_read(4, 1 << 22);
        for pid in 0..4 {
            let seg = w.segment(pid);
            let mut pos = seg.offset;
            let mut total = 0;
            for op in w.stream(pid) {
                if let AppOp::Read { file, extent } = op {
                    assert_eq!(file, 0);
                    assert_eq!(extent.offset, pos);
                    assert!(extent.len <= 64 << 10);
                    pos += extent.len;
                    total += extent.len;
                }
            }
            assert_eq!(total, seg.len);
        }
    }

    #[test]
    fn all_processes_share_one_file() {
        let w = Ior::shared_read(8, 1 << 20);
        assert_eq!(w.file_sizes().len(), 1);
        assert_eq!(w.required_bytes(), 1 << 20);
    }

    #[test]
    fn write_mode_emits_writes() {
        let mut w = Ior::shared_read(2, 1 << 20);
        w.write = true;
        assert!(matches!(w.stream(0).next().unwrap(), AppOp::Write { .. }));
    }

    #[test]
    fn single_process_owns_everything() {
        let w = Ior::shared_read(1, 12345);
        assert_eq!(w.segment(0), Extent::new(0, 12345));
    }
}
