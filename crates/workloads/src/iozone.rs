//! IOzone-like workload generator.
//!
//! IOzone "supports a bunch of file operations, such as read, write,
//! re-read, re-write, and read backwards, small/large file sizes,
//! small/large record sizes, and single/multiple process I/O tests"
//! (paper §IV.B). The paper uses it for Sets 1–3a:
//!
//! * Set 1/2: single-process sequential read of a large file with a given
//!   record size;
//! * Set 3a: throughput mode — N processes, each sequentially reading its
//!   *own* file (one file per process).

use crate::spec::{AppOp, OpStream, Workload};
use bps_core::extent::Extent;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The IOzone operation being tested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum IozoneMode {
    /// Sequential read of the whole file.
    SeqRead,
    /// Sequential write of the whole file.
    SeqWrite,
    /// Sequential read performed twice (cache-sensitivity test).
    ReRead,
    /// Sequential write performed twice.
    ReWrite,
    /// Uniform-random record reads, one pass worth of records.
    RandomRead,
    /// Sequential read from the end of file backwards.
    BackwardRead,
}

/// An IOzone run description.
#[derive(Debug, Clone)]
pub struct Iozone {
    /// Operation under test.
    pub mode: IozoneMode,
    /// Bytes per file (one file per process).
    pub file_size: u64,
    /// Record (request) size in bytes.
    pub record_size: u64,
    /// Number of processes (1 = single mode, >1 = throughput mode).
    pub processes: usize,
    /// Seed for the random modes.
    pub seed: u64,
}

impl Iozone {
    /// Single-process sequential read — the paper's Set 1/2 shape.
    pub fn seq_read(file_size: u64, record_size: u64) -> Self {
        Iozone {
            mode: IozoneMode::SeqRead,
            file_size,
            record_size,
            processes: 1,
            seed: 0,
        }
    }

    /// Throughput mode — the paper's Set 3a shape: `n` processes, each
    /// sequentially reading its own file of `file_size` bytes.
    pub fn throughput_read(n: usize, file_size: u64, record_size: u64) -> Self {
        Iozone {
            mode: IozoneMode::SeqRead,
            file_size,
            record_size,
            processes: n,
            seed: 0,
        }
    }

    fn records(&self) -> u64 {
        self.file_size.div_ceil(self.record_size)
    }
}

impl Workload for Iozone {
    fn name(&self) -> &'static str {
        "iozone"
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn file_sizes(&self) -> Vec<u64> {
        vec![self.file_size; self.processes]
    }

    fn stream(&self, pid: usize) -> OpStream {
        assert!(pid < self.processes, "pid {pid} out of range");
        let file = pid; // one file per process
        let n = self.records();
        let rec = self.record_size;
        let size = self.file_size;
        let len_at = move |i: u64| rec.min(size - i * rec);
        match self.mode {
            IozoneMode::SeqRead => Box::new((0..n).map(move |i| AppOp::Read {
                file,
                extent: Extent::new(i * rec, len_at(i)),
            })),
            IozoneMode::SeqWrite => Box::new((0..n).map(move |i| AppOp::Write {
                file,
                extent: Extent::new(i * rec, len_at(i)),
            })),
            IozoneMode::ReRead => Box::new((0..2 * n).map(move |j| {
                let i = j % n;
                AppOp::Read {
                    file,
                    extent: Extent::new(i * rec, len_at(i)),
                }
            })),
            IozoneMode::ReWrite => Box::new((0..2 * n).map(move |j| {
                let i = j % n;
                AppOp::Write {
                    file,
                    extent: Extent::new(i * rec, len_at(i)),
                }
            })),
            IozoneMode::RandomRead => {
                let mut rng = SmallRng::seed_from_u64(self.seed ^ (pid as u64) << 32);
                Box::new((0..n).map(move |_| {
                    let i = rng.gen_range(0..n);
                    AppOp::Read {
                        file,
                        extent: Extent::new(i * rec, len_at(i)),
                    }
                }))
            }
            IozoneMode::BackwardRead => Box::new((0..n).rev().map(move |i| AppOp::Read {
                file,
                extent: Extent::new(i * rec, len_at(i)),
            })),
        }
    }

    fn required_bytes(&self) -> u64 {
        let per_pass = self.file_size * self.processes as u64;
        match self.mode {
            IozoneMode::ReRead | IozoneMode::ReWrite => 2 * per_pass,
            // Random draws may hit the short tail record any number of
            // times, so the total is stream-dependent.
            IozoneMode::RandomRead => (0..self.processes)
                .map(|p| self.stream(p).map(|op| op.required_bytes()).sum::<u64>())
                .sum(),
            _ => per_pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_read_covers_file_exactly_once() {
        let w = Iozone::seq_read(1000, 64);
        let ops: Vec<AppOp> = w.stream(0).collect();
        assert_eq!(ops.len(), 16); // ceil(1000/64)
        let mut pos = 0;
        let mut total = 0;
        for op in &ops {
            if let AppOp::Read { file, extent } = op {
                assert_eq!(*file, 0);
                assert_eq!(extent.offset, pos);
                pos += extent.len;
                total += extent.len;
            } else {
                panic!("unexpected op {op:?}");
            }
        }
        assert_eq!(total, 1000);
        assert_eq!(w.required_bytes(), 1000);
    }

    #[test]
    fn tail_record_is_short() {
        let w = Iozone::seq_read(100, 64);
        let ops: Vec<AppOp> = w.stream(0).collect();
        assert_eq!(ops.len(), 2);
        if let AppOp::Read { extent, .. } = &ops[1] {
            assert_eq!(extent.len, 36);
        }
    }

    #[test]
    fn throughput_mode_one_file_per_process() {
        let w = Iozone::throughput_read(4, 1 << 20, 64 << 10);
        assert_eq!(w.processes(), 4);
        assert_eq!(w.file_sizes(), vec![1 << 20; 4]);
        for pid in 0..4 {
            let first = w.stream(pid).next().unwrap();
            if let AppOp::Read { file, .. } = first {
                assert_eq!(file, pid);
            }
        }
        assert_eq!(w.required_bytes(), 4 << 20);
    }

    #[test]
    fn backward_read_descends() {
        let w = Iozone {
            mode: IozoneMode::BackwardRead,
            file_size: 256,
            record_size: 64,
            processes: 1,
            seed: 0,
        };
        let offsets: Vec<u64> = w
            .stream(0)
            .map(|op| match op {
                AppOp::Read { extent, .. } => extent.offset,
                _ => panic!(),
            })
            .collect();
        assert_eq!(offsets, vec![192, 128, 64, 0]);
    }

    #[test]
    fn reread_reads_twice() {
        let w = Iozone {
            mode: IozoneMode::ReRead,
            file_size: 128,
            record_size: 64,
            processes: 1,
            seed: 0,
        };
        assert_eq!(w.stream(0).count(), 4);
        assert_eq!(w.required_bytes(), 256);
    }

    #[test]
    fn random_read_is_seeded_and_in_bounds() {
        let w = Iozone {
            mode: IozoneMode::RandomRead,
            file_size: 1 << 20,
            record_size: 4096,
            processes: 2,
            seed: 9,
        };
        let a: Vec<AppOp> = w.stream(0).collect();
        let b: Vec<AppOp> = w.stream(0).collect();
        assert_eq!(a, b); // deterministic
        let c: Vec<AppOp> = w.stream(1).collect();
        assert_ne!(a, c); // processes differ
        for op in &a {
            if let AppOp::Read { extent, .. } = op {
                assert!(extent.end() <= 1 << 20);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pid_panics() {
        let w = Iozone::seq_read(100, 10);
        let _ = w.stream(1);
    }
}
