//! Serializable workload descriptions.
//!
//! [`WorkloadSpec`] is the pure-data counterpart of every generator in
//! this crate: a value that can be written in a JSON scenario file,
//! round-tripped through serde, and turned into a live [`Workload`] with
//! [`WorkloadSpec::build`]. The scenario engine in `bps-experiments`
//! builds on it so that new experiment configurations are data, not code.
//!
//! Durations are expressed in microseconds (`think_time_us`) because the
//! serialized form has no `Dur` type; sizes and counts are plain integers.

use crate::hpio::Hpio;
use crate::ior::Ior;
use crate::iozone::{Iozone, IozoneMode};
use crate::replay::Replay;
use crate::spec::Workload;
use crate::synthetic::{Pattern, Synthetic};
use bps_core::time::Dur;
use std::fmt;
use std::path::Path;

/// Error building a [`Workload`] from a [`WorkloadSpec`]: either the spec
/// is invalid (zero record size, out-of-range fraction, ...) or, for
/// `Replay`, the trace file could not be loaded.
#[derive(Debug)]
pub struct BuildError(String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for BuildError {}

fn invalid(msg: impl fmt::Display) -> BuildError {
    BuildError(format!("invalid workload spec: {msg}"))
}

/// A pure-data description of any workload generator in this crate.
///
/// Externally tagged on the generator name, e.g.
/// `{"Ior": {"file_size": 1048576, "transfer_size": 65536,
/// "processes": 4, "write": false}}`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WorkloadSpec {
    /// An [`Iozone`] run.
    Iozone {
        /// Operation under test.
        mode: IozoneMode,
        /// Bytes per file (one file per process).
        file_size: u64,
        /// Record (request) size in bytes.
        record_size: u64,
        /// Number of processes (1 = single mode, >1 = throughput mode).
        processes: usize,
        /// Seed for the random modes.
        seed: u64,
    },
    /// An [`Ior`] run (shared file, per-process segments).
    Ior {
        /// Total bytes of the shared file.
        file_size: u64,
        /// Fixed transfer size per request.
        transfer_size: u64,
        /// Number of MPI processes.
        processes: usize,
        /// Write instead of read.
        write: bool,
    },
    /// An [`Hpio`] noncontiguous run.
    Hpio {
        /// Total number of regions across all processes.
        region_count: u64,
        /// Bytes per region.
        region_size: u64,
        /// Bytes of hole between consecutive regions.
        region_spacing: u64,
        /// Regions bundled into one noncontiguous call.
        regions_per_call: u64,
        /// Number of MPI processes.
        processes: usize,
        /// Issue collective (two-phase) reads instead of independent ones.
        collective: bool,
    },
    /// A [`Synthetic`] mixed read/write run.
    Synthetic {
        /// Bytes per file (one file per process).
        file_size: u64,
        /// Record size in bytes.
        record_size: u64,
        /// Operations per process.
        ops_per_process: u64,
        /// Fraction of reads in [0, 1]; the rest are writes.
        read_fraction: f64,
        /// Position distribution.
        pattern: Pattern,
        /// Number of processes.
        processes: usize,
        /// Compute time between ops, microseconds (0 = none).
        think_time_us: u64,
        /// Ops per burst (0 disables bursting).
        burst_len: u64,
        /// Seed.
        seed: u64,
    },
    /// A [`Replay`] of a recorded trace file (any format
    /// `bps_trace::format::load_path` understands).
    Replay {
        /// Path to the trace file, resolved relative to the working
        /// directory at build time.
        path: String,
    },
}

impl WorkloadSpec {
    /// One-line human description of the generator, for topology renderers
    /// and debug listings (no validation; mirrors the spec fields).
    pub fn summary(&self) -> String {
        match self {
            WorkloadSpec::Iozone {
                mode,
                file_size,
                record_size,
                processes,
                ..
            } => format!(
                "IOzone {mode:?}: {file_size} B/file, {record_size} B records, {processes} proc"
            ),
            WorkloadSpec::Ior {
                file_size,
                transfer_size,
                processes,
                write,
            } => format!(
                "IOR shared-file {}: {file_size} B total, {transfer_size} B transfers, {processes} proc",
                if *write { "write" } else { "read" }
            ),
            WorkloadSpec::Hpio {
                region_count,
                region_size,
                processes,
                collective,
                ..
            } => format!(
                "HPIO {}: {region_count} regions x {region_size} B, {processes} proc",
                if *collective {
                    "collective"
                } else {
                    "independent"
                }
            ),
            WorkloadSpec::Synthetic {
                ops_per_process,
                read_fraction,
                processes,
                ..
            } => format!(
                "Synthetic mix: {ops_per_process} ops/proc, {:.0}% reads, {processes} proc",
                read_fraction * 100.0
            ),
            WorkloadSpec::Replay { path } => format!("Replay of `{path}`"),
        }
    }

    /// Validate the spec and construct the described generator.
    pub fn build(&self) -> Result<Box<dyn Workload>, BuildError> {
        match self.clone() {
            WorkloadSpec::Iozone {
                mode,
                file_size,
                record_size,
                processes,
                seed,
            } => {
                if record_size == 0 {
                    return Err(invalid("iozone record_size must be > 0"));
                }
                if processes == 0 {
                    return Err(invalid("iozone processes must be > 0"));
                }
                Ok(Box::new(Iozone {
                    mode,
                    file_size,
                    record_size,
                    processes,
                    seed,
                }))
            }
            WorkloadSpec::Ior {
                file_size,
                transfer_size,
                processes,
                write,
            } => {
                if transfer_size == 0 {
                    return Err(invalid("ior transfer_size must be > 0"));
                }
                if processes == 0 {
                    return Err(invalid("ior processes must be > 0"));
                }
                Ok(Box::new(Ior {
                    file_size,
                    transfer_size,
                    processes,
                    write,
                }))
            }
            WorkloadSpec::Hpio {
                region_count,
                region_size,
                region_spacing,
                regions_per_call,
                processes,
                collective,
            } => {
                if region_size == 0 {
                    return Err(invalid("hpio region_size must be > 0"));
                }
                if processes == 0 {
                    return Err(invalid("hpio processes must be > 0"));
                }
                Ok(Box::new(Hpio {
                    region_count,
                    region_size,
                    region_spacing,
                    regions_per_call,
                    processes,
                    collective,
                }))
            }
            WorkloadSpec::Synthetic {
                file_size,
                record_size,
                ops_per_process,
                read_fraction,
                pattern,
                processes,
                think_time_us,
                burst_len,
                seed,
            } => {
                if record_size == 0 {
                    return Err(invalid("synthetic record_size must be > 0"));
                }
                if processes == 0 {
                    return Err(invalid("synthetic processes must be > 0"));
                }
                if !(0.0..=1.0).contains(&read_fraction) {
                    return Err(invalid("synthetic read_fraction must be in [0, 1]"));
                }
                if let Pattern::Zipf { exponent } = pattern {
                    if exponent.is_nan() || exponent <= 0.0 {
                        return Err(invalid("zipf exponent must be > 0"));
                    }
                }
                Ok(Box::new(Synthetic {
                    file_size,
                    record_size,
                    ops_per_process,
                    read_fraction,
                    pattern,
                    processes,
                    think_time: Dur::from_micros(think_time_us),
                    burst_len,
                    seed,
                }))
            }
            WorkloadSpec::Replay { path } => {
                let trace = bps_trace::format::load_path(Path::new(&path))
                    .map_err(|e| BuildError(format!("cannot load trace `{path}`: {e}")))?;
                Ok(Box::new(Replay::from_trace(&trace)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    fn specimens() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Iozone {
                mode: IozoneMode::SeqRead,
                file_size: 1 << 20,
                record_size: 4096,
                processes: 1,
                seed: 0,
            },
            WorkloadSpec::Ior {
                file_size: 1 << 20,
                transfer_size: 64 << 10,
                processes: 4,
                write: false,
            },
            WorkloadSpec::Hpio {
                region_count: 1000,
                region_size: 256,
                region_spacing: 8,
                regions_per_call: 256,
                processes: 4,
                collective: true,
            },
            WorkloadSpec::Synthetic {
                file_size: 1 << 20,
                record_size: 4096,
                ops_per_process: 100,
                read_fraction: 0.7,
                pattern: Pattern::Zipf { exponent: 1.1 },
                processes: 2,
                think_time_us: 50,
                burst_len: 10,
                seed: 42,
            },
        ]
    }

    #[test]
    fn json_round_trip_preserves_every_spec() {
        for spec in specimens() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "round-trip of {json}");
        }
    }

    #[test]
    fn external_tagging_shape() {
        let spec = WorkloadSpec::Iozone {
            mode: IozoneMode::BackwardRead,
            file_size: 100,
            record_size: 10,
            processes: 1,
            seed: 7,
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.starts_with("{\"Iozone\":{"), "{json}");
        assert!(json.contains("\"mode\":\"BackwardRead\""), "{json}");
    }

    #[test]
    fn build_matches_hand_constructed_generator() {
        let spec = WorkloadSpec::Iozone {
            mode: IozoneMode::SeqRead,
            file_size: 1000,
            record_size: 64,
            processes: 1,
            seed: 0,
        };
        let built = spec.build().unwrap();
        let hand = Iozone::seq_read(1000, 64);
        let a: Vec<_> = built.stream(0).collect();
        let b: Vec<_> = hand.stream(0).collect();
        assert_eq!(a, b);
        assert_eq!(built.required_bytes(), hand.required_bytes());
    }

    #[test]
    fn build_rejects_invalid_specs() {
        let bad = [
            WorkloadSpec::Iozone {
                mode: IozoneMode::SeqRead,
                file_size: 100,
                record_size: 0,
                processes: 1,
                seed: 0,
            },
            WorkloadSpec::Ior {
                file_size: 100,
                transfer_size: 64,
                processes: 0,
                write: false,
            },
            WorkloadSpec::Synthetic {
                file_size: 100,
                record_size: 10,
                ops_per_process: 1,
                read_fraction: 1.5,
                pattern: Pattern::Uniform,
                processes: 1,
                think_time_us: 0,
                burst_len: 0,
                seed: 0,
            },
            WorkloadSpec::Synthetic {
                file_size: 100,
                record_size: 10,
                ops_per_process: 1,
                read_fraction: 0.5,
                pattern: Pattern::Zipf { exponent: -1.0 },
                processes: 1,
                think_time_us: 0,
                burst_len: 0,
                seed: 0,
            },
        ];
        for spec in bad {
            assert!(spec.build().is_err(), "{spec:?} should be rejected");
        }
    }

    #[test]
    fn replay_build_reports_missing_file() {
        let spec = WorkloadSpec::Replay {
            path: "/nonexistent/trace.bpstrace".to_string(),
        };
        let err = match spec.build() {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected missing-file error"),
        };
        assert!(err.contains("/nonexistent/trace.bpstrace"), "{err}");
    }

    #[test]
    fn unknown_variant_is_a_clear_error() {
        let err = serde_json::from_str::<WorkloadSpec>("{\"Bonnie\":{}}")
            .unwrap_err()
            .to_string();
        assert!(err.contains("Bonnie"), "{err}");
    }

    #[test]
    fn unit_enum_still_round_trips() {
        // IozoneMode keeps the bare-string encoding.
        let v = IozoneMode::RandomRead.to_value();
        assert_eq!(serde_json::to_string(&v).unwrap(), "\"RandomRead\"");
        let back = IozoneMode::from_value(&v).unwrap();
        assert_eq!(back, IozoneMode::RandomRead);
    }
}
