//! # bps-bench — benchmark helpers
//!
//! The Criterion benches live in `benches/`:
//!
//! * `core_micro` — the §III.C overhead analysis: interval-union scaling
//!   (the paper's Figure 3 algorithm vs the sweep), metric computation,
//!   correlation, and the 32-byte binary codec.
//! * `figures` — one bench per paper table/figure, regenerating its data
//!   at test scale so regressions in any experiment's cost are caught.
//! * `ablations` — the design-choice studies DESIGN.md calls out: data
//!   sieving on/off, FIFO vs elevator scheduling, stripe-size sweep, page
//!   cache cold vs warm.
//!
//! This library hosts shared generators so the benches stay small.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use bps_core::interval::Interval;
use bps_core::record::{FileId, IoRecord, ProcessId};
use bps_core::time::Nanos;
use bps_core::trace::Trace;
use bps_sim::rng::SimRng;

/// `n` random, partially overlapping intervals for union benchmarks.
pub fn random_intervals(n: usize, seed: u64) -> Vec<Interval> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            t += rng.below(100_000);
            let len = 1_000 + rng.below(300_000);
            Interval::new(Nanos(t), Nanos(t + len))
        })
        .collect()
}

/// A lazy synthetic multi-process application record stream — one record
/// at a time, nothing materialized, so streaming observers can be fed
/// arbitrarily long streams in constant space.
///
/// Records come out the way the simulation engine emits them: in global
/// issue order (nondecreasing start times) with durations long relative
/// to the inter-issue gaps, so the intervals of concurrently running
/// processes overlap heavily — the arrival shape `OnlineUnion`'s fast
/// paths and the batch hull fusing are built for.
pub fn synthetic_records(n: usize, seed: u64) -> impl Iterator<Item = IoRecord> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut t = 0u64;
    (0..n).map(move |i| {
        let pid = (i % 4) as u32;
        // Mostly back-to-back issues; roughly one issue in a thousand
        // follows an idle gap longer than any single access, closing the
        // current busy period.
        t += if rng.below(1_000) == 0 {
            1_000_000 + rng.below(5_000_000)
        } else {
            rng.below(50_000)
        };
        let dur = 10_000 + rng.below(500_000);
        IoRecord::app_read(
            ProcessId(pid),
            FileId(0),
            i as u64 * 65536,
            4096 + rng.below(1 << 20),
            Nanos(t),
            Nanos(t + dur),
        )
    })
}

/// A synthetic multi-process application trace with `n` records (the
/// materialized form of [`synthetic_records`]).
pub fn random_trace(n: usize, seed: u64) -> Trace {
    let mut trace = Trace::new();
    for r in synthetic_records(n, seed) {
        trace.push(r);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_sizes() {
        assert_eq!(random_intervals(100, 1).len(), 100);
        let t = random_trace(200, 2);
        assert_eq!(t.len(), 200);
        assert!(t.records().iter().all(|r| r.end >= r.start));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_intervals(50, 3), random_intervals(50, 3));
        assert_eq!(random_trace(50, 4).records(), random_trace(50, 4).records());
    }
}
