//! Machine-readable performance snapshot (`BENCH_*.json`).
//!
//! Criterion gives statistically careful per-function numbers; this
//! exporter gives one small JSON document a CI job (or a reviewer) can
//! diff across PRs without parsing Criterion's output directory:
//!
//! * `streaming` — ns/record for per-record vs batched ingestion into
//!   [`StreamingMetrics`], and the batched-over-per-record speedup.
//! * `engine` — wakes/second through the discrete-event engine on a
//!   synthetic timer workload (pure scheduling, no I/O model).
//! * `reproduce_all` — wall seconds for an in-process equivalent of
//!   `reproduce all` at the chosen scale, run twice: the second pass is
//!   served by the cross-figure case memo, and the memo's lifetime
//!   hit/miss counters are included.
//! * `columnar` — the paper four metrics folded from a structure-of-arrays
//!   [`RecordBatch`]: vectorized `fold_columns` overrides vs the batched
//!   streaming path, plus `push_columns` ingestion ns/record.
//! * `cache` — the persistent case store across *processes*: the
//!   `reproduce` binary is spawned twice against a fresh cache directory,
//!   and the warm run must be faster and byte-identical.
//!
//! ```text
//! bench_export [--tiny|--quick] [--records <n>] [--out <path>]
//! ```
//!
//! Defaults: quick scale, 1,000,000 records, `BENCH_0009.json` in the
//! current directory.

use bps_bench::synthetic_records;
use bps_core::batch::RecordBatch;
use bps_core::metrics::{registry, Arpt, Bandwidth, Bps, Iops, Metric};
use bps_core::record::IoRecord;
use bps_core::sink::{RecordSink, StreamingMetrics};
use bps_core::time::Nanos;
use bps_core::trace::Trace;
use bps_experiments::figures::{
    extensions, faults, fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10,
    fig11, fig12, overhead, summary, tables, writes,
};
use bps_experiments::scale::Scale;
use bps_experiments::scenario::engine::memo_stats;
use bps_experiments::sweep::SweepExec;
use bps_sim::engine::{run_processes, Process, Wake, Waker};
use std::hint::black_box;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: bench_export [--tiny|--quick] [--records <n>] [--out <path>]");
    std::process::exit(2);
}

/// Best (minimum) wall seconds over `reps` runs of `f`.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Per-record ingestion: one dynamic sink call per record, the shape
/// producers had before batch emission (an abstraction crossing per
/// completed access).
fn stream_per_record(records: &[IoRecord]) -> StreamingMetrics {
    let mut m = StreamingMetrics::new();
    {
        let sink: &mut dyn RecordSink = &mut m;
        for r in records {
            sink.on_record(black_box(r));
        }
    }
    m
}

/// Batched ingestion in producer-sized chunks: the per-wake emission
/// path.
fn stream_batched(records: &[IoRecord]) -> StreamingMetrics {
    let mut m = StreamingMetrics::new();
    for chunk in records.chunks(256) {
        m.push_batch(black_box(chunk));
    }
    m
}

/// A process that wakes a fixed number of times at a fixed period —
/// engine throughput with zero per-wake work.
struct Ticker {
    left: u32,
    step: u64,
}

impl Process<()> for Ticker {
    fn wake(&mut self, now: Nanos, _env: &mut (), _waker: &mut Waker) -> Wake {
        if self.left == 0 {
            Wake::Done
        } else {
            self.left -= 1;
            Wake::At(Nanos(now.0 + self.step))
        }
    }
}

/// One full in-process `reproduce all` pass; every report is formatted
/// (not printed) and the total rendered length is returned so nothing is
/// optimized away.
fn reproduce_all_pass(scale: &Scale) -> usize {
    let mut total = 0usize;
    total += tables::table1().to_string().len();
    total += tables::table2().to_string().len();
    total += fig01::report().to_string().len();
    total += fig02::report().to_string().len();
    total += fig03::report().to_string().len();
    total += fig04::run(scale).to_string().len();
    total += fig05::run(scale).to_string().len();
    total += fig06::run(scale).to_string().len();
    total += fig07::run(scale).to_string().len();
    total += fig08::run(scale).to_string().len();
    total += fig09::run(scale).to_string().len();
    total += fig10::run(scale).to_string().len();
    total += fig11::run(scale).to_string().len();
    total += fig12::run(scale).to_string().len();
    total += summary::report(scale).to_string().len();
    total += extensions::report(scale).to_string().len();
    total += overhead::report().to_string().len();
    total += writes::report(scale).to_string().len();
    total += faults::render(&faults::run(scale)).len();
    total
}

fn main() {
    let mut scale_name = "quick";
    let mut records_n: usize = 1_000_000;
    let mut out = String::from("BENCH_0009.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tiny" => scale_name = "tiny",
            "--quick" => scale_name = "quick",
            "--records" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => records_n = n,
                _ => usage(),
            },
            "--out" => match args.next() {
                Some(p) => out = p,
                None => usage(),
            },
            _ => usage(),
        }
    }
    let scale = match scale_name {
        "tiny" => Scale::tiny(),
        _ => Scale::quick(),
    };
    let reps = if records_n >= 1_000_000 { 21 } else { 3 };

    eprintln!("bench_export: streaming ingestion ({records_n} records, best of {reps})...");
    let records: Vec<IoRecord> = synthetic_records(records_n, 11).collect();
    let mut checksum = 0u64;
    // Warm both code paths and fault the record pages in before timing;
    // reps alternate so transient machine noise hits both paths equally.
    checksum ^= stream_per_record(&records).len();
    checksum ^= stream_batched(&records).len();
    let mut per_record_s = f64::INFINITY;
    let mut batched_s = f64::INFINITY;
    for _ in 0..reps {
        per_record_s = per_record_s.min(best_of(1, || {
            checksum ^= stream_per_record(&records).len();
        }));
        batched_s = batched_s.min(best_of(1, || {
            checksum ^= stream_batched(&records).len();
        }));
    }
    let per_record_ns = per_record_s * 1e9 / records_n as f64;
    let batched_ns = batched_s * 1e9 / records_n as f64;
    let speedup = per_record_ns / batched_ns;
    // The pipeline streaming replaced outright: materialize the trace,
    // then compute each metric with its own pass (and sort).
    let materialize_s = best_of(reps.min(5), || {
        let mut trace = Trace::new();
        trace.extend(black_box(&records));
        let v = Bps.compute(&trace).unwrap_or(0.0)
            + Iops.compute(&trace).unwrap_or(0.0)
            + Bandwidth.compute(&trace).unwrap_or(0.0)
            + Arpt.compute(&trace).unwrap_or(0.0);
        checksum ^= v.to_bits();
    });
    let materialize_ns = materialize_s * 1e9 / records_n as f64;

    eprintln!("bench_export: columnar folds (paper four over a RecordBatch)...");
    // Build the SoA forms outside the timed region: one whole-stream
    // batch for the fold comparison, producer-sized chunks for ingestion.
    let big_batch: RecordBatch = records.iter().copied().collect();
    let chunk_batches: Vec<RecordBatch> = records
        .chunks(256)
        .map(|c| c.iter().copied().collect())
        .collect();
    let paper: Vec<_> = registry().paper().to_vec();
    // Batched streaming path, per metric: fold the stream with exactly
    // that metric's needs, then finish — what `fold_columns`'s default
    // delegation costs, minus the per-record dynamic dispatch.
    let fold_batched_s = best_of(reps.min(5), || {
        let mut sum = 0.0f64;
        for m in &paper {
            let mut acc = StreamingMetrics::with_needs(m.needs());
            for chunk in records.chunks(256) {
                acc.push_batch(black_box(chunk));
            }
            sum += m.finish(&acc).unwrap_or(0.0);
        }
        checksum ^= sum.to_bits();
    });
    // Columnar path: each metric reads only the columns it needs.
    let fold_columns_s = best_of(reps.min(5), || {
        let mut sum = 0.0f64;
        for m in &paper {
            sum += m.fold_columns(black_box(&big_batch)).unwrap_or(0.0);
        }
        checksum ^= sum.to_bits();
    });
    let fold_batched_ns = fold_batched_s * 1e9 / records_n as f64;
    let fold_columns_ns = fold_columns_s * 1e9 / records_n as f64;
    // SoA ingestion through the sink interface, against `batched_ns`.
    let push_columns_s = best_of(reps.min(5), || {
        let mut m = StreamingMetrics::new();
        for b in &chunk_batches {
            m.push_columns(black_box(b));
        }
        checksum ^= m.len();
    });
    let push_columns_ns = push_columns_s * 1e9 / records_n as f64;

    eprintln!("bench_export: engine wake throughput...");
    let procs_n = 64usize;
    let wakes_each = if records_n >= 1_000_000 {
        20_000u32
    } else {
        2_000
    };
    let mut wakes = 0u64;
    let engine_s = best_of(reps, || {
        let mut procs: Vec<Ticker> = (0..procs_n)
            .map(|i| Ticker {
                left: wakes_each,
                step: 1_000 + i as u64,
            })
            .collect();
        let outcome = run_processes(&mut procs, &mut ());
        wakes = outcome.wakes;
    });
    let wakes_per_sec = wakes as f64 / engine_s;

    eprintln!("bench_export: reproduce all --{scale_name}, cold then memo-warm...");
    let threads = SweepExec::from_env().threads();
    let t0 = Instant::now();
    checksum ^= reproduce_all_pass(&scale) as u64;
    let cold_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    checksum ^= reproduce_all_pass(&scale) as u64;
    let warm_s = t1.elapsed().as_secs_f64();
    let (memo_hits, memo_misses) = memo_stats();

    use serde_json::Value;
    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };

    eprintln!("bench_export: persistent cache, cross-process cold vs warm...");
    // Spawn the real `reproduce` binary (built next to this one) twice
    // against a fresh cache directory: the warm *process* must replay
    // every case from disk, faster and byte-identical. Every deterministic
    // target is run; `overhead` is excluded because it is itself a
    // wall-clock benchmark — its stdout carries timing rows that differ
    // every run and its cost is measurement, not cacheable simulation.
    const CACHE_TARGETS: [&str; 18] = [
        "table1",
        "table2",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "summary",
        "extensions",
        "writes",
        "faults",
    ];
    let reproduce_bin = std::env::current_exe().ok().and_then(|exe| {
        let bin = exe
            .parent()?
            .join(format!("reproduce{}", std::env::consts::EXE_SUFFIX));
        bin.exists().then_some(bin)
    });
    let mut cache_summary = String::from("cache: skipped (reproduce binary not built)");
    let cache = match &reproduce_bin {
        Some(bin) => {
            let dir = std::env::temp_dir().join(format!("bps-bench-cache-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let run = |label: &str| -> (f64, Vec<u8>) {
                let t = Instant::now();
                // The bench itself is often run under `BPS_CACHE=0` to keep
                // the in-process sections hermetic; the child must not
                // inherit that or the store never engages.
                let out = std::process::Command::new(bin)
                    .args(CACHE_TARGETS)
                    .arg(format!("--{scale_name}"))
                    .env_remove("BPS_CACHE")
                    .env("BPS_CACHE_DIR", &dir)
                    .output()
                    .expect("spawn reproduce");
                let s = t.elapsed().as_secs_f64();
                assert!(
                    out.status.success(),
                    "reproduce <deterministic targets> --{scale_name} ({label}) failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                (s, out.stdout)
            };
            let (cache_cold_s, cold_out) = run("cold");
            let (cache_warm_s, warm_out) = run("warm");
            let byte_identical = cold_out == warm_out;
            let entries = std::fs::read_dir(&dir)
                .map(|d| {
                    d.flatten()
                        .filter(|e| e.path().extension().is_some_and(|x| x == "case"))
                        .count()
                })
                .unwrap_or(0);
            std::fs::remove_dir_all(&dir).ok();
            let cache_speedup = cache_cold_s / cache_warm_s;
            cache_summary = format!(
                "cache {cache_cold_s:.2}s cold / {cache_warm_s:.2}s warm \
                 ({cache_speedup:.1}x, identical: {byte_identical})"
            );
            obj(vec![
                ("scale", Value::Str(scale_name.into())),
                ("cold_s", Value::Float(cache_cold_s)),
                ("warm_s", Value::Float(cache_warm_s)),
                ("speedup", Value::Float(cache_speedup)),
                ("byte_identical", Value::Bool(byte_identical)),
                ("entries", Value::UInt(entries as u64)),
            ])
        }
        None => obj(vec![(
            "error",
            Value::Str("reproduce binary not found next to bench_export".into()),
        )]),
    };
    let doc = obj(vec![
        ("bench", Value::Str("BENCH_0009".into())),
        (
            "unit_note",
            Value::Str(
                "ns_per_record lower is better; speedup and wakes_per_sec higher is better".into(),
            ),
        ),
        (
            "streaming",
            obj(vec![
                ("records", Value::UInt(records_n as u64)),
                ("per_record_ns", Value::Float(per_record_ns)),
                ("batched_ns", Value::Float(batched_ns)),
                ("batched_speedup", Value::Float(speedup)),
                ("materialize_ns", Value::Float(materialize_ns)),
                (
                    "batched_vs_materialize",
                    Value::Float(materialize_ns / batched_ns),
                ),
            ]),
        ),
        (
            "columnar",
            obj(vec![
                ("records", Value::UInt(records_n as u64)),
                ("paper_four_batched_ns", Value::Float(fold_batched_ns)),
                ("paper_four_fold_columns_ns", Value::Float(fold_columns_ns)),
                (
                    "fold_columns_speedup",
                    Value::Float(fold_batched_ns / fold_columns_ns),
                ),
                ("push_columns_ns", Value::Float(push_columns_ns)),
                (
                    "push_columns_vs_batched",
                    Value::Float(batched_ns / push_columns_ns),
                ),
            ]),
        ),
        (
            "engine",
            obj(vec![
                ("processes", Value::UInt(procs_n as u64)),
                ("wakes", Value::UInt(wakes)),
                ("wakes_per_sec", Value::Float(wakes_per_sec)),
            ]),
        ),
        (
            "reproduce_all",
            obj(vec![
                ("scale", Value::Str(scale_name.into())),
                ("threads", Value::UInt(threads as u64)),
                ("cold_s", Value::Float(cold_s)),
                ("memo_warm_s", Value::Float(warm_s)),
                ("memo_hits", Value::UInt(memo_hits)),
                ("memo_misses", Value::UInt(memo_misses)),
            ]),
        ),
        ("cache", cache),
    ]);
    let mut body = serde_json::to_string_pretty(&doc).expect("render bench JSON");
    body.push('\n');
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    black_box(checksum);
    eprintln!(
        "wrote {out}: streaming {per_record_ns:.1} -> {batched_ns:.1} ns/record ({speedup:.2}x), \
         folds {fold_batched_ns:.1} -> {fold_columns_ns:.1} ns/record, \
         {wakes_per_sec:.0} wakes/s, reproduce {cold_s:.2}s cold / {warm_s:.2}s warm, \
         {cache_summary}"
    );
}
