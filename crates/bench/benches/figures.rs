//! One bench per paper table/figure: each regenerates its experiment's
//! data at test scale, so `cargo bench -p bps-bench` both re-derives every
//! result and tracks the cost of doing so.

use bps_experiments::figures::{
    fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, summary,
    tables,
};
use bps_experiments::scale::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables_and_concept_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables_and_concepts");
    g.bench_function("table1", |b| b.iter(|| black_box(tables::table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(tables::table2())));
    g.bench_function("fig01_two_request_cases", |b| {
        b.iter(|| black_box(fig01::report()))
    });
    g.bench_function("fig02_overlapped_time", |b| {
        b.iter(|| black_box(fig02::report()))
    });
    g.bench_function("fig03_algorithm", |b| b.iter(|| black_box(fig03::report())));
    g.finish();
}

fn bench_experiment_figures(c: &mut Criterion) {
    let scale = Scale::tiny();
    let mut g = c.benchmark_group("figures_tiny_scale");
    g.sample_size(10);
    g.bench_function("fig04_devices", |b| {
        b.iter(|| black_box(fig04::run(&scale)))
    });
    g.bench_function("fig05_sizes_hdd", |b| {
        b.iter(|| black_box(fig05::run(&scale)))
    });
    g.bench_function("fig06_sizes_ssd", |b| {
        b.iter(|| black_box(fig06::run(&scale)))
    });
    g.bench_function("fig07_iops_detail", |b| {
        b.iter(|| black_box(fig07::run(&scale)))
    });
    g.bench_function("fig08_arpt_detail", |b| {
        b.iter(|| black_box(fig08::run(&scale)))
    });
    g.bench_function("fig09_concurrency_pure", |b| {
        b.iter(|| black_box(fig09::run(&scale)))
    });
    g.bench_function("fig10_arpt_concurrency", |b| {
        b.iter(|| black_box(fig10::run(&scale)))
    });
    g.bench_function("fig11_ior", |b| b.iter(|| black_box(fig11::run(&scale))));
    g.bench_function("fig12_sieving", |b| {
        b.iter(|| black_box(fig12::run(&scale)))
    });
    g.finish();

    let mut g = c.benchmark_group("summary");
    g.sample_size(10);
    g.bench_function("summary_all_sets", |b| {
        b.iter(|| black_box(summary::report(&scale)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables_and_concept_figures,
    bench_experiment_figures
);
criterion_main!(benches);
