//! Ablation studies for the design choices DESIGN.md calls out: each
//! bench compares a configuration pair on the same workload so the effect
//! of the mechanism is the measured quantity's ratio.

use bps_core::record::{FileId, IoOp};
use bps_core::time::{Dur, Nanos};
use bps_experiments::runner::{run_case, CaseSpec, LayoutPolicy, Storage};
use bps_fs::cluster::{Cluster, ClusterConfig, DeviceSpec};
use bps_middleware::sieving::SievingConfig;
use bps_sim::cache::PageCache;
use bps_sim::device::hdd::Hdd;
use bps_sim::device::hdd::HddProfile;
use bps_sim::device::{Device, DeviceReq, DiskSched};
use bps_sim::rng::{Jitter, SimRng};
use bps_workloads::hpio::Hpio;
use bps_workloads::iozone::Iozone;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Data sieving on vs off across region spacings: where does the crossover
/// sit?
fn sieving_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sieving_ablation");
    g.sample_size(10);
    for &spacing in &[8u64, 1024, 4096] {
        for (name, cfg) in [
            ("on", SievingConfig::romio_default()),
            ("off", SievingConfig::disabled()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, spacing),
                &(spacing, cfg),
                |b, &(spacing, cfg)| {
                    b.iter(|| {
                        let w = Hpio::paper_shape(512, spacing, 2);
                        let mut spec = CaseSpec::new(Storage::Pvfs { servers: 2 }, &w);
                        spec.layout = LayoutPolicy::DefaultStripe;
                        spec.clients = 2;
                        spec.sieving = cfg;
                        black_box(run_case(&spec, 1).execution_time())
                    })
                },
            );
        }
    }
    g.finish();
}

/// FIFO vs elevator disk scheduling under random concurrent access: the
/// elevator approximation should cut the simulated service time.
fn disk_sched_ablation(c: &mut Criterion) {
    let run = |sched: DiskSched| {
        let mut dev = Device::new(
            Box::new(Hdd::new(HddProfile::sata_7200_250gb())),
            sched,
            Jitter::NONE,
            SimRng::seed_from_u64(5),
        );
        let mut rng = SimRng::seed_from_u64(9);
        let mut done = Nanos::ZERO;
        // 512 random 64 KB requests arriving in a burst: deep queue.
        for _ in 0..512 {
            let lba = rng.below(400_000_000);
            let g = dev.submit(
                Nanos::ZERO,
                DeviceReq {
                    lba,
                    blocks: 128,
                    op: IoOp::Read,
                },
            );
            done = done.max(g.end);
        }
        done
    };
    let mut g = c.benchmark_group("disk_sched_ablation");
    g.bench_function("fifo", |b| b.iter(|| black_box(run(DiskSched::Fifo))));
    g.bench_function("elevator", |b| {
        b.iter(|| black_box(run(DiskSched::Elevator)))
    });
    // Sanity once per run: the elevator must win on simulated time.
    assert!(run(DiskSched::Elevator) < run(DiskSched::Fifo));
    g.finish();
}

/// Stripe-size sweep for a striped sequential read: smaller stripes spread
/// one request over more servers but cost more per-chunk overhead.
fn stripe_ablation(c: &mut Criterion) {
    use bps_fs::layout::StripeLayout;
    use bps_fs::pfs::ParallelFs;
    use bps_middleware::process::run_workload;
    use bps_middleware::stack::{FsBackend, IoStack};
    use bps_workloads::spec::Workload;

    let mut g = c.benchmark_group("stripe_ablation");
    g.sample_size(10);
    for &stripe in &[16u64 << 10, 64 << 10, 256 << 10, 1 << 20] {
        g.bench_with_input(
            BenchmarkId::from_parameter(stripe >> 10),
            &stripe,
            |b, &stripe| {
                b.iter(|| {
                    let w = Iozone::seq_read(16 << 20, 1 << 20);
                    let cluster = Cluster::new(&ClusterConfig {
                        servers: 4,
                        clients: 1,
                        device: DeviceSpec::Hdd(HddProfile::sata_7200_250gb()),
                        sched: DiskSched::Fifo,
                        server_cpu: Dur::from_micros(25),
                        jitter: Jitter::NONE,
                        seed: 1,
                        record_device_layer: false,
                        record_net_layer: false,
                        fault: bps_sim::fault::FaultPlan::none(),
                    });
                    let mut pfs = ParallelFs::new(4);
                    let files: Vec<FileId> = w
                        .file_sizes()
                        .iter()
                        .map(|&s| pfs.create(s, StripeLayout::new(stripe, vec![0, 1, 2, 3])))
                        .collect();
                    let stack = IoStack::new(cluster, FsBackend::Parallel(pfs));
                    let (trace, _) = run_workload(stack, &w, &files, Dur::from_micros(5));
                    black_box(trace.execution_time())
                })
            },
        );
    }
    g.finish();
}

/// Page cache cold vs warm: why the paper flushed caches before every run.
fn cache_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_ablation");
    g.bench_function("cold_rereads", |b| {
        b.iter(|| {
            let mut cache = PageCache::new(64 << 20);
            let mut misses = 0;
            for pass in 0..4 {
                cache.flush(); // the paper's protocol
                let l = cache.access(0, 0, 16 << 20);
                misses += l.misses;
                let _ = pass;
            }
            black_box(misses)
        })
    });
    g.bench_function("warm_rereads", |b| {
        b.iter(|| {
            let mut cache = PageCache::new(64 << 20);
            let mut misses = 0;
            for _pass in 0..4 {
                let l = cache.access(0, 0, 16 << 20);
                misses += l.misses;
            }
            black_box(misses)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    sieving_ablation,
    disk_sched_ablation,
    stripe_ablation,
    cache_ablation
);
criterion_main!(benches);
