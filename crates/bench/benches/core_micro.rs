//! Microbenchmarks for the measurement machinery itself — the executable
//! form of the paper's §III.C overhead analysis ("the complexity of the
//! algorithm is O(nlog2n) ... the computing overhead of this algorithm is
//! very affordable").

use bps_bench::{random_intervals, random_trace};
use bps_core::correlation::pearson;
use bps_core::interval::{paper_union_time, union_time};
use bps_core::metrics::{Arpt, Bandwidth, Bps, Iops, Metric};
use bps_core::report::MetricsSummary;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Interval-union scaling: the paper's Figure 3 algorithm vs the sweep, at
/// 1k / 10k / 100k records (the paper's overhead example is 65 535 ops).
fn bench_interval_union(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_union");
    for &n in &[1_000usize, 10_000, 100_000] {
        let ivs = random_intervals(n, 42);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("paper_fig3", n), &ivs, |b, ivs| {
            b.iter(|| paper_union_time(black_box(ivs)))
        });
        g.bench_with_input(BenchmarkId::new("sweep", n), &ivs, |b, ivs| {
            b.iter(|| union_time(black_box(ivs.iter().copied())))
        });
    }
    g.finish();
}

/// The four paper metrics over a 10k-record trace.
fn bench_metrics(c: &mut Criterion) {
    let trace = random_trace(10_000, 7);
    let mut g = c.benchmark_group("metrics_10k_records");
    g.bench_function("bps", |b| b.iter(|| Bps.compute(black_box(&trace))));
    g.bench_function("iops", |b| b.iter(|| Iops.compute(black_box(&trace))));
    g.bench_function("bandwidth", |b| {
        b.iter(|| Bandwidth.compute(black_box(&trace)))
    });
    g.bench_function("arpt", |b| b.iter(|| Arpt.compute(black_box(&trace))));
    g.bench_function("full_summary", |b| {
        b.iter(|| MetricsSummary::from_trace(black_box(&trace)))
    });
    g.finish();
}

/// Correlation over typical figure-sized series.
fn bench_correlation(c: &mut Criterion) {
    let x: Vec<f64> = (0..64).map(|i| (i as f64).sin() * 100.0).collect();
    let y: Vec<f64> = (0..64).map(|i| (i as f64).cos() * 50.0 + 3.0).collect();
    c.bench_function("pearson_64", |b| {
        b.iter(|| pearson(black_box(&x), black_box(&y)))
    });
}

/// The 32-byte binary trace codec (the paper's storage overhead claim).
fn bench_binary_codec(c: &mut Criterion) {
    let trace = random_trace(65_535, 3); // the paper's example op count
    let encoded = bps_trace::format::to_binary(&trace);
    let mut g = c.benchmark_group("binary_codec_65535_records");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| bps_trace::format::to_binary(black_box(&trace)))
    });
    g.bench_function("decode", |b| {
        b.iter(|| bps_trace::format::from_binary(black_box(&encoded)).unwrap())
    });
    g.finish();
}

/// Raw engine throughput: wakes per second through the event heap.
fn bench_engine(c: &mut Criterion) {
    use bps_core::time::{Dur, Nanos};
    use bps_sim::engine::{run_processes, Process, Wake, Waker};
    struct Spin {
        left: u32,
        period: Dur,
    }
    impl Process<()> for Spin {
        fn wake(&mut self, now: Nanos, _env: &mut (), _waker: &mut Waker) -> Wake {
            if self.left == 0 {
                Wake::Done
            } else {
                self.left -= 1;
                Wake::At(now + self.period)
            }
        }
    }
    c.bench_function("engine_100k_wakes", |b| {
        b.iter(|| {
            let mut procs: Vec<Spin> = (0..16)
                .map(|i| Spin {
                    left: 100_000 / 16,
                    period: Dur(1_000 + i * 7),
                })
                .collect();
            run_processes(black_box(&mut procs), &mut ())
        })
    });
}

criterion_group!(
    benches,
    bench_interval_union,
    bench_metrics,
    bench_correlation,
    bench_binary_codec,
    bench_engine
);
criterion_main!(benches);
