//! Streaming-pipeline throughput: folding a synthetic million-record
//! stream into constant-size accumulators, against the materialize-then-
//! compute baseline it replaces. The streaming path never holds more than
//! one record (plus the O(busy periods) interval union), which is what
//! lets the paper's "overlapped with data accesses" claim hold at scale.

use bps_bench::{random_trace, synthetic_records};
use bps_core::metrics::{Arpt, Bandwidth, Bps, Iops, Metric};
use bps_core::sink::{RecordSink, StreamingMetrics};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Stream length: past the paper's 65 535-op example by 15x.
const N: usize = 1_000_000;

fn bench_streaming_fold(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_1m_records");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N as u64));
    // Generate + fold, no trace ever materialized.
    g.bench_function("fold_stream", |b| {
        b.iter(|| {
            let mut m = StreamingMetrics::new();
            for r in synthetic_records(N, 11) {
                m.on_record(black_box(&r));
            }
            (m.bps(), m.iops(), m.bandwidth(), m.arpt())
        })
    });
    // Same stream, ingested in producer-sized batches: the per-wake
    // emission path. Records are pre-materialized so the measurement is
    // pure ingestion, comparable against `fold_stream` minus generation.
    let records: Vec<_> = synthetic_records(N, 11).collect();
    g.bench_function("fold_stream_batched", |b| {
        b.iter(|| {
            let mut m = StreamingMetrics::new();
            for chunk in black_box(&records).chunks(256) {
                m.push_batch(chunk);
            }
            (m.bps(), m.iops(), m.bandwidth(), m.arpt())
        })
    });
    // Generate + materialize + compute: the pre-streaming pipeline.
    g.bench_function("materialize_then_compute", |b| {
        b.iter(|| {
            let trace = random_trace(N, 11);
            (
                Bps.compute(black_box(&trace)),
                Iops.compute(&trace),
                Bandwidth.compute(&trace),
                Arpt.compute(&trace),
            )
        })
    });
    g.finish();
}

/// The online union alone, on the same arrival pattern.
fn bench_online_union(c: &mut Criterion) {
    use bps_core::interval::{union_time, OnlineUnion};
    let mut g = c.benchmark_group("online_union_1m");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("online_insert", |b| {
        b.iter(|| {
            let mut u = OnlineUnion::new();
            for r in synthetic_records(N, 13) {
                u.insert(black_box(r.interval()));
            }
            u.total()
        })
    });
    g.bench_function("collect_then_sweep", |b| {
        b.iter(|| union_time(synthetic_records(N, 13).map(|r| r.interval())))
    });
    g.finish();
}

criterion_group!(benches, bench_streaming_fold, bench_online_union);
criterion_main!(benches);
