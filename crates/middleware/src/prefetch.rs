//! Sequential read-ahead.
//!
//! "Data prefetching may also prefetch data more than required" (paper §I).
//! The model: when a reader is detected to be sequential, each file-system
//! fetch is extended by a read-ahead window; subsequent reads that land
//! inside the prefetched range are served from memory. The file system
//! moves more bytes than the application required *so far* — another source
//! of the bandwidth-vs-BPS divergence of Figure 1(b).

use bps_core::extent::Extent;
use serde::{Deserialize, Serialize};

/// Read-ahead configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Extra bytes fetched beyond each sequential read.
    pub window: u64,
}

impl PrefetchConfig {
    /// A Linux-readahead-like 128 KB window.
    pub fn readahead_128k() -> Self {
        PrefetchConfig { window: 128 << 10 }
    }
}

/// What the middleware should do for one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefetchDecision {
    /// Entirely served from previously prefetched data.
    Hit,
    /// Fetch this extent from the file system (includes the read-ahead).
    Fetch(Extent),
}

/// Per-(process, file) read-ahead state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchState {
    /// The offset one past the last byte the application read.
    next_expected: u64,
    /// The end of data already staged in memory.
    prefetched_end: u64,
    /// Whether the previous read was sequential (arms the read-ahead).
    sequential: bool,
}

impl PrefetchState {
    /// Fresh state: nothing staged.
    pub fn new() -> Self {
        PrefetchState::default()
    }

    /// Decide how to serve a read of `extent` from a file of `file_size`
    /// bytes, and update the state.
    pub fn on_read(
        &mut self,
        extent: Extent,
        cfg: &PrefetchConfig,
        file_size: u64,
    ) -> PrefetchDecision {
        let sequential = extent.offset == self.next_expected;
        self.next_expected = extent.end();
        if sequential && extent.end() <= self.prefetched_end {
            self.sequential = true;
            return PrefetchDecision::Hit;
        }
        // Fetch; extend by the window only once the stream looks sequential.
        let ahead = if sequential && self.sequential {
            cfg.window
        } else {
            0
        };
        self.sequential = sequential;
        let start = extent.offset.min(file_size);
        let end = (extent.end() + ahead).min(file_size).max(start);
        self.prefetched_end = end;
        PrefetchDecision::Fetch(Extent::new(start, end - start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: PrefetchConfig = PrefetchConfig { window: 1000 };

    #[test]
    fn first_two_reads_fetch_then_readahead_arms() {
        let mut st = PrefetchState::new();
        // First read: not yet trusted as sequential — fetch exactly.
        let d = st.on_read(Extent::new(0, 100), &CFG, 1 << 20);
        assert_eq!(d, PrefetchDecision::Fetch(Extent::new(0, 100)));
        // Second sequential read: read-ahead kicks in.
        let d = st.on_read(Extent::new(100, 100), &CFG, 1 << 20);
        assert_eq!(d, PrefetchDecision::Fetch(Extent::new(100, 1100)));
        // Staged through 1200: reads 200..1200 are all hits.
        for k in 0..10 {
            let d = st.on_read(Extent::new(200 + k * 100, 100), &CFG, 1 << 20);
            assert_eq!(d, PrefetchDecision::Hit, "read {k}");
        }
        // Past the staged range: fetch again with read-ahead.
        let d = st.on_read(Extent::new(1200, 100), &CFG, 1 << 20);
        assert_eq!(d, PrefetchDecision::Fetch(Extent::new(1200, 1100)));
    }

    #[test]
    fn random_read_disarms() {
        let mut st = PrefetchState::new();
        st.on_read(Extent::new(0, 100), &CFG, 1 << 20);
        st.on_read(Extent::new(100, 100), &CFG, 1 << 20);
        // Jump: plain fetch, no read-ahead.
        let d = st.on_read(Extent::new(50_000, 100), &CFG, 1 << 20);
        assert_eq!(d, PrefetchDecision::Fetch(Extent::new(50_000, 100)));
    }

    #[test]
    fn readahead_clamped_at_eof() {
        let mut st = PrefetchState::new();
        st.on_read(Extent::new(0, 100), &CFG, 250);
        let d = st.on_read(Extent::new(100, 100), &CFG, 250);
        assert_eq!(d, PrefetchDecision::Fetch(Extent::new(100, 150)));
    }

    #[test]
    fn hit_requires_full_containment() {
        let mut st = PrefetchState::new();
        st.on_read(Extent::new(0, 100), &CFG, 1 << 20);
        st.on_read(Extent::new(100, 100), &CFG, 1 << 20); // staged to 1200
                                                          // A read ending exactly at the staged edge is a hit...
        assert_eq!(
            st.on_read(Extent::new(200, 1000), &CFG, 1 << 20),
            PrefetchDecision::Hit
        );
        // ...but one byte past is a fetch.
        let d = st.on_read(Extent::new(1200, 1), &CFG, 1 << 20);
        assert!(matches!(d, PrefetchDecision::Fetch(_)));
    }
}
