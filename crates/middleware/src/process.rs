//! Simulated application processes and the workload runner.
//!
//! An [`AppProcess`] drives one workload op stream through the
//! [`IoStack`] under the `bps-sim` engine: it issues its next operation at
//! each wake, sleeps until the operation completes (plus a per-op CPU
//! cost), and finishes when the stream is exhausted. Concurrency across
//! processes — the paper's Set 3 — emerges from the engine interleaving
//! wakes in global time order.

use crate::stack::IoStack;
use bps_core::extent::Extent;
use bps_core::record::{FileId, ProcessId};
use bps_core::sink::RecordSink;
use bps_core::time::{Dur, Nanos};
use bps_sim::engine::{run_processes, Process, RunOutcome, Wake, Waker};
use bps_workloads::spec::{AppOp, OpStream, Workload};
use std::collections::VecDeque;

/// An in-flight noncontiguous call being executed one covering read per
/// wake, so one process never advances shared resources more than one
/// file-system request into the future.
struct PendingNoncontig {
    file: FileId,
    fs_reads: VecDeque<Extent>,
    required: u64,
    moved: u64,
    sieved: bool,
    first_offset: u64,
    started: Nanos,
}

/// One simulated application process.
pub struct AppProcess {
    /// Trace process id.
    pub pid: ProcessId,
    /// Client node this process runs on.
    pub client: usize,
    /// Workload file index → simulated file id.
    pub files: Vec<FileId>,
    /// Remaining operations.
    ops: OpStream,
    /// CPU cost charged between operations (request preparation, user
    /// computation on the data).
    pub cpu_per_op: Dur,
    /// This process's index in the engine's process vector (used to park
    /// and release peers at collective barriers).
    pub engine_idx: usize,
    start: Nanos,
    pending: Option<PendingNoncontig>,
}

impl AppProcess {
    /// Build a process starting at time zero.
    pub fn new(pid: ProcessId, client: usize, files: Vec<FileId>, ops: OpStream) -> Self {
        AppProcess {
            pid,
            client,
            files,
            ops,
            cpu_per_op: Dur::from_micros(5),
            engine_idx: pid.0 as usize,
            start: Nanos::ZERO,
            pending: None,
        }
    }

    /// Advance an in-flight noncontiguous call: issue its next covering
    /// read, or finish it and record the application-level call. If a
    /// covering read exhausts its retries, the whole call is abandoned —
    /// its failed attempts are already in the record stream as
    /// `Layer::Retry` — and the process moves on at the failure instant.
    fn step_noncontig<S: RecordSink>(&mut self, now: Nanos, stack: &mut IoStack<S>) -> Wake {
        // Invariant: callers enter only while a call is in flight.
        let pending = self.pending.as_mut().expect("no noncontig call in flight");
        match pending.fs_reads.pop_front() {
            Some(extent) => {
                let file = pending.file;
                match stack.fs_read_raw(self.pid, self.client, file, extent, now) {
                    Ok(done) => Wake::At(done),
                    Err(e) => {
                        let at = e.fail_time().unwrap_or(now);
                        self.pending = None;
                        stack.abandoned_ops += 1;
                        Wake::At(at + self.cpu_per_op)
                    }
                }
            }
            None => {
                let pending = self.pending.take().expect("pending call");
                // Copying the requested pieces out of the sieve buffers.
                let end = if pending.sieved {
                    now + Dur::from_secs_f64(pending.moved as f64 / stack.memcpy_rate as f64)
                } else {
                    now
                };
                stack.record_app_read(
                    self.pid,
                    pending.file,
                    pending.first_offset,
                    pending.required,
                    pending.started,
                    end,
                );
                Wake::At(end + self.cpu_per_op)
            }
        }
    }

    /// Override the per-op CPU cost.
    pub fn with_cpu_per_op(mut self, cpu: Dur) -> Self {
        self.cpu_per_op = cpu;
        self
    }

    /// One wake's worth of work; the public [`Process::wake`] wraps this in
    /// a batch scope so every record the wake completes reaches the sink as
    /// one [`RecordSink::push_batch`] call.
    fn dispatch<S: RecordSink>(
        &mut self,
        now: Nanos,
        stack: &mut IoStack<S>,
        waker: &mut Waker,
    ) -> Wake {
        if self.pending.is_some() {
            return self.step_noncontig(now, stack);
        }
        match self.ops.next() {
            None => Wake::Done,
            Some(AppOp::Compute { dur }) => Wake::At(now + dur),
            Some(AppOp::Read { file, extent }) => {
                // An exhausted request is abandoned: its attempts are in
                // the record stream as `Layer::Retry`, and the process
                // moves on at the instant the failure was detected.
                let done = match stack.read(self.pid, self.client, self.files[file], extent, now) {
                    Ok(t) => t,
                    Err(e) => e.fail_time().unwrap_or(now),
                };
                Wake::At(done + self.cpu_per_op)
            }
            Some(AppOp::Write { file, extent }) => {
                let done = match stack.write(self.pid, self.client, self.files[file], extent, now) {
                    Ok(t) => t,
                    Err(e) => e.fail_time().unwrap_or(now),
                };
                Wake::At(done + self.cpu_per_op)
            }
            Some(AppOp::ReadNoncontig { file, regions }) => {
                let plan = stack.plan_noncontig(&regions);
                self.pending = Some(PendingNoncontig {
                    file: self.files[file],
                    fs_reads: plan.fs_reads.into_iter().collect(),
                    required: plan.required,
                    moved: plan.moved,
                    sieved: plan.sieved,
                    first_offset: regions.first().map(|r| r.offset).unwrap_or(0),
                    started: now,
                });
                self.step_noncontig(now, stack)
            }
            Some(AppOp::CollectiveReadNoncontig { file, regions }) => {
                use crate::collective_exec::{CollectiveArrival, CollectiveOutcome};
                let outcome = stack.collective_arrive(
                    CollectiveArrival {
                        engine_idx: self.engine_idx,
                        pid: self.pid,
                        client: self.client,
                        regions,
                        at: now,
                    },
                    self.files[file],
                );
                match outcome {
                    CollectiveOutcome::Wait => Wake::Park,
                    CollectiveOutcome::Complete(finishes) => {
                        let mut own = now;
                        for (idx, t) in finishes {
                            if idx == self.engine_idx {
                                own = t;
                            } else {
                                waker.wake_at(idx, t + self.cpu_per_op);
                            }
                        }
                        Wake::At(own + self.cpu_per_op)
                    }
                }
            }
        }
    }

    /// Override the start time (staggered arrivals).
    pub fn starting_at(mut self, start: Nanos) -> Self {
        self.start = start;
        self
    }
}

impl<S: RecordSink> Process<IoStack<S>> for AppProcess {
    fn start_time(&self) -> Nanos {
        self.start
    }

    fn wake(&mut self, now: Nanos, stack: &mut IoStack<S>, waker: &mut Waker) -> Wake {
        // Per-wake batching: everything this wake completes — covering
        // reads, retries, device records, the application record — is
        // delivered to the sink as one batch when the scope closes.
        stack.cluster.begin_batch();
        let wake = self.dispatch(now, stack, waker);
        stack.cluster.end_batch();
        wake
    }
}

/// Run a whole workload against a stack: one [`AppProcess`] per workload
/// process (client nodes assigned round-robin), engine until completion.
/// Returns the finished record sink — with the application execution time
/// set to the run's makespan, as the paper measures it — and the engine
/// outcome. With the default [`bps_core::trace::Trace`] sink this is the
/// collected trace; a streaming sink yields ready-made metrics instead.
pub fn run_workload<S: RecordSink + Default>(
    mut stack: IoStack<S>,
    workload: &dyn Workload,
    file_map: &[FileId],
    cpu_per_op: Dur,
) -> (S, RunOutcome) {
    let clients = stack.cluster.client_count();
    // Collective calls gather the whole workload group.
    stack.collective.group_size = workload.processes();
    let mut procs: Vec<AppProcess> = (0..workload.processes())
        .map(|p| {
            AppProcess::new(
                ProcessId(p as u32),
                p % clients,
                file_map.to_vec(),
                workload.stream(p),
            )
            .with_cpu_per_op(cpu_per_op)
        })
        .collect();
    let outcome = run_processes(&mut procs, &mut stack);
    let sink = stack.finish(outcome.makespan());
    (sink, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::FsBackend;
    use bps_core::record::Layer;
    use bps_fs::cluster::{Cluster, ClusterConfig, DeviceSpec};
    use bps_fs::layout::StripeLayout;
    use bps_fs::pfs::ParallelFs;
    use bps_sim::device::DiskSched;
    use bps_sim::rng::Jitter;
    use bps_workloads::iozone::Iozone;

    fn ram_cluster(servers: usize, clients: usize) -> Cluster {
        Cluster::new(&ClusterConfig {
            servers,
            clients,
            device: DeviceSpec::Ram {
                fixed: Dur::from_micros(100),
                rate: 100_000_000,
                capacity: 1 << 40,
            },
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::NONE,
            seed: 11,
            record_device_layer: false,
            record_net_layer: false,
            fault: bps_sim::fault::FaultPlan::none(),
        })
    }

    fn pfs_stack_with_files(
        servers: usize,
        clients: usize,
        workload: &dyn Workload,
        layout_for: impl Fn(usize) -> StripeLayout,
    ) -> (IoStack, Vec<FileId>) {
        let cluster = ram_cluster(servers, clients);
        let mut pfs = ParallelFs::new(servers);
        let files: Vec<FileId> = workload
            .file_sizes()
            .iter()
            .enumerate()
            .map(|(i, &size)| pfs.create(size, layout_for(i)))
            .collect();
        (IoStack::new(cluster, FsBackend::Parallel(pfs)), files)
    }

    #[test]
    fn single_process_sequential_run() {
        let w = Iozone::seq_read(4 << 20, 64 << 10);
        let (stack, files) = pfs_stack_with_files(2, 1, &w, |_| StripeLayout::default_over(2));
        let (trace, outcome) = run_workload(stack, &w, &files, Dur::from_micros(5));
        assert_eq!(trace.op_count(Layer::Application), 64);
        assert_eq!(trace.bytes(Layer::Application), 4 << 20);
        assert!(outcome.makespan() > Dur::ZERO);
        assert_eq!(trace.execution_time(), outcome.makespan());
        // Sequential process: app I/O intervals never overlap.
        let prof = trace.concurrency(Layer::Application);
        assert_eq!(prof.max_depth, 1);
    }

    #[test]
    fn throughput_mode_runs_concurrently() {
        // 4 processes, each with its own file pinned to its own server.
        let w = Iozone::throughput_read(4, 1 << 20, 64 << 10);
        let (stack, files) = pfs_stack_with_files(4, 4, &w, StripeLayout::pinned);
        let (trace, _) = run_workload(stack, &w, &files, Dur::from_micros(5));
        let prof = trace.concurrency(Layer::Application);
        assert!(prof.max_depth >= 3, "depth {}", prof.max_depth);
        // All four processes appear in the trace.
        assert_eq!(trace.pids(Layer::Application).len(), 4);
    }

    #[test]
    fn concurrency_shortens_makespan() {
        let total = 16 << 20;
        let run = |n: usize| {
            let w = Iozone::throughput_read(n, total / n as u64, 64 << 10);
            let (stack, files) = pfs_stack_with_files(n, n, &w, StripeLayout::pinned);
            let (_, outcome) = run_workload(stack, &w, &files, Dur::from_micros(5));
            outcome.makespan().as_secs_f64()
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(t4 < t1 * 0.55, "t1 {t1} t4 {t4}");
    }

    #[test]
    fn deterministic_runs() {
        let build = || {
            let w = Iozone::throughput_read(2, 1 << 20, 64 << 10);
            let (stack, files) = pfs_stack_with_files(2, 2, &w, StripeLayout::pinned);
            run_workload(stack, &w, &files, Dur::from_micros(5))
        };
        let (ta, oa) = build();
        let (tb, ob) = build();
        assert_eq!(oa.ended_at, ob.ended_at);
        assert_eq!(ta.records(), tb.records());
    }

    #[test]
    fn staggered_start() {
        let w = Iozone::seq_read(1 << 20, 1 << 20);
        let (mut stack, files) = pfs_stack_with_files(1, 1, &w, |_| StripeLayout::pinned(0));
        let mut procs = vec![AppProcess::new(ProcessId(0), 0, files, w.stream(0))
            .starting_at(Nanos::from_millis(100))];
        let outcome = run_processes(&mut procs, &mut stack);
        assert_eq!(outcome.started_at, Nanos::from_millis(100));
        assert!(outcome.ended_at > Nanos::from_millis(100));
    }
}
