//! ROMIO-style data sieving.
//!
//! "Data sieving, a widely used optimization for small, noncontiguous I/O
//! accesses, will access some extra data regions (holes) required by the
//! applications" (paper §I). For a read over a list of regions, ROMIO
//! issues one large contiguous read per buffer-full that *covers* the
//! regions — holes included — then copies the requested pieces out of the
//! buffer. Fewer, larger file-system requests at the price of extra data
//! movement: exactly the trade the paper's Set 4 sweeps by varying region
//! spacing.

use bps_core::extent::{self, Extent};
use serde::{Deserialize, Serialize};

/// When to apply data sieving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SieveMode {
    /// Never sieve: each region becomes its own file-system request.
    Disabled,
    /// Always sieve noncontiguous requests (ROMIO's default for reads).
    Enabled,
    /// Sieve only when the waste stays below
    /// [`SievingConfig::auto_waste_limit`].
    Auto,
}

/// Data sieving configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SievingConfig {
    /// Mode selector.
    pub mode: SieveMode,
    /// Maximum covering-read size (ROMIO's `ind_rd_buffer_size`, 4 MB).
    pub buffer_size: u64,
    /// `Auto` threshold: sieve only while `moved / required` stays at or
    /// below this factor.
    pub auto_waste_limit: f64,
}

impl SievingConfig {
    /// ROMIO defaults: sieving enabled, 4 MB buffer.
    pub fn romio_default() -> Self {
        SievingConfig {
            mode: SieveMode::Enabled,
            buffer_size: 4 << 20,
            auto_waste_limit: 16.0,
        }
    }

    /// Sieving switched off.
    pub fn disabled() -> Self {
        SievingConfig {
            mode: SieveMode::Disabled,
            ..Self::romio_default()
        }
    }
}

/// The file-system-request plan for one noncontiguous read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SievePlan {
    /// Contiguous reads to issue, in ascending offset order.
    pub fs_reads: Vec<Extent>,
    /// Bytes the application asked for.
    pub required: u64,
    /// Bytes the plan actually moves (= required when not sieving).
    pub moved: u64,
    /// Whether sieving was applied.
    pub sieved: bool,
}

/// Build the covering reads for a region list under a buffer limit. Regions
/// must be normalized (sorted, disjoint, non-empty). Also used by the
/// collective planner to sieve within each aggregator's file domain.
pub fn covering_reads(regions: &[Extent], buffer: u64) -> Vec<Extent> {
    let mut reads = Vec::new();
    let mut i = 0;
    // `pos` is the first byte not yet covered by any planned read.
    let mut pos = match regions.first() {
        Some(r) => r.offset,
        None => return reads,
    };
    while i < regions.len() {
        let start = pos.max(regions[i].offset);
        let limit = start + buffer;
        let mut end = start;
        while i < regions.len() && regions[i].offset < limit {
            if regions[i].end() <= limit {
                end = end.max(regions[i].end());
                i += 1;
            } else {
                // Region straddles the buffer boundary: cover up to the
                // limit now, keep the region for the next window.
                end = limit;
                break;
            }
        }
        reads.push(Extent::new(start, end - start));
        pos = end;
    }
    reads
}

/// Plan a noncontiguous read.
///
/// ```
/// use bps_core::extent::Extent;
/// use bps_middleware::sieving::{plan_read, SievingConfig};
/// // Four 256 B regions with 1 KiB holes: one covering read, holes included.
/// let regions: Vec<Extent> = (0..4).map(|i| Extent::new(i * 1280, 256)).collect();
/// let plan = plan_read(&regions, &SievingConfig::romio_default());
/// assert!(plan.sieved);
/// assert_eq!(plan.fs_reads.len(), 1);
/// assert_eq!(plan.required, 1024);
/// assert!(plan.moved > plan.required);
/// ```
pub fn plan_read(regions: &[Extent], cfg: &SievingConfig) -> SievePlan {
    let normalized = extent::normalize(regions);
    let required = extent::covered_bytes(&normalized);
    let direct = || SievePlan {
        fs_reads: normalized.clone(),
        required,
        moved: required,
        sieved: false,
    };
    if normalized.len() <= 1 {
        // Contiguous (or empty): nothing to sieve.
        return direct();
    }
    match cfg.mode {
        SieveMode::Disabled => direct(),
        SieveMode::Enabled => {
            let fs_reads = covering_reads(&normalized, cfg.buffer_size.max(1));
            let moved = fs_reads.iter().map(|e| e.len).sum();
            SievePlan {
                fs_reads,
                required,
                moved,
                sieved: true,
            }
        }
        SieveMode::Auto => {
            let fs_reads = covering_reads(&normalized, cfg.buffer_size.max(1));
            let moved: u64 = fs_reads.iter().map(|e| e.len).sum();
            if required > 0 && moved as f64 / required as f64 <= cfg.auto_waste_limit {
                SievePlan {
                    fs_reads,
                    required,
                    moved,
                    sieved: true,
                }
            } else {
                direct()
            }
        }
    }
}

/// Extract the requested region bytes from the covering-read buffers
/// (content-mode correctness path). `fetch` returns the bytes of one
/// planned read.
pub fn extract<F: FnMut(Extent) -> Vec<u8>>(
    regions: &[Extent],
    plan: &SievePlan,
    mut fetch: F,
) -> Vec<u8> {
    // Materialize each planned read once.
    let buffers: Vec<(Extent, Vec<u8>)> = plan.fs_reads.iter().map(|e| (*e, fetch(*e))).collect();
    let mut out = Vec::with_capacity(plan.required as usize);
    for region in extent::normalize(regions) {
        let mut pos = region.offset;
        while pos < region.end() {
            let (cover, bytes) = buffers
                .iter()
                .find(|(e, _)| e.offset <= pos && pos < e.end())
                .unwrap_or_else(|| panic!("byte {pos} not covered by plan"));
            let n = (cover.end().min(region.end()) - pos) as usize;
            let from = (pos - cover.offset) as usize;
            out.extend_from_slice(&bytes[from..from + n]);
            pos += n as u64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: SieveMode, buffer: u64) -> SievingConfig {
        SievingConfig {
            mode,
            buffer_size: buffer,
            auto_waste_limit: 16.0,
        }
    }

    fn strided(count: u64, size: u64, spacing: u64) -> Vec<Extent> {
        (0..count)
            .map(|i| Extent::new(i * (size + spacing), size))
            .collect()
    }

    #[test]
    fn disabled_reads_each_region() {
        let regions = strided(4, 256, 1024);
        let plan = plan_read(&regions, &cfg(SieveMode::Disabled, 4 << 20));
        assert!(!plan.sieved);
        assert_eq!(plan.fs_reads.len(), 4);
        assert_eq!(plan.moved, plan.required);
        assert_eq!(plan.required, 1024);
    }

    #[test]
    fn enabled_covers_holes_in_one_read() {
        let regions = strided(4, 256, 1024);
        let plan = plan_read(&regions, &cfg(SieveMode::Enabled, 4 << 20));
        assert!(plan.sieved);
        assert_eq!(plan.fs_reads.len(), 1);
        // Hull: 3*(256+1024) + 256 bytes.
        assert_eq!(plan.moved, 3 * 1280 + 256);
        assert!(plan.moved > plan.required);
    }

    #[test]
    fn buffer_limit_splits_covering_reads() {
        let regions = strided(100, 256, 768); // stride 1 KiB, hull ~100 KiB
        let plan = plan_read(&regions, &cfg(SieveMode::Enabled, 10 * 1024));
        assert!(plan.sieved);
        assert!(plan.fs_reads.len() >= 10, "{}", plan.fs_reads.len());
        for r in &plan.fs_reads {
            assert!(r.len <= 10 * 1024);
        }
        // Reads are disjoint and ascending.
        for w in plan.fs_reads.windows(2) {
            assert!(w[0].end() <= w[1].offset);
        }
        // All regions covered.
        let covered: u64 = plan.fs_reads.iter().map(|e| e.len).sum();
        assert!(covered >= plan.required);
    }

    #[test]
    fn region_straddling_buffer_boundary_is_fully_covered() {
        // One 10-byte region at 0, one 8-byte region at 13 with buffer 16:
        // second region crosses the 16-byte window edge.
        let regions = vec![Extent::new(0, 10), Extent::new(13, 8)];
        let plan = plan_read(&regions, &cfg(SieveMode::Enabled, 16));
        let covered_end = plan.fs_reads.last().unwrap().end();
        assert!(covered_end >= 21);
        // Every region byte is inside some read.
        for r in &regions {
            for b in [r.offset, r.end() - 1] {
                assert!(
                    plan.fs_reads.iter().any(|e| e.offset <= b && b < e.end()),
                    "byte {b} uncovered"
                );
            }
        }
    }

    #[test]
    fn auto_rejects_extreme_waste() {
        // 2 tiny regions a megabyte apart: waste factor ~2000x.
        let regions = vec![Extent::new(0, 256), Extent::new(1 << 20, 256)];
        let plan = plan_read(&regions, &cfg(SieveMode::Auto, 4 << 20));
        assert!(!plan.sieved);
        // Dense regions: auto sieves.
        let dense = strided(16, 256, 8);
        let plan = plan_read(&dense, &cfg(SieveMode::Auto, 4 << 20));
        assert!(plan.sieved);
    }

    #[test]
    fn contiguous_or_single_region_never_sieves() {
        let one = vec![Extent::new(100, 4096)];
        let plan = plan_read(&one, &cfg(SieveMode::Enabled, 4 << 20));
        assert!(!plan.sieved);
        assert_eq!(plan.fs_reads, one);
        // Touching regions normalize into one.
        let touching = vec![Extent::new(0, 100), Extent::new(100, 100)];
        let plan = plan_read(&touching, &cfg(SieveMode::Enabled, 4 << 20));
        assert!(!plan.sieved);
        assert_eq!(plan.fs_reads.len(), 1);
    }

    #[test]
    fn empty_region_list() {
        let plan = plan_read(&[], &SievingConfig::romio_default());
        assert!(plan.fs_reads.is_empty());
        assert_eq!(plan.required, 0);
        assert_eq!(plan.moved, 0);
    }

    #[test]
    fn extraction_matches_direct_read() {
        // A synthetic "file": byte at offset i = (i * 7) as u8.
        let file_byte = |i: u64| (i.wrapping_mul(7) % 256) as u8;
        let fetch = |e: Extent| (e.offset..e.end()).map(file_byte).collect::<Vec<u8>>();
        let regions = strided(10, 100, 300);
        for mode in [SieveMode::Disabled, SieveMode::Enabled] {
            let plan = plan_read(&regions, &cfg(mode, 1024));
            let got = extract(&regions, &plan, fetch);
            let want: Vec<u8> = regions
                .iter()
                .flat_map(|r| (r.offset..r.end()).map(file_byte))
                .collect();
            assert_eq!(got, want, "mode {mode:?}");
        }
    }

    #[test]
    fn paper_set4_waste_grows_with_spacing() {
        // Fixed count/size, growing spacing ⇒ fixed `required`, growing
        // `moved` — the exact mechanism behind Figure 12.
        let mut last_moved = 0;
        for spacing in [8u64, 64, 512, 4096] {
            let plan = plan_read(&strided(256, 256, spacing), &SievingConfig::romio_default());
            assert_eq!(plan.required, 256 * 256);
            assert!(plan.moved > last_moved, "spacing {spacing}");
            last_moved = plan.moved;
        }
    }
}
