//! The assembled I/O stack: application entry points over a file system.
//!
//! [`IoStack`] is what a simulated application talks to. Its methods are
//! the instrumentation point of the paper's methodology: every call records
//! one application-layer [`bps_core::record::IoRecord`] with the process
//! id, the *required* size, and the call's start/end — while the file
//! system below records what actually moved.

use crate::prefetch::{PrefetchConfig, PrefetchDecision, PrefetchState};
use crate::sieving::{plan_read, SievingConfig};
use bps_core::error::IoError;
use bps_core::extent::Extent;
use bps_core::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
use bps_core::retry::{issue_with_retry, RetryIo};
use bps_core::sink::RecordSink;
use bps_core::time::{Dur, Nanos};
use bps_core::trace::Trace;
use bps_fs::cluster::Cluster;
use bps_fs::localfs::LocalFs;
use bps_fs::pfs::ParallelFs;
use std::collections::HashMap;

/// The shared bounded-backoff retry policy; lives in
/// [`bps_core::retry`] and is re-exported here for the middleware's
/// historical callers.
///
/// Every abandoned attempt is recorded as a [`Layer::Retry`] record (which
/// never counts toward the paper's four metrics); the successful attempt
/// records normally, so a degraded run shows longer application records
/// plus retry sub-records rather than a panic.
pub use bps_core::retry::RetryPolicy;

/// The file system under the middleware.
pub enum FsBackend {
    /// A local file system on one device (the paper's HDD/SSD cases).
    Local(LocalFs),
    /// The striped parallel file system (the paper's PVFS2 cases).
    Parallel(ParallelFs),
}

impl FsBackend {
    #[allow(clippy::too_many_arguments)]
    fn io<S: RecordSink>(
        &mut self,
        cluster: &mut Cluster<S>,
        pid: ProcessId,
        client: usize,
        file: FileId,
        extent: Extent,
        op: IoOp,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        match self {
            FsBackend::Local(fs) => fs.io(cluster, pid, file, extent.offset, extent.len, op, now),
            FsBackend::Parallel(fs) => fs.io(
                cluster,
                pid,
                client,
                file,
                extent.offset,
                extent.len,
                op,
                now,
            ),
        }
    }

    /// Size of a file.
    pub fn file_size(&self, file: FileId) -> u64 {
        match self {
            FsBackend::Local(fs) => fs.file_size(file),
            FsBackend::Parallel(fs) => fs.meta(file).size,
        }
    }
}

/// One request's view of the backend for the shared retry loop: attempts
/// go through the file system, abandoned attempts become `Layer::Retry`
/// records in the cluster's sink. Borrows the backend and cluster
/// separately so both are reachable from one `&mut` context.
struct BackendRetry<'a, S: RecordSink> {
    backend: &'a mut FsBackend,
    cluster: &'a mut Cluster<S>,
    pid: ProcessId,
    client: usize,
    file: FileId,
    extent: Extent,
    op: IoOp,
}

impl<S: RecordSink> RetryIo for BackendRetry<'_, S> {
    fn attempt(&mut self, at: Nanos) -> Result<Nanos, IoError> {
        self.backend.io(
            self.cluster,
            self.pid,
            self.client,
            self.file,
            self.extent,
            self.op,
            at,
        )
    }

    fn on_abandoned(&mut self, start: Nanos, end: Nanos) {
        self.cluster.record_retry(
            self.pid,
            self.file,
            self.extent.offset,
            self.extent.len,
            self.op,
            start,
            end,
        );
    }
}

/// The middleware + file system + cluster, as one environment for the
/// simulation engine.
///
/// Generic over the [`RecordSink`] observing the record stream: the
/// default [`Trace`] materializes every record as before, while e.g.
/// [`bps_core::sink::StreamingMetrics`] folds them into constant-size
/// accumulators as each request completes.
pub struct IoStack<S: RecordSink = Trace> {
    /// The simulated machines and the record sink being fed.
    pub cluster: Cluster<S>,
    /// The file system below.
    pub backend: FsBackend,
    /// Data sieving configuration for noncontiguous reads.
    pub sieving: SievingConfig,
    /// Sequential read-ahead; `None` disables prefetching.
    pub prefetch: Option<PrefetchConfig>,
    /// Memory-copy rate for prefetch hits and sieving extraction,
    /// bytes/second.
    pub memcpy_rate: u64,
    /// Barrier state for collective calls (group size 0 = disabled).
    pub collective: crate::collective_exec::CollectiveState,
    /// Timeout/retry/backoff behavior for faulted requests.
    pub retry: RetryPolicy,
    /// Requests abandoned after exhausting every retry (degraded-run
    /// diagnostic; stays 0 on a healthy cluster).
    pub abandoned_ops: u64,
    prefetch_states: HashMap<(ProcessId, FileId), PrefetchState>,
}

impl<S: RecordSink> IoStack<S> {
    /// Assemble a stack with ROMIO-default sieving and no prefetching.
    pub fn new(cluster: Cluster<S>, backend: FsBackend) -> Self {
        IoStack {
            cluster,
            backend,
            sieving: SievingConfig::romio_default(),
            prefetch: None,
            memcpy_rate: 10_000_000_000,
            collective: crate::collective_exec::CollectiveState::default(),
            retry: RetryPolicy::default(),
            abandoned_ops: 0,
            prefetch_states: HashMap::new(),
        }
    }

    fn memcpy_cost(&self, bytes: u64) -> Dur {
        Dur::from_secs_f64(bytes as f64 / self.memcpy_rate as f64)
    }

    #[allow(clippy::too_many_arguments)]
    fn record_app(
        &mut self,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        bytes: u64,
        op: IoOp,
        start: Nanos,
        end: Nanos,
    ) {
        self.cluster.record(IoRecord::new(
            pid,
            op,
            file,
            offset,
            bytes,
            start,
            end,
            Layer::Application,
        ));
    }

    /// Issue one request through the backend under this stack's
    /// [`RetryPolicy`], driven by the shared
    /// [`bps_core::retry::issue_with_retry`] loop: transient failures back
    /// off exponentially and retry (each abandoned attempt recorded as
    /// [`Layer::Retry`]); over-long attempts are abandoned at the timeout
    /// and retried; the final attempt's result is accepted as-is.
    /// Non-transient errors (EOF) propagate immediately.
    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        pid: ProcessId,
        client: usize,
        file: FileId,
        extent: Extent,
        op: IoOp,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        let mut io = BackendRetry {
            backend: &mut self.backend,
            cluster: &mut self.cluster,
            pid,
            client,
            file,
            extent,
            op,
        };
        issue_with_retry(&self.retry, now, &mut io)
    }

    /// POSIX-style contiguous read. Returns the completion instant, or the
    /// typed error once every retry is exhausted (the failed attempts are
    /// already in the record stream as [`Layer::Retry`]).
    pub fn read(
        &mut self,
        pid: ProcessId,
        client: usize,
        file: FileId,
        extent: Extent,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        // One batch scope per call: the issued FS/device/retry records and
        // the application record reach the sink as a single batch.
        self.cluster.begin_batch();
        let result = match self.prefetch {
            Some(cfg) => {
                let file_size = self.backend.file_size(file);
                let state = self.prefetch_states.entry((pid, file)).or_default();
                match state.on_read(extent, &cfg, file_size) {
                    PrefetchDecision::Hit => Ok(now + self.memcpy_cost(extent.len)),
                    PrefetchDecision::Fetch(fetch) => {
                        self.issue(pid, client, file, fetch, IoOp::Read, now)
                    }
                }
            }
            None => self.issue(pid, client, file, extent, IoOp::Read, now),
        };
        let out = match result {
            Ok(done) => {
                self.record_app(pid, file, extent.offset, extent.len, IoOp::Read, now, done);
                Ok(done)
            }
            Err(e) => {
                self.abandoned_ops += 1;
                Err(e)
            }
        };
        self.cluster.end_batch();
        out
    }

    /// POSIX-style contiguous write. Returns the completion instant, or
    /// the typed error once every retry is exhausted.
    pub fn write(
        &mut self,
        pid: ProcessId,
        client: usize,
        file: FileId,
        extent: Extent,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        self.cluster.begin_batch();
        let out = match self.issue(pid, client, file, extent, IoOp::Write, now) {
            Ok(done) => {
                self.record_app(pid, file, extent.offset, extent.len, IoOp::Write, now, done);
                Ok(done)
            }
            Err(e) => {
                self.abandoned_ops += 1;
                Err(e)
            }
        };
        self.cluster.end_batch();
        out
    }

    /// Plan a noncontiguous read under this stack's sieving configuration.
    pub fn plan_noncontig(&self, regions: &[Extent]) -> crate::sieving::SievePlan {
        plan_read(regions, &self.sieving)
    }

    /// One raw file-system read on behalf of a larger middleware operation:
    /// records only the file-system layer (the caller records the
    /// application-level call once it completes).
    pub fn fs_read_raw(
        &mut self,
        pid: ProcessId,
        client: usize,
        file: FileId,
        extent: Extent,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        self.issue(pid, client, file, extent, IoOp::Read, now)
    }

    /// Record one application-level read call (used by multi-wake
    /// middleware operations; plain reads record automatically).
    pub fn record_app_read(
        &mut self,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        bytes: u64,
        start: Nanos,
        end: Nanos,
    ) {
        self.record_app(pid, file, offset, bytes, IoOp::Read, start, end);
    }

    /// MPI-IO-style noncontiguous read (one call over many regions), served
    /// through data sieving per the stack's [`SievingConfig`]. The covering
    /// reads are issued one buffer at a time (as ROMIO does); the
    /// application record carries only the *required* bytes.
    ///
    /// NOTE: this convenience entry point chains all covering reads in one
    /// call, which is fine for standalone use but would let one simulated
    /// process advance shared resources deep into the future under the
    /// engine. Engine-driven processes use [`crate::process::AppProcess`],
    /// which spreads the covering reads across wakes instead.
    pub fn read_noncontig(
        &mut self,
        pid: ProcessId,
        client: usize,
        file: FileId,
        regions: &[Extent],
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        let plan = plan_read(regions, &self.sieving);
        self.cluster.begin_batch();
        let mut t = now;
        for fs_read in &plan.fs_reads {
            t = match self.issue(pid, client, file, *fs_read, IoOp::Read, t) {
                Ok(done) => done,
                Err(e) => {
                    self.abandoned_ops += 1;
                    self.cluster.end_batch();
                    return Err(e);
                }
            };
        }
        // Copying the requested pieces out of the sieve buffers.
        if plan.sieved {
            t += self.memcpy_cost(plan.moved);
        }
        let first_offset = regions.first().map(|r| r.offset).unwrap_or(0);
        self.record_app(pid, file, first_offset, plan.required, IoOp::Read, now, t);
        self.cluster.end_batch();
        Ok(t)
    }

    /// Finish a run: stamp the application execution time into the sink and
    /// pull it out (for the default [`Trace`] sink this is the collected
    /// trace, exactly as before).
    pub fn finish(&mut self, exec_time: Dur) -> S
    where
        S: Default,
    {
        debug_assert_eq!(
            self.cluster.batch_depth(),
            0,
            "finish inside an open batch scope would lose buffered records"
        );
        self.cluster.sink.on_execution_time(exec_time);
        std::mem::take(&mut self.cluster.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_fs::cluster::{ClusterConfig, DeviceSpec};
    use bps_fs::layout::StripeLayout;
    use bps_sim::device::DiskSched;
    use bps_sim::rng::Jitter;

    fn ram_cluster(servers: usize) -> Cluster {
        Cluster::new(&ClusterConfig {
            servers,
            clients: 2,
            device: DeviceSpec::Ram {
                fixed: Dur::from_micros(100),
                rate: 100_000_000,
                capacity: 1 << 40,
            },
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::NONE,
            seed: 5,
            record_device_layer: false,
            record_net_layer: false,
            fault: bps_sim::fault::FaultPlan::none(),
        })
    }

    fn local_stack() -> (IoStack, FileId) {
        let cluster = ram_cluster(1);
        let mut fs = LocalFs::new(0).with_overhead(Dur::from_micros(50));
        let f = fs.create(64 << 20);
        (IoStack::new(cluster, FsBackend::Local(fs)), f)
    }

    #[test]
    fn read_records_app_and_fs_layers() {
        let (mut stack, f) = local_stack();
        let done = stack
            .read(ProcessId(0), 0, f, Extent::new(0, 4096), Nanos::ZERO)
            .unwrap();
        assert!(done > Nanos::ZERO);
        let trace = stack.finish(done.since(Nanos::ZERO));
        assert_eq!(trace.op_count(Layer::Application), 1);
        assert_eq!(trace.op_count(Layer::FileSystem), 1);
        assert_eq!(trace.bytes(Layer::Application), 4096);
        assert_eq!(trace.bytes(Layer::FileSystem), 4096);
    }

    #[test]
    fn sieved_read_moves_more_than_required() {
        let (mut stack, f) = local_stack();
        let regions: Vec<Extent> = (0..16).map(|i| Extent::new(i * 4096, 256)).collect();
        let done = stack
            .read_noncontig(ProcessId(0), 0, f, &regions, Nanos::ZERO)
            .unwrap();
        let trace = stack.finish(done.since(Nanos::ZERO));
        let required = trace.bytes(Layer::Application);
        let moved = trace.bytes(Layer::FileSystem);
        assert_eq!(required, 16 * 256);
        // Hull = 15*4096 + 256 bytes.
        assert_eq!(moved, 15 * 4096 + 256);
        // One app record for the whole MPI-IO call; one FS read (fits the
        // 4 MB buffer).
        assert_eq!(trace.op_count(Layer::Application), 1);
        assert_eq!(trace.op_count(Layer::FileSystem), 1);
    }

    #[test]
    fn unsieved_read_issues_per_region_fs_ops() {
        let (mut stack, f) = local_stack();
        stack.sieving = SievingConfig::disabled();
        let regions: Vec<Extent> = (0..16).map(|i| Extent::new(i * 4096, 256)).collect();
        let done = stack
            .read_noncontig(ProcessId(0), 0, f, &regions, Nanos::ZERO)
            .unwrap();
        let trace = stack.finish(done.since(Nanos::ZERO));
        assert_eq!(trace.op_count(Layer::FileSystem), 16);
        assert_eq!(trace.bytes(Layer::FileSystem), 16 * 256);
    }

    #[test]
    fn sieving_is_faster_when_holes_are_small() {
        // Dense regions: sieving's one big read beats 64 per-region reads
        // that each pay the per-op overhead.
        let regions: Vec<Extent> = (0..64).map(|i| Extent::new(i * 512, 256)).collect();
        let (mut a, fa) = local_stack();
        a.sieving = SievingConfig::romio_default();
        let t_sieve = a
            .read_noncontig(ProcessId(0), 0, fa, &regions, Nanos::ZERO)
            .unwrap();
        let (mut b, fb) = local_stack();
        b.sieving = SievingConfig::disabled();
        let t_direct = b
            .read_noncontig(ProcessId(0), 0, fb, &regions, Nanos::ZERO)
            .unwrap();
        assert!(t_sieve < t_direct, "sieve {t_sieve} direct {t_direct}");
    }

    #[test]
    fn prefetch_hits_after_warmup() {
        let (mut stack, f) = local_stack();
        stack.prefetch = Some(PrefetchConfig { window: 64 << 10 });
        let mut now = Nanos::ZERO;
        let mut durations = Vec::new();
        for i in 0..8u64 {
            let start = now;
            now = stack
                .read(ProcessId(0), 0, f, Extent::new(i * 4096, 4096), now)
                .unwrap();
            durations.push(now.since(start));
        }
        // Reads 3.. are hits: far cheaper than the first fetch.
        assert!(durations[3] < durations[0] / 10, "{durations:?}");
        let trace = stack.finish(now.since(Nanos::ZERO));
        // FS moved at least as much as the app required.
        assert!(trace.bytes(Layer::FileSystem) >= trace.bytes(Layer::Application));
        // Fewer FS ops than app ops.
        assert!(trace.op_count(Layer::FileSystem) < trace.op_count(Layer::Application));
    }

    #[test]
    fn parallel_backend_stripes() {
        let cluster = ram_cluster(4);
        let mut pfs = ParallelFs::new(4);
        let f = pfs.create(16 << 20, StripeLayout::default_over(4));
        let mut stack = IoStack::new(cluster, FsBackend::Parallel(pfs));
        let done = stack
            .read(ProcessId(0), 0, f, Extent::new(0, 1 << 20), Nanos::ZERO)
            .unwrap();
        let trace = stack.finish(done.since(Nanos::ZERO));
        assert_eq!(trace.op_count(Layer::Application), 1);
        assert_eq!(trace.op_count(Layer::FileSystem), 16);
        assert_eq!(stack.backend.file_size(f), 16 << 20);
    }

    #[test]
    fn empty_noncontig_read_is_instant() {
        let (mut stack, f) = local_stack();
        let done = stack
            .read_noncontig(ProcessId(0), 0, f, &[], Nanos::from_millis(5))
            .unwrap();
        assert_eq!(done, Nanos::from_millis(5));
        let trace = stack.finish(Dur::ZERO);
        assert_eq!(trace.bytes(Layer::Application), 0);
    }
}
