//! # bps-middleware — the I/O middleware layer
//!
//! The layer between applications and file systems, where the paper's
//! measurement methodology hooks in ("we get this information in the I/O
//! middleware layer for MPI-IO applications, or I/O function libraries for
//! ordinary POSIX interface applications") and where the optimizations live
//! that make bandwidth a misleading metric:
//!
//! * [`sieving`] — ROMIO-style data sieving: noncontiguous region lists are
//!   served by large covering reads that include the holes, in buffers of
//!   at most 4 MB (the ROMIO default). Drives the paper's Set 4.
//! * [`prefetch`] — sequential read-ahead: streaming readers get future
//!   data fetched early; the file system moves more bytes than the
//!   application has asked for *yet* (the paper's Figure 1(b) effect).
//! * [`collective`] — two-phase collective I/O planning (an extension
//!   beyond the paper's evaluation, from its "I/O middleware optimizations"
//!   discussion), and [`collective_exec`] — executing those plans under
//!   the engine with barrier (park/unpark) semantics.
//! * [`stack`] — the [`stack::IoStack`]: POSIX-style and MPI-IO-style entry
//!   points over a local or parallel file system, recording
//!   application-layer trace records for every call.
//! * [`process`] — [`process::AppProcess`]: a simulated application process
//!   driving a workload op stream through the stack under the `bps-sim`
//!   engine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collective;
pub mod collective_exec;
pub mod prefetch;
pub mod process;
pub mod sieving;
pub mod stack;

pub use process::{run_workload, AppProcess};
pub use sieving::{SieveMode, SievePlan, SievingConfig};
pub use stack::{FsBackend, IoStack, RetryPolicy};
