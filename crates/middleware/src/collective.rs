//! Two-phase collective I/O planning.
//!
//! An extension beyond the paper's evaluation (its §I discusses middleware
//! optimizations generally): in two-phase collective I/O, the union of all
//! processes' requests is split into contiguous *file domains*, one per
//! aggregator process; aggregators read their domain contiguously, then
//! redistribute pieces to the requesting processes over the network. This
//! module plans the phases; the ablation example executes the plan against
//! the simulated stack.

use crate::sieving::covering_reads;
use bps_core::extent::{self, Extent};

/// One aggregator's assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregatorPlan {
    /// The aggregator's process index (into the participating group).
    pub aggregator: usize,
    /// Contiguous reads the aggregator performs: its file domain's wanted
    /// bytes covered data-sieving style (small intra-domain holes are read
    /// through, large gaps are skipped, reads capped at the ROMIO 4 MB
    /// collective buffer).
    pub reads: Vec<Extent>,
    /// Bytes the aggregator must ship to each process: `(process, bytes)`.
    pub exchanges: Vec<(usize, u64)>,
}

/// The full two-phase plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectivePlan {
    /// Per-aggregator work.
    pub aggregators: Vec<AggregatorPlan>,
    /// Total bytes read from the file system.
    pub read_bytes: u64,
    /// Total bytes exchanged between processes.
    pub exchange_bytes: u64,
}

/// The ROMIO collective buffer size (`cb_buffer_size`).
pub const COLLECTIVE_BUFFER: u64 = 4 << 20;

/// Plan a collective read: `requests[p]` is the region list of process `p`;
/// the first `aggregator_count` processes act as aggregators.
pub fn plan_collective_read(requests: &[Vec<Extent>], aggregator_count: usize) -> CollectivePlan {
    let nprocs = requests.len();
    let nagg = aggregator_count.clamp(1, nprocs.max(1));
    // The merged set of wanted bytes.
    let all: Vec<Extent> = requests.iter().flatten().copied().collect();
    let wanted = extent::normalize(&all);
    let total: u64 = extent::covered_bytes(&wanted);
    if total == 0 {
        return CollectivePlan {
            aggregators: Vec::new(),
            read_bytes: 0,
            exchange_bytes: 0,
        };
    }
    // Split the hull into equal file domains.
    let hull = extent::hull(&wanted).expect("non-empty");
    let domain = hull.len.div_ceil(nagg as u64).max(1);
    let mut aggregators = Vec::with_capacity(nagg);
    let mut read_bytes = 0;
    let mut exchange_bytes = 0;
    for a in 0..nagg {
        let dom_start = hull.offset + a as u64 * domain;
        let dom_end = (dom_start + domain).min(hull.end());
        if dom_start >= dom_end {
            break;
        }
        let dom = Extent::new(dom_start, dom_end - dom_start);
        // Clip the wanted set to this domain, then cover it with large
        // sieve-style reads (this is what makes two-phase I/O win: the
        // aggregator turns everyone's fine-grained pieces into a few big
        // contiguous requests).
        let clipped: Vec<Extent> = wanted.iter().filter_map(|w| clip(w, &dom)).collect();
        let reads = covering_reads(&clipped, COLLECTIVE_BUFFER);
        let dom_read: u64 = reads.iter().map(|e| e.len).sum();
        read_bytes += dom_read;
        // Exchange volume: bytes of each process's request inside the domain,
        // except the aggregator's own bytes (delivered locally).
        let mut exchanges = Vec::new();
        for (p, regions) in requests.iter().enumerate() {
            let owned: u64 = extent::normalize(regions)
                .iter()
                .filter_map(|r| clip(r, &dom))
                .map(|e| e.len)
                .sum();
            if owned > 0 && p != a {
                exchanges.push((p, owned));
                exchange_bytes += owned;
            }
        }
        aggregators.push(AggregatorPlan {
            aggregator: a,
            reads,
            exchanges,
        });
    }
    CollectivePlan {
        aggregators,
        read_bytes,
        exchange_bytes,
    }
}

fn clip(e: &Extent, dom: &Extent) -> Option<Extent> {
    let start = e.offset.max(dom.offset);
    let end = e.end().min(dom.end());
    if start < end {
        Some(Extent::new(start, end - start))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interleaved per-process strided requests, the classic two-phase win.
    fn interleaved(nprocs: usize, blocks: u64, block_size: u64) -> Vec<Vec<Extent>> {
        (0..nprocs)
            .map(|p| {
                (0..blocks)
                    .map(|b| Extent::new((b * nprocs as u64 + p as u64) * block_size, block_size))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn interleaved_requests_become_contiguous_domains() {
        let reqs = interleaved(4, 8, 1024);
        let plan = plan_collective_read(&reqs, 4);
        // Fully dense file: each aggregator reads one contiguous domain.
        assert_eq!(plan.aggregators.len(), 4);
        for a in &plan.aggregators {
            assert_eq!(a.reads.len(), 1, "aggregator {}", a.aggregator);
        }
        // All 32 KB read exactly once.
        assert_eq!(plan.read_bytes, 4 * 8 * 1024);
    }

    #[test]
    fn exchange_excludes_aggregator_own_data() {
        let reqs = interleaved(4, 8, 1024);
        let plan = plan_collective_read(&reqs, 4);
        // Each process owns 1/4 of each domain; 3/4 of each domain is
        // shipped out.
        assert_eq!(plan.exchange_bytes, 4 * 8 * 1024 * 3 / 4);
        for a in &plan.aggregators {
            assert!(a.exchanges.iter().all(|&(p, _)| p != a.aggregator));
        }
    }

    #[test]
    fn read_bytes_cover_wanted_plus_small_holes() {
        // Sparse requests: the covering reads include intra-domain holes
        // (sieving semantics), bounded by the hull.
        let reqs = vec![
            vec![Extent::new(0, 100), Extent::new(10_000, 100)],
            vec![Extent::new(5_000, 100)],
        ];
        let plan = plan_collective_read(&reqs, 2);
        assert!(plan.read_bytes >= 300);
        assert!(plan.read_bytes <= 10_100);
        // Every wanted byte is covered by some read.
        for b in [0u64, 99, 5_000, 5_099, 10_000, 10_099] {
            let covered = plan
                .aggregators
                .iter()
                .flat_map(|a| &a.reads)
                .any(|e| e.offset <= b && b < e.end());
            assert!(covered, "byte {b} uncovered");
        }
    }

    #[test]
    fn dense_interleaved_domains_are_few_big_reads() {
        // 4 procs x 64 interleaved 4 KB blocks: each domain becomes one
        // contiguous covering read, not hundreds of fragments.
        let reqs = interleaved(4, 64, 4096);
        let plan = plan_collective_read(&reqs, 4);
        for a in &plan.aggregators {
            assert!(
                a.reads.len() <= 2,
                "aggregator {} has {} reads",
                a.aggregator,
                a.reads.len()
            );
        }
    }

    #[test]
    fn single_aggregator_reads_everything() {
        let reqs = interleaved(3, 4, 512);
        let plan = plan_collective_read(&reqs, 1);
        assert_eq!(plan.aggregators.len(), 1);
        assert_eq!(plan.read_bytes, 3 * 4 * 512);
        // Aggregator 0 ships everyone else's data.
        assert_eq!(plan.exchange_bytes, 3 * 4 * 512 * 2 / 3);
    }

    #[test]
    fn empty_requests_plan_nothing() {
        let plan = plan_collective_read(&[vec![], vec![]], 2);
        assert_eq!(plan.read_bytes, 0);
        assert!(plan.aggregators.is_empty());
    }

    #[test]
    fn overlapping_requests_not_double_read() {
        // Two processes want the same bytes: read once, shipped once.
        let reqs = vec![vec![Extent::new(0, 1000)], vec![Extent::new(0, 1000)]];
        let plan = plan_collective_read(&reqs, 1);
        assert_eq!(plan.read_bytes, 1000);
        assert_eq!(plan.exchange_bytes, 1000); // to the non-aggregator only
    }
}
