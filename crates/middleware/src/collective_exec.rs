//! Executing two-phase collective reads under the simulation engine.
//!
//! [`crate::collective`] plans the phases; this module runs them. All
//! workload processes arrive at the collective call (a barrier); the last
//! arriver executes the whole schedule — aggregators read their contiguous
//! file domains, then the exchange phase ships every process its pieces
//! over the client network — and computes each participant's completion
//! instant. Chaining the aggregator reads inside one engine wake is safe
//! here precisely *because* every participant is parked at the barrier:
//! no concurrent process can observe the advanced resource clocks.

use crate::collective::plan_collective_read;
use crate::stack::IoStack;
use bps_core::extent::{covered_bytes, normalize, Extent};
use bps_core::record::{FileId, ProcessId};
use bps_core::sink::RecordSink;
use bps_core::time::Nanos;

/// One process's registration at a collective call.
#[derive(Debug, Clone)]
pub struct CollectiveArrival {
    /// Engine process index (for the waker).
    pub engine_idx: usize,
    /// Trace process id.
    pub pid: ProcessId,
    /// Client node.
    pub client: usize,
    /// The regions this process needs.
    pub regions: Vec<Extent>,
    /// Arrival instant.
    pub at: Nanos,
}

/// Barrier + schedule state for collective calls. One collective is in
/// flight at a time (MPI semantics on one communicator).
#[derive(Debug, Default)]
pub struct CollectiveState {
    /// Number of participants each collective call must gather (set by the
    /// workload runner; 0 disables collectives).
    pub group_size: usize,
    arrivals: Vec<CollectiveArrival>,
}

/// What the arriving process should do next.
#[derive(Debug)]
pub enum CollectiveOutcome {
    /// Not everyone is here yet: park until released.
    Wait,
    /// The call executed. Per-participant `(engine_idx, completion)`,
    /// including the caller's own.
    Complete(Vec<(usize, Nanos)>),
}

impl<S: RecordSink> IoStack<S> {
    /// Register one process's arrival at the current collective read of
    /// `file`. When the last participant arrives, the two-phase schedule
    /// executes and per-participant completions are returned.
    pub fn collective_arrive(
        &mut self,
        arrival: CollectiveArrival,
        file: FileId,
    ) -> CollectiveOutcome {
        assert!(
            self.collective.group_size > 0,
            "collective issued but no collective group configured"
        );
        self.collective.arrivals.push(arrival);
        if self.collective.arrivals.len() < self.collective.group_size {
            return CollectiveOutcome::Wait;
        }
        // Barrier complete: take the arrivals and execute.
        let mut arrivals = std::mem::take(&mut self.collective.arrivals);
        // Deterministic aggregator order: by pid.
        arrivals.sort_by_key(|a| a.pid);
        let barrier = arrivals.iter().map(|a| a.at).max().expect("non-empty");

        // Phase plan over the per-process region lists.
        let requests: Vec<Vec<Extent>> = arrivals.iter().map(|a| a.regions.clone()).collect();
        let plan = plan_collective_read(&requests, arrivals.len());

        // Phase 1: each aggregator reads its file domain contiguously.
        let mut completions: Vec<Nanos> = vec![barrier; arrivals.len()];
        let mut agg_done: Vec<Nanos> = vec![barrier; arrivals.len()];
        for agg in &plan.aggregators {
            let who = &arrivals[agg.aggregator];
            let mut t = barrier;
            for read in &agg.reads {
                // An aggregator read that exhausts its retries is abandoned
                // (retry records already emitted); the collective proceeds
                // with the failure-detection instant as that read's end so
                // every parked participant is still released.
                t = match self.fs_read_raw(who.pid, who.client, file, *read, t) {
                    Ok(done) => done,
                    Err(e) => e.fail_time().unwrap_or(t),
                };
            }
            agg_done[agg.aggregator] = t;
            completions[agg.aggregator] = completions[agg.aggregator].max(t);
        }
        // Phase 2: exchange — ship each process its pieces from every
        // aggregator holding them.
        for agg in &plan.aggregators {
            let from_client = arrivals[agg.aggregator].client;
            let mut t = agg_done[agg.aggregator];
            for &(proc_idx, bytes) in &agg.exchanges {
                t = self
                    .cluster
                    .client_to_client(from_client, arrivals[proc_idx].client, bytes, t);
                completions[proc_idx] = completions[proc_idx].max(t);
            }
            // The aggregator itself is done once it has shipped everything.
            completions[agg.aggregator] = completions[agg.aggregator].max(t);
        }

        // Record one application-layer call per participant: its own
        // required bytes, from its arrival to its completion.
        let mut out = Vec::with_capacity(arrivals.len());
        for (i, a) in arrivals.iter().enumerate() {
            let required = covered_bytes(&normalize(&a.regions));
            let first_offset = a.regions.first().map(|r| r.offset).unwrap_or(0);
            self.record_app_read(a.pid, file, first_offset, required, a.at, completions[i]);
            out.push((a.engine_idx, completions[i]));
        }
        CollectiveOutcome::Complete(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::FsBackend;
    use bps_core::record::Layer;
    use bps_core::time::Dur;
    use bps_fs::cluster::{Cluster, ClusterConfig, DeviceSpec};
    use bps_fs::layout::StripeLayout;
    use bps_fs::pfs::ParallelFs;
    use bps_sim::device::DiskSched;
    use bps_sim::rng::Jitter;

    fn stack(group: usize) -> (IoStack, FileId) {
        let cluster = Cluster::new(&ClusterConfig {
            servers: 2,
            clients: group.max(1),
            device: DeviceSpec::Ram {
                fixed: Dur::from_micros(100),
                rate: 100_000_000,
                capacity: 1 << 40,
            },
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::NONE,
            seed: 1,
            record_device_layer: false,
            record_net_layer: false,
            fault: bps_sim::fault::FaultPlan::none(),
        });
        let mut pfs = ParallelFs::new(2);
        let file = pfs.create(16 << 20, StripeLayout::default_over(2));
        let mut s = IoStack::new(cluster, FsBackend::Parallel(pfs));
        s.collective.group_size = group;
        (s, file)
    }

    fn arrival(i: usize, regions: Vec<Extent>, at_ms: u64) -> CollectiveArrival {
        CollectiveArrival {
            engine_idx: i,
            pid: ProcessId(i as u32),
            client: i,
            regions,
            at: Nanos::from_millis(at_ms),
        }
    }

    #[test]
    fn early_arrivals_wait_last_completes() {
        let (mut s, file) = stack(3);
        let regions = |p: usize| {
            (0..4)
                .map(|b| Extent::new(((b * 3 + p) * 4096) as u64, 4096))
                .collect()
        };
        assert!(matches!(
            s.collective_arrive(arrival(0, regions(0), 1), file),
            CollectiveOutcome::Wait
        ));
        assert!(matches!(
            s.collective_arrive(arrival(1, regions(1), 2), file),
            CollectiveOutcome::Wait
        ));
        let out = s.collective_arrive(arrival(2, regions(2), 5), file);
        let CollectiveOutcome::Complete(finishes) = out else {
            panic!("expected completion");
        };
        assert_eq!(finishes.len(), 3);
        // Nothing completes before the barrier (5 ms).
        for (_, t) in &finishes {
            assert!(*t >= Nanos::from_millis(5));
        }
        // One app record per participant, with each's own required bytes.
        let trace = s.finish(Dur::ZERO);
        assert_eq!(trace.op_count(Layer::Application), 3);
        assert_eq!(trace.bytes(Layer::Application), 3 * 4 * 4096);
        // Aggregators read the union exactly once at the FS layer.
        assert_eq!(trace.bytes(Layer::FileSystem), 3 * 4 * 4096);
    }

    #[test]
    fn single_process_collective_is_immediate() {
        let (mut s, file) = stack(1);
        let out = s.collective_arrive(arrival(0, vec![Extent::new(0, 8192)], 0), file);
        assert!(matches!(out, CollectiveOutcome::Complete(v) if v.len() == 1));
    }

    #[test]
    #[should_panic(expected = "no collective group")]
    fn collective_without_group_panics() {
        let (mut s, file) = stack(0);
        s.collective_arrive(arrival(0, vec![Extent::new(0, 512)], 0), file);
    }

    #[test]
    fn state_resets_between_calls() {
        let (mut s, file) = stack(2);
        let r = vec![Extent::new(0, 4096)];
        assert!(matches!(
            s.collective_arrive(arrival(0, r.clone(), 0), file),
            CollectiveOutcome::Wait
        ));
        assert!(matches!(
            s.collective_arrive(arrival(1, r.clone(), 1), file),
            CollectiveOutcome::Complete(_)
        ));
        // A second collective round works identically.
        assert!(matches!(
            s.collective_arrive(arrival(0, r.clone(), 10), file),
            CollectiveOutcome::Wait
        ));
        assert!(matches!(
            s.collective_arrive(arrival(1, r, 11), file),
            CollectiveOutcome::Complete(_)
        ));
    }
}
