//! Property tests for data sieving: coverage, disjointness, extraction
//! correctness, and the waste accounting behind Figure 12.

use bps_core::extent::{self, Extent};
use bps_middleware::sieving::{extract, plan_read, SieveMode, SievingConfig};
use proptest::prelude::*;

fn regions() -> impl Strategy<Value = Vec<Extent>> {
    proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 0..40)
        .prop_map(|v| v.into_iter().map(|(o, l)| Extent::new(o, l)).collect())
}

fn config() -> impl Strategy<Value = SievingConfig> {
    (
        prop_oneof![
            Just(SieveMode::Disabled),
            Just(SieveMode::Enabled),
            Just(SieveMode::Auto)
        ],
        1u64..100_000,
        1.0f64..100.0,
    )
        .prop_map(|(mode, buffer_size, auto_waste_limit)| SievingConfig {
            mode,
            buffer_size,
            auto_waste_limit,
        })
}

proptest! {
    /// Every requested byte is covered by exactly one planned read, and the
    /// planned reads are disjoint and ascending.
    #[test]
    fn plan_covers_regions(rs in regions(), cfg in config()) {
        let plan = plan_read(&rs, &cfg);
        // Reads ascending & disjoint.
        for w in plan.fs_reads.windows(2) {
            prop_assert!(w[0].end() <= w[1].offset);
        }
        // Coverage: every region byte inside some read. Check region
        // endpoints and one midpoint (reads are contiguous ranges).
        let covered = |b: u64| plan.fs_reads.iter().any(|e| e.offset <= b && b < e.end());
        for r in extent::normalize(&rs) {
            prop_assert!(covered(r.offset), "first byte of {r:?}");
            prop_assert!(covered(r.end() - 1), "last byte of {r:?}");
            prop_assert!(covered(r.offset + r.len / 2));
        }
        // Accounting.
        let moved: u64 = plan.fs_reads.iter().map(|e| e.len).sum();
        prop_assert_eq!(moved, plan.moved);
        prop_assert_eq!(plan.required, extent::covered_bytes(&extent::normalize(&rs)));
        prop_assert!(plan.moved >= plan.required);
        if !plan.sieved {
            prop_assert_eq!(plan.moved, plan.required);
        }
    }

    /// Planned reads respect the buffer limit when sieving.
    #[test]
    fn buffer_limit_respected(rs in regions(), buffer in 1u64..50_000) {
        let cfg = SievingConfig { mode: SieveMode::Enabled, buffer_size: buffer, auto_waste_limit: 16.0 };
        let plan = plan_read(&rs, &cfg);
        if plan.sieved {
            for r in &plan.fs_reads {
                prop_assert!(r.len <= buffer, "{} > {buffer}", r.len);
            }
        }
    }

    /// Extraction through the plan returns byte-identical data to reading
    /// each region directly, for any plan mode.
    #[test]
    fn extraction_correct(rs in regions(), cfg in config()) {
        let file_byte = |i: u64| (i.wrapping_mul(31).wrapping_add(7) % 256) as u8;
        let plan = plan_read(&rs, &cfg);
        let got = extract(&rs, &plan, |e| (e.offset..e.end()).map(file_byte).collect());
        let want: Vec<u8> = extent::normalize(&rs)
            .iter()
            .flat_map(|r| (r.offset..r.end()).map(file_byte))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Auto never wastes more than the configured limit.
    #[test]
    fn auto_bounds_waste(rs in regions(), limit in 1.0f64..50.0) {
        let cfg = SievingConfig { mode: SieveMode::Auto, buffer_size: 1 << 20, auto_waste_limit: limit };
        let plan = plan_read(&rs, &cfg);
        if plan.sieved && plan.required > 0 {
            prop_assert!(plan.moved as f64 / plan.required as f64 <= limit + 1e-9);
        }
    }

    /// Sieving never issues more file-system reads than the disabled plan.
    #[test]
    fn sieving_reduces_op_count(rs in regions()) {
        let enabled = plan_read(&rs, &SievingConfig::romio_default());
        let disabled = plan_read(&rs, &SievingConfig::disabled());
        prop_assert!(enabled.fs_reads.len() <= disabled.fs_reads.len());
    }
}
