//! Stamp the build with a fingerprint of every workspace source file.
//!
//! The persistent case store (`scenario::store`) refuses to replay
//! entries written by a different build: a stale binary must recompute,
//! never serve results a code change may have invalidated. The stamp is
//! an FNV-1a hash over every `.rs` file under `crates/` and `vendor/`,
//! keyed by workspace-relative path so the checkout location does not
//! perturb it.

use std::fs;
use std::path::{Path, PathBuf};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let path = e.path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").expect("CARGO_MANIFEST_DIR");
    let root = Path::new(&manifest).join("../..");
    let mut files = Vec::new();
    for top in ["crates", "vendor"] {
        collect(&root.join(top), &mut files);
    }
    // Sort by workspace-relative path for a machine-independent order.
    files.sort_by_key(|f| f.strip_prefix(&root).unwrap_or(f).to_path_buf());
    let mut h = FNV_OFFSET;
    for f in &files {
        let rel = f.strip_prefix(&root).unwrap_or(f);
        fnv1a(&mut h, rel.to_string_lossy().as_bytes());
        fnv1a(&mut h, &[0]);
        if let Ok(text) = fs::read(f) {
            fnv1a(&mut h, &text);
        }
        println!("cargo:rerun-if-changed={}", f.display());
    }
    println!("cargo:rustc-env=BPS_CODE_FINGERPRINT={h:016x}");
}
