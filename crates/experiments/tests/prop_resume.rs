//! Property tests for journaled checkpoint/resume: a run resumed from a
//! randomly truncated journal is byte-identical to a cold run, at any
//! thread count, with the memo on or off. This is the crash-safety
//! contract — SIGKILL at an arbitrary byte offset loses at most the units
//! that had not finished, never the correctness of the figures.

use bps_experiments::journal::Journal;
use bps_experiments::scale::Scale;
use bps_experiments::scenario::engine::{self, RunOpts};
use bps_experiments::scenario::spec::{
    CaseDecl, CaseTemplate, Expect, Grid, Num, OutputSpec, Patch, Scenario, StorageSpec,
    WorkloadTemplate,
};
use bps_experiments::sweep::SweepExec;
use bps_workloads::iozone::IozoneMode;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn storage(idx: usize) -> StorageSpec {
    match idx % 3 {
        0 => StorageSpec::Hdd,
        1 => StorageSpec::Ssd,
        _ => StorageSpec::Pvfs {
            servers: 1 + idx % 4,
        },
    }
}

/// A small two-case IOzone sweep (record-size dimension only) so each
/// proptest case stays cheap: the property is about journal plumbing,
/// not simulation breadth.
fn scenario(storage_idx: usize, file_kb: u64) -> Scenario {
    let dims = vec![[4u64 << 10, 64 << 10]
        .iter()
        .map(|&rs| {
            CaseDecl::new(
                format!("r{rs}"),
                Patch {
                    record_size: Some(rs),
                    ..Patch::none()
                },
            )
        })
        .collect::<Vec<_>>()];
    Scenario {
        name: "prop-resume".to_string(),
        title: "property-generated resume sweep".to_string(),
        output: OutputSpec::Cc,
        base: CaseTemplate::new(
            storage(storage_idx),
            WorkloadTemplate::Iozone {
                mode: IozoneMode::SeqRead,
                file_size: Num::Abs { n: file_kb << 10 },
                record_size: Num::Abs { n: 4 << 10 },
                processes: 1,
                seed: 0,
            },
        ),
        grid: Grid { dims },
        metrics: Vec::new(),
        deadline_ms: None,
        expect: vec![Expect::correct_direction("BPS")],
        verdict: None,
    }
}

/// A collision-free journal path per proptest case (tests run in
/// parallel; the journal API takes explicit instances, no globals).
fn unique_path() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "bps_prop_resume_{}_{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn journal_opts(j: Journal) -> RunOpts {
    RunOpts {
        journal: Some(Arc::new(j)),
        deadline: None,
        max_failures: None,
    }
}

proptest! {
    /// Cold run == journaled run == run resumed from a journal truncated
    /// at an arbitrary byte offset — formatted output and raw f64 bits.
    #[test]
    fn resume_from_truncated_journal_is_byte_identical(
        storage_idx in 0usize..6,
        file_kb in 16u64..64,
        threads in 1usize..5,
        cut in 0.0f64..1.0,
        memo_on in any::<bool>(),
    ) {
        let sc = scenario(storage_idx, file_kb);
        let scale = Scale::tiny();
        let cold = engine::run_with_opts(
            &sc, &scale, SweepExec::new(1), false, &RunOpts::default(),
        ).unwrap();

        // A journaled run records every unit and matches the cold bytes.
        let path = unique_path();
        let opts = journal_opts(Journal::create(&path, &[]).unwrap());
        let full = engine::run_with_opts(
            &sc, &scale, SweepExec::new(threads), false, &opts,
        ).unwrap();
        prop_assert_eq!(format!("{full}"), format!("{cold}"));
        drop(opts);

        // Truncate the journal at an arbitrary byte offset past the
        // header — simulating SIGKILL mid-write, torn final line and all.
        let bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let cut_at = header_end + (((bytes.len() - header_end) as f64) * cut) as usize;
        std::fs::write(&path, &bytes[..cut_at]).unwrap();

        let (j, _stored) = Journal::open_resume(&path).unwrap();
        let opts = journal_opts(j);
        let resumed = engine::run_with_opts(
            &sc, &scale, SweepExec::new(threads), memo_on, &opts,
        ).unwrap();
        prop_assert_eq!(format!("{resumed}"), format!("{cold}"));
        let (c, r) = (cold.into_cc(), resumed.into_cc());
        for (a, b) in c.cases.iter().zip(&r.cases) {
            prop_assert_eq!(a.iops.to_bits(), b.iops.to_bits());
            prop_assert_eq!(a.bw.to_bits(), b.bw.to_bits());
            prop_assert_eq!(a.arpt.to_bits(), b.arpt.to_bits());
            prop_assert_eq!(a.bps.to_bits(), b.bps.to_bits());
            prop_assert_eq!(a.exec_s.to_bits(), b.exec_s.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    /// A journal replayed in full (no truncation) re-runs nothing and
    /// still reproduces the cold bytes — the replay path alone feeds the
    /// exact same averaging arithmetic.
    #[test]
    fn full_replay_recomputes_nothing_and_matches(
        storage_idx in 0usize..6,
        file_kb in 16u64..64,
        threads in 1usize..5,
    ) {
        let sc = scenario(storage_idx, file_kb);
        let scale = Scale::tiny();
        let cold = engine::run_with_opts(
            &sc, &scale, SweepExec::new(1), false, &RunOpts::default(),
        ).unwrap();

        let path = unique_path();
        let opts = journal_opts(Journal::create(&path, &[]).unwrap());
        engine::run_with_opts(&sc, &scale, SweepExec::new(1), false, &opts).unwrap();
        drop(opts);

        let (j, _stored) = Journal::open_resume(&path).unwrap();
        prop_assert!(j.replayed_units() > 0);
        let opts = journal_opts(j);
        let replayed = engine::run_with_opts(
            &sc, &scale, SweepExec::new(threads), false, &opts,
        ).unwrap();
        prop_assert_eq!(format!("{replayed}"), format!("{cold}"));
        std::fs::remove_file(&path).ok();
    }
}
