//! Golden tests for the `reproduce` binary.
//!
//! Every deterministic target's `--tiny` report is pinned byte-for-byte
//! against `tests/golden/<target>.txt` (captured from the binary itself),
//! so a refactor of the experiment stack cannot silently change a single
//! character of any reproduction. The `overhead` target contains
//! wall-clock timings and is pinned structurally instead.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden(name: &str) -> String {
    let path = golden_dir().join(format!("{name}.txt"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn reproduce(args: &[&str]) -> Output {
    // BPS_CACHE=0 keeps the harness hermetic: no test here accidentally
    // serves (or pollutes) the build's shared persistent case store.
    // The cache tests below opt back in with an isolated BPS_CACHE_DIR.
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .env("BPS_THREADS", "1")
        .env("BPS_CACHE", "0")
        .output()
        .expect("spawn reproduce")
}

/// Spawn the binary against an isolated persistent cache directory.
fn reproduce_cached(args: &[&str], cache_dir: &Path, extra_env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    cmd.args(args)
        .env("BPS_THREADS", "1")
        .env("BPS_CACHE_DIR", cache_dir);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn reproduce")
}

/// A unique, empty cache directory for one test.
fn cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bps_cli_cache-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn stdout_of(args: &[&str]) -> String {
    let out = reproduce(args);
    assert!(
        out.status.success(),
        "reproduce {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// The 18 targets whose `--tiny` output is fully deterministic.
const DETERMINISTIC: [&str; 18] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "summary",
    "extensions",
    "writes",
    "faults",
];

#[test]
fn every_deterministic_target_matches_its_golden() {
    for target in DETERMINISTIC {
        assert_eq!(
            stdout_of(&[target, "--tiny"]),
            golden(target),
            "{target} --tiny drifted from tests/golden/{target}.txt"
        );
    }
}

#[test]
fn every_deterministic_target_is_thread_count_invariant() {
    // `--threads 4` outranks the harness's BPS_THREADS=1 (flag > env >
    // machine), and a parallel sweep must still produce the golden bytes.
    for target in DETERMINISTIC {
        assert_eq!(
            stdout_of(&[target, "--tiny", "--threads", "4"]),
            golden(target),
            "{target} --tiny --threads 4 drifted from tests/golden/{target}.txt"
        );
    }
}

#[test]
fn memoization_does_not_change_a_single_byte() {
    // The same multi-target invocation with the cross-figure case memo on
    // (default) and off must agree byte-for-byte; fig4/fig5/fig9 share
    // baseline cases, so the memo actually fires here.
    let targets = ["fig4", "fig5", "fig9", "--tiny"];
    let on = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(targets)
        .env("BPS_THREADS", "1")
        .env("BPS_CACHE", "0")
        .env("BPS_MEMO", "1")
        .output()
        .expect("spawn reproduce");
    let off = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(targets)
        .env("BPS_THREADS", "1")
        .env("BPS_CACHE", "0")
        .env("BPS_MEMO", "0")
        .output()
        .expect("spawn reproduce");
    assert!(on.status.success() && off.status.success());
    assert_eq!(
        String::from_utf8_lossy(&on.stdout),
        String::from_utf8_lossy(&off.stdout),
        "BPS_MEMO=1 and BPS_MEMO=0 reports differ"
    );
    assert_eq!(
        String::from_utf8_lossy(&on.stdout),
        format!("{}{}{}", golden("fig4"), golden("fig5"), golden("fig9")),
        "memoized multi-target run drifted from the goldens"
    );
}

#[test]
fn threads_flag_rejects_garbage() {
    for bad in [
        &["fig4", "--tiny", "--threads", "zero"][..],
        &["fig4", "--tiny", "--threads"][..],
    ] {
        let out = reproduce(bad);
        assert!(!out.status.success(), "reproduce {bad:?} should fail");
    }
}

#[test]
fn overhead_report_is_structurally_stable() {
    // Wall-clock numbers vary; everything else (header, record accounting,
    // row labels) must not.
    let is_timing_row = |line: &str| {
        line.starts_with(' ')
            && line
                .split_whitespace()
                .all(|w| w.chars().all(|c| c.is_ascii_digit() || c == '.'))
            && !line.trim().is_empty()
    };
    let strip = |text: &str| {
        text.lines()
            .filter(|l| !is_timing_row(l))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&stdout_of(&["overhead", "--tiny"])),
        strip(&golden("overhead"))
    );
}

#[test]
fn list_matches_its_golden() {
    assert_eq!(stdout_of(&["list"]), golden("list"));
}

#[test]
fn list_filter_narrows_the_listing() {
    let out = stdout_of(&["list", "faults"]);
    assert_eq!(out.lines().count(), 4);
    assert!(out.lines().all(|l| l.starts_with("faults-")), "{out}");
}

#[test]
fn unknown_target_names_itself_and_the_valid_set() {
    let out = reproduce(&["figg5", "--tiny"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown target: figg5"), "{err}");
    assert!(err.contains("valid targets: all, table1, table2"), "{err}");
    assert!(err.contains("fig12"), "{err}");
    assert!(err.contains("reproduce list"), "{err}");
}

#[test]
fn run_of_a_bundled_scenario_matches_the_target_report() {
    // `reproduce run fig9` goes name -> registry -> engine; `reproduce fig9`
    // goes through the figure module. Same bytes either way.
    assert_eq!(stdout_of(&["run", "fig9", "--tiny"]), golden("fig9"));
}

#[test]
fn json_scenario_runs_without_recompiling() {
    // Serialize a bundled scenario, write it to disk, and feed the file to
    // the binary: the report must be byte-identical to the compiled-in
    // target. This is the engine's whole point — experiments are data.
    let sc = bps_experiments::scenario::registry::find("fig11").unwrap();
    let dir = std::env::temp_dir().join("bps_cli_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig11.json");
    std::fs::write(&path, serde_json::to_string_pretty(&sc).unwrap()).unwrap();
    assert_eq!(
        stdout_of(&["run", path.to_str().unwrap(), "--tiny"]),
        golden("fig11")
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn bundled_example_scenario_matches_its_golden() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let example = repo_root.join("examples/scenarios/device-shootout.json");
    assert_eq!(
        stdout_of(&["run", example.to_str().unwrap(), "--tiny"]),
        golden("device-shootout")
    );
}

#[test]
fn metrics_listing_matches_its_golden() {
    // The registry listing is part of the CLI contract: names, directions,
    // units, and one-line descriptions are pinned byte-for-byte.
    assert_eq!(stdout_of(&["metrics"]), golden("metrics"));
}

#[test]
fn explicit_paper_selection_is_byte_identical_to_the_default() {
    // `--metrics BPS,IOPS,BW,ARPT` canonicalizes to the paper selection, so
    // the report must be the exact golden bytes — selection is a view over
    // the same fold, not a different computation.
    assert_eq!(
        stdout_of(&["fig4", "--tiny", "--metrics", "BPS,IOPS,BW,ARPT"]),
        golden("fig4")
    );
}

#[test]
fn unknown_metrics_flag_names_itself_and_the_registry() {
    let out = reproduce(&["fig4", "--tiny", "--metrics", "BPS,latency"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown metric: latency"), "{err}");
    assert!(
        err.contains("valid metrics: IOPS, BW, ARPT, BPS, P50, P99, EffPar, IOEff, MaxQD"),
        "{err}"
    );
    assert!(err.contains("reproduce metrics"), "{err}");
}

#[test]
fn json_scenario_selecting_p99_runs_end_to_end() {
    // The tail-latency example asks for an extended metric ("p99") straight
    // from scenario JSON. No recompiling: the registry resolves the name,
    // the sweep folds the percentile, and the report is pinned.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let example = repo_root.join("examples/scenarios/tail-latency.json");
    let out = stdout_of(&["run", example.to_str().unwrap(), "--tiny"]);
    assert!(out.contains("P99(s)"), "{out}");
    assert_eq!(out, golden("tail-latency"));
}

#[test]
fn scenario_metric_selection_outranks_the_cli_flag() {
    // A scenario that names its own metrics pins its columns; `--metrics`
    // only fills in for scenarios that don't ask.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let example = repo_root.join("examples/scenarios/tail-latency.json");
    assert_eq!(
        stdout_of(&[
            "run",
            example.to_str().unwrap(),
            "--tiny",
            "--metrics",
            "MaxQD"
        ]),
        golden("tail-latency")
    );
}

#[test]
fn check_reports_name_and_case_count() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let example = repo_root.join("examples/scenarios/slow-server.json");
    let out = stdout_of(&["check", example.to_str().unwrap()]);
    assert_eq!(out, "ok: slow-server (4 cases at quick scale)\n");
}

#[test]
fn check_rejects_malformed_json_with_the_path_named() {
    let dir = std::env::temp_dir().join("bps_cli_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{not json").unwrap();
    let out = reproduce(&["check", path.to_str().unwrap()]);
    // Invalid scenario content is its own exit class (3), distinct from
    // the generic 1.
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("broken.json"), "{err}");
    assert!(err.contains("invalid scenario JSON"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_names_the_offending_field_on_a_type_mismatch() {
    let dir = std::env::temp_dir().join("bps_cli_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("badfield.json");
    std::fs::write(&path, "{\"name\": \"x\", \"title\": 3}").unwrap();
    let out = reproduce(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("badfield.json"), "{err}");
    assert!(err.contains("field `title`"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn custom_topology_scenario_matches_its_golden() {
    // The whole point of the topology layer: a stack no figure ever
    // hardcoded (prefetch -> 4-server PFS -> lossy net -> SSD), declared
    // as data, runs end-to-end and scores BPS. Bytes are pinned.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let example = repo_root.join("examples/scenarios/custom-topology.json");
    let out = stdout_of(&["run", example.to_str().unwrap(), "--tiny"]);
    assert!(out.contains("BPS"), "{out}");
    assert_eq!(out, golden("custom-topology"));
}

#[test]
fn topology_subcommand_matches_its_golden() {
    // `reproduce topology` renders the expanded component graph: one line
    // per node with its ports and effective configuration.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let example = repo_root.join("examples/scenarios/custom-topology.json");
    assert_eq!(
        stdout_of(&["topology", example.to_str().unwrap()]),
        golden("custom-topology-graph")
    );
}

#[test]
fn topology_of_a_prebuilt_scenario_shows_the_derived_graph() {
    // A scenario with no `topology` field still renders: the graph is
    // derived from its storage (fig9 is 8-server PFS over HDD).
    let out = stdout_of(&["topology", "fig9", "--tiny"]);
    assert!(out.contains("Pfs"), "{out}");
    assert!(out.contains("8 servers"), "{out}");
    assert!(out.contains("file -> block"), "{out}");
}

#[test]
fn bad_topology_node_is_named_with_the_valid_kinds() {
    // An unknown component fails expansion with the node index, the bad
    // kind, and the registry-style listing of valid kinds — exit class 3.
    let dir = std::env::temp_dir().join("bps_cli_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad-topology.json");
    let sc = r#"{
      "name": "bad-topology", "title": "t", "output": "Cc",
      "base": {
        "storage": "Hdd",
        "workload": { "Iozone": { "mode": "SeqRead",
          "file_size": { "Abs": { "n": 1048576 } },
          "record_size": { "Abs": { "n": 4096 } },
          "processes": 1, "seed": 0 } },
        "topology": [ "Teleport" ]
      },
      "grid": { "dims": [[ { "label": "x", "patch": {} } ]] },
      "expect": []
    }"#;
    std::fs::write(&path, sc).unwrap();
    let out = reproduce(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown component `Teleport`"), "{err}");
    assert!(
        err.contains("valid components: Collective, Sieving, Prefetch, LocalFs, Pfs, Net, Device"),
        "{err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn ill_ordered_topology_is_rejected_at_expansion() {
    // Structurally bad (Net above a local fs) parses but fails validation
    // when the scenario expands, naming the node and scenario.
    let dir = std::env::temp_dir().join("bps_cli_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ill-topology.json");
    let sc = r#"{
      "name": "ill-topology", "title": "t", "output": "Cc",
      "base": {
        "storage": "Hdd",
        "workload": { "Iozone": { "mode": "SeqRead",
          "file_size": { "Abs": { "n": 1048576 } },
          "record_size": { "Abs": { "n": 4096 } },
          "processes": 1, "seed": 0 } },
        "topology": [ { "LocalFs": {} }, { "Net": {} } ]
      },
      "grid": { "dims": [[ { "label": "x", "patch": {} } ]] },
      "expect": []
    }"#;
    std::fs::write(&path, sc).unwrap();
    let out = reproduce(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ill-topology"), "{err}");
    assert!(err.contains("Net"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_of_unknown_name_suggests_list() {
    let out = reproduce(&["run", "not-a-scenario"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not-a-scenario"), "{err}");
    assert!(err.contains("reproduce list"), "{err}");
}

#[test]
fn no_arguments_is_a_usage_error() {
    let out = reproduce(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn warm_cache_rerun_is_byte_identical_across_processes() {
    // The persistent store's whole contract: a *fresh process* replaying
    // every case from disk produces the cold run's exact stdout bytes.
    let dir = cache_dir("warm");
    let targets = ["fig4", "fig5", "fig9", "--tiny"];
    let cold = reproduce_cached(&targets, &dir, &[]);
    assert!(
        cold.status.success(),
        "cold: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let expected = format!("{}{}{}", golden("fig4"), golden("fig5"), golden("fig9"));
    assert_eq!(String::from_utf8_lossy(&cold.stdout), expected);
    assert!(dir.is_dir(), "cold run must populate {}", dir.display());

    // Warm, fresh process: every case served from disk, same bytes.
    let warm = reproduce_cached(&targets, &dir, &[]);
    assert!(warm.status.success());
    assert_eq!(
        String::from_utf8_lossy(&warm.stdout),
        expected,
        "warm cross-process rerun drifted from the cold bytes"
    );

    // BPS_CACHE=0 bypasses the store and still matches.
    let off = reproduce_cached(&targets, &dir, &[("BPS_CACHE", "0")]);
    assert!(off.status.success());
    assert_eq!(String::from_utf8_lossy(&off.stdout), expected);

    // A parallel warm sweep must also produce the golden bytes.
    let threaded = reproduce_cached(
        &["fig4", "fig5", "fig9", "--tiny", "--threads", "4"],
        &dir,
        &[],
    );
    assert!(threaded.status.success());
    assert_eq!(String::from_utf8_lossy(&threaded.stdout), expected);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_cache_flag_bypasses_the_store() {
    let dir = cache_dir("nocache");
    let out = reproduce_cached(&["fig4", "--tiny", "--no-cache"], &dir, &[]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden("fig4"));
    let entries = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(entries, 0, "--no-cache must not write {}", dir.display());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_entry_recomputes_silently_and_verify_names_it() {
    let dir = cache_dir("corrupt");
    let cold = reproduce_cached(&["fig4", "--tiny"], &dir, &[]);
    assert!(cold.status.success());

    // Truncate one entry mid-payload — a torn write.
    let entry = std::fs::read_dir(&dir)
        .expect("cache populated")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "case"))
        .expect("at least one entry");
    let text = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &text[..text.len() / 2]).unwrap();

    // `cache verify` names the torn entry and exits 1.
    let verify = reproduce_cached(&["cache", "verify"], &dir, &[]);
    assert_eq!(verify.status.code(), Some(1));
    let listing = String::from_utf8_lossy(&verify.stdout);
    let name = entry.file_name().unwrap().to_string_lossy().into_owned();
    assert!(listing.contains(&name), "{listing}");
    assert!(listing.contains("corrupt"), "{listing}");

    // The engine treats it as a miss: recomputes silently, same bytes.
    let warm = reproduce_cached(&["fig4", "--tiny"], &dir, &[]);
    assert!(warm.status.success());
    assert_eq!(String::from_utf8_lossy(&warm.stdout), golden("fig4"));

    // The recompute rewrote the entry; the store is healthy again.
    let verify = reproduce_cached(&["cache", "verify"], &dir, &[]);
    assert_eq!(verify.status.code(), Some(0), "store should be repaired");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_stats_verify_clear_round_trip() {
    let dir = cache_dir("admin");
    let cold = reproduce_cached(&["fig4", "--tiny"], &dir, &[]);
    assert!(cold.status.success());

    let stats = reproduce_cached(&["cache", "stats"], &dir, &[]);
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(text.contains(&dir.display().to_string()), "{text}");
    assert!(text.contains("build fingerprint:"), "{text}");
    assert!(!text.contains("entries: 0 "), "{text}");
    assert!(text.contains("0 stale, 0 corrupt"), "{text}");

    let clear = reproduce_cached(&["cache", "clear"], &dir, &[]);
    assert!(clear.status.success());
    assert!(String::from_utf8_lossy(&clear.stdout).contains("cleared"));

    let stats = reproduce_cached(&["cache", "stats"], &dir, &[]);
    assert!(String::from_utf8_lossy(&stats.stdout).contains("entries: 0 (0 fresh"));
    let verify = reproduce_cached(&["cache", "verify"], &dir, &[]);
    assert_eq!(verify.status.code(), Some(0));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_subcommand_rejects_bad_operations() {
    for bad in [
        &["cache"][..],
        &["cache", "wipe"][..],
        &["cache", "stats", "x"][..],
    ] {
        let out = reproduce(bad);
        assert_eq!(out.status.code(), Some(2), "reproduce {bad:?}");
    }
}
