//! Sweep determinism: the parallel executor must be invisible in the
//! results. A sweep run on one thread and the same sweep fanned over many
//! threads serialize to byte-identical JSON, and a same-seed rerun is
//! byte-identical too.

use bps_experiments::runner::{CaseSpec, Storage};
use bps_experiments::sweep::SweepExec;
use bps_workloads::iozone::Iozone;

fn sweep_json(threads: usize) -> String {
    let w_small = Iozone::seq_read(2 << 20, 256 << 10);
    let w_large = Iozone::seq_read(4 << 20, 1 << 20);
    let cases = vec![
        (
            "hdd-small".to_string(),
            CaseSpec::new(Storage::Hdd, &w_small),
        ),
        (
            "ssd-small".to_string(),
            CaseSpec::new(Storage::Ssd, &w_small),
        ),
        (
            "pvfs-2".to_string(),
            CaseSpec::new(Storage::Pvfs { servers: 2 }, &w_large),
        ),
    ];
    let points = SweepExec::new(threads).run(&cases, &[1, 2, 3]);
    serde_json::to_string(&points).expect("CasePoint serializes")
}

#[test]
fn one_thread_and_many_threads_serialize_identically() {
    let sequential = sweep_json(1);
    let parallel = sweep_json(8);
    assert_eq!(sequential, parallel);
    // More workers than units exercises the worker cap too.
    assert_eq!(sequential, sweep_json(64));
}

#[test]
fn same_seed_rerun_is_byte_identical() {
    assert_eq!(sweep_json(4), sweep_json(4));
}

#[test]
fn different_seeds_actually_change_the_numbers() {
    let w = Iozone::seq_read(2 << 20, 256 << 10);
    let cases = vec![("hdd".to_string(), CaseSpec::new(Storage::Hdd, &w))];
    let exec = SweepExec::new(2);
    let a = serde_json::to_string(&exec.run(&cases, &[1, 2])).unwrap();
    let b = serde_json::to_string(&exec.run(&cases, &[3, 4])).unwrap();
    assert_ne!(a, b, "seed set should perturb the averaged metrics");
}
