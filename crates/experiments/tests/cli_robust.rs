//! Integration tests for the supervised-run machinery of `reproduce`:
//! journaled checkpoint/resume (including a real SIGKILL mid-sweep),
//! per-unit deadlines, and the failure-class exit codes. Failure
//! injection uses the `BPS_TEST_UNIT_PANIC` / `BPS_TEST_UNIT_STALL`
//! hooks, which are inert unless set.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}.txt"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn reproduce(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    // Injected failures must actually simulate: a persistent-cache hit
    // would serve the unit before the hook fires.
    cmd.args(args).env("BPS_THREADS", "1").env("BPS_CACHE", "0");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn reproduce")
}

fn unique_journal() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "bps_cli_robust_{}_{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn journaled_run_matches_golden_and_resume_replays_it() {
    let journal = unique_journal();
    let out = reproduce(
        &["fig4", "--tiny", "--journal", journal.to_str().unwrap()],
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden("fig4"));
    let lines = std::fs::read_to_string(&journal).unwrap();
    assert!(
        lines
            .lines()
            .filter(|l| l.contains("\"kind\":\"unit\""))
            .count()
            > 0,
        "journal recorded no units"
    );

    // Resume of a finished journal replays everything — same bytes, at a
    // different thread count.
    let out = reproduce(
        &["resume", journal.to_str().unwrap(), "--threads", "4"],
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden("fig4"));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resuming from"), "{err}");
    std::fs::remove_file(&journal).ok();
}

#[test]
fn sigkill_mid_sweep_then_resume_is_byte_identical_to_the_golden() {
    let journal = unique_journal();
    // Stall every pvfs unit 200 ms so the kill lands mid-sweep.
    let mut child = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["fig4", "--tiny", "--journal", journal.to_str().unwrap()])
        .env("BPS_THREADS", "1")
        .env("BPS_CACHE", "0")
        .env("BPS_TEST_UNIT_STALL", "pvfs:200")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn reproduce");
    // Wait until at least one unit hit the journal, then SIGKILL.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let units = std::fs::read_to_string(&journal)
            .map(|s| s.matches("\"kind\":\"unit\"").count())
            .unwrap_or(0);
        if units >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "journal never accumulated units"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    child.kill().expect("kill reproduce");
    child.wait().expect("reap reproduce");

    // The journal survived the SIGKILL with at least the finished units;
    // resume completes the run and reproduces the golden bytes exactly,
    // at 1 and at 4 threads.
    for threads in ["1", "4"] {
        let out = reproduce(
            &["resume", journal.to_str().unwrap(), "--threads", threads],
            &[],
        );
        assert_eq!(
            out.status.code(),
            Some(0),
            "resume --threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            golden("fig4"),
            "resume --threads {threads} drifted from the golden"
        );
    }
    std::fs::remove_file(&journal).ok();
}

#[test]
fn forced_panic_exits_5_and_names_the_kind() {
    let out = reproduce(&["fig4", "--tiny"], &[("BPS_TEST_UNIT_PANIC", "pvfs-3")]);
    assert_eq!(out.status.code(), Some(5));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[panic]"), "{err}");
    assert!(err.contains("unit(s) failed"), "{err}");
    // The report still renders, with the failed case annotated.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pvfs-3 [panic]"), "{stdout}");
}

#[test]
fn deadline_overrun_exits_6_not_hangs() {
    // Every pvfs-3 unit stalls 60 s; a 100 ms deadline must detach it and
    // report Timeout well before the stall would finish.
    let start = std::time::Instant::now();
    let out = reproduce(
        &["fig4", "--tiny", "--deadline-ms", "100"],
        &[("BPS_TEST_UNIT_STALL", "pvfs-3:60000")],
    );
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "deadline did not prevent the hang"
    );
    assert_eq!(out.status.code(), Some(6));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[timeout]"), "{err}");
    assert!(err.contains("exceeded per-unit deadline"), "{err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pvfs-3 [timeout]"), "{stdout}");
}

#[test]
fn panic_outranks_timeout_in_the_exit_code() {
    // Both kinds occur; the exit code reports the severest (panic = 5).
    let out = reproduce(
        &["fig4", "--tiny", "--deadline-ms", "100"],
        &[
            ("BPS_TEST_UNIT_PANIC", "pvfs-2"),
            ("BPS_TEST_UNIT_STALL", "pvfs-3:60000"),
        ],
    );
    assert_eq!(out.status.code(), Some(5));
}

#[test]
fn failure_budget_exceeded_exits_7_with_resume_hint() {
    let journal = unique_journal();
    let out = reproduce(
        &[
            "fig4",
            "--tiny",
            "--max-failures",
            "0",
            "--journal",
            journal.to_str().unwrap(),
        ],
        &[("BPS_TEST_UNIT_PANIC", "pvfs")],
    );
    assert_eq!(out.status.code(), Some(7));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("failure budget exceeded"), "{err}");
    assert!(err.contains("reproduce resume"), "{err}");
    std::fs::remove_file(&journal).ok();
}

#[test]
fn resume_of_a_missing_journal_exits_4() {
    let out = reproduce(&["resume", "/nonexistent/journal.jsonl"], &[]);
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot resume"), "{err}");
}

#[test]
fn scenario_deadline_outranks_the_flag() {
    // Scenario pins a generous 60 s deadline; the CLI asks for 100 ms.
    // The scenario wins, so the 300 ms stall completes and exits 0.
    let dir = std::env::temp_dir().join("bps_cli_robust_scenarios");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("deadline.json");
    let sc = r#"{
  "name": "deadline-demo",
  "title": "scenario deadline outranks the flag",
  "output": "Cc",
  "base": {
    "storage": {"Pvfs": {"servers": 2}},
    "workload": {"Iozone": {"mode": "SeqRead", "file_size": {"Abs": {"n": 65536}},
                  "record_size": {"Abs": {"n": 4096}}, "processes": 1, "seed": 0}}
  },
  "grid": {"dims": [[{"label": "a", "patch": {}}]]},
  "deadline_ms": 60000,
  "expect": []
}"#;
    std::fs::write(&path, sc).unwrap();
    let out = reproduce(
        &[
            "run",
            path.to_str().unwrap(),
            "--tiny",
            "--deadline-ms",
            "100",
        ],
        &[("BPS_TEST_UNIT_STALL", "a:300")],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&path).ok();
}
