//! Fault-injection neutrality and determinism.
//!
//! Two guarantees guard the fault subsystem:
//!
//! 1. **Neutrality** — `FaultPlan::none()` (the default on every
//!    `CaseSpec` and `ClusterConfig`) is *bit-for-bit* invisible: the
//!    sweep JSON below was captured from the tree **before** the fault
//!    subsystem existed, and the default path must keep reproducing it
//!    exactly. The injector draws its randomness from a stream independent
//!    of the cluster's master RNG and never touches it while every rate is
//!    zero, so this holds to the last bit, not within a tolerance.
//! 2. **Determinism** — the same fault plan and run seeds reproduce
//!    identical degraded results at any thread count.

use bps_core::time::{Dur, Nanos};
use bps_experiments::runner::{CaseSpec, Storage};
use bps_experiments::sweep::SweepExec;
use bps_sim::fault::{FaultPlan, Outage, SlowdownWindow};
use bps_workloads::iozone::Iozone;
use proptest::prelude::*;

/// Serialized `SweepExec::new(2).run(..)` output captured on the pre-fault
/// tree (commit "Stream metrics incrementally and parallelize sweeps"),
/// same cases and seeds as below. Any drift here means the healthy path is
/// no longer the pre-fault path.
const GOLDEN_SWEEP_JSON: &str = "[{\"label\":\"hdd-small\",\"iops\":303.9253246240201,\"bw\":79.67220029823913,\"arpt\":0.0032903635000000003,\"bps\":155609.7662074983,\"exec_s\":0.026362908},{\"label\":\"ssd-small\",\"iops\":649.2060178482678,\"bw\":170.1854623428163,\"arpt\":0.0015404251666666666,\"bps\":332393.48113831313,\"exec_s\":0.012363401333333334},{\"label\":\"pvfs-2\",\"iops\":87.30744506358985,\"bw\":91.94988804974197,\"arpt\":0.011453806583333332,\"bps\":178805.64749023202,\"exec_s\":0.04583522633333333}]";

fn sweep_json_with(fault: impl Fn() -> FaultPlan) -> String {
    let w_small = Iozone::seq_read(2 << 20, 256 << 10);
    let w_large = Iozone::seq_read(4 << 20, 1 << 20);
    let cases = vec![
        (
            "hdd-small".to_string(),
            CaseSpec::new(Storage::Hdd, &w_small).with_fault(fault()),
        ),
        (
            "ssd-small".to_string(),
            CaseSpec::new(Storage::Ssd, &w_small).with_fault(fault()),
        ),
        (
            "pvfs-2".to_string(),
            CaseSpec::new(Storage::Pvfs { servers: 2 }, &w_large).with_fault(fault()),
        ),
    ];
    let points = SweepExec::new(2).run(&cases, &[1, 2, 3]);
    serde_json::to_string(&points).expect("CasePoint serializes")
}

#[test]
fn none_plan_reproduces_the_pre_fault_golden_output() {
    assert_eq!(
        sweep_json_with(FaultPlan::none),
        GOLDEN_SWEEP_JSON,
        "FaultPlan::none() must be bit-for-bit neutral vs the pre-fault tree"
    );
}

/// One cheap run (single case, single seed) for the seed-irrelevance
/// property below.
fn quick_run_json(fault: FaultPlan) -> String {
    let w = Iozone::seq_read(1 << 20, 256 << 10);
    let cases = vec![(
        "hdd-quick".to_string(),
        CaseSpec::new(Storage::Hdd, &w).with_fault(fault),
    )];
    serde_json::to_string(&SweepExec::new(1).run(&cases, &[1])).expect("CasePoint serializes")
}

proptest! {
    /// The *seed* of an all-zero-rate plan is irrelevant: with nothing to
    /// inject, the RNG is never drawn from, so every seed produces the
    /// same bits as the unseeded none-plan.
    #[test]
    fn none_plan_seed_is_irrelevant(seed in any::<u64>()) {
        use std::sync::OnceLock;
        static REFERENCE: OnceLock<String> = OnceLock::new();
        let reference = REFERENCE.get_or_init(|| quick_run_json(FaultPlan::none()));
        let json = quick_run_json(FaultPlan { seed, ..FaultPlan::none() });
        prop_assert_eq!(&json, reference);
    }
}

fn degraded_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xFA_57,
        ..FaultPlan::none()
    }
    .with_slowdown(SlowdownWindow {
        server: 0,
        start: Nanos::ZERO,
        end: Nanos::from_secs(3600),
        factor: 2.5,
    })
    .with_device_errors(0.05)
    .with_link_loss(0.02, Dur::from_millis(2))
    .with_outage(Outage {
        server: 1,
        start: Nanos::from_millis(5),
        end: Nanos::from_millis(9),
    })
}

fn degraded_sweep_json(threads: usize) -> String {
    let w = Iozone::seq_read(4 << 20, 1 << 20);
    let cases = vec![(
        "pvfs-2-degraded".to_string(),
        CaseSpec::new(Storage::Pvfs { servers: 2 }, &w).with_fault(degraded_plan()),
    )];
    let points = SweepExec::new(threads).run(&cases, &[1, 2, 3]);
    serde_json::to_string(&points).expect("CasePoint serializes")
}

#[test]
fn same_fault_seed_is_deterministic_across_thread_counts() {
    let one = degraded_sweep_json(1);
    let four = degraded_sweep_json(4);
    assert_eq!(one, four, "degraded runs must not depend on BPS_THREADS");
    // And a rerun at the same thread count is byte-identical.
    assert_eq!(four, degraded_sweep_json(4));
}

#[test]
fn faults_actually_degrade_the_run() {
    let healthy = sweep_json_with(FaultPlan::none);
    let w = Iozone::seq_read(4 << 20, 1 << 20);
    let cases = vec![(
        "pvfs-2".to_string(),
        CaseSpec::new(Storage::Pvfs { servers: 2 }, &w).with_fault(degraded_plan()),
    )];
    let degraded = SweepExec::new(2).run(&cases, &[1, 2, 3]);
    #[derive(serde::Deserialize)]
    struct Point {
        exec_s: f64,
    }
    let healthy_points: Vec<Point> = serde_json::from_str(&healthy).expect("golden parses");
    let healthy_exec = healthy_points[2].exec_s;
    assert!(
        degraded[0].exec_s > healthy_exec,
        "faults should lengthen the run: degraded {} vs healthy {healthy_exec}",
        degraded[0].exec_s
    );
}
