//! CLI tests for the observability surfaces: `--telemetry` JSONL capture,
//! `profile`, `docs`, the subcommand listing on unknown targets, and the
//! stale-origin grouping in `cache stats`.
//!
//! The load-bearing property is *zero cost when off*: with no telemetry
//! flag the reports must be the exact golden bytes, and with the flag the
//! stdout bytes still must not change — telemetry goes to its own file.

use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}.txt"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Spawn the binary hermetically: single-threaded unless a flag overrides,
/// persistent store off unless a test opts in.
fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .env("BPS_THREADS", "1")
        .env("BPS_CACHE", "0")
        .output()
        .expect("spawn reproduce")
}

/// A unique scratch path (file or directory) for one test.
fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("bps_cli_tele-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_file(&p).ok();
    p
}

fn str_field(v: &Value, name: &str) -> String {
    match v.field(name).expect("object") {
        Value::Str(s) => s.clone(),
        other => panic!("field `{name}` should be a string, got {}", other.kind()),
    }
}

fn u64_field(v: &Value, name: &str) -> u64 {
    match v.field(name).expect("object") {
        Value::UInt(n) => *n,
        other => panic!("field `{name}` should be a u64, got {}", other.kind()),
    }
}

/// Run with `--telemetry`, parse every JSONL line, and return them.
fn telemetry_lines(args: &[&str], path: &Path) -> Vec<Value> {
    let mut full: Vec<&str> = args.to_vec();
    let p = path.to_str().unwrap().to_string();
    full.push("--telemetry");
    full.push(&p);
    let out = reproduce(&full);
    assert!(
        out.status.success(),
        "reproduce {full:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(path).expect("telemetry file written");
    text.lines()
        .map(|l| {
            serde_json::from_str::<Value>(l).unwrap_or_else(|e| panic!("bad JSONL `{l}`: {e}"))
        })
        .collect()
}

/// The final `counters` line as (name, value) pairs.
fn counters_of(lines: &[Value]) -> Vec<(String, u64)> {
    let last = lines.last().expect("non-empty telemetry");
    assert_eq!(str_field(last, "kind"), "counters", "counters line is last");
    match last.field("counters").expect("object") {
        Value::Object(pairs) => pairs
            .iter()
            .map(|(k, v)| match v {
                Value::UInt(n) => (k.clone(), *n),
                other => panic!("counter `{k}` should be u64, got {}", other.kind()),
            })
            .collect(),
        other => panic!("`counters` should be an object, got {}", other.kind()),
    }
}

#[test]
fn telemetry_flag_does_not_change_a_single_stdout_byte() {
    let path = scratch("off-identity.jsonl");
    let plain = reproduce(&["fig4", "--tiny"]);
    assert!(plain.status.success());
    assert_eq!(String::from_utf8_lossy(&plain.stdout), golden("fig4"));

    let traced = reproduce(&["fig4", "--tiny", "--telemetry", path.to_str().unwrap()]);
    assert!(traced.status.success());
    assert_eq!(
        String::from_utf8_lossy(&traced.stdout),
        golden("fig4"),
        "--telemetry must not perturb the report bytes"
    );
    assert!(path.is_file(), "telemetry file must be written");
    std::fs::remove_file(&path).ok();
}

#[test]
fn telemetry_jsonl_schema_round_trips() {
    let path = scratch("schema.jsonl");
    let lines = telemetry_lines(&["fig4", "--tiny"], &path);
    assert!(lines.len() >= 3, "meta + at least one span + counters");

    // First line: meta with the schema version and the argv.
    let meta = &lines[0];
    assert_eq!(str_field(meta, "kind"), "meta");
    assert_eq!(u64_field(meta, "version"), 1);
    match meta.field("args").expect("object") {
        Value::Array(items) => {
            assert!(items
                .iter()
                .any(|a| matches!(a, Value::Str(s) if s == "fig4")))
        }
        other => panic!("`args` should be an array, got {}", other.kind()),
    }

    // Middle lines: phase and unit spans with integer-microsecond timing.
    let mut phases = Vec::new();
    let mut units = 0usize;
    for line in &lines[1..lines.len() - 1] {
        match str_field(line, "kind").as_str() {
            "phase" => {
                phases.push(str_field(line, "name"));
                u64_field(line, "start_us");
                u64_field(line, "dur_us");
            }
            "unit" => {
                units += 1;
                str_field(line, "case");
                u64_field(line, "seed");
                u64_field(line, "start_us");
                u64_field(line, "dur_us");
            }
            other => panic!("unexpected line kind `{other}`"),
        }
    }
    for expected in [
        "engine.expand",
        "engine.sweep",
        "engine.score",
        "target:fig4",
    ] {
        assert!(
            phases.iter().any(|p| p == expected),
            "missing phase {expected}: {phases:?}"
        );
    }
    assert!(units > 0, "a cold fig4 run must record sweep units");

    // Last line: one value per registered counter, registry order.
    let counters = counters_of(&lines);
    assert!(counters.iter().any(|(k, v)| k == "sweep.units" && *v > 0));
    assert!(counters.iter().any(|(k, v)| k == "engine.wakes" && *v > 0));
    let names: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(names[0], "engine.wakes", "counters keep registry order");
    std::fs::remove_file(&path).ok();
}

#[test]
fn counters_are_deterministic_and_monotone_under_threads() {
    // Two identical parallel runs agree exactly — counters are event
    // counts, not timings — and a superset workload never counts less.
    let pa = scratch("mono-a.jsonl");
    let pb = scratch("mono-b.jsonl");
    let pc = scratch("mono-c.jsonl");
    let small_a = counters_of(&telemetry_lines(&["fig4", "--tiny", "--threads", "4"], &pa));
    let small_b = counters_of(&telemetry_lines(&["fig4", "--tiny", "--threads", "4"], &pb));
    assert_eq!(
        small_a, small_b,
        "parallel counter totals must be deterministic"
    );

    let big = counters_of(&telemetry_lines(
        &["fig4", "fig5", "--tiny", "--threads", "4"],
        &pc,
    ));
    for ((name, small), (bname, big)) in small_a.iter().zip(&big) {
        assert_eq!(name, bname);
        assert!(
            big >= small,
            "{name}: fig4+fig5 counted {big}, fig4 alone {small}"
        );
    }
    for p in [pa, pb, pc] {
        std::fs::remove_file(&p).ok();
    }
}

#[test]
fn docs_generation_is_byte_deterministic() {
    let a = scratch("docs-a");
    let b = scratch("docs-b");
    for dir in [&a, &b] {
        let out = reproduce(&["docs", "--out", dir.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "docs failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let mut names: Vec<String> = std::fs::read_dir(&a)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(names.contains(&"index.md".to_string()), "{names:?}");
    assert!(
        names.len() >= 7,
        "expected the full reference, got {names:?}"
    );
    for name in &names {
        let pa = std::fs::read(a.join(name)).unwrap();
        let pb = std::fs::read(b.join(name))
            .unwrap_or_else(|e| panic!("{name} missing from second run: {e}"));
        assert_eq!(pa, pb, "{name} differs between two `docs` runs");
        assert!(
            String::from_utf8_lossy(&pa).starts_with("<!-- Generated by"),
            "{name} must carry the generated banner"
        );
    }
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

#[test]
fn unknown_subcommand_lists_the_full_command_surface() {
    let out = reproduce(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown target: frobnicate"), "{err}");
    assert!(err.contains("subcommands: "), "{err}");
    for sub in [
        "list", "run", "check", "topology", "resume", "cache", "profile", "docs",
    ] {
        assert!(err.contains(sub), "subcommand listing misses {sub}: {err}");
    }
    assert!(err.contains("valid targets: all, table1"), "{err}");
}

#[test]
fn profile_prints_phase_and_counter_tables() {
    let out = reproduce(&["profile", "fig4", "--tiny"]);
    assert!(
        out.status.success(),
        "profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== profile: fig4 (tiny scale) =="), "{text}");
    assert!(text.contains("target:fig4"), "{text}");
    assert!(text.contains("engine.sweep"), "{text}");
    assert!(text.contains("sweep.units"), "{text}");
    assert!(text.contains("engine.wakes"), "{text}");
}

/// FNV-1a matching the store's entry checksum, so the test can re-seal a
/// doctored payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn cache_stats_groups_stale_entries_by_origin() {
    let dir = scratch("stale-origin");
    let cold = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["fig4", "--tiny"])
        .env("BPS_THREADS", "1")
        .env("BPS_CACHE_DIR", &dir)
        .output()
        .expect("spawn reproduce");
    assert!(cold.status.success());

    // Rewrite one entry as if a different build had written it: swap the
    // fingerprint inside the payload and re-seal the header checksum.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache populated")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 2, "need two entries to doctor");
    let text = std::fs::read_to_string(&entries[0]).unwrap();
    let (_, payload) = text.split_once('\n').unwrap();
    let payload = payload.trim_end_matches('\n');
    let marker = "\"fingerprint\":\"";
    let at = payload.find(marker).expect("payload carries a fingerprint") + marker.len();
    let mut doctored = payload.to_string();
    doctored.replace_range(at..at + 16, "deadbeef00c0ffee");
    let sealed = format!(
        "bps-case 1 {} {:016x}\n{doctored}\n",
        doctored.len(),
        fnv1a(doctored.as_bytes())
    );
    std::fs::write(&entries[0], sealed).unwrap();

    // And age a second entry's format version: a different stale origin.
    let text = std::fs::read_to_string(&entries[1]).unwrap();
    std::fs::write(&entries[1], text.replacen("bps-case 1 ", "bps-case 0 ", 1)).unwrap();

    let stats = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["cache", "stats"])
        .env("BPS_CACHE_DIR", &dir)
        .output()
        .expect("spawn reproduce");
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("stale entries by origin:"), "{text}");
    assert!(
        text.contains("deadbeef00c0.. (1)"),
        "foreign fingerprint should appear truncated: {text}"
    );
    assert!(text.contains("format v0 (1)"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}
