//! Property tests for the topology layer: the prebuilt component graphs
//! are invisible — a case that declares the topology its storage would
//! have derived runs bit-for-bit identically to one that declares
//! nothing — and `TopologySpec` survives JSON round-trips.

use bps_core::time::Dur;
use bps_experiments::runner::{CasePoint, CaseSpec, Storage};
use bps_experiments::scale::Scale;
use bps_experiments::scenario::spec::{
    CaseDecl, CaseTemplate, Expect, Grid, Num, OutputSpec, Patch, Scenario, StorageSpec,
    WorkloadTemplate,
};
use bps_experiments::scenario::{engine, run_with};
use bps_experiments::sweep::SweepExec;
use bps_sim::fault::FaultPlan;
use bps_topology::{DeviceNode, NodeSpec, TopologySpec};
use bps_workloads::iozone::{Iozone, IozoneMode};
use proptest::prelude::*;

fn storage(idx: usize) -> Storage {
    match idx % 3 {
        0 => Storage::Hdd,
        1 => Storage::Ssd,
        _ => Storage::Pvfs {
            servers: 1 + idx % 4,
        },
    }
}

/// A well-formed random component chain: optional middleware above one
/// file-system node, `Net` only above `Pfs`, optional device last.
#[derive(Debug, Clone)]
struct ChainParams {
    collective: bool,
    sieving: Option<bool>,
    prefetch_kb: Option<u64>,
    pfs_servers: Option<usize>,
    local_overhead_us: Option<u64>,
    net: Option<(Option<u64>, Option<bool>)>,
    loss_permille: u64,
    device: Option<usize>,
}

fn chain(p: &ChainParams) -> TopologySpec {
    let mut nodes = Vec::new();
    if p.collective {
        nodes.push(NodeSpec::Collective);
    }
    if let Some(enabled) = p.sieving {
        nodes.push(NodeSpec::Sieving { enabled });
    }
    if let Some(window_kb) = p.prefetch_kb {
        nodes.push(NodeSpec::Prefetch { window_kb });
    }
    match p.pfs_servers {
        Some(servers) => {
            nodes.push(NodeSpec::Pfs { servers });
            if let Some((retransmit_delay_ms, record)) = p.net {
                nodes.push(NodeSpec::Net {
                    loss_rate: if p.loss_permille == 0 {
                        None
                    } else {
                        Some(p.loss_permille as f64 / 1000.0)
                    },
                    retransmit_delay_ms,
                    record,
                });
            }
        }
        None => nodes.push(NodeSpec::LocalFs {
            overhead_us: p.local_overhead_us,
        }),
    }
    if let Some(d) = p.device {
        let device = match d % 4 {
            0 => DeviceNode::Hdd,
            1 => DeviceNode::Ssd,
            2 => DeviceNode::Raid0 { members: 1 + d % 5 },
            _ => DeviceNode::Ram {
                fixed_us: 1 + d as u64,
                rate: 1_000_000 * (1 + d as u64),
                capacity: 1 << 30,
            },
        };
        nodes.push(NodeSpec::Device { device });
    }
    TopologySpec::new(nodes)
}

/// A one-dimension scenario over record sizes, optionally carrying an
/// explicit topology on its base template.
fn scenario(topology: Option<TopologySpec>, storage: StorageSpec, file_kb: u64) -> Scenario {
    let mut base = CaseTemplate::new(
        storage,
        WorkloadTemplate::Iozone {
            mode: IozoneMode::SeqRead,
            file_size: Num::Abs { n: file_kb << 10 },
            record_size: Num::Abs { n: 4 << 10 },
            processes: 1,
            seed: 0,
        },
    );
    base.topology = topology;
    Scenario {
        name: "prop-topology".to_string(),
        title: "property-generated topology sweep".to_string(),
        output: OutputSpec::Cc,
        base,
        grid: Grid {
            dims: vec![vec![
                CaseDecl::new(
                    "r4k",
                    Patch {
                        record_size: Some(4 << 10),
                        ..Patch::none()
                    },
                ),
                CaseDecl::new(
                    "r64k",
                    Patch {
                        record_size: Some(64 << 10),
                        ..Patch::none()
                    },
                ),
            ]],
        },
        metrics: Vec::new(),
        deadline_ms: None,
        expect: vec![Expect::correct_direction("BPS")],
        verdict: None,
    }
}

proptest! {
    /// Declaring the exact topology the storage would have derived is a
    /// no-op: same records, same execution time, same averaged metrics —
    /// healthy or faulty.
    #[test]
    fn prebuilt_topology_is_bit_identical(
        storage_idx in 0usize..6,
        file_kb in 16u64..128,
        record_kb in 2u64..64,
        seed in 1u64..1000,
        lossy in any::<bool>(),
    ) {
        let s = storage(storage_idx);
        let w = Iozone::seq_read(file_kb << 10, record_kb << 10);
        let fault = if lossy {
            FaultPlan::none().with_link_loss(0.02, Dur::from_millis(5))
        } else {
            FaultPlan::none()
        };
        let implicit = CaseSpec::new(s, &w).with_fault(fault.clone());
        let explicit = CaseSpec::new(s, &w)
            .with_fault(fault)
            .with_topology(s.default_topology());

        let a = bps_experiments::runner::run_case(&implicit, seed);
        let b = bps_experiments::runner::run_case(&explicit, seed);
        prop_assert_eq!(a.execution_time(), b.execution_time());
        prop_assert_eq!(a.records(), b.records());

        let pa = CasePoint::averaged("case", &implicit, &[seed, seed + 1]);
        let pb = CasePoint::averaged("case", &explicit, &[seed, seed + 1]);
        prop_assert_eq!(
            serde_json::to_string(&pa).unwrap(),
            serde_json::to_string(&pb).unwrap()
        );
    }

    /// Every well-formed chain validates, survives a JSON round-trip
    /// unchanged, and renders one line per node.
    #[test]
    fn topology_spec_round_trips(
        collective in any::<bool>(),
        sieving_sel in 0usize..3,
        prefetch_kb in 0u64..2048,
        pfs_servers in 0usize..9,
        local_overhead_us in 0u64..500,
        net_sel in 0usize..3,
        retransmit_ms in 0u64..100,
        record_sel in 0usize..3,
        loss_permille in 0u64..500,
        device_sel in 0usize..17,
    ) {
        let spec = chain(&ChainParams {
            collective,
            sieving: [None, Some(false), Some(true)][sieving_sel],
            prefetch_kb: (prefetch_kb > 0).then_some(prefetch_kb),
            pfs_servers: (pfs_servers > 0).then_some(pfs_servers),
            local_overhead_us: (local_overhead_us > 0).then_some(local_overhead_us),
            net: (net_sel > 0).then_some((
                (retransmit_ms > 0).then_some(retransmit_ms),
                [None, Some(false), Some(true)][record_sel],
            )),
            loss_permille,
            device: device_sel.checked_sub(1),
        });
        prop_assert!(spec.validate().is_ok(), "{:?}", spec);

        let json = serde_json::to_string(&spec).unwrap();
        let back: TopologySpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &spec);

        let rendered = spec.render(None);
        let has_device = spec
            .nodes()
            .iter()
            .any(|n| matches!(n, NodeSpec::Device { .. }));
        let expected_lines = spec.nodes().len() + usize::from(!has_device);
        prop_assert_eq!(rendered.lines().count(), expected_lines);
    }

    /// A scenario with an explicit topology equal to the storage default
    /// prints byte-identically to one with no topology field, at one
    /// sweep thread and many.
    #[test]
    fn scenario_with_default_topology_is_invisible(
        storage_idx in 0usize..6,
        file_kb in 16u64..64,
        threads in 2usize..5,
    ) {
        let spec = match storage(storage_idx) {
            Storage::Hdd => StorageSpec::Hdd,
            Storage::Ssd => StorageSpec::Ssd,
            Storage::Pvfs { servers } => StorageSpec::Pvfs { servers },
        };
        let implicit = scenario(None, spec, file_kb);
        let explicit = scenario(
            Some(storage(storage_idx).default_topology()),
            spec,
            file_kb,
        );
        // The resolved cases differ only in the topology field itself.
        let scale = Scale::tiny();
        let ia = engine::expand(&implicit, &scale).unwrap();
        let ea = engine::expand(&explicit, &scale).unwrap();
        for (a, b) in ia.iter().zip(&ea) {
            prop_assert_eq!(&a.effective_topology(), &b.effective_topology());
        }
        let out_implicit = run_with(&implicit, &scale, SweepExec::new(1)).unwrap();
        let out_explicit = run_with(&explicit, &scale, SweepExec::new(threads)).unwrap();
        prop_assert_eq!(format!("{out_implicit}"), format!("{out_explicit}"));
    }
}

/// Memoization is invisible to topology runs: the same scenario scores
/// identically with the memo disabled, cold, and warm.
#[test]
fn memo_on_and_off_agree_for_explicit_topologies() {
    let topo = TopologySpec::new(vec![
        NodeSpec::Prefetch { window_kb: 256 },
        NodeSpec::Pfs { servers: 3 },
        NodeSpec::Net {
            loss_rate: Some(0.01),
            retransmit_delay_ms: Some(5),
            record: None,
        },
        NodeSpec::Device {
            device: DeviceNode::Ssd,
        },
    ]);
    let sc = scenario(Some(topo), StorageSpec::Pvfs { servers: 3 }, 32);
    let scale = Scale::tiny();
    std::env::set_var("BPS_MEMO", "0");
    let off = format!("{}", run_with(&sc, &scale, SweepExec::new(2)).unwrap());
    std::env::remove_var("BPS_MEMO");
    let cold = format!("{}", run_with(&sc, &scale, SweepExec::new(2)).unwrap());
    let warm = format!("{}", run_with(&sc, &scale, SweepExec::new(2)).unwrap());
    assert_eq!(off, cold);
    assert_eq!(cold, warm);
}
