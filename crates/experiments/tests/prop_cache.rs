//! Content-key collision audit for the two-level case cache.
//!
//! Both cache levels — the in-process memo and the persistent
//! content-addressed store — index scored points by
//! [`engine::content_key`]. A key collision between two cases that
//! simulate differently would serve one case's numbers as the other's,
//! silently. These tests audit injectivity two ways:
//!
//! 1. a property test generating *pairs* of fully resolved cases
//!    (storage, layout, sieving, retry, faults, topology, workload),
//!    scales, and metric selections, asserting keys agree exactly when
//!    the label-stripped inputs agree;
//! 2. a deterministic one-field audit: every simulation-feeding field of
//!    a base case is mutated alone and must change the key, while the
//!    display label — which legitimately differs between figures sharing
//!    a case — must not.

use bps_core::metrics::MetricSelection;
use bps_experiments::runner::Storage;
use bps_experiments::scale::Scale;
use bps_experiments::scenario::engine::{content_key, ResolvedCase, ResolvedWorkload};
use bps_experiments::scenario::spec::{
    DeviceErrorSpec, FaultSpec, LayoutSpec, LinkLossSpec, OutageTrainSpec, RetrySpec, SievingSpec,
    SlowdownSpec, StorageSpec,
};
use bps_workloads::iozone::IozoneMode;
use bps_workloads::WorkloadSpec;
use proptest::prelude::*;

fn base_case() -> ResolvedCase {
    ResolvedCase {
        label: "base".to_string(),
        storage: StorageSpec::Hdd,
        layout: LayoutSpec::DefaultStripe,
        sieving: SievingSpec::RomioDefault,
        retry: RetrySpec::Default,
        fault: None,
        cpu_per_op_us: 50,
        clients: None,
        topology: None,
        workload: ResolvedWorkload::Spec(WorkloadSpec::Iozone {
            mode: IozoneMode::SeqRead,
            file_size: 1 << 20,
            record_size: 4096,
            processes: 1,
            seed: 0,
        }),
    }
}

fn storages() -> impl Strategy<Value = StorageSpec> {
    prop_oneof![
        Just(StorageSpec::Hdd),
        Just(StorageSpec::Ssd),
        (1usize..=8).prop_map(|servers| StorageSpec::Pvfs { servers }),
    ]
}

fn faults() -> impl Strategy<Value = Option<FaultSpec>> {
    let slowdown = (0usize..4, 1u32..6).prop_map(|(server, f)| SlowdownSpec {
        server,
        factor: f as f64,
    });
    let device_error = prop_oneof![
        (1u32..10).prop_map(|r| DeviceErrorSpec::Uniform {
            rate: r as f64 / 100.0
        }),
        (0usize..4, 1u32..10).prop_map(|(server, r)| DeviceErrorSpec::Server {
            server,
            rate: r as f64 / 100.0
        }),
    ];
    let link_loss = (1u32..10, 1u64..5).prop_map(|(r, d)| LinkLossSpec {
        rate: r as f64 / 100.0,
        retransmit_delay_ms: d,
    });
    let outage = (0usize..4, 1u64..20, 20u64..50, 0u64..10, 1u64..4).prop_map(
        |(server, width_ms, period_ms, phase_ms, cycles)| OutageTrainSpec {
            server,
            width_ms,
            period_ms,
            phase_ms,
            cycles,
        },
    );
    prop_oneof![
        Just(None),
        (
            0u64..4,
            collection::vec(slowdown, 0..2),
            collection::vec(device_error, 0..2),
            prop_oneof![Just(None), link_loss.prop_map(Some)],
            collection::vec(outage, 0..2),
        )
            .prop_map(
                |(seed, slowdowns, device_errors, link_loss, outage_trains)| {
                    Some(FaultSpec {
                        seed,
                        slowdowns,
                        device_errors,
                        link_loss,
                        outage_trains,
                    })
                }
            ),
    ]
}

fn topologies() -> impl Strategy<Value = Option<bps_topology::TopologySpec>> {
    // Distinct component graphs, including derived ones: the audit cares
    // that two cases declaring different stacks never share a key.
    prop_oneof![
        Just(None),
        Just(Some(Storage::Hdd.default_topology())),
        Just(Some(Storage::Ssd.default_topology())),
        (1usize..=4).prop_map(|servers| Some(Storage::Pvfs { servers }.default_topology())),
    ]
}

fn workloads() -> impl Strategy<Value = ResolvedWorkload> {
    let iozone = (
        prop_oneof![
            Just(IozoneMode::SeqRead),
            Just(IozoneMode::SeqWrite),
            Just(IozoneMode::RandomRead),
        ],
        prop_oneof![Just(1u64 << 18), Just(1u64 << 20)],
        prop_oneof![Just(4096u64), Just(65536u64)],
        1usize..4,
        0u64..3,
    )
        .prop_map(|(mode, file_size, record_size, processes, seed)| {
            ResolvedWorkload::Spec(WorkloadSpec::Iozone {
                mode,
                file_size,
                record_size,
                processes,
                seed,
            })
        });
    let ior = (prop_oneof![Just(1u64 << 18), Just(1u64 << 20)], 1usize..4).prop_map(
        |(file_size, processes)| {
            ResolvedWorkload::Spec(WorkloadSpec::Ior {
                file_size,
                transfer_size: 65536,
                processes,
                write: false,
            })
        },
    );
    prop_oneof![iozone, ior, Just(ResolvedWorkload::DegradedMix)]
}

fn cases() -> impl Strategy<Value = ResolvedCase> {
    (
        (
            prop_oneof![Just("a".to_string()), Just("b".to_string())],
            storages(),
            prop_oneof![
                Just(LayoutSpec::DefaultStripe),
                Just(LayoutSpec::PinnedPerFile)
            ],
            prop_oneof![Just(SievingSpec::RomioDefault), Just(SievingSpec::Disabled)],
            prop_oneof![
                Just(RetrySpec::Default),
                (1u32..5, 1u64..100).prop_map(|(max_attempts, b)| RetrySpec::Custom {
                    max_attempts,
                    base_backoff_us: b,
                    max_backoff_us: b * 10,
                }),
            ],
        ),
        faults(),
        prop_oneof![Just(0u64), Just(50u64)],
        prop_oneof![Just(None), Just(Some(1usize)), Just(Some(4usize))],
        topologies(),
        workloads(),
    )
        .prop_map(
            |(
                (label, storage, layout, sieving, retry),
                fault,
                cpu_per_op_us,
                clients,
                topology,
                workload,
            )| ResolvedCase {
                label,
                storage,
                layout,
                sieving,
                retry,
                fault,
                cpu_per_op_us,
                clients,
                topology,
                workload,
            },
        )
}

fn scales() -> [Scale; 3] {
    [Scale::tiny(), Scale::quick(), Scale::paper()]
}

fn selections() -> Vec<MetricSelection> {
    let parse = |names: &[&str]| {
        MetricSelection::parse(&names.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .expect("valid registry names")
    };
    vec![
        MetricSelection::paper(),
        parse(&["BPS"]),
        parse(&["BPS", "P99"]),
        parse(&[
            "IOPS", "BW", "ARPT", "BPS", "P50", "P99", "EffPar", "IOEff", "MaxQD",
        ]),
    ]
}

proptest! {
    /// Keys collide exactly when every simulation-feeding input agrees:
    /// the label-stripped case, the scale, and the metric selection.
    /// Anything else sharing a key would replay the wrong numbers.
    #[test]
    fn keys_collide_only_for_identical_inputs(
        a in cases(),
        b in cases(),
        sa in 0usize..3,
        sb in 0usize..3,
        la in 0usize..4,
        lb in 0usize..4,
    ) {
        let scales = scales();
        let sels = selections();
        let ka = content_key(&a, &scales[sa], &sels[la]);
        let kb = content_key(&b, &scales[sb], &sels[lb]);
        let mut sa_case = a.clone();
        sa_case.label.clear();
        let mut sb_case = b.clone();
        sb_case.label.clear();
        let same_inputs =
            sa_case == sb_case && sa == sb && sels[la].names() == sels[lb].names();
        prop_assert_eq!(
            ka == kb,
            same_inputs,
            "key collision audit failed:\n a={:?}\n b={:?}",
            a,
            b
        );
    }

    /// The same case keyed under two different *pairs* of (scale,
    /// selection) never collides unless both components match.
    #[test]
    fn scale_and_selection_are_both_keyed(
        c in cases(),
        sa in 0usize..3,
        sb in 0usize..3,
        la in 0usize..4,
        lb in 0usize..4,
    ) {
        let scales = scales();
        let sels = selections();
        let ka = content_key(&c, &scales[sa], &sels[la]);
        let kb = content_key(&c, &scales[sb], &sels[lb]);
        let same = sa == sb && sels[la].names() == sels[lb].names();
        prop_assert_eq!(ka == kb, same);
    }
}

/// Every simulation-feeding field, mutated alone, changes the key; the
/// display label does not.
#[test]
fn every_field_mutation_changes_the_key() {
    let scale = Scale::tiny();
    let sel = MetricSelection::paper();
    let base = base_case();
    let base_key = content_key(&base, &scale, &sel);

    type Mutation = Box<dyn Fn(&mut ResolvedCase)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        ("storage", Box::new(|c| c.storage = StorageSpec::Ssd)),
        ("layout", Box::new(|c| c.layout = LayoutSpec::PinnedPerFile)),
        ("sieving", Box::new(|c| c.sieving = SievingSpec::Disabled)),
        (
            "retry",
            Box::new(|c| {
                c.retry = RetrySpec::Custom {
                    max_attempts: 2,
                    base_backoff_us: 10,
                    max_backoff_us: 100,
                }
            }),
        ),
        ("fault", Box::new(|c| c.fault = Some(FaultSpec::seeded(7)))),
        ("cpu_per_op_us", Box::new(|c| c.cpu_per_op_us += 1)),
        ("clients", Box::new(|c| c.clients = Some(2))),
        (
            "topology",
            Box::new(|c| c.topology = Some(Storage::Hdd.default_topology())),
        ),
        (
            "workload",
            Box::new(|c| {
                c.workload = ResolvedWorkload::Spec(WorkloadSpec::Iozone {
                    mode: IozoneMode::SeqRead,
                    file_size: 1 << 20,
                    record_size: 8192, // one field off the base
                    processes: 1,
                    seed: 0,
                })
            }),
        ),
        (
            "workload kind",
            Box::new(|c| c.workload = ResolvedWorkload::DegradedMix),
        ),
    ];
    for (name, mutate) in &mutations {
        let mut c = base.clone();
        mutate(&mut c);
        assert_ne!(
            content_key(&c, &scale, &sel),
            base_key,
            "mutating `{name}` must change the content key"
        );
    }

    // Fault plans differing in one sub-field must not collide either.
    let mut fa = base.clone();
    fa.fault = Some(FaultSpec::seeded(7));
    let mut fb = fa.clone();
    fb.fault.as_mut().unwrap().slowdowns.push(SlowdownSpec {
        server: 0,
        factor: 2.0,
    });
    assert_ne!(
        content_key(&fa, &scale, &sel),
        content_key(&fb, &scale, &sel)
    );

    // The label is display-only: figures sharing a case under different
    // labels must share the key (that is the memo's whole point).
    let mut relabeled = base.clone();
    relabeled.label = "same case, other figure".to_string();
    assert_eq!(content_key(&relabeled, &scale, &sel), base_key);
}
