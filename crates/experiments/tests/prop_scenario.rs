//! Property tests for the scenario layer: specs survive JSON round-trips,
//! grids expand deterministically, and running a scenario is independent
//! of the sweep's thread count.

use bps_experiments::scale::Scale;
use bps_experiments::scenario::spec::{
    CaseDecl, CaseTemplate, Expect, Grid, Num, OutputSpec, Patch, Scenario, StorageSpec,
    WorkloadTemplate,
};
use bps_experiments::scenario::{engine, run_with};
use bps_experiments::sweep::SweepExec;
use bps_workloads::iozone::IozoneMode;
use bps_workloads::synthetic::Pattern;
use bps_workloads::WorkloadSpec;
use proptest::prelude::*;

fn iozone_mode(idx: usize) -> IozoneMode {
    [
        IozoneMode::SeqRead,
        IozoneMode::SeqWrite,
        IozoneMode::ReRead,
        IozoneMode::ReWrite,
        IozoneMode::RandomRead,
        IozoneMode::BackwardRead,
    ][idx % 6]
}

fn workload_spec(kind: usize, a: u64, b: u64, procs: usize, flag: bool) -> WorkloadSpec {
    match kind % 4 {
        0 => WorkloadSpec::Iozone {
            mode: iozone_mode(kind),
            file_size: a,
            record_size: b,
            processes: procs,
            seed: a ^ b,
        },
        1 => WorkloadSpec::Ior {
            file_size: a,
            transfer_size: b,
            processes: procs,
            write: flag,
        },
        2 => WorkloadSpec::Hpio {
            region_count: a % 10_000,
            region_size: 1 + b % 4096,
            region_spacing: a % 4096,
            regions_per_call: 1 + b % 512,
            processes: procs,
            collective: flag,
        },
        _ => WorkloadSpec::Synthetic {
            file_size: a,
            record_size: b,
            ops_per_process: 1 + a % 100,
            read_fraction: (a % 101) as f64 / 100.0,
            pattern: if flag {
                Pattern::Zipf {
                    exponent: 0.5 + (a % 10) as f64 / 10.0,
                }
            } else {
                Pattern::Uniform
            },
            processes: procs,
            think_time_us: b % 50,
            burst_len: a % 8,
            seed: b,
        },
    }
}

/// A small storage choice by index.
fn storage(idx: usize) -> StorageSpec {
    match idx % 3 {
        0 => StorageSpec::Hdd,
        1 => StorageSpec::Ssd,
        _ => StorageSpec::Pvfs {
            servers: 1 + idx % 4,
        },
    }
}

/// A scenario over a record-size x process-count grid of tiny IOzone runs.
fn grid_scenario(
    storage_idx: usize,
    file_kb: u64,
    record_sizes: &[u64],
    process_counts: &[usize],
) -> Scenario {
    let dims = vec![
        record_sizes
            .iter()
            .map(|&rs| {
                CaseDecl::new(
                    format!("r{rs}"),
                    Patch {
                        record_size: Some(rs),
                        ..Patch::none()
                    },
                )
            })
            .collect::<Vec<_>>(),
        process_counts
            .iter()
            .map(|&np| {
                CaseDecl::new(
                    format!("np{np}"),
                    Patch {
                        processes: Some(np),
                        ..Patch::none()
                    },
                )
            })
            .collect::<Vec<_>>(),
    ];
    Scenario {
        name: "prop".to_string(),
        title: "property-generated sweep".to_string(),
        output: OutputSpec::Cc,
        base: CaseTemplate::new(
            storage(storage_idx),
            WorkloadTemplate::Iozone {
                mode: IozoneMode::SeqRead,
                file_size: Num::Abs { n: file_kb << 10 },
                record_size: Num::Abs { n: 4 << 10 },
                processes: 1,
                seed: 0,
            },
        ),
        grid: Grid { dims },
        metrics: Vec::new(),
        deadline_ms: None,
        expect: vec![Expect::correct_direction("BPS")],
        verdict: None,
    }
}

proptest! {
    /// Every `WorkloadSpec` shape survives JSON serialization unchanged.
    #[test]
    fn workload_spec_round_trips(
        kind in 0usize..16,
        a in 1u64..10_000_000,
        b in 1u64..1_000_000,
        procs in 1usize..16,
        flag in 0usize..2,
    ) {
        let spec = workload_spec(kind, a, b, procs, flag == 1);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// Every generated scenario survives JSON round-trips, and expansion is
    /// a pure function: same scenario, same scale, same cases — with the
    /// full cross product of labels, in row-major order.
    #[test]
    fn scenario_round_trips_and_expands_deterministically(
        storage_idx in 0usize..6,
        file_kb in 16u64..256,
        n_rs in 1usize..4,
        n_np in 1usize..4,
    ) {
        let record_sizes: Vec<u64> = (0..n_rs).map(|i| 4u64 << (10 + i)).collect();
        let process_counts: Vec<usize> = (1..=n_np).collect();
        let sc = grid_scenario(storage_idx, file_kb, &record_sizes, &process_counts);

        let json = serde_json::to_string(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &sc);

        let scale = Scale::tiny();
        let once = engine::expand(&sc, &scale).unwrap();
        let twice = engine::expand(&back, &scale).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.len(), n_rs * n_np);
        let labels: Vec<&str> = once.iter().map(|c| c.label.as_str()).collect();
        for (i, rs) in record_sizes.iter().enumerate() {
            for (j, np) in process_counts.iter().enumerate() {
                prop_assert_eq!(labels[i * n_np + j], format!("r{rs}/np{np}"));
            }
        }
    }

    /// Running a scenario is byte-identical at 1 and N sweep threads.
    #[test]
    fn run_is_thread_count_invariant(
        storage_idx in 0usize..6,
        file_kb in 16u64..128,
        threads in 2usize..5,
    ) {
        let sc = grid_scenario(storage_idx, file_kb, &[4 << 10, 64 << 10], &[1]);
        let scale = Scale::tiny();
        let seq = run_with(&sc, &scale, SweepExec::new(1)).unwrap();
        let par = run_with(&sc, &scale, SweepExec::new(threads)).unwrap();
        prop_assert_eq!(format!("{seq}"), format!("{par}"));
        let (seq, par) = (seq.into_cc(), par.into_cc());
        for (a, b) in seq.cases.iter().zip(&par.cases) {
            prop_assert_eq!(a.exec_s.to_bits(), b.exec_s.to_bits());
            prop_assert_eq!(a.bps.to_bits(), b.bps.to_bits());
            prop_assert_eq!(a.iops.to_bits(), b.iops.to_bits());
        }
    }
}
