//! The bundled scenarios, by name.
//!
//! Every CC/detail sweep of the evaluation is registered here so
//! `reproduce list` can enumerate them and `reproduce run <name>` can run
//! any of them through the same engine a user-authored JSON scenario
//! uses. (Targets with no sweep behind them — the tables, Figures 1–3,
//! the overhead benchmark — stay plain code in the binary.)

use super::spec::Scenario;
use crate::figures::{
    faults, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, writes,
};

/// Every bundled scenario, in the reproduction's target order.
pub fn all() -> Vec<Scenario> {
    let mut v = vec![
        fig04::scenario(),
        fig05::scenario(),
        fig06::scenario(),
        fig07::scenario(),
        fig08::scenario(),
        fig09::scenario(),
        fig10::scenario(),
        fig11::scenario(),
        fig12::scenario(),
        writes::scenario_hdd(),
        writes::scenario_ssd(),
    ];
    v.extend(faults::FaultKind::all().into_iter().map(|k| k.scenario()));
    v
}

/// The registered names, in listing order.
pub fn names() -> Vec<String> {
    all().into_iter().map(|s| s.name).collect()
}

/// Look a bundled scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::scenario::engine;

    #[test]
    fn names_are_unique_and_stable() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names in {names:?}");
        for expected in [
            "fig4",
            "fig12",
            "writes-hdd",
            "writes-ssd",
            "faults-straggler",
            "faults-outage",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn every_bundled_scenario_expands() {
        for sc in all() {
            let cases = engine::expand(&sc, &Scale::tiny())
                .unwrap_or_else(|e| panic!("{} does not expand: {e}", sc.name));
            assert!(!cases.is_empty(), "{} expands to nothing", sc.name);
        }
    }

    #[test]
    fn every_bundled_scenario_round_trips_through_json() {
        for sc in all() {
            let json = serde_json::to_string(&sc).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(back, sc, "round-trip of {}", sc.name);
        }
    }

    #[test]
    fn find_is_by_exact_name() {
        assert_eq!(find("fig9").unwrap().name, "fig9");
        assert!(find("fig99").is_none());
        assert!(find("FIG9").is_none());
    }
}
