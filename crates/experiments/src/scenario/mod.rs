//! The declarative scenario engine: experiments as data, not code.
//!
//! Every sweep in the evaluation — and any user-authored experiment — is
//! a [`Scenario`](spec::Scenario): a serializable value naming a base
//! case (storage + workload + middleware knobs), a case grid that varies
//! it, the output to score, and the Table-1 expectations. The
//! [`engine`] expands the grid against a scale preset, fans the cases
//! through the parallel sweep executor, and scores the result; the
//! [`registry`] holds the bundled figures by name.
//!
//! `reproduce list` prints the registry, `reproduce run <name>` runs one
//! bundled scenario, and `reproduce run <path.json>` runs a scenario
//! from a JSON file with zero code changes — see `examples/scenarios/`.

pub mod engine;
pub mod registry;
pub mod spec;
pub mod store;

pub use engine::{expand, run, run_with, EngineError, ResolvedCase, ScenarioOutput};
pub use spec::Scenario;
