//! Persistent content-addressed case store — the second level of the
//! case cache.
//!
//! The in-process memo ([`super::engine`]) only helps within one run of
//! the binary; this store persists scored [`CasePoint`]s on disk so a
//! *fresh process* replays them instead of re-simulating. Entries are
//! addressed by the engine's content key (every field that feeds the
//! simulation — see [`super::engine::content_key`]) and stamped with the
//! build's code fingerprint (`BPS_CODE_FINGERPRINT`, computed by
//! `build.rs` over every workspace source file), so a binary built from
//! different sources never replays entries it did not produce.
//!
//! ## Guarantees
//!
//! - **Bit-exact replay.** Every `f64` is stored as the 16-hex-digit
//!   encoding of its IEEE-754 bits — the journal's encoding — so a
//!   cache-served report is byte-identical to a cold one.
//! - **Torn writes never poison a run.** Each entry is a header line
//!   carrying the payload length and an FNV-1a checksum; a truncated or
//!   bit-flipped entry fails the check and is treated as a miss
//!   (silently recomputed). `reproduce cache verify` names such entries.
//! - **Concurrent writers are safe.** Entries are written to a
//!   process-unique temp file and atomically renamed into place; two
//!   processes racing on one key leave one complete entry, never an
//!   interleaving.
//! - **Failures never persist.** A point whose every seed failed (panic,
//!   timeout) is environment-dependent and is not written.
//!
//! ## Control surface
//!
//! The CLI installs the store from the environment: `BPS_CACHE=0` (or
//! `--no-cache`) disables it, `BPS_CACHE_DIR` overrides the default
//! location (the build's `target/bps-cache/`). `reproduce cache
//! stats|verify|clear` inspects and manages the store.

use crate::journal::{f64_from_value, f64_to_value};
use crate::runner::CasePoint;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// On-disk entry format version (bumped on layout changes; a version
/// mismatch is a miss).
pub const VERSION: u64 = 1;

/// The fingerprint of the sources this binary was built from, stamped
/// into every entry it writes.
pub fn code_fingerprint() -> &'static str {
    env!("BPS_CODE_FINGERPRINT")
}

static STORE_HITS: AtomicU64 = AtomicU64::new(0);
static STORE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Lifetime (hits, misses) counters of the persistent store — `hits`
/// counts cases served from disk, `misses` lookups that fell through to
/// simulation (absent, stale, or corrupt entries).
pub fn store_stats() -> (u64, u64) {
    (
        STORE_HITS.load(Ordering::Relaxed),
        STORE_MISSES.load(Ordering::Relaxed),
    )
}

/// FNV-1a over a byte string — entry addressing and checksums. Matches
/// the `build.rs` fingerprint hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why an on-disk entry cannot be served.
enum EntryState {
    /// Valid and written by this build: the stored key and point.
    Fresh(String, CasePoint),
    /// Structurally valid but written by another build or format version.
    /// Carries the human-readable reason and the foreign origin marker
    /// (`build <fingerprint>` or `format v<N>`) `cache stats` groups by.
    Stale(String, String),
    /// Torn, bit-flipped, or otherwise unparseable.
    Corrupt(String),
}

fn point_to_value(key: &str, point: &CasePoint) -> serde::Value {
    let extra = serde::Value::Array(
        point
            .extra
            .iter()
            .map(|(name, v)| {
                serde::Value::Array(vec![serde::Value::Str(name.clone()), f64_to_value(*v)])
            })
            .collect(),
    );
    serde::Value::Object(vec![
        ("version".to_string(), serde::Value::UInt(VERSION)),
        (
            "fingerprint".to_string(),
            serde::Value::Str(code_fingerprint().to_string()),
        ),
        ("key".to_string(), serde::Value::Str(key.to_string())),
        ("label".to_string(), serde::Value::Str(point.label.clone())),
        ("exec_s".to_string(), f64_to_value(point.exec_s)),
        ("iops".to_string(), f64_to_value(point.iops)),
        ("bw".to_string(), f64_to_value(point.bw)),
        ("arpt".to_string(), f64_to_value(point.arpt)),
        ("bps".to_string(), f64_to_value(point.bps)),
        ("extra".to_string(), extra),
    ])
}

fn point_from_value(v: &serde::Value) -> Option<(String, CasePoint)> {
    let str_field = |name: &str| match v.field(name).ok()? {
        serde::Value::Str(s) => Some(s.clone()),
        _ => None,
    };
    let f64_field = |name: &str| f64_from_value(v.field(name).ok()?);
    let extra = match v.field("extra").ok()? {
        serde::Value::Array(items) => {
            let mut extra = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    serde::Value::Array(pair) if pair.len() == 2 => {
                        let name = match &pair[0] {
                            serde::Value::Str(n) => n.clone(),
                            _ => return None,
                        };
                        extra.push((name, f64_from_value(&pair[1])?));
                    }
                    _ => return None,
                }
            }
            extra
        }
        _ => return None,
    };
    let point = CasePoint {
        label: str_field("label")?,
        iops: f64_field("iops")?,
        bw: f64_field("bw")?,
        arpt: f64_field("arpt")?,
        bps: f64_field("bps")?,
        exec_s: f64_field("exec_s")?,
        extra,
        failed: None,
    };
    Some((str_field("key")?, point))
}

/// Render a complete entry file: `bps-case <version> <payload-len>
/// <payload-checksum>` on the first line, the one-line JSON payload on
/// the second.
fn encode_entry(key: &str, point: &CasePoint) -> String {
    let payload =
        serde_json::to_string(&point_to_value(key, point)).expect("case point encodes to JSON");
    format!(
        "bps-case {VERSION} {} {:016x}\n{payload}\n",
        payload.len(),
        fnv1a(payload.as_bytes())
    )
}

/// Classify one entry file's text: fresh (servable), stale, or corrupt.
fn parse_entry(text: &str) -> EntryState {
    let corrupt = |r: &str| EntryState::Corrupt(r.to_string());
    let Some((header, rest)) = text.split_once('\n') else {
        return corrupt("missing header line");
    };
    let fields: Vec<&str> = header.split(' ').collect();
    let [magic, version, len, sum] = fields.as_slice() else {
        return corrupt("malformed header");
    };
    if *magic != "bps-case" {
        return corrupt("bad magic");
    }
    let (Ok(version), Ok(len), Ok(sum)) = (
        version.parse::<u64>(),
        len.parse::<usize>(),
        u64::from_str_radix(sum, 16),
    ) else {
        return corrupt("malformed header");
    };
    if version != VERSION {
        return EntryState::Stale(
            format!("format version {version}; this build reads {VERSION}"),
            format!("format v{version}"),
        );
    }
    let Some(payload) = rest.get(..len) else {
        return corrupt(&format!(
            "torn entry: payload is {} of {len} byte(s)",
            rest.len().saturating_sub(1)
        ));
    };
    if fnv1a(payload.as_bytes()) != sum {
        return corrupt("checksum mismatch");
    }
    let Ok(v) = serde_json::from_str::<serde::Value>(payload) else {
        return corrupt("unparseable payload");
    };
    if let Ok(serde::Value::Str(fp)) = v.field("fingerprint") {
        if fp != code_fingerprint() {
            return EntryState::Stale(
                format!(
                    "written by build {fp}; this build is {}",
                    code_fingerprint()
                ),
                format!("build {fp}"),
            );
        }
    } else {
        return corrupt("missing fingerprint");
    }
    match point_from_value(&v) {
        Some((key, point)) => EntryState::Fresh(key, point),
        None => corrupt("malformed case point"),
    }
}

/// Aggregate counts from one walk of the store directory.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Entry files present.
    pub entries: usize,
    /// Entries this build can serve.
    pub fresh: usize,
    /// Entries written by another build or format version.
    pub stale: usize,
    /// Torn or bit-flipped entries.
    pub corrupt: usize,
    /// Total bytes of all entry files.
    pub bytes: u64,
    /// Stale entries grouped by origin (`build <fingerprint>` or
    /// `format v<N>`), most numerous first, ties by name — so `cache
    /// stats` can say *which* rebuild orphaned them.
    pub stale_origins: Vec<(String, usize)>,
}

/// One unservable entry, named for `cache verify`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryProblem {
    /// The entry's file name inside the store directory.
    pub file: String,
    /// Why it cannot be served.
    pub reason: String,
}

/// A content-addressed directory of scored case points.
pub struct CaseStore {
    dir: PathBuf,
}

impl CaseStore {
    /// A store rooted at `dir` (created lazily on first insert).
    pub fn at(dir: impl Into<PathBuf>) -> CaseStore {
        CaseStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file a key lives in: the FNV-1a hash of the key, in
    /// hex. The full key is stored *inside* the entry and compared on
    /// read, so a filename collision degrades to a miss, never a wrong
    /// answer.
    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.case", fnv1a(key.as_bytes())))
    }

    /// The stored point for a content key, or `None` (entry absent,
    /// stale, corrupt, or a filename collision). Misses are silent —
    /// the engine just simulates.
    pub fn lookup(&self, key: &str) -> Option<CasePoint> {
        use bps_telemetry::Counter;
        let found =
            fs::read_to_string(self.entry_path(key))
                .ok()
                .and_then(|text| match parse_entry(&text) {
                    EntryState::Fresh(stored_key, point) if stored_key == key => Some(point),
                    EntryState::Stale(..) => {
                        bps_telemetry::incr(Counter::CacheL2Stale);
                        None
                    }
                    EntryState::Corrupt(_) => {
                        bps_telemetry::incr(Counter::CacheL2Corrupt);
                        None
                    }
                    EntryState::Fresh(..) => None,
                });
        match &found {
            Some(_) => {
                STORE_HITS.fetch_add(1, Ordering::Relaxed);
                bps_telemetry::incr(Counter::CacheL2Hits);
            }
            None => {
                STORE_MISSES.fetch_add(1, Ordering::Relaxed);
                bps_telemetry::incr(Counter::CacheL2Misses);
            }
        };
        found
    }

    /// Persist a scored point under its content key. Failed points are
    /// skipped (a timeout on this machine says nothing about the next),
    /// and I/O errors are reported but never fatal — losing cache
    /// durability must not kill a healthy run.
    pub fn insert(&self, key: &str, point: &CasePoint) {
        if point.failed.is_some() {
            return;
        }
        if let Err(e) = self.try_insert(key, point) {
            eprintln!(
                "warning: case store: cannot write entry under {}: {e}",
                self.dir.display()
            );
        } else {
            bps_telemetry::incr(bps_telemetry::Counter::CacheL2Writes);
        }
    }

    fn try_insert(&self, key: &str, point: &CasePoint) -> io::Result<()> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, encode_entry(key, point))?;
        fs::rename(&tmp, self.entry_path(key)).inspect_err(|_| {
            fs::remove_file(&tmp).ok();
        })
    }

    /// Every entry file, in name order (deterministic listings).
    fn entry_files(&self) -> Vec<PathBuf> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut files: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect();
        files.sort();
        files
    }

    /// Walk the store and count entries by state.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats::default();
        let mut origins: Vec<(String, usize)> = Vec::new();
        for path in self.entry_files() {
            s.entries += 1;
            s.bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            match fs::read_to_string(&path).map(|t| parse_entry(&t)) {
                Ok(EntryState::Fresh(..)) => s.fresh += 1,
                Ok(EntryState::Stale(_, origin)) => {
                    s.stale += 1;
                    match origins.iter_mut().find(|(o, _)| *o == origin) {
                        Some((_, n)) => *n += 1,
                        None => origins.push((origin, 1)),
                    }
                }
                _ => s.corrupt += 1,
            }
        }
        origins.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        s.stale_origins = origins;
        s
    }

    /// Walk the store and name every entry that cannot be served,
    /// with the reason. Returns `(entries checked, problems)`.
    pub fn verify(&self) -> (usize, Vec<EntryProblem>) {
        let mut checked = 0;
        let mut problems = Vec::new();
        for path in self.entry_files() {
            checked += 1;
            let file = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let reason = match fs::read_to_string(&path).map(|t| parse_entry(&t)) {
                Ok(EntryState::Fresh(..)) => continue,
                Ok(EntryState::Stale(r, _)) => format!("stale: {r}"),
                Ok(EntryState::Corrupt(r)) => format!("corrupt: {r}"),
                Err(e) => format!("unreadable: {e}"),
            };
            problems.push(EntryProblem { file, reason });
        }
        (checked, problems)
    }

    /// Remove every entry (and any leftover temp file); returns the
    /// number of entries removed.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.extension().is_some_and(|x| x == "case") {
                fs::remove_file(&path)?;
                removed += 1;
            } else if name.starts_with(".tmp-") {
                fs::remove_file(&path).ok();
            }
        }
        Ok(removed)
    }
}

fn active_slot() -> &'static Mutex<Option<Arc<CaseStore>>> {
    static ACTIVE: OnceLock<Mutex<Option<Arc<CaseStore>>>> = OnceLock::new();
    ACTIVE.get_or_init(Default::default)
}

/// Install (or clear) the process-wide store the engine consults. The
/// CLI installs [`from_env`]'s store unless `--no-cache` is given; the
/// engine's own unit tests never install one, so in-process tests stay
/// hermetic.
pub fn set_active(store: Option<Arc<CaseStore>>) {
    *active_slot().lock().expect("case store slot poisoned") = store;
}

/// The process-wide store, if one is installed.
pub fn active() -> Option<Arc<CaseStore>> {
    active_slot()
        .lock()
        .expect("case store slot poisoned")
        .clone()
}

/// Whether the environment enables the persistent cache (`BPS_CACHE=0`
/// turns it off; anything else, including unset, leaves it on).
pub fn cache_enabled() -> bool {
    std::env::var("BPS_CACHE").map(|v| v != "0").unwrap_or(true)
}

/// The store directory the environment selects: `BPS_CACHE_DIR` if set,
/// else `bps-cache/` under the build's `target/` directory (found from
/// the running binary's path), else `target/bps-cache` relative to the
/// working directory.
pub fn env_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BPS_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        if let Some(target) = exe
            .ancestors()
            .find(|a| a.file_name().is_some_and(|n| n == "target"))
        {
            return target.join("bps-cache");
        }
    }
    PathBuf::from("target/bps-cache")
}

/// The store the environment asks for, or `None` when `BPS_CACHE=0`.
pub fn from_env() -> Option<CaseStore> {
    cache_enabled().then(|| CaseStore::at(env_dir()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bps_store_tests-{}-{name}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn point(x: f64) -> CasePoint {
        CasePoint {
            label: "hdd".to_string(),
            iops: x,
            bw: x * 0.5,
            arpt: f64::NAN,
            bps: -x,
            exec_s: x + 0.125,
            extra: vec![("P99".to_string(), x * 2.0)],
            failed: None,
        }
    }

    #[test]
    fn round_trips_bits_exactly_including_nan() {
        let store = CaseStore::at(tmp("roundtrip"));
        let p = point(std::f64::consts::PI);
        store.insert("case-a", &p);
        let back = store.lookup("case-a").expect("entry written");
        assert_eq!(back.label, p.label);
        assert_eq!(back.iops.to_bits(), p.iops.to_bits());
        assert_eq!(back.bw.to_bits(), p.bw.to_bits());
        // NaN survives bit-for-bit — the point of the hex encoding.
        assert_eq!(back.arpt.to_bits(), p.arpt.to_bits());
        assert_eq!(back.bps.to_bits(), p.bps.to_bits());
        assert_eq!(back.exec_s.to_bits(), p.exec_s.to_bits());
        assert_eq!(back.extra.len(), 1);
        assert_eq!(back.extra[0].0, "P99");
        assert_eq!(back.extra[0].1.to_bits(), p.extra[0].1.to_bits());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn absent_entry_is_a_miss() {
        let store = CaseStore::at(tmp("absent"));
        assert!(store.lookup("nothing-here").is_none());
    }

    #[test]
    fn truncated_entry_is_a_silent_miss_and_verify_names_it() {
        let store = CaseStore::at(tmp("torn"));
        store.insert("case-t", &point(1.0));
        let path = store
            .dir()
            .join(format!("{:016x}.case", fnv1a("case-t".as_bytes())));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 20]).unwrap();
        assert!(store.lookup("case-t").is_none());
        let (checked, problems) = store.verify();
        assert_eq!(checked, 1);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].reason.contains("torn"), "{:?}", problems[0]);
        assert!(path.to_string_lossy().contains(&problems[0].file));
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn bit_flipped_payload_fails_the_checksum() {
        let store = CaseStore::at(tmp("flip"));
        store.insert("case-f", &point(2.0));
        let path = store
            .dir()
            .join(format!("{:016x}.case", fnv1a("case-f".as_bytes())));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert!(store.lookup("case-f").is_none());
        let (_, problems) = store.verify();
        assert_eq!(problems.len(), 1);
        assert!(
            problems[0].reason.contains("checksum")
                || problems[0].reason.contains("unparseable")
                || problems[0].reason.contains("malformed"),
            "{:?}",
            problems[0]
        );
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn foreign_fingerprint_is_stale_not_served() {
        let store = CaseStore::at(tmp("stale"));
        store.insert("case-s", &point(3.0));
        let path = store
            .dir()
            .join(format!("{:016x}.case", fnv1a("case-s".as_bytes())));
        // Rewrite the entry as a different build would have: swap the
        // fingerprint and restamp the header so the checksum still holds.
        let text = fs::read_to_string(&path).unwrap();
        let payload = text.split_once('\n').unwrap().1.trim_end();
        let forged = payload.replace(code_fingerprint(), "deadbeefdeadbeef");
        assert_ne!(forged, payload, "fingerprint must appear in the payload");
        fs::write(
            &path,
            format!(
                "bps-case {VERSION} {} {:016x}\n{forged}\n",
                forged.len(),
                fnv1a(forged.as_bytes())
            ),
        )
        .unwrap();
        assert!(store.lookup("case-s").is_none());
        let stats = store.stats();
        assert_eq!((stats.entries, stats.stale, stats.corrupt), (1, 1, 0));
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn filename_collision_degrades_to_a_miss() {
        let store = CaseStore::at(tmp("collide"));
        store.insert("key-a", &point(4.0));
        // Simulate two keys hashing to one file: move a's entry where
        // b's would live. The embedded key no longer matches -> miss.
        let a = store.dir().join(format!("{:016x}.case", fnv1a(b"key-a")));
        let b = store.dir().join(format!("{:016x}.case", fnv1a(b"key-b")));
        fs::rename(&a, &b).unwrap();
        assert!(store.lookup("key-b").is_none());
        assert!(store.lookup("key-a").is_none());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn failed_points_are_never_persisted() {
        let store = CaseStore::at(tmp("failed"));
        let mut p = point(5.0);
        p.failed = Some(crate::supervise::FailureKind::Timeout);
        store.insert("case-x", &p);
        assert!(store.lookup("case-x").is_none());
        assert_eq!(store.stats().entries, 0);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn stats_verify_clear_round_trip() {
        let store = CaseStore::at(tmp("admin"));
        for i in 0..3 {
            store.insert(&format!("case-{i}"), &point(i as f64));
        }
        let s = store.stats();
        assert_eq!((s.entries, s.fresh, s.stale, s.corrupt), (3, 3, 0, 0));
        assert!(s.bytes > 0);
        let (checked, problems) = store.verify();
        assert_eq!((checked, problems.len()), (3, 0));
        assert_eq!(store.clear().unwrap(), 3);
        assert_eq!(store.stats().entries, 0);
        assert_eq!(store.clear().unwrap(), 0);
        fs::remove_dir_all(store.dir()).ok();
    }
}
