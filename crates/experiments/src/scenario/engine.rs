//! Expanding and running a [`Scenario`].
//!
//! The pipeline is the same for every experiment, bundled or
//! user-authored:
//!
//! 1. [`expand`] — cross the case grid, merge each cell's patches onto
//!    the base template, and resolve every [`Num`](super::spec::Num)
//!    against the scale preset. The result is a list of pure-data
//!    [`ResolvedCase`]s: deterministic, thread-count-independent, and
//!    checkable without running anything.
//! 2. [`run`] (or [`run_with`] with an explicit executor) — build the
//!    workloads, fan `cases × seeds` through
//!    [`SweepExec`](crate::sweep::SweepExec), and score the points into a
//!    [`ScenarioOutput`].
//! 3. [`violations`] — compare a scored CC figure against the scenario's
//!    Table-1 expectations and verdict.

use super::spec::{
    DeviceErrorSpec, Expect, FaultSpec, LayoutSpec, OutputSpec, Patch, RetrySpec, Scenario,
    SievingSpec, StorageSpec, Verdict, WorkloadTemplate,
};
use crate::figures::common::{CcFigure, DetailSeries};
use crate::figures::faults::DegradedMix;
use crate::runner::{CasePoint, CaseSpec, LayoutPolicy, Storage};
use crate::scale::Scale;
use crate::sweep::SweepExec;
use bps_core::metrics::{registry, MetricSelection};
use bps_core::time::{Dur, Nanos};
use bps_middleware::sieving::SievingConfig;
use bps_middleware::stack::RetryPolicy;
use bps_sim::fault::{FaultPlan, Outage, SlowdownWindow};
use bps_workloads::spec::Workload;
use bps_workloads::WorkloadSpec;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// What class of problem an [`EngineError`] is — mapped by the
/// `reproduce` CLI onto distinct exit codes (invalid-spec 3, io 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineErrorKind {
    /// The scenario itself is wrong: bad JSON, an invalid grid, a patch
    /// that does not apply, an unknown metric, an unbuildable workload.
    InvalidSpec,
    /// The environment failed: an unreadable scenario file.
    Io,
}

/// Error expanding or running a scenario: an invalid grid, a patch that
/// does not apply to the base workload, an unbuildable workload spec, or
/// an unreadable scenario file.
#[derive(Debug)]
pub struct EngineError {
    kind: EngineErrorKind,
    msg: String,
}

impl EngineError {
    /// The failure class (drives the CLI exit code).
    pub fn kind(&self) -> EngineErrorKind {
        self.kind
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for EngineError {}

fn err(msg: impl fmt::Display) -> EngineError {
    EngineError {
        kind: EngineErrorKind::InvalidSpec,
        msg: msg.to_string(),
    }
}

fn err_io(msg: impl fmt::Display) -> EngineError {
    EngineError {
        kind: EngineErrorKind::Io,
        msg: msg.to_string(),
    }
}

/// The workload of a fully expanded case.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedWorkload {
    /// A concrete generator description.
    Spec(WorkloadSpec),
    /// The Set 5 degraded-mode mix (sized from the scale at build time).
    DegradedMix,
}

/// One fully expanded case: every knob concrete, no scale references
/// left. Pure data — expansion never runs the simulator, so `reproduce
/// check` can validate a scenario file without paying for a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedCase {
    /// The case label ("hdd", "64KB", "np=4/gap=8B", ...).
    pub label: String,
    /// Storage under test.
    pub storage: StorageSpec,
    /// Layout policy.
    pub layout: LayoutSpec,
    /// Sieving configuration.
    pub sieving: SievingSpec,
    /// Retry policy.
    pub retry: RetrySpec,
    /// Fault plan; `None` = healthy cluster.
    pub fault: Option<FaultSpec>,
    /// Per-op CPU cost, microseconds.
    pub cpu_per_op_us: u64,
    /// Client node count; `None` = one per workload process.
    pub clients: Option<usize>,
    /// Explicit component graph; `None` = the prebuilt graph derived
    /// from `storage`.
    pub topology: Option<bps_topology::TopologySpec>,
    /// The workload.
    pub workload: ResolvedWorkload,
}

impl ResolvedCase {
    /// The component graph this case actually runs: the explicit
    /// `topology` when the scenario declares one, otherwise the prebuilt
    /// graph derived from `storage`.
    pub fn effective_topology(&self) -> bps_topology::TopologySpec {
        if let Some(t) = &self.topology {
            return t.clone();
        }
        match self.storage {
            StorageSpec::Hdd => Storage::Hdd,
            StorageSpec::Ssd => Storage::Ssd,
            StorageSpec::Pvfs { servers } => Storage::Pvfs { servers },
        }
        .default_topology()
    }

    /// One-line workload description for display (`reproduce topology`).
    pub fn workload_summary(&self) -> String {
        match &self.workload {
            ResolvedWorkload::Spec(w) => w.summary(),
            ResolvedWorkload::DegradedMix => "degraded-mode mix (sized from scale)".to_string(),
        }
    }
}

/// Apply one grid patch to a workload template. Workload-shaping fields
/// (`record_size`, `processes`, `region_spacing`) only apply to templates
/// that have them; patching anything else is an error, so a typo'd
/// scenario file fails loudly instead of silently running the base case.
fn patch_workload(
    base: &WorkloadTemplate,
    patch: &Patch,
    label: &str,
) -> Result<WorkloadTemplate, EngineError> {
    use super::spec::Num;
    let mut w = base.clone();
    let inapplicable = |field: &str, template: &str| {
        Err(err(format!(
            "case `{label}`: patch field `{field}` does not apply to the {template} workload \
             template"
        )))
    };
    if let Some(rs) = patch.record_size {
        match &mut w {
            WorkloadTemplate::Iozone { record_size, .. } => *record_size = Num::Abs { n: rs },
            WorkloadTemplate::Fixed { .. } => return inapplicable("record_size", "Fixed"),
            WorkloadTemplate::IorShared { .. } => return inapplicable("record_size", "IorShared"),
            WorkloadTemplate::Hpio { .. } => return inapplicable("record_size", "Hpio"),
            WorkloadTemplate::DegradedMix => return inapplicable("record_size", "DegradedMix"),
        }
    }
    if let Some(gap) = patch.region_spacing {
        match &mut w {
            WorkloadTemplate::Hpio { region_spacing, .. } => *region_spacing = Num::Abs { n: gap },
            WorkloadTemplate::Fixed { .. } => return inapplicable("region_spacing", "Fixed"),
            WorkloadTemplate::Iozone { .. } => return inapplicable("region_spacing", "Iozone"),
            WorkloadTemplate::IorShared { .. } => {
                return inapplicable("region_spacing", "IorShared")
            }
            WorkloadTemplate::DegradedMix => return inapplicable("region_spacing", "DegradedMix"),
        }
    }
    if let Some(np) = patch.processes {
        match &mut w {
            WorkloadTemplate::Iozone { processes, .. }
            | WorkloadTemplate::IorShared { processes, .. }
            | WorkloadTemplate::Hpio { processes, .. } => *processes = np,
            WorkloadTemplate::Fixed { .. } => return inapplicable("processes", "Fixed"),
            WorkloadTemplate::DegradedMix => return inapplicable("processes", "DegradedMix"),
        }
    }
    Ok(w)
}

/// Resolve a patched template's `Num` expressions into a concrete
/// workload description.
fn resolve_workload(w: &WorkloadTemplate, scale: &Scale) -> ResolvedWorkload {
    match w.clone() {
        WorkloadTemplate::Fixed { spec } => ResolvedWorkload::Spec(spec),
        WorkloadTemplate::Iozone {
            mode,
            file_size,
            record_size,
            processes,
            seed,
        } => ResolvedWorkload::Spec(WorkloadSpec::Iozone {
            mode,
            file_size: file_size.resolve(scale, processes),
            record_size: record_size.resolve(scale, processes),
            processes,
            seed,
        }),
        WorkloadTemplate::IorShared {
            file_size,
            transfer_size,
            write,
            processes,
        } => ResolvedWorkload::Spec(WorkloadSpec::Ior {
            file_size: file_size.resolve(scale, processes),
            transfer_size,
            processes,
            write,
        }),
        WorkloadTemplate::Hpio {
            region_count,
            region_size,
            region_spacing,
            regions_per_call,
            processes,
            collective,
        } => ResolvedWorkload::Spec(WorkloadSpec::Hpio {
            region_count: region_count.resolve(scale, processes),
            region_size,
            region_spacing: region_spacing.resolve(scale, processes),
            regions_per_call: regions_per_call.resolve(scale, processes),
            processes,
            collective,
        }),
        WorkloadTemplate::DegradedMix => ResolvedWorkload::DegradedMix,
    }
}

/// Expand a scenario's case grid against a scale preset.
///
/// The grid is the cross product of its dimensions, row-major (later
/// dimensions vary fastest); labels join with `/`; later dimensions'
/// patches override earlier ones on conflicting fields. The output is
/// identical at any `BPS_THREADS` setting — expansion is single-threaded
/// pure data flow.
pub fn expand(scenario: &Scenario, scale: &Scale) -> Result<Vec<ResolvedCase>, EngineError> {
    if scenario.grid.dims.is_empty() {
        return Err(err(format!(
            "scenario `{}`: grid has no dimensions",
            scenario.name
        )));
    }
    // Every metric name a scenario can mention — the `metrics` selection,
    // a Detail output's highlighted metric, and each expectation — must
    // resolve in the registry, so `reproduce check` catches typos without
    // running anything.
    for name in &scenario.metrics {
        if registry().find(name).is_none() {
            return Err(err(format!(
                "scenario `{}`: unknown metric `{name}` (valid metrics: {})",
                scenario.name,
                registry().listing()
            )));
        }
    }
    if let OutputSpec::Detail { metric } = &scenario.output {
        if registry().find(metric).is_none() {
            return Err(err(format!(
                "scenario `{}`: unknown detail metric `{metric}` (valid metrics: {})",
                scenario.name,
                registry().listing()
            )));
        }
    }
    for e in &scenario.expect {
        if registry().find(&e.metric).is_none() {
            return Err(err(format!(
                "scenario `{}`: expectation names unknown metric `{}` (valid metrics: {})",
                scenario.name,
                e.metric,
                registry().listing()
            )));
        }
    }
    // An explicit component graph must be structurally sound before
    // anything runs, mirroring the metric checks above.
    if let Some(topology) = &scenario.base.topology {
        topology
            .validate()
            .map_err(|e| err(format!("scenario `{}`: {e}", scenario.name)))?;
    }
    // Cross the dimensions into (label, patches-in-dimension-order).
    let mut combos: Vec<(String, Vec<&Patch>)> = vec![(String::new(), Vec::new())];
    for (d, dim) in scenario.grid.dims.iter().enumerate() {
        if dim.is_empty() {
            return Err(err(format!(
                "scenario `{}`: grid dimension {d} is empty",
                scenario.name
            )));
        }
        let mut next = Vec::with_capacity(combos.len() * dim.len());
        for (label, patches) in &combos {
            for cell in dim {
                let label = if label.is_empty() {
                    cell.label.clone()
                } else {
                    format!("{label}/{}", cell.label)
                };
                let mut patches = patches.clone();
                patches.push(&cell.patch);
                next.push((label, patches));
            }
        }
        combos = next;
    }
    let base = &scenario.base;
    let mut cases = Vec::with_capacity(combos.len());
    for (label, patches) in combos {
        let mut storage = base.storage;
        let mut layout = base.layout.unwrap_or(LayoutSpec::DefaultStripe);
        let mut fault = base.fault.clone();
        let mut workload = base.workload.clone();
        for patch in patches {
            if let Some(s) = patch.storage {
                storage = s;
            }
            if let Some(l) = patch.layout {
                layout = l;
            }
            if let Some(f) = &patch.fault {
                fault = Some(f.clone());
            }
            workload = patch_workload(&workload, patch, &label)?;
        }
        let workload = resolve_workload(&workload, scale);
        if let ResolvedWorkload::Spec(spec) = &workload {
            // Surface invalid specs at expansion time; `build` re-checks.
            spec.build()
                .map_err(|e| err(format!("case `{label}`: {e}")))?;
        }
        cases.push(ResolvedCase {
            label,
            storage,
            layout,
            sieving: base.sieving.unwrap_or(SievingSpec::RomioDefault),
            retry: base.retry.unwrap_or(RetrySpec::Default),
            fault,
            cpu_per_op_us: base.cpu_per_op_us.unwrap_or(5),
            clients: base.clients,
            topology: base.topology.clone(),
            workload,
        });
    }
    Ok(cases)
}

/// Build a concrete [`FaultPlan`] from its declarative form, applying the
/// pieces in field order (slowdowns, device errors, link loss, outage
/// trains) exactly as the hand-built plans chained their builders.
pub fn build_fault(spec: &FaultSpec) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: spec.seed,
        ..FaultPlan::none()
    };
    for s in &spec.slowdowns {
        plan = plan.with_slowdown(SlowdownWindow {
            server: s.server,
            start: Nanos::ZERO,
            end: Nanos::from_secs(1 << 20),
            factor: s.factor,
        });
    }
    for d in &spec.device_errors {
        plan = match *d {
            DeviceErrorSpec::Uniform { rate } => plan.with_device_errors(rate),
            DeviceErrorSpec::Server { server, rate } => plan.with_device_errors_on(server, rate),
        };
    }
    if let Some(ll) = &spec.link_loss {
        plan = plan.with_link_loss(ll.rate, Dur::from_millis(ll.retransmit_delay_ms));
    }
    for t in &spec.outage_trains {
        for cycle in 0..t.cycles {
            let start = 10 + t.period_ms * cycle + t.phase_ms;
            plan = plan.with_outage(Outage {
                server: t.server,
                start: Nanos::from_millis(start),
                end: Nanos::from_millis(start + t.width_ms),
            });
        }
    }
    plan
}

fn build_workload(w: &ResolvedWorkload, scale: &Scale) -> Result<Box<dyn Workload>, EngineError> {
    match w {
        ResolvedWorkload::Spec(spec) => spec.build().map_err(err),
        ResolvedWorkload::DegradedMix => Ok(Box::new(DegradedMix::from_scale(scale))),
    }
}

/// The scored result of a scenario run.
#[derive(Debug, Clone)]
pub enum ScenarioOutput {
    /// A CC bar chart (the scenario's `output` was [`OutputSpec::Cc`]).
    Cc(CcFigure),
    /// A detail series ([`OutputSpec::Detail`]).
    Detail(DetailSeries),
}

impl ScenarioOutput {
    /// The CC figure, if this output is one.
    pub fn as_cc(&self) -> Option<&CcFigure> {
        match self {
            ScenarioOutput::Cc(fig) => Some(fig),
            ScenarioOutput::Detail(_) => None,
        }
    }

    /// The detail series, if this output is one.
    pub fn as_detail(&self) -> Option<&DetailSeries> {
        match self {
            ScenarioOutput::Cc(_) => None,
            ScenarioOutput::Detail(s) => Some(s),
        }
    }

    /// The CC figure, panicking on a detail output (for callers that know
    /// the scenario's output kind statically — the bundled figures).
    pub fn into_cc(self) -> CcFigure {
        match self {
            ScenarioOutput::Cc(fig) => fig,
            ScenarioOutput::Detail(s) => panic!("scenario produced a detail series: {}", s.label),
        }
    }

    /// The detail series, panicking on a CC output.
    pub fn into_detail(self) -> DetailSeries {
        match self {
            ScenarioOutput::Detail(s) => s,
            ScenarioOutput::Cc(fig) => panic!("scenario produced a CC figure: {}", fig.label),
        }
    }
}

impl fmt::Display for ScenarioOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioOutput::Cc(fig) => fig.fmt(f),
            ScenarioOutput::Detail(s) => s.fmt(f),
        }
    }
}

/// Process-lifetime cache of scored case results, keyed by the full
/// simulation-relevant content of a resolved case plus the scale preset.
///
/// Figures share cases — the common baseline points of fig04/fig05/fig09,
/// and `reproduce all`'s summary re-running every CC figure — and a
/// [`ResolvedCase`] (minus its per-figure label) together with the
/// [`Scale`] determines the simulated runs exactly: the workload build,
/// cluster construction, and seed list are all pure functions of them. So
/// a shared case simulates once per process and every later occurrence is
/// a lookup. Disable with `BPS_MEMO=0` (the golden CI job diffs both
/// modes).
fn memo_cache() -> &'static Mutex<HashMap<String, CasePoint>> {
    static MEMO: OnceLock<Mutex<HashMap<String, CasePoint>>> = OnceLock::new();
    MEMO.get_or_init(Default::default)
}

static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide CLI metric selection (`reproduce --metrics a,b,c`).
fn metric_override() -> &'static Mutex<Option<Vec<String>>> {
    static OVERRIDE: OnceLock<Mutex<Option<Vec<String>>>> = OnceLock::new();
    OVERRIDE.get_or_init(Default::default)
}

/// Set (or clear, with `None`) the CLI metric selection. It applies to
/// every scenario that does not pin its own `metrics` list — a scenario's
/// explicit selection always wins, so a bundled figure that depends on a
/// particular metric set keeps it under any CLI flags.
pub fn set_metric_override(names: Option<Vec<String>>) {
    *metric_override().lock().expect("metric override poisoned") = names;
}

/// The metric selection a scenario run computes and reports: the
/// scenario's `metrics` list if non-empty, else the CLI override, else
/// the paper four — always unioned with any metric the output or an
/// expectation references, so scoring never misses a value it needs.
fn effective_selection(scenario: &Scenario) -> Result<MetricSelection, EngineError> {
    let cli = metric_override()
        .lock()
        .expect("metric override poisoned")
        .clone();
    let base = if !scenario.metrics.is_empty() {
        MetricSelection::parse(&scenario.metrics)
    } else if let Some(names) = &cli {
        MetricSelection::parse(names)
    } else {
        Ok(MetricSelection::paper())
    }
    .map_err(|e| err(format!("scenario `{}`: {e}", scenario.name)))?;
    let mut referenced: Vec<&str> = Vec::new();
    if let OutputSpec::Detail { metric } = &scenario.output {
        referenced.push(metric);
    }
    referenced.extend(scenario.expect.iter().map(|e| e.metric.as_str()));
    base.with_names(&referenced)
        .map_err(|e| err(format!("scenario `{}`: {e}", scenario.name)))
}

/// Whether cross-figure memoization is on (default; `BPS_MEMO=0` turns it
/// off).
pub fn memo_enabled() -> bool {
    std::env::var("BPS_MEMO").map(|v| v != "0").unwrap_or(true)
}

/// Lifetime (hits, misses) counters of the case memo — `misses` counts
/// cases actually simulated, `hits` cases served from cache.
pub fn memo_stats() -> (u64, u64) {
    (
        MEMO_HITS.load(Ordering::Relaxed),
        MEMO_MISSES.load(Ordering::Relaxed),
    )
}

/// Content key of a case: every field that feeds the simulation, with the
/// display label — which legitimately differs between figures sharing a
/// case — stripped out.
fn case_key(case: &ResolvedCase, scale: &Scale, selection: &MetricSelection) -> String {
    let mut c = case.clone();
    c.label.clear();
    // Scale is included because DegradedMix workloads and the seed list
    // are derived from it at run time; the metric selection because a
    // cached point only carries the extras it was scored with.
    format!("{c:?}|{scale:?}|{:?}", selection.names())
}

/// Public form of [`case_key`]: the exact content key the two-level
/// case cache and the run journal index by. Exposed so the key-collision
/// audit (`tests/prop_cache.rs`) can check that specs differing in any
/// simulation-feeding field never share a key.
pub fn content_key(case: &ResolvedCase, scale: &Scale, selection: &MetricSelection) -> String {
    case_key(case, scale, selection)
}

/// Build a runnable [`CaseSpec`] from a resolved case and its built
/// workload — the one translation both execution paths share.
fn case_spec<'a>(c: &ResolvedCase, w: &'a dyn Workload) -> CaseSpec<'a> {
    let storage = match c.storage {
        StorageSpec::Hdd => Storage::Hdd,
        StorageSpec::Ssd => Storage::Ssd,
        StorageSpec::Pvfs { servers } => Storage::Pvfs { servers },
    };
    let mut spec = CaseSpec::new(storage, w);
    spec.layout = match c.layout {
        LayoutSpec::DefaultStripe => LayoutPolicy::DefaultStripe,
        LayoutSpec::PinnedPerFile => LayoutPolicy::PinnedPerFile,
    };
    spec.sieving = match c.sieving {
        SievingSpec::RomioDefault => SievingConfig::romio_default(),
        SievingSpec::Disabled => SievingConfig::disabled(),
    };
    spec.retry = match c.retry {
        RetrySpec::Default => RetryPolicy::default(),
        RetrySpec::Custom {
            max_attempts,
            base_backoff_us,
            max_backoff_us,
        } => RetryPolicy {
            max_attempts,
            base_backoff: Dur::from_micros(base_backoff_us),
            max_backoff: Dur::from_micros(max_backoff_us),
            timeout: None,
        },
    };
    spec.cpu_per_op = Dur::from_micros(c.cpu_per_op_us);
    if let Some(f) = &c.fault {
        spec.fault = build_fault(f);
    }
    if let Some(clients) = c.clients {
        spec.clients = clients;
    }
    spec.topology = c.topology.clone();
    spec
}

/// Supervision options of one scenario run: the journal to replay/record,
/// the per-unit wall-clock deadline, and the failure budget. The default
/// (all `None`) runs the plain unsupervised sweep path.
#[derive(Default, Clone)]
pub struct RunOpts {
    /// Journal to replay completed units from and record fresh units to.
    pub journal: Option<std::sync::Arc<crate::journal::Journal>>,
    /// Per-unit wall-clock deadline.
    pub deadline: Option<std::time::Duration>,
    /// Abort the run (exit 7) once more than this many units fail.
    pub max_failures: Option<usize>,
}

impl RunOpts {
    fn supervised(&self) -> bool {
        self.journal.is_some() || self.deadline.is_some() || self.max_failures.is_some()
    }

    /// The process-wide options installed by the CLI, with the scenario's
    /// own `deadline_ms` outranking `--deadline-ms` (mirroring how a
    /// scenario's `metrics` list outranks `--metrics`).
    fn from_globals(scenario: &Scenario) -> RunOpts {
        RunOpts {
            journal: crate::journal::active(),
            deadline: scenario
                .deadline_ms
                .or_else(crate::supervise::deadline_override)
                .map(std::time::Duration::from_millis),
            max_failures: crate::supervise::max_failures(),
        }
    }
}

/// Expand, run and score a scenario with the environment's executor
/// (`BPS_THREADS`) and the process-wide supervision options (journal,
/// deadline, failure budget) installed by the CLI.
pub fn run(scenario: &Scenario, scale: &Scale) -> Result<ScenarioOutput, EngineError> {
    run_with(scenario, scale, SweepExec::from_env())
}

/// [`run`] with an explicit executor — the output is byte-identical at
/// any thread count.
pub fn run_with(
    scenario: &Scenario,
    scale: &Scale,
    exec: SweepExec,
) -> Result<ScenarioOutput, EngineError> {
    run_with_opts(
        scenario,
        scale,
        exec,
        memo_enabled(),
        &RunOpts::from_globals(scenario),
    )
}

/// [`run_with`] with explicit memoization control — tests use this to
/// pin the memo on or off without mutating process environment.
#[cfg(test)]
fn run_with_memo(
    scenario: &Scenario,
    scale: &Scale,
    exec: SweepExec,
    memo_on: bool,
) -> Result<ScenarioOutput, EngineError> {
    run_with_opts(scenario, scale, exec, memo_on, &RunOpts::default())
}

/// Run the missing cases through the supervised executor: one
/// [`UnitTask`](crate::supervise::UnitTask) per `(case, seed)`, journal
/// replay for units already on disk, journal append for fresh ones, and
/// the watchdog enforcing the per-unit deadline. Healthy units produce
/// the exact `f64`s of the plain path, so the output stays byte-identical
/// to an unsupervised run.
fn run_cases_supervised(
    resolved: &[ResolvedCase],
    missing: &[usize],
    keys: &[String],
    scale: &Scale,
    selection: &MetricSelection,
    exec: SweepExec,
    opts: &RunOpts,
) -> (Vec<CasePoint>, Vec<crate::supervise::UnitFailure>) {
    use crate::runner::UnitValues;
    use crate::supervise::{self, FailureKind, UnitOutcome, UnitTask};
    use std::sync::Arc;

    let seeds = scale.seeds();
    let selection = Arc::new(selection.clone());
    let mut outcomes: Vec<Vec<Option<UnitOutcome>>> = vec![vec![None; seeds.len()]; missing.len()];
    let mut tasks: Vec<UnitTask> = Vec::new();
    let mut task_pos: Vec<(usize, usize)> = Vec::new();
    for (mi, &i) in missing.iter().enumerate() {
        let case = Arc::new(resolved[i].clone());
        for (si, &seed) in seeds.iter().enumerate() {
            let key = if opts.journal.is_some() {
                format!("{}#{seed}", keys[i])
            } else {
                String::new()
            };
            if let Some(journal) = &opts.journal {
                if let Some(values) = journal.lookup(&key) {
                    outcomes[mi][si] = Some(UnitOutcome::Done(values));
                    continue;
                }
            }
            let case = case.clone();
            let selection = selection.clone();
            let scale = *scale;
            let label = resolved[i].label.clone();
            task_pos.push((mi, si));
            tasks.push(UnitTask {
                label: resolved[i].label.clone(),
                seed,
                key,
                work: Arc::new(move || {
                    supervise::apply_test_hooks(&label);
                    let workload = build_workload(&case.workload, &scale)
                        .map_err(|e| (FailureKind::InvalidSpec, e.to_string()))?;
                    let spec = case_spec(&case, workload.as_ref());
                    let run = crate::runner::run_case_streaming_selected(&spec, seed, &selection);
                    Ok(UnitValues::capture(&run, &selection))
                }),
            });
        }
    }
    let journal = opts.journal.clone();
    let on_done: Arc<supervise::OnDone> = Arc::new(move |task: &UnitTask, values: &UnitValues| {
        if let Some(journal) = &journal {
            journal.record(&task.key, &task.label, task.seed, values);
        }
    });
    let fresh = supervise::run_supervised(
        tasks,
        exec.threads(),
        opts.deadline,
        opts.max_failures,
        on_done,
    );
    for ((mi, si), outcome) in task_pos.into_iter().zip(fresh) {
        outcomes[mi][si] = Some(outcome);
    }

    let mut points = Vec::with_capacity(missing.len());
    let mut failures = Vec::new();
    for (mi, &i) in missing.iter().enumerate() {
        let label = &resolved[i].label;
        let mut units: Vec<UnitValues> = Vec::with_capacity(seeds.len());
        let mut kinds: Vec<FailureKind> = Vec::new();
        for (si, &seed) in seeds.iter().enumerate() {
            match outcomes[mi][si]
                .take()
                .expect("every (case, seed) unit replayed or executed")
            {
                UnitOutcome::Done(values) => units.push(values),
                UnitOutcome::Failed(kind, detail) => {
                    kinds.push(kind);
                    failures.push(crate::supervise::UnitFailure {
                        kind,
                        case: label.clone(),
                        seed,
                        detail,
                    });
                }
            }
        }
        let mut point = CasePoint::from_units(label.clone(), &units, &selection);
        if units.is_empty() {
            point.failed = FailureKind::worst(kinds);
        }
        points.push(point);
    }
    (points, failures)
}

/// [`run_with`] with everything explicit: executor, memoization, and
/// supervision options. The test suites drive journaled/resumed runs
/// through this without touching process-global state.
pub fn run_with_opts(
    scenario: &Scenario,
    scale: &Scale,
    exec: SweepExec,
    memo_on: bool,
    opts: &RunOpts,
) -> Result<ScenarioOutput, EngineError> {
    let resolved = {
        let _span = bps_telemetry::phase("engine.expand");
        expand(scenario, scale)?
    };
    let selection = effective_selection(scenario)?;
    let cache_span = bps_telemetry::phase("engine.cache-lookup");

    // Serve cases already simulated this process from the memo; only the
    // rest pay for workload construction and the sweep. The relative order
    // of the missing cases is their input order, so the simulated results
    // are bit-identical to an unmemoized run.
    let mut points: Vec<Option<CasePoint>> = vec![None; resolved.len()];
    // Case keys feed both the memo and the journal (journal unit keys are
    // `<case-key>#<seed>`), so either consumer computes them.
    let keys: Vec<String> = if memo_on || opts.journal.is_some() {
        resolved
            .iter()
            .map(|c| case_key(c, scale, &selection))
            .collect()
    } else {
        Vec::new()
    };
    if memo_on {
        let cache = memo_cache().lock().expect("memo cache poisoned");
        for (i, key) in keys.iter().enumerate() {
            if let Some(cached) = cache.get(key) {
                let mut p = cached.clone();
                p.label = resolved[i].label.clone();
                points[i] = Some(p);
            }
        }
    }
    let missing: Vec<usize> = (0..resolved.len())
        .filter(|&i| points[i].is_none())
        .collect();
    if memo_on {
        MEMO_HITS.fetch_add((resolved.len() - missing.len()) as u64, Ordering::Relaxed);
        MEMO_MISSES.fetch_add(missing.len() as u64, Ordering::Relaxed);
        bps_telemetry::add(
            bps_telemetry::Counter::CacheL1Hits,
            (resolved.len() - missing.len()) as u64,
        );
        bps_telemetry::add(bps_telemetry::Counter::CacheL1Misses, missing.len() as u64);
    }

    // The persistent store (L2) serves cases simulated by *any* process
    // of this build; hits are promoted into the in-process memo (L1) so
    // later figures sharing the case skip the disk read. A missing,
    // stale, or corrupt entry is simply a miss — the case simulates.
    let disk = if memo_on {
        crate::scenario::store::active()
    } else {
        None
    };
    let missing: Vec<usize> = if let Some(store) = &disk {
        let mut still = Vec::with_capacity(missing.len());
        for &i in &missing {
            match store.lookup(&keys[i]) {
                Some(mut p) => {
                    memo_cache()
                        .lock()
                        .expect("memo cache poisoned")
                        .insert(keys[i].clone(), p.clone());
                    p.label = resolved[i].label.clone();
                    points[i] = Some(p);
                }
                None => still.push(i),
            }
        }
        still
    } else {
        missing
    };
    drop(cache_span);

    if !missing.is_empty() {
        let _span = bps_telemetry::phase("engine.sweep");
        let (fresh, failures) = if opts.supervised() {
            run_cases_supervised(&resolved, &missing, &keys, scale, &selection, exec, opts)
        } else {
            let workloads: Vec<Box<dyn Workload>> = missing
                .iter()
                .map(|&i| build_workload(&resolved[i].workload, scale))
                .collect::<Result<_, _>>()?;
            let cases: Vec<(String, CaseSpec)> = missing
                .iter()
                .zip(&workloads)
                .map(|(&i, w)| {
                    (
                        resolved[i].label.clone(),
                        case_spec(&resolved[i], w.as_ref()),
                    )
                })
                .collect();
            let report = exec.run_reporting_selected(&cases, &scale.seeds(), &selection);
            (report.points, report.failures)
        };
        for failure in &failures {
            eprintln!("warning: sweep unit failed: {failure}");
        }
        crate::supervise::record_failures(failures);
        if memo_on {
            let mut cache = memo_cache().lock().expect("memo cache poisoned");
            for (&i, p) in missing.iter().zip(&fresh) {
                cache.insert(keys[i].clone(), p.clone());
                // `insert` itself skips failed points — a timeout here
                // says nothing about the next machine.
                if let Some(store) = &disk {
                    store.insert(&keys[i], p);
                }
            }
        }
        for (&i, p) in missing.iter().zip(fresh) {
            points[i] = Some(p);
        }
    }
    let points: Vec<CasePoint> = points
        .into_iter()
        .map(|p| p.expect("every case scored"))
        .collect();
    let _span = bps_telemetry::phase("engine.score");
    Ok(match &scenario.output {
        OutputSpec::Cc => ScenarioOutput::Cc(CcFigure::from_points_selected(
            scenario.title.clone(),
            points,
            &selection,
        )),
        OutputSpec::Detail { metric } => {
            // Canonicalize the user-written name ("p99" → "P99") so the
            // rendered series header matches the registry.
            let canon = registry()
                .find(metric)
                .map(|m| m.name())
                .unwrap_or(metric.as_str());
            ScenarioOutput::Detail(DetailSeries::from_points(
                scenario.title.clone(),
                canon,
                &points,
            ))
        }
    })
}

/// Check a scored output against the scenario's expectations and verdict;
/// returns one line per violation (empty = everything holds).
pub fn violations(
    output: &ScenarioOutput,
    expect: &[Expect],
    verdict: Option<Verdict>,
) -> Vec<String> {
    let mut out = Vec::new();
    let fig = match output {
        ScenarioOutput::Cc(fig) => fig,
        ScenarioOutput::Detail(_) => {
            if !expect.is_empty() || verdict.is_some() {
                out.push("detail output has no CC rows to check expectations against".to_string());
            }
            return out;
        }
    };
    for e in expect {
        match fig.direction_correct(&e.metric) {
            None => out.push(format!("{}: CC undefined (expected a verdict)", e.metric)),
            Some(correct) => {
                if correct != e.direction_correct {
                    out.push(format!(
                        "{}: direction {} (expected {})",
                        e.metric,
                        if correct { "correct" } else { "WRONG" },
                        if e.direction_correct {
                            "correct"
                        } else {
                            "WRONG"
                        }
                    ));
                }
                if let Some(floor) = e.min_normalized {
                    let cc = fig.normalized(&e.metric).unwrap_or(f64::NAN);
                    if cc.is_nan() || cc < floor {
                        out.push(format!(
                            "{}: normalized CC {cc:.3} below floor {floor:.3}",
                            e.metric
                        ));
                    }
                }
            }
        }
    }
    if let Some(Verdict::BpsStrictlyHighest) = verdict {
        if !crate::figures::faults::bps_strictly_best(fig) {
            out.push("BPS does not have the strictly highest |CC|".to_string());
        }
    }
    out
}

/// Parse a scenario from JSON text. A malformed document reports the
/// offending field (the deserializer wraps every field error with its
/// name, so nested mistakes read `field `base`: field `workload`: ...`).
pub fn load_str(json: &str) -> Result<Scenario, EngineError> {
    serde_json::from_str(json).map_err(|e| err(format!("invalid scenario JSON: {e}")))
}

/// Load a scenario from a JSON file; every error names the file.
pub fn load_path(path: &Path) -> Result<Scenario, EngineError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err_io(format!("cannot read {}: {e}", path.display())))?;
    load_str(&text).map_err(|e| EngineError {
        kind: e.kind,
        msg: format!("{}: {e}", path.display()),
    })
}

#[cfg(test)]
mod tests {
    use super::super::spec::{CaseDecl, CaseTemplate, Grid, Num, ScaleKnob};
    use super::*;
    use bps_workloads::iozone::IozoneMode;

    fn iozone_template() -> WorkloadTemplate {
        WorkloadTemplate::Iozone {
            mode: IozoneMode::SeqRead,
            file_size: Num::Knob {
                knob: ScaleKnob::Fig5File,
            },
            record_size: Num::Abs { n: 1 << 20 },
            processes: 1,
            seed: 0,
        }
    }

    fn cc_scenario(grid: Grid) -> Scenario {
        Scenario {
            name: "test".into(),
            title: "Test sweep".into(),
            output: OutputSpec::Cc,
            base: CaseTemplate::new(StorageSpec::Hdd, iozone_template()),
            grid,
            metrics: Vec::new(),
            deadline_ms: None,
            expect: Vec::new(),
            verdict: None,
        }
    }

    #[test]
    fn grid_cross_product_is_row_major_with_joined_labels() {
        let grid = Grid {
            dims: vec![
                vec![
                    CaseDecl::new("a", Patch::none()),
                    CaseDecl::new("b", Patch::none()),
                ],
                vec![
                    CaseDecl::new(
                        "r4k",
                        Patch {
                            record_size: Some(4 << 10),
                            ..Patch::none()
                        },
                    ),
                    CaseDecl::new(
                        "r64k",
                        Patch {
                            record_size: Some(64 << 10),
                            ..Patch::none()
                        },
                    ),
                ],
            ],
        };
        let cases = expand(&cc_scenario(grid), &Scale::tiny()).unwrap();
        let labels: Vec<&str> = cases.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["a/r4k", "a/r64k", "b/r4k", "b/r64k"]);
        match &cases[1].workload {
            ResolvedWorkload::Spec(WorkloadSpec::Iozone { record_size, .. }) => {
                assert_eq!(*record_size, 64 << 10)
            }
            other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    fn later_dimension_overrides_earlier_patch() {
        let grid = Grid {
            dims: vec![
                vec![CaseDecl::new(
                    "ssd",
                    Patch {
                        storage: Some(StorageSpec::Ssd),
                        ..Patch::none()
                    },
                )],
                vec![CaseDecl::new(
                    "pvfs",
                    Patch {
                        storage: Some(StorageSpec::Pvfs { servers: 4 }),
                        ..Patch::none()
                    },
                )],
            ],
        };
        let cases = expand(&cc_scenario(grid), &Scale::tiny()).unwrap();
        assert_eq!(cases[0].storage, StorageSpec::Pvfs { servers: 4 });
    }

    #[test]
    fn inapplicable_patch_is_a_labelled_error() {
        let grid = Grid::single(vec![CaseDecl::new(
            "bad-gap",
            Patch {
                region_spacing: Some(64),
                ..Patch::none()
            },
        )]);
        let e = expand(&cc_scenario(grid), &Scale::tiny())
            .unwrap_err()
            .to_string();
        assert!(e.contains("bad-gap"), "{e}");
        assert!(e.contains("region_spacing"), "{e}");
        assert!(e.contains("Iozone"), "{e}");
    }

    #[test]
    fn empty_grid_rejected() {
        let e = expand(&cc_scenario(Grid { dims: Vec::new() }), &Scale::tiny())
            .unwrap_err()
            .to_string();
        assert!(e.contains("no dimensions"), "{e}");
        let e = expand(
            &cc_scenario(Grid {
                dims: vec![Vec::new()],
            }),
            &Scale::tiny(),
        )
        .unwrap_err()
        .to_string();
        assert!(e.contains("empty"), "{e}");
    }

    #[test]
    fn invalid_workload_surfaces_at_expansion() {
        let grid = Grid::single(vec![CaseDecl::new(
            "zero-rec",
            Patch {
                record_size: Some(0),
                ..Patch::none()
            },
        )]);
        let e = expand(&cc_scenario(grid), &Scale::tiny())
            .unwrap_err()
            .to_string();
        assert!(e.contains("zero-rec"), "{e}");
        assert!(e.contains("record_size"), "{e}");
    }

    #[test]
    fn unknown_detail_metric_rejected() {
        let mut sc = cc_scenario(Grid::single(vec![CaseDecl::new("a", Patch::none())]));
        sc.output = OutputSpec::Detail {
            metric: "QPS".into(),
        };
        let e = expand(&sc, &Scale::tiny()).unwrap_err().to_string();
        assert!(e.contains("QPS"), "{e}");
    }

    #[test]
    fn unknown_scenario_metric_rejected_at_expansion() {
        let mut sc = cc_scenario(Grid::single(vec![CaseDecl::new("a", Patch::none())]));
        sc.metrics = vec!["BPS".into(), "QPS".into()];
        let e = expand(&sc, &Scale::tiny()).unwrap_err().to_string();
        assert!(e.contains("QPS"), "{e}");
        assert!(e.contains("valid metrics"), "{e}");
        assert!(e.contains("MaxQD"), "{e}");
    }

    #[test]
    fn unknown_expect_metric_rejected_at_expansion() {
        let mut sc = cc_scenario(Grid::single(vec![CaseDecl::new("a", Patch::none())]));
        sc.expect = vec![Expect::correct("QPS", 0.5)];
        let e = expand(&sc, &Scale::tiny()).unwrap_err().to_string();
        assert!(e.contains("expectation"), "{e}");
        assert!(e.contains("QPS"), "{e}");
    }

    #[test]
    fn selection_resolution_scenario_then_override_then_paper() {
        let grid = || Grid::single(vec![CaseDecl::new("a", Patch::none())]);
        // Default: the paper four.
        assert_eq!(
            effective_selection(&cc_scenario(grid())).unwrap().names(),
            ["IOPS", "BW", "ARPT", "BPS"]
        );
        // Expectation metrics are always unioned in (registry order).
        let mut sc = cc_scenario(grid());
        sc.metrics = vec!["BPS".into()];
        sc.expect = vec![Expect::correct("arpt", 0.5)];
        assert_eq!(effective_selection(&sc).unwrap().names(), ["ARPT", "BPS"]);
        // The CLI override fills in when a scenario has no list of its own,
        // but never beats an explicit scenario selection.
        set_metric_override(Some(vec!["BPS".into(), "MaxQD".into()]));
        assert_eq!(
            effective_selection(&cc_scenario(grid())).unwrap().names(),
            ["BPS", "MaxQD"]
        );
        assert_eq!(effective_selection(&sc).unwrap().names(), ["ARPT", "BPS"]);
        set_metric_override(None);
        assert_eq!(
            effective_selection(&cc_scenario(grid())).unwrap().names(),
            ["IOPS", "BW", "ARPT", "BPS"]
        );
    }

    #[test]
    fn scenario_metrics_run_end_to_end() {
        let grid = Grid::single(vec![
            CaseDecl::new(
                "r128k",
                Patch {
                    record_size: Some(128 << 10),
                    ..Patch::none()
                },
            ),
            CaseDecl::new(
                "r512k",
                Patch {
                    record_size: Some(512 << 10),
                    ..Patch::none()
                },
            ),
        ]);
        let mut sc = cc_scenario(grid);
        sc.metrics = vec!["BPS".into(), "p99".into()];
        let fig = run_with_memo(&sc, &Scale::tiny(), SweepExec::new(1), false)
            .unwrap()
            .into_cc();
        let rows: Vec<&str> = fig.rows.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(rows, ["BPS", "P99"]);
        for c in &fig.cases {
            assert_eq!(c.extra.len(), 1);
            assert_eq!(c.extra[0].0, "P99");
            assert!(c.extra[0].1 > 0.0, "{}: {:?}", c.label, c.extra);
        }
        let shown = format!("{fig}");
        assert!(shown.contains("P99(s)"), "{shown}");
        assert!(!shown.contains("IOPS"), "{shown}");
    }

    #[test]
    fn fault_spec_builds_the_hand_built_plan() {
        use super::super::spec::{LinkLossSpec, OutageTrainSpec, SlowdownSpec};
        // Mirror of the faults.rs "two-x2.0" straggler shape.
        let mut spec = FaultSpec::seeded(0x5E7_5000);
        spec.slowdowns = vec![
            SlowdownSpec {
                server: 0,
                factor: 2.0,
            },
            SlowdownSpec {
                server: 1,
                factor: 2.0,
            },
        ];
        let plan = build_fault(&spec);
        let slow = |server: usize, factor: f64| SlowdownWindow {
            server,
            start: Nanos::ZERO,
            end: Nanos::from_secs(1 << 20),
            factor,
        };
        let hand = FaultPlan {
            seed: 0x5E7_5000,
            ..FaultPlan::none()
        }
        .with_slowdown(slow(0, 2.0))
        .with_slowdown(slow(1, 2.0));
        assert_eq!(format!("{plan:?}"), format!("{hand:?}"));

        // Link loss + an outage train.
        let mut spec = FaultSpec::seeded(1);
        spec.link_loss = Some(LinkLossSpec {
            rate: 0.04,
            retransmit_delay_ms: 8,
        });
        spec.outage_trains = vec![OutageTrainSpec {
            server: 1,
            width_ms: 8,
            period_ms: 64,
            phase_ms: 40,
            cycles: 3,
        }];
        let plan = build_fault(&spec);
        let mut hand = FaultPlan {
            seed: 1,
            ..FaultPlan::none()
        }
        .with_link_loss(0.04, Dur::from_millis(8));
        for cycle in 0..3u64 {
            let start = 10 + 64 * cycle + 40;
            hand = hand.with_outage(Outage {
                server: 1,
                start: Nanos::from_millis(start),
                end: Nanos::from_millis(start + 8),
            });
        }
        assert_eq!(format!("{plan:?}"), format!("{hand:?}"));
    }

    #[test]
    fn run_with_is_thread_count_invariant() {
        let grid = Grid::single(vec![
            CaseDecl::new(
                "r256k",
                Patch {
                    record_size: Some(256 << 10),
                    ..Patch::none()
                },
            ),
            CaseDecl::new(
                "r1m",
                Patch {
                    record_size: Some(1 << 20),
                    ..Patch::none()
                },
            ),
        ]);
        let sc = cc_scenario(grid);
        let scale = Scale::tiny();
        // Memo pinned off: the point is to compare two real simulations,
        // not a simulation against its own cached result.
        let seq = run_with_memo(&sc, &scale, SweepExec::new(1), false)
            .unwrap()
            .into_cc();
        let par = run_with_memo(&sc, &scale, SweepExec::new(4), false)
            .unwrap()
            .into_cc();
        assert_eq!(format!("{seq}"), format!("{par}"));
        for (a, b) in seq.cases.iter().zip(&par.cases) {
            assert_eq!(a.exec_s.to_bits(), b.exec_s.to_bits());
            assert_eq!(a.bps.to_bits(), b.bps.to_bits());
        }
    }

    #[test]
    fn memoized_second_run_returns_cached_points_bitwise() {
        // A record size no other test sweeps, so this test owns its memo
        // entries even when the suite runs in one process.
        let grid = Grid::single(vec![CaseDecl::new(
            "r768k",
            Patch {
                record_size: Some(768 << 10),
                ..Patch::none()
            },
        )]);
        let sc = cc_scenario(grid);
        let scale = Scale::tiny();
        let cold = run_with_memo(&sc, &scale, SweepExec::new(1), true)
            .unwrap()
            .into_cc();
        let (hits_before, _) = memo_stats();
        let warm = run_with_memo(&sc, &scale, SweepExec::new(1), true)
            .unwrap()
            .into_cc();
        let (hits_after, _) = memo_stats();
        assert!(
            hits_after > hits_before,
            "second run should be served from the memo ({hits_before} -> {hits_after})"
        );
        assert_eq!(cold.cases.len(), warm.cases.len());
        for (a, b) in cold.cases.iter().zip(&warm.cases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.iops.to_bits(), b.iops.to_bits());
            assert_eq!(a.bw.to_bits(), b.bw.to_bits());
            assert_eq!(a.arpt.to_bits(), b.arpt.to_bits());
            assert_eq!(a.bps.to_bits(), b.bps.to_bits());
            assert_eq!(a.exec_s.to_bits(), b.exec_s.to_bits());
        }
        // A memo-off run of the same scenario still simulates and must
        // agree bit-for-bit with the cached result.
        let off = run_with_memo(&sc, &scale, SweepExec::new(1), false)
            .unwrap()
            .into_cc();
        for (a, b) in warm.cases.iter().zip(&off.cases) {
            assert_eq!(a.bps.to_bits(), b.bps.to_bits());
            assert_eq!(a.exec_s.to_bits(), b.exec_s.to_bits());
        }
    }

    #[test]
    fn violations_flag_direction_floor_and_verdict() {
        use crate::runner::CasePoint;
        // IOPS rises with execution time: wrong direction.
        let cases: Vec<CasePoint> = (1..=5u32)
            .map(|k| {
                let t = k as f64;
                CasePoint {
                    label: format!("c{k}"),
                    iops: 100.0 * t,
                    bw: 50.0 / t,
                    arpt: 0.001 * t,
                    bps: 6400.0 / t,
                    exec_s: t,
                    extra: Vec::new(),
                    failed: None,
                }
            })
            .collect();
        let out = ScenarioOutput::Cc(CcFigure::from_points("v", cases));
        let v = violations(
            &out,
            &[Expect::correct("IOPS", 0.5), Expect::correct("BPS", 0.99)],
            Some(Verdict::BpsStrictlyHighest),
        );
        assert!(
            v.iter().any(|s| s.contains("IOPS") && s.contains("WRONG")),
            "{v:?}"
        );
        // BPS is correct but its CC (~0.90) sits under the 0.99 floor.
        assert!(
            v.iter().any(|s| s.contains("BPS") && s.contains("floor")),
            "{v:?}"
        );
        // ARPT is perfectly linear in exec time here, so BPS is not strictly best.
        assert!(v.iter().any(|s| s.contains("strictly highest")), "{v:?}");
        let ok = violations(
            &out,
            &[Expect::wrong("IOPS"), Expect::correct("BPS", 0.9)],
            None,
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn load_str_reports_bad_json() {
        let e = load_str("{not json").unwrap_err().to_string();
        assert!(e.contains("invalid scenario JSON"), "{e}");
    }
}
