//! The serializable scenario data model.
//!
//! A [`Scenario`] is a pure-data description of one sweep experiment: a
//! base case template, a case grid that varies it along one or more
//! dimensions, the output to score ([`OutputSpec`]), the Table-1 expected
//! correlation directions ([`Expect`]), and an optional cross-metric
//! [`Verdict`]. Every bundled figure is one of these values (see
//! [`crate::scenario::registry`]), and a user-authored JSON file with the
//! same shape runs through the identical engine — experiments are data,
//! not code.
//!
//! Sizes that should track the `--tiny`/`--quick`/`--paper` presets are
//! written as [`Num`] expressions over [`ScaleKnob`]s instead of absolute
//! byte counts; everything else is plain integers. Durations are
//! microseconds or milliseconds, named in the field (`_us`/`_ms`) —
//! the serialized form has no duration type.

use crate::scale::Scale;
use serde::{Deserialize, Serialize};

/// A named data-volume knob of [`Scale`], so scenario files scale with
/// the preset instead of hard-coding byte counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleKnob {
    /// `Scale::fig4_file` — bytes per device case.
    Fig4File,
    /// `Scale::fig5_file` — bytes per record-size case.
    Fig5File,
    /// `Scale::fig9_total` — total bytes across processes.
    Fig9Total,
    /// `Scale::fig11_total` — shared-file bytes.
    Fig11Total,
    /// `Scale::fig12_regions` — total HPIO region count.
    Fig12Regions,
}

impl ScaleKnob {
    /// The knob's value under a scale preset.
    pub fn get(&self, scale: &Scale) -> u64 {
        match self {
            ScaleKnob::Fig4File => scale.fig4_file,
            ScaleKnob::Fig5File => scale.fig5_file,
            ScaleKnob::Fig9Total => scale.fig9_total,
            ScaleKnob::Fig11Total => scale.fig11_total,
            ScaleKnob::Fig12Regions => scale.fig12_regions,
        }
    }
}

/// A size/count expression, resolved against the scale preset (and the
/// case's process count) at expansion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Num {
    /// A literal value.
    Abs {
        /// The value.
        n: u64,
    },
    /// A scale knob, verbatim.
    Knob {
        /// Which knob.
        knob: ScaleKnob,
    },
    /// `clamp(knob / div, min, max)` — e.g. Figure 12 keeps roughly 40
    /// noncontiguous calls per point at any scale.
    KnobScaled {
        /// Which knob.
        knob: ScaleKnob,
        /// Divisor applied to the knob.
        div: u64,
        /// Lower clamp bound.
        min: u64,
        /// Upper clamp bound.
        max: u64,
    },
    /// `knob / processes` — e.g. Figure 9 splits a fixed total over the
    /// case's process count.
    KnobPerProcess {
        /// Which knob.
        knob: ScaleKnob,
    },
}

impl Num {
    /// Resolve to a concrete value for a case with `processes` processes.
    pub fn resolve(&self, scale: &Scale, processes: usize) -> u64 {
        match *self {
            Num::Abs { n } => n,
            Num::Knob { knob } => knob.get(scale),
            Num::KnobScaled {
                knob,
                div,
                min,
                max,
            } => (knob.get(scale) / div.max(1)).clamp(min, max),
            Num::KnobPerProcess { knob } => knob.get(scale) / processes.max(1) as u64,
        }
    }
}

/// Storage configuration (mirrors [`crate::runner::Storage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageSpec {
    /// Local file system on the testbed HDD.
    Hdd,
    /// Local file system on the testbed SSD.
    Ssd,
    /// PVFS2-like parallel FS over this many I/O servers.
    Pvfs {
        /// Number of I/O servers.
        servers: usize,
    },
}

/// File layout policy (mirrors [`crate::runner::LayoutPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutSpec {
    /// Default 64 KB striping over all servers.
    DefaultStripe,
    /// File `i` pinned to server `i % servers`.
    PinnedPerFile,
}

/// Data sieving configuration (mirrors `SievingConfig` presets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SievingSpec {
    /// ROMIO's defaults (sieving enabled).
    RomioDefault,
    /// Sieving disabled.
    Disabled,
}

/// Middleware retry policy (mirrors `RetryPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetrySpec {
    /// `RetryPolicy::default()`.
    Default,
    /// An explicit bounded-backoff policy.
    Custom {
        /// Attempts before a request is abandoned.
        max_attempts: u32,
        /// First backoff, microseconds.
        base_backoff_us: u64,
        /// Backoff ceiling, microseconds.
        max_backoff_us: u64,
    },
}

/// A permanent straggler slowdown on one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowdownSpec {
    /// The slowed server.
    pub server: usize,
    /// Service-time multiplier (> 1 slows the server down).
    pub factor: f64,
}

/// Transient device error injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceErrorSpec {
    /// The same error probability on every server.
    Uniform {
        /// Error probability per device grant.
        rate: f64,
    },
    /// Extra error probability on one server (a failing disk).
    Server {
        /// The hot server.
        server: usize,
        /// Extra error probability on that server.
        rate: f64,
    },
}

/// Lossy-link injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkLossSpec {
    /// Loss probability per transfer.
    pub rate: f64,
    /// Per-loss retransmit delay, milliseconds.
    pub retransmit_delay_ms: u64,
}

/// A periodic train of pause-and-recover outages on one server: `width`
/// ms down starting `phase` ms into every `period` ms cycle, for
/// `cycles` cycles (offset 10 ms like the hand-built plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageTrainSpec {
    /// The paused server.
    pub server: usize,
    /// Outage width, milliseconds.
    pub width_ms: u64,
    /// Cycle period, milliseconds.
    pub period_ms: u64,
    /// Offset into each cycle, milliseconds.
    pub phase_ms: u64,
    /// Number of cycles.
    pub cycles: u64,
}

/// A declarative fault plan (mirrors `FaultPlan`, built in field order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the injector's private randomness.
    pub seed: u64,
    /// Straggler windows (full-horizon, one per entry).
    pub slowdowns: Vec<SlowdownSpec>,
    /// Device error rates, applied in order.
    pub device_errors: Vec<DeviceErrorSpec>,
    /// Lossy-link configuration.
    pub link_loss: Option<LinkLossSpec>,
    /// Outage trains.
    pub outage_trains: Vec<OutageTrainSpec>,
}

impl FaultSpec {
    /// An empty plan skeleton with the given injector seed.
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            slowdowns: Vec::new(),
            device_errors: Vec::new(),
            link_loss: None,
            outage_trains: Vec::new(),
        }
    }
}

/// The workload of a case, possibly parameterized by scale knobs and by
/// per-case grid patches ([`Patch`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadTemplate {
    /// A fully concrete workload (no knobs; grid patches that target
    /// workload fields are rejected).
    Fixed {
        /// The concrete spec.
        spec: bps_workloads::WorkloadSpec,
    },
    /// An IOzone run; `record_size` and `processes` are patchable.
    Iozone {
        /// Operation under test.
        mode: bps_workloads::iozone::IozoneMode,
        /// Bytes per file.
        file_size: Num,
        /// Record size, bytes.
        record_size: Num,
        /// Process count (1 = single mode).
        processes: usize,
        /// Seed for the random modes.
        seed: u64,
    },
    /// An IOR shared-file run; `processes` is patchable.
    IorShared {
        /// Total bytes of the shared file.
        file_size: Num,
        /// Fixed transfer size, bytes.
        transfer_size: u64,
        /// Write instead of read.
        write: bool,
        /// MPI process count.
        processes: usize,
    },
    /// An HPIO noncontiguous run; `region_spacing` and `processes` are
    /// patchable.
    Hpio {
        /// Total region count.
        region_count: Num,
        /// Bytes per region.
        region_size: u64,
        /// Bytes of hole between regions.
        region_spacing: Num,
        /// Regions per noncontiguous call.
        regions_per_call: Num,
        /// MPI process count.
        processes: usize,
        /// Collective (two-phase) reads.
        collective: bool,
    },
    /// The Set 5 mixed checkpoint-style workload, sized from
    /// `Scale::fig9_total` exactly like the hand-built degraded-mode
    /// sweep.
    DegradedMix,
}

/// Per-case overrides applied by one grid cell on top of the base
/// template. Every field is optional; `None` leaves the base value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Patch {
    /// Override the storage configuration.
    pub storage: Option<StorageSpec>,
    /// Override the layout policy.
    pub layout: Option<LayoutSpec>,
    /// Override the workload's record size (IOzone only).
    pub record_size: Option<u64>,
    /// Override the workload's process count (and the client count).
    pub processes: Option<usize>,
    /// Override the workload's region spacing (HPIO only).
    pub region_spacing: Option<u64>,
    /// Override the fault plan.
    pub fault: Option<FaultSpec>,
}

impl Patch {
    /// The no-op patch.
    pub fn none() -> Self {
        Patch {
            storage: None,
            layout: None,
            record_size: None,
            processes: None,
            region_spacing: None,
            fault: None,
        }
    }
}

/// One labelled cell of a grid dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseDecl {
    /// The cell's label (joined with `/` across dimensions).
    pub label: String,
    /// The overrides this cell applies.
    pub patch: Patch,
}

impl CaseDecl {
    /// A labelled cell with a patch.
    pub fn new(label: impl Into<String>, patch: Patch) -> Self {
        CaseDecl {
            label: label.into(),
            patch,
        }
    }
}

/// The sweep's case grid: the cross product of its dimensions, expanded
/// row-major (later dimensions vary fastest). Later dimensions' patches
/// override earlier ones on conflicting fields. Every bundled figure is
/// one-dimensional; user scenarios may cross several.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// The dimensions, each a list of labelled cells.
    pub dims: Vec<Vec<CaseDecl>>,
}

impl Grid {
    /// A one-dimensional grid.
    pub fn single(cases: Vec<CaseDecl>) -> Self {
        Grid { dims: vec![cases] }
    }
}

/// The base case shared by every grid cell. Optional fields default to
/// the hand-built sweeps' conventions: 64 KB default striping, ROMIO
/// sieving defaults, default retry policy, no faults, 5 µs of CPU per
/// op, and one client node per workload process.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseTemplate {
    /// Storage under test.
    pub storage: StorageSpec,
    /// The workload.
    pub workload: WorkloadTemplate,
    /// Layout policy; default [`LayoutSpec::DefaultStripe`].
    pub layout: Option<LayoutSpec>,
    /// Sieving configuration; default [`SievingSpec::RomioDefault`].
    pub sieving: Option<SievingSpec>,
    /// Retry policy; default [`RetrySpec::Default`].
    pub retry: Option<RetrySpec>,
    /// Fault plan; default healthy.
    pub fault: Option<FaultSpec>,
    /// Per-op CPU cost, microseconds; default 5.
    pub cpu_per_op_us: Option<u64>,
    /// Client node count; default = the workload's process count.
    pub clients: Option<usize>,
    /// Explicit component graph (`"topology": [...]` in scenario JSON);
    /// default = the prebuilt graph derived from `storage`, which runs
    /// byte-identically to the pre-topology engine.
    pub topology: Option<bps_topology::TopologySpec>,
}

impl CaseTemplate {
    /// A template with every optional knob at its default.
    pub fn new(storage: StorageSpec, workload: WorkloadTemplate) -> Self {
        CaseTemplate {
            storage,
            workload,
            layout: None,
            sieving: None,
            retry: None,
            fault: None,
            cpu_per_op_us: None,
            clients: None,
            topology: None,
        }
    }
}

// Hand-rolled so the absent `topology` of a classic template is omitted
// on the wire, keeping serialized scenarios byte-identical to the
// pre-topology format (the other optionals keep the derived `null`
// encoding they have always had).
impl Serialize for CaseTemplate {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            ("storage".to_string(), self.storage.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("layout".to_string(), self.layout.to_value()),
            ("sieving".to_string(), self.sieving.to_value()),
            ("retry".to_string(), self.retry.to_value()),
            ("fault".to_string(), self.fault.to_value()),
            ("cpu_per_op_us".to_string(), self.cpu_per_op_us.to_value()),
            ("clients".to_string(), self.clients.to_value()),
        ];
        if let Some(topology) = &self.topology {
            pairs.push(("topology".to_string(), topology.to_value()));
        }
        serde::Value::Object(pairs)
    }
}

impl Deserialize for CaseTemplate {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(CaseTemplate {
            storage: ctx("storage", Deserialize::from_value(v.field("storage")?))?,
            workload: ctx("workload", Deserialize::from_value(v.field("workload")?))?,
            layout: ctx("layout", Deserialize::from_value(v.field("layout")?))?,
            sieving: ctx("sieving", Deserialize::from_value(v.field("sieving")?))?,
            retry: ctx("retry", Deserialize::from_value(v.field("retry")?))?,
            fault: ctx("fault", Deserialize::from_value(v.field("fault")?))?,
            cpu_per_op_us: ctx(
                "cpu_per_op_us",
                Deserialize::from_value(v.field("cpu_per_op_us")?),
            )?,
            clients: ctx("clients", Deserialize::from_value(v.field("clients")?))?,
            topology: ctx("topology", Deserialize::from_value(v.field("topology")?))?,
        })
    }
}

/// What the sweep reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputSpec {
    /// A CC bar chart: the four paper metrics scored against execution
    /// time over the cases.
    Cc,
    /// A detail series: one metric plotted against execution time.
    Detail {
        /// The highlighted metric — any registered metric name
        /// (case-insensitive; see `reproduce metrics`).
        metric: String,
    },
}

/// A Table-1 expectation: the direction the metric's correlation should
/// have over this sweep, and optionally a floor on its normalized CC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expect {
    /// Metric name — any registered metric (case-insensitive).
    pub metric: String,
    /// Whether the observed direction should match Table 1.
    pub direction_correct: bool,
    /// Minimum normalized CC (only meaningful with `direction_correct`).
    pub min_normalized: Option<f64>,
}

impl Expect {
    /// Expect the metric to point the right way, at least this strongly.
    pub fn correct(metric: &str, min_normalized: f64) -> Self {
        Expect {
            metric: metric.to_string(),
            direction_correct: true,
            min_normalized: Some(min_normalized),
        }
    }

    /// Expect the right direction with no strength floor.
    pub fn correct_direction(metric: &str) -> Self {
        Expect {
            metric: metric.to_string(),
            direction_correct: true,
            min_normalized: None,
        }
    }

    /// Expect the metric to point the wrong way (the paper's pathologies).
    pub fn wrong(metric: &str) -> Self {
        Expect {
            metric: metric.to_string(),
            direction_correct: false,
            min_normalized: None,
        }
    }
}

/// A cross-metric verdict predicate over the scored figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// BPS must have the strictly largest |normalized CC| of the four
    /// metrics (the degraded-mode acceptance bar).
    BpsStrictlyHighest,
}

/// A complete sweep description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry name (`reproduce run <name>`).
    pub name: String,
    /// Report title (the `=== ... ===` header line).
    pub title: String,
    /// What to score and print.
    pub output: OutputSpec,
    /// The base case.
    pub base: CaseTemplate,
    /// The case grid.
    pub grid: Grid,
    /// Registry metric names to compute and report (case-insensitive, any
    /// order; rendered in registry order). Empty — the default, and
    /// omitted from serialized scenarios — means the paper four. Metrics
    /// named by `output` or `expect` are always computed in addition.
    pub metrics: Vec<String>,
    /// Per-unit wall-clock deadline in milliseconds. A `(case, seed)` unit
    /// running longer is detached and reported as a `Timeout` failure
    /// instead of hanging the sweep. `None` — the default, and omitted
    /// from serialized scenarios — means no scenario-level deadline;
    /// when set it outranks the CLI's `--deadline-ms`.
    pub deadline_ms: Option<u64>,
    /// Table-1 expected directions, checked by tests and `reproduce check`.
    pub expect: Vec<Expect>,
    /// Optional cross-metric verdict.
    pub verdict: Option<Verdict>,
}

// Hand-rolled (de)serialization because `metrics` and `deadline_ms` are
// optional on the wire: an empty/absent value is omitted when writing (so
// serialized scenarios are byte-identical to the pre-extension formats)
// and defaults when absent (so every existing scenario file keeps parsing).
impl Serialize for Scenario {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            ("name".to_string(), self.name.to_value()),
            ("title".to_string(), self.title.to_value()),
            ("output".to_string(), self.output.to_value()),
            ("base".to_string(), self.base.to_value()),
            ("grid".to_string(), self.grid.to_value()),
        ];
        if !self.metrics.is_empty() {
            pairs.push(("metrics".to_string(), self.metrics.to_value()));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".to_string(), ms.to_value()));
        }
        pairs.push(("expect".to_string(), self.expect.to_value()));
        pairs.push(("verdict".to_string(), self.verdict.to_value()));
        serde::Value::Object(pairs)
    }
}

// Name the offending field, like the derived impls do, so a deep error
// reads as a path from the scenario root.
fn ctx<T>(field: &str, r: Result<T, serde::Error>) -> Result<T, serde::Error> {
    r.map_err(|e| serde::Error(format!("field `{field}`: {e}")))
}

impl Deserialize for Scenario {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Scenario {
            name: ctx("name", Deserialize::from_value(v.field("name")?))?,
            title: ctx("title", Deserialize::from_value(v.field("title")?))?,
            output: ctx("output", Deserialize::from_value(v.field("output")?))?,
            base: ctx("base", Deserialize::from_value(v.field("base")?))?,
            grid: ctx("grid", Deserialize::from_value(v.field("grid")?))?,
            metrics: match v.field("metrics")? {
                serde::Value::Null => Vec::new(),
                other => ctx("metrics", Deserialize::from_value(other))?,
            },
            deadline_ms: ctx(
                "deadline_ms",
                Deserialize::from_value(v.field("deadline_ms")?),
            )?,
            expect: ctx("expect", Deserialize::from_value(v.field("expect")?))?,
            verdict: ctx("verdict", Deserialize::from_value(v.field("verdict")?))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_read_the_scale() {
        let s = Scale::tiny();
        assert_eq!(ScaleKnob::Fig4File.get(&s), s.fig4_file);
        assert_eq!(ScaleKnob::Fig12Regions.get(&s), s.fig12_regions);
    }

    #[test]
    fn num_expressions_resolve() {
        let s = Scale::tiny();
        assert_eq!(Num::Abs { n: 7 }.resolve(&s, 1), 7);
        assert_eq!(
            Num::Knob {
                knob: ScaleKnob::Fig5File
            }
            .resolve(&s, 3),
            s.fig5_file
        );
        assert_eq!(
            Num::KnobPerProcess {
                knob: ScaleKnob::Fig9Total
            }
            .resolve(&s, 4),
            s.fig9_total / 4
        );
        // Fig. 12's regions-per-call rule.
        assert_eq!(
            Num::KnobScaled {
                knob: ScaleKnob::Fig12Regions,
                div: 40,
                min: 256,
                max: 4096
            }
            .resolve(&s, 1),
            (s.fig12_regions / 40).clamp(256, 4096)
        );
    }

    #[test]
    fn scenario_json_round_trips() {
        let sc = Scenario {
            name: "demo".into(),
            title: "Demo sweep".into(),
            output: OutputSpec::Detail {
                metric: "BPS".into(),
            },
            base: CaseTemplate::new(
                StorageSpec::Pvfs { servers: 4 },
                WorkloadTemplate::Iozone {
                    mode: bps_workloads::iozone::IozoneMode::SeqRead,
                    file_size: Num::Knob {
                        knob: ScaleKnob::Fig5File,
                    },
                    record_size: Num::Abs { n: 4096 },
                    processes: 1,
                    seed: 0,
                },
            ),
            grid: Grid::single(vec![
                CaseDecl::new("a", Patch::none()),
                CaseDecl::new(
                    "b",
                    Patch {
                        record_size: Some(65536),
                        ..Patch::none()
                    },
                ),
            ]),
            metrics: Vec::new(),
            deadline_ms: None,
            expect: vec![Expect::correct("BPS", 0.7), Expect::wrong("IOPS")],
            verdict: Some(Verdict::BpsStrictlyHighest),
        };
        let json = serde_json::to_string_pretty(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sc);
        // The empty defaults are omitted on the wire, so pre-existing
        // scenario files (and their goldens) are untouched.
        assert!(!json.contains("\"metrics\""));
        assert!(!json.contains("\"deadline_ms\""));
        let mut with_metrics = sc.clone();
        with_metrics.metrics = vec!["BPS".into(), "p99".into()];
        let json = serde_json::to_string_pretty(&with_metrics).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with_metrics);
        let mut with_deadline = sc.clone();
        with_deadline.deadline_ms = Some(2500);
        let json = serde_json::to_string_pretty(&with_deadline).unwrap();
        assert!(json.contains("\"deadline_ms\": 2500"));
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with_deadline);
    }
}
