//! Experiment scaling presets.
//!
//! The paper's runs move 16–64 GB per case; a simulated reproduction can
//! shrink the data volumes without changing any of the relationships the
//! figures demonstrate, because every metric and the execution time scale
//! together. Three presets:
//!
//! * [`Scale::paper`] — the paper's exact volumes (minutes of wall time).
//! * [`Scale::quick`] — the default for the `reproduce` binary (seconds).
//! * [`Scale::tiny`] — for tests and Criterion benches (milliseconds).

use serde::{Deserialize, Serialize};

/// Data volumes for each experiment set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Fig. 4: bytes read sequentially per device case (paper: 64 GB).
    pub fig4_file: u64,
    /// Figs. 5–8: bytes read per record-size case (paper: 16 GB).
    pub fig5_file: u64,
    /// Figs. 9–10: total bytes across processes (paper: 32 GB).
    pub fig9_total: u64,
    /// Fig. 11: shared-file bytes (paper: 32 GB).
    pub fig11_total: u64,
    /// Fig. 12: total region count (paper: 4 096 000).
    pub fig12_regions: u64,
    /// Number of repeated runs averaged per case (paper: 5).
    pub runs: u64,
}

impl Scale {
    /// The paper's full volumes.
    pub fn paper() -> Self {
        Scale {
            fig4_file: 64 << 30,
            fig5_file: 16 << 30,
            fig9_total: 32 << 30,
            fig11_total: 32 << 30,
            fig12_regions: 4_096_000,
            runs: 5,
        }
    }

    /// Default: everything shrunk to run in seconds.
    pub fn quick() -> Self {
        Scale {
            fig4_file: 1 << 30,
            fig5_file: 512 << 20,
            fig9_total: 512 << 20,
            fig11_total: 512 << 20,
            fig12_regions: 40_960,
            runs: 5,
        }
    }

    /// Minimal: for unit tests and benches.
    pub fn tiny() -> Self {
        Scale {
            fig4_file: 64 << 20,
            fig5_file: 32 << 20,
            fig9_total: 64 << 20,
            fig11_total: 64 << 20,
            fig12_regions: 2_048,
            runs: 2,
        }
    }

    /// The seeds averaged per case ("We ran each set of experiments 5
    /// times, and the average was used as the results").
    pub fn seeds(&self) -> Vec<u64> {
        (1..=self.runs).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_section_iv() {
        let s = Scale::paper();
        assert_eq!(s.fig4_file, 64 * 1024 * 1024 * 1024);
        assert_eq!(s.fig5_file, 16 * 1024 * 1024 * 1024);
        assert_eq!(s.fig12_regions, 4_096_000);
        assert_eq!(s.runs, 5);
        assert_eq!(s.seeds(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn presets_are_ordered() {
        let p = Scale::paper();
        let q = Scale::quick();
        let t = Scale::tiny();
        assert!(t.fig4_file < q.fig4_file && q.fig4_file < p.fig4_file);
        assert!(t.fig12_regions < q.fig12_regions && q.fig12_regions < p.fig12_regions);
    }
}
