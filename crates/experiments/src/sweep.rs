//! Parallel sweep execution.
//!
//! Every figure in the evaluation is a sweep: a list of cases, each run
//! once per seed and averaged. The units are completely independent, so
//! [`SweepExec`] fans `cases × seeds` across OS threads
//! (`std::thread::scope`, no extra crates) and reassembles the results in
//! the input order — the output is byte-identical at any thread count,
//! because each unit is deterministic in `(case, seed)` and the averaging
//! still happens in seed order on the caller's thread.
//!
//! Thread count, in precedence order: a process-wide override installed
//! with [`set_thread_override`] (the `reproduce --threads N` flag), then
//! the `BPS_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. A count of 1 runs inline on
//! the calling thread.

use crate::runner::{run_case_streaming_selected, CasePoint, CaseSpec};
use crate::supervise::{panic_message, FailureKind, UnitFailure};
use bps_core::metrics::MetricSelection;
use bps_core::sink::StreamingMetrics;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of a failure-isolating sweep: one point per case (averaged
/// over the seeds that completed) plus every unit that failed, classified
/// by [`FailureKind`]. A case whose seeds all failed still gets a point —
/// with NaN metrics and [`CasePoint::failed`] set — so the output stays
/// positionally aligned with the input cases.
#[derive(Debug)]
pub struct SweepReport {
    /// One point per input case, in input order.
    pub points: Vec<CasePoint>,
    /// Every unit that failed, in `(case, seed)` order.
    pub failures: Vec<UnitFailure>,
}

/// Process-wide thread-count override; 0 means "not set". Installed by
/// the CLI's `--threads N` flag and read by [`SweepExec::from_env`]
/// ahead of `BPS_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Install a process-wide worker thread count that outranks the
/// `BPS_THREADS` environment variable in [`SweepExec::from_env`].
/// `None` clears a previous override.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// A work-stealing executor for embarrassingly parallel sweep units.
#[derive(Debug, Clone, Copy)]
pub struct SweepExec {
    threads: usize,
}

impl SweepExec {
    /// An executor over exactly `threads` worker threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        SweepExec {
            threads: threads.max(1),
        }
    }

    /// Thread count by precedence: the [`set_thread_override`] value
    /// (CLI `--threads`), then `BPS_THREADS`, then the machine's
    /// available parallelism.
    pub fn from_env() -> Self {
        let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
        if overridden > 0 {
            return SweepExec::new(overridden);
        }
        let threads = std::env::var("BPS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        SweepExec::new(threads)
    }

    /// The worker thread count this executor fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0..n)` across the executor's threads and collect the results
    /// indexed by input position. Workers claim indices from a shared
    /// counter (work stealing), so uneven unit costs balance out; the
    /// output order is the input order regardless of completion order.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("sweep slot lock poisoned") = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep slot lock poisoned")
                    .expect("every unit index was claimed by a worker")
            })
            .collect()
    }

    /// Run every `(case, seed)` unit through the streaming pipeline in
    /// parallel and average each case over its seeds. Points come back in
    /// the input case order. A unit that panics is isolated and printed to
    /// stderr rather than aborting the sweep; use [`Self::run_reporting`]
    /// to inspect failures programmatically.
    pub fn run(&self, cases: &[(String, CaseSpec<'_>)], seeds: &[u64]) -> Vec<CasePoint> {
        self.run_selected(cases, seeds, &MetricSelection::paper())
    }

    /// [`Self::run`] with an explicit metric selection: every unit's sink
    /// retains what the selection needs, and each point averages the
    /// selected non-paper metrics into [`CasePoint::extra`].
    pub fn run_selected(
        &self,
        cases: &[(String, CaseSpec<'_>)],
        seeds: &[u64],
        selection: &MetricSelection,
    ) -> Vec<CasePoint> {
        let report = self.run_reporting_selected(cases, seeds, selection);
        for failure in &report.failures {
            eprintln!("warning: sweep unit failed: {failure}");
        }
        report.points
    }

    /// [`Self::run`], but each `(case, seed)` unit runs under
    /// `catch_unwind`: one poisoned case (a panicking workload, a config
    /// that trips an internal invariant) yields NaN metrics and a recorded
    /// [`UnitFailure`] instead of tearing down the entire sweep — in both
    /// the inline and the threaded execution paths. Units that complete
    /// average exactly as in a failure-free run.
    pub fn run_reporting(&self, cases: &[(String, CaseSpec<'_>)], seeds: &[u64]) -> SweepReport {
        self.run_reporting_selected(cases, seeds, &MetricSelection::paper())
    }

    /// [`Self::run_reporting`] with an explicit metric selection.
    pub fn run_reporting_selected(
        &self,
        cases: &[(String, CaseSpec<'_>)],
        seeds: &[u64],
        selection: &MetricSelection,
    ) -> SweepReport {
        assert!(!seeds.is_empty(), "need at least one seed");
        let units = cases.len() * seeds.len();
        let runs: Vec<Result<StreamingMetrics, String>> = self.run_indexed(units, |i| {
            let (ci, si) = (i / seeds.len(), i % seeds.len());
            let started = bps_telemetry::now();
            let run = catch_unwind(AssertUnwindSafe(|| {
                crate::supervise::apply_test_hooks(&cases[ci].0);
                run_case_streaming_selected(&cases[ci].1, seeds[si], selection)
            }))
            .map_err(panic_message);
            if bps_telemetry::enabled() {
                bps_telemetry::unit(&cases[ci].0, seeds[si], started);
                bps_telemetry::incr(bps_telemetry::Counter::SweepUnits);
                if run.is_err() {
                    bps_telemetry::incr(bps_telemetry::Counter::SweepFailures);
                }
            }
            run
        });
        let mut points = Vec::with_capacity(cases.len());
        let mut failures = Vec::new();
        let mut runs = runs.into_iter();
        for (label, _) in cases {
            let mut survived = Vec::with_capacity(seeds.len());
            let mut case_failed = false;
            for &seed in seeds {
                match runs.next().expect("one run per (case, seed) unit") {
                    Ok(metrics) => survived.push(metrics),
                    Err(detail) => {
                        case_failed = true;
                        failures.push(UnitFailure {
                            kind: FailureKind::Panic,
                            case: label.clone(),
                            seed,
                            detail,
                        });
                    }
                }
            }
            let mut point = CasePoint::from_runs_selected(label.clone(), &survived, selection);
            if survived.is_empty() && case_failed {
                point.failed = Some(FailureKind::Panic);
            }
            points.push(point);
        }
        SweepReport { points, failures }
    }

    /// Run one case across its seeds in parallel; the [`CasePoint`] is
    /// identical to a sequential run.
    pub fn run_one(
        &self,
        label: impl Into<String>,
        spec: &CaseSpec<'_>,
        seeds: &[u64],
    ) -> CasePoint {
        self.run_one_selected(label, spec, seeds, &MetricSelection::paper())
    }

    /// [`Self::run_one`] with an explicit metric selection.
    pub fn run_one_selected(
        &self,
        label: impl Into<String>,
        spec: &CaseSpec<'_>,
        seeds: &[u64],
        selection: &MetricSelection,
    ) -> CasePoint {
        assert!(!seeds.is_empty(), "need at least one seed");
        let runs = self.run_indexed(seeds.len(), |i| {
            run_case_streaming_selected(spec, seeds[i], selection)
        });
        CasePoint::from_runs_selected(label, &runs, selection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Storage;
    use bps_workloads::iozone::Iozone;

    #[test]
    fn run_indexed_preserves_input_order() {
        let exec = SweepExec::new(4);
        let out = exec.run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        let exec = SweepExec::new(8);
        assert!(exec.run_indexed(0, |i| i).is_empty());
        assert_eq!(exec.run_indexed(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn thread_count_floor_is_one() {
        assert_eq!(SweepExec::new(0).threads(), 1);
    }

    #[test]
    fn thread_override_outranks_environment() {
        set_thread_override(Some(3));
        assert_eq!(SweepExec::from_env().threads(), 3);
        set_thread_override(None);
        // Cleared: from_env falls back to BPS_THREADS / machine parallelism,
        // both of which give at least one worker.
        assert!(SweepExec::from_env().threads() >= 1);
    }

    #[test]
    fn parallel_sweep_equals_sequential_sweep() {
        let w = Iozone::seq_read(2 << 20, 256 << 10);
        let cases = vec![
            ("hdd".to_string(), CaseSpec::new(Storage::Hdd, &w)),
            ("ssd".to_string(), CaseSpec::new(Storage::Ssd, &w)),
        ];
        let seeds = [1, 2, 3];
        let seq = SweepExec::new(1).run(&cases, &seeds);
        let par = SweepExec::new(4).run(&cases, &seeds);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.iops.to_bits(), b.iops.to_bits());
            assert_eq!(a.bw.to_bits(), b.bw.to_bits());
            assert_eq!(a.arpt.to_bits(), b.arpt.to_bits());
            assert_eq!(a.bps.to_bits(), b.bps.to_bits());
            assert_eq!(a.exec_s.to_bits(), b.exec_s.to_bits());
        }
    }

    #[test]
    fn parallel_sweep_is_thread_invariant_for_extended_selection() {
        let w = Iozone::seq_read(2 << 20, 256 << 10);
        let cases = vec![
            ("hdd".to_string(), CaseSpec::new(Storage::Hdd, &w)),
            ("ssd".to_string(), CaseSpec::new(Storage::Ssd, &w)),
        ];
        let seeds = [1, 2, 3];
        let sel = MetricSelection::parse(&["BPS", "p50", "p99", "EffPar", "MaxQD"]).unwrap();
        let seq = SweepExec::new(1).run_selected(&cases, &seeds, &sel);
        let par = SweepExec::new(4).run_selected(&cases, &seeds, &sel);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.bps.to_bits(), b.bps.to_bits());
            assert_eq!(a.extra.len(), 4);
            for ((na, va), (nb, vb)) in a.extra.iter().zip(&b.extra) {
                assert_eq!(na, nb);
                assert_eq!(va.to_bits(), vb.to_bits(), "{na} differs across threads");
            }
        }
    }

    #[test]
    fn panicking_case_is_isolated_and_reported() {
        use bps_workloads::spec::{OpStream, Workload};

        /// A workload whose op stream panics the moment it is built.
        struct Poisoned;
        impl Workload for Poisoned {
            fn name(&self) -> &'static str {
                "poisoned"
            }
            fn processes(&self) -> usize {
                1
            }
            fn file_sizes(&self) -> Vec<u64> {
                vec![1 << 20]
            }
            fn stream(&self, _pid: usize) -> OpStream {
                panic!("injected test panic");
            }
        }

        let healthy = Iozone::seq_read(1 << 20, 256 << 10);
        let poisoned = Poisoned;
        let cases = vec![
            ("ok".to_string(), CaseSpec::new(Storage::Hdd, &healthy)),
            ("bad".to_string(), CaseSpec::new(Storage::Hdd, &poisoned)),
        ];
        let seeds = [1, 2];
        // Quiet the default panic hook for the injected panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = SweepExec::new(2).run_reporting(&cases, &seeds);
        std::panic::set_hook(prev);

        // Both cases produce a point, in input order.
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[0].label, "ok");
        assert_eq!(report.points[1].label, "bad");
        // The healthy case is unaffected; the poisoned one reports NaN
        // and carries its failure class.
        assert!(report.points[0].bps.is_finite());
        assert!(report.points[0].failed.is_none());
        assert!(report.points[1].bps.is_nan());
        assert!(report.points[1].exec_s.is_nan());
        assert_eq!(report.points[1].failed, Some(FailureKind::Panic));
        // Every poisoned unit is reported with its seed, class, and payload.
        assert_eq!(report.failures.len(), seeds.len());
        for (f, &seed) in report.failures.iter().zip(&seeds) {
            assert_eq!(f.case, "bad");
            assert_eq!(f.seed, seed);
            assert_eq!(f.kind, FailureKind::Panic);
            assert!(f.detail.contains("injected test panic"), "{}", f.detail);
        }
    }

    #[test]
    fn run_one_matches_run() {
        let w = Iozone::seq_read(2 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Hdd, &w);
        let seeds = [1, 2];
        let one = SweepExec::new(2).run_one("hdd", &spec, &seeds);
        let cases = vec![("hdd".to_string(), CaseSpec::new(Storage::Hdd, &w))];
        let many = SweepExec::new(2).run(&cases, &seeds);
        assert_eq!(one.bps.to_bits(), many[0].bps.to_bits());
        assert_eq!(one.exec_s.to_bits(), many[0].exec_s.to_bits());
    }
}
