//! Supervised unit execution: failure taxonomy, per-unit deadlines, and
//! the failure-budget circuit breaker.
//!
//! A sweep is `cases × seeds` independent units. The plain
//! [`SweepExec`](crate::sweep::SweepExec) path already isolates panics;
//! this module generalizes that into a full supervised layer used
//! whenever a run asks for a journal, a deadline, or a failure budget:
//!
//! * every unit failure is classified into a [`FailureKind`]
//!   (`Panic | Timeout | InvalidSpec | Io`) and carried as a
//!   [`UnitFailure`] through the sweep report, the CC "why n/a" rows,
//!   and the `reproduce` exit code;
//! * [`run_supervised`] executes units on worker threads while the
//!   calling thread acts as a watchdog: a unit that overruns its
//!   wall-clock deadline is marked `Timeout` and *detached* (its wedged
//!   worker is never joined; a replacement worker keeps the pool full),
//!   so one pathological case degrades the sweep instead of hanging it;
//! * a `--max-failures N` budget aborts the whole run once more than
//!   `N` units have failed;
//! * a SIGINT sets [`request_interrupt`]; the supervisor notices between
//!   units, stops dispatching, and exits with the journal flushed and
//!   the exact `resume` command printed.
//!
//! The failure ledger ([`record_failures`] / [`take_recorded_failures`])
//! is how the CLI learns, at the end of a run that spanned many figures,
//! which failure classes occurred — each class maps to a distinct
//! documented exit code.

use crate::runner::UnitValues;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Why a `(case, seed)` unit failed to produce metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The unit panicked (a poisoned workload, a tripped invariant).
    Panic,
    /// The unit overran its wall-clock deadline and was detached.
    Timeout,
    /// The unit's spec could not be built into a runnable workload.
    InvalidSpec,
    /// An I/O error (unreadable scenario file, unwritable output).
    Io,
}

impl FailureKind {
    /// Every failure kind, in exit-code order — the registry the generated
    /// failure/exit-code reference page renders from.
    pub const ALL: [FailureKind; 4] = [
        FailureKind::InvalidSpec,
        FailureKind::Io,
        FailureKind::Panic,
        FailureKind::Timeout,
    ];

    /// One-line description for the generated reference page.
    pub fn describe(self) -> &'static str {
        match self {
            FailureKind::Panic => "the unit panicked (a poisoned workload, a tripped invariant)",
            FailureKind::Timeout => "the unit overran its wall-clock deadline and was detached",
            FailureKind::InvalidSpec => {
                "the unit's spec could not be built into a runnable workload"
            }
            FailureKind::Io => "an I/O error (unreadable scenario file, unwritable output)",
        }
    }

    /// Stable lowercase name used in reports, CSV annotations, and the
    /// journal.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::InvalidSpec => "invalid-spec",
            FailureKind::Io => "io",
        }
    }

    /// The `reproduce` exit code for this class of failure (documented in
    /// the CLI usage text): invalid-spec 3, io 4, panic 5, timeout 6.
    pub fn exit_code(self) -> i32 {
        match self {
            FailureKind::InvalidSpec => 3,
            FailureKind::Io => 4,
            FailureKind::Panic => 5,
            FailureKind::Timeout => 6,
        }
    }

    /// Severity order for picking one representative kind out of a mixed
    /// set of failures: panic outranks timeout outranks invalid-spec
    /// outranks io.
    fn severity(self) -> u8 {
        match self {
            FailureKind::Panic => 3,
            FailureKind::Timeout => 2,
            FailureKind::InvalidSpec => 1,
            FailureKind::Io => 0,
        }
    }

    /// The most severe kind among `kinds` (`None` on an empty iterator).
    pub fn worst(kinds: impl IntoIterator<Item = FailureKind>) -> Option<FailureKind> {
        kinds.into_iter().max_by_key(|k| k.severity())
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One `(case, seed)` unit that failed instead of producing metrics.
#[derive(Debug, Clone)]
pub struct UnitFailure {
    /// Failure class.
    pub kind: FailureKind,
    /// Label of the case the unit belonged to.
    pub case: String,
    /// The seed the unit was running.
    pub seed: u64,
    /// Human-readable detail: the panic payload, the deadline overrun,
    /// the build error.
    pub detail: String,
}

impl std::fmt::Display for UnitFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "case {} seed {} [{}]: {}",
            self.case, self.seed, self.kind, self.detail
        )
    }
}

/// Stringify a panic payload (`panic!` with a literal gives `&str`, with a
/// format string gives `String`; anything else is opaque).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Process-wide run policy (CLI flags), interrupt flag, and failure ledger.
// ---------------------------------------------------------------------------

/// Per-unit wall-clock deadline in milliseconds; 0 means "not set".
static DEADLINE_MS: AtomicU64 = AtomicU64::new(0);

/// Failure budget; `usize::MAX` means "not set".
static MAX_FAILURES: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Set when the process received SIGINT/SIGTERM; checked between units.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Install (or clear, with `None`) the CLI `--deadline-ms` per-unit
/// deadline. A scenario's own `deadline_ms` field outranks it, mirroring
/// how a scenario's `metrics` list outranks `--metrics`.
pub fn set_deadline_override(ms: Option<u64>) {
    DEADLINE_MS.store(ms.unwrap_or(0), Ordering::Relaxed);
}

/// The CLI per-unit deadline, if one was installed.
pub fn deadline_override() -> Option<u64> {
    match DEADLINE_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(ms),
    }
}

/// Install (or clear, with `None`) the CLI `--max-failures` budget: a run
/// aborts (exit code 7) once its unit-failure count exceeds the budget.
pub fn set_max_failures(budget: Option<usize>) {
    MAX_FAILURES.store(budget.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// The CLI failure budget, if one was installed.
pub fn max_failures() -> Option<usize> {
    match MAX_FAILURES.load(Ordering::Relaxed) {
        usize::MAX => None,
        n => Some(n),
    }
}

/// Mark the process interrupted (called from the SIGINT handler; an
/// atomic store is async-signal-safe). The supervisor notices between
/// units and shuts the run down with the journal flushed.
pub fn request_interrupt() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Whether an interrupt has been requested.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

fn resume_hint_slot() -> &'static Mutex<Option<String>> {
    static HINT: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    HINT.get_or_init(Default::default)
}

/// Remember the exact command that resumes the current journaled run, so
/// an interrupt or a budget abort can print it.
pub fn set_resume_hint(cmd: Option<String>) {
    *resume_hint_slot().lock().expect("resume hint poisoned") = cmd;
}

/// The resume command remembered by [`set_resume_hint`].
pub fn resume_hint() -> Option<String> {
    resume_hint_slot()
        .lock()
        .expect("resume hint poisoned")
        .clone()
}

fn ledger() -> &'static Mutex<Vec<UnitFailure>> {
    static LEDGER: OnceLock<Mutex<Vec<UnitFailure>>> = OnceLock::new();
    LEDGER.get_or_init(Default::default)
}

/// Append unit failures to the process-wide ledger the CLI drains at the
/// end of a run to pick its exit code.
pub fn record_failures(failures: impl IntoIterator<Item = UnitFailure>) {
    ledger()
        .lock()
        .expect("failure ledger poisoned")
        .extend(failures);
}

/// Drain the failure ledger.
pub fn take_recorded_failures() -> Vec<UnitFailure> {
    std::mem::take(&mut *ledger().lock().expect("failure ledger poisoned"))
}

/// Exit because the run was interrupted: the journal is already flushed
/// (every unit line is written and flushed as it completes), so all that
/// remains is to tell the user how to pick the run back up.
fn exit_interrupted() -> ! {
    eprintln!("interrupted: journal flushed; completed units are safe");
    if let Some(hint) = resume_hint() {
        eprintln!("resume with: {hint}");
    }
    std::process::exit(130);
}

/// Exit because the failure budget was exceeded.
fn exit_budget(failed: usize, budget: usize) -> ! {
    eprintln!("error: failure budget exceeded: {failed} unit failure(s) > --max-failures {budget}");
    if let Some(hint) = resume_hint() {
        eprintln!("completed units are journaled; resume with: {hint}");
    }
    std::process::exit(7);
}

// ---------------------------------------------------------------------------
// Test-only failure injection.
// ---------------------------------------------------------------------------

/// Deterministic failure injection for tests and CI, keyed by case label:
/// `BPS_TEST_UNIT_PANIC=<substr>` panics every unit whose case label
/// contains `<substr>`; `BPS_TEST_UNIT_STALL=<substr>:<ms>` makes matching
/// units sleep `<ms>` milliseconds first (an empty `<substr>` matches every
/// unit). Unset in normal operation; simulated results are never altered,
/// only delayed or aborted.
pub fn apply_test_hooks(label: &str) {
    if let Ok(spec) = std::env::var("BPS_TEST_UNIT_PANIC") {
        if label.contains(&spec) {
            panic!("BPS_TEST_UNIT_PANIC injected panic for case `{label}`");
        }
    }
    if let Ok(spec) = std::env::var("BPS_TEST_UNIT_STALL") {
        if let Some((substr, ms)) = spec.rsplit_once(':') {
            if let Ok(ms) = ms.parse::<u64>() {
                if label.contains(substr) {
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The supervised executor.
// ---------------------------------------------------------------------------

/// The work of one unit: produce its captured metric values or a
/// classified failure. `'static` + `Send + Sync` so a wedged unit can be
/// detached without tearing down borrowed state.
pub type UnitWork = Arc<dyn Fn() -> Result<UnitValues, (FailureKind, String)> + Send + Sync>;

/// One schedulable `(case, seed)` unit.
pub struct UnitTask {
    /// Case label, for failure reports.
    pub label: String,
    /// The seed this unit runs.
    pub seed: u64,
    /// Journal key (empty when the run is not journaled).
    pub key: String,
    /// The unit's work.
    pub work: UnitWork,
}

/// Outcome of one supervised unit.
#[derive(Debug, Clone)]
pub enum UnitOutcome {
    /// The unit completed; its captured per-seed values.
    Done(UnitValues),
    /// The unit failed.
    Failed(FailureKind, String),
}

enum SlotState {
    Pending,
    Running(Instant),
    Done(UnitOutcome),
}

struct Shared {
    tasks: Vec<UnitTask>,
    next: AtomicUsize,
    slots: Vec<Mutex<SlotState>>,
    done: Mutex<usize>,
    cv: Condvar,
    halt: AtomicBool,
    failures: AtomicUsize,
}

/// Completion callback of [`run_supervised`]: invoked with every healthy
/// unit *before* it is counted done (the journal-before-done ordering).
pub type OnDone = dyn Fn(&UnitTask, &UnitValues) + Send + Sync;

fn run_unit(task: &UnitTask, on_done: &OnDone) -> UnitOutcome {
    let started = bps_telemetry::now();
    let out = match catch_unwind(AssertUnwindSafe(|| (task.work)())) {
        Ok(Ok(values)) => UnitOutcome::Done(values),
        Ok(Err((kind, detail))) => UnitOutcome::Failed(kind, detail),
        Err(payload) => UnitOutcome::Failed(FailureKind::Panic, panic_message(payload)),
    };
    if bps_telemetry::enabled() {
        bps_telemetry::unit(&task.label, task.seed, started);
        bps_telemetry::incr(bps_telemetry::Counter::SweepUnits);
        if matches!(out, UnitOutcome::Failed(..)) {
            bps_telemetry::incr(bps_telemetry::Counter::SweepFailures);
        }
    }
    if let UnitOutcome::Done(values) = &out {
        // Journal before reporting completion, so "all units done" implies
        // "all units journaled" — a kill can lose at most in-flight units.
        on_done(task, values);
    }
    out
}

fn worker(shared: &Shared, on_done: &OnDone) {
    loop {
        if shared.halt.load(Ordering::Relaxed) {
            return;
        }
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= shared.tasks.len() {
            return;
        }
        *shared.slots[i].lock().expect("slot poisoned") = SlotState::Running(Instant::now());
        let out = run_unit(&shared.tasks[i], on_done);
        let mut slot = shared.slots[i].lock().expect("slot poisoned");
        if matches!(*slot, SlotState::Done(_)) {
            // The supervisor already timed this unit out; its late result
            // is journaled (harmless — the journal is content-keyed) but
            // the run's outcome stays Timeout.
            continue;
        }
        if matches!(out, UnitOutcome::Failed(..)) {
            shared.failures.fetch_add(1, Ordering::Relaxed);
        }
        *slot = SlotState::Done(out);
        drop(slot);
        *shared.done.lock().expect("done count poisoned") += 1;
        shared.cv.notify_all();
    }
}

/// Execute `tasks` under supervision and return one outcome per task, in
/// task order. `threads` workers claim tasks from a shared counter (same
/// work-stealing shape as [`SweepExec`](crate::sweep::SweepExec), so the
/// set of executed units is identical at any thread count); the calling
/// thread watches the clock. A unit running past `deadline` is marked
/// [`FailureKind::Timeout`] and detached — its worker thread is never
/// joined, and a replacement worker keeps the pool at full strength. The
/// process exits (with the journal flushed and the resume command
/// printed) if the run is interrupted or more than `max_failures` units
/// fail.
pub fn run_supervised(
    tasks: Vec<UnitTask>,
    threads: usize,
    deadline: Option<Duration>,
    max_failures: Option<usize>,
    on_done: Arc<OnDone>,
) -> Vec<UnitOutcome> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    // Inline path: single worker, no watchdog needed. Deterministic task
    // order, zero threads spawned — the shape `BPS_THREADS=1` runs take.
    if threads <= 1 && deadline.is_none() {
        let mut out = Vec::with_capacity(n);
        let mut failed = 0usize;
        for task in &tasks {
            if interrupted() {
                exit_interrupted();
            }
            let outcome = run_unit(task, on_done.as_ref());
            if matches!(outcome, UnitOutcome::Failed(..)) {
                failed += 1;
                if let Some(budget) = max_failures {
                    if failed > budget {
                        exit_budget(failed, budget);
                    }
                }
            }
            out.push(outcome);
        }
        return out;
    }

    let shared = Arc::new(Shared {
        slots: (0..n).map(|_| Mutex::new(SlotState::Pending)).collect(),
        tasks,
        next: AtomicUsize::new(0),
        done: Mutex::new(0),
        cv: Condvar::new(),
        halt: AtomicBool::new(false),
        failures: AtomicUsize::new(0),
    });
    let workers = threads.clamp(1, n);
    let mut handles = Vec::with_capacity(workers);
    let spawn_worker = |handles: &mut Vec<std::thread::JoinHandle<()>>| {
        let shared = shared.clone();
        let on_done = on_done.clone();
        handles.push(std::thread::spawn(move || {
            worker(&shared, on_done.as_ref())
        }));
    };
    for _ in 0..workers {
        spawn_worker(&mut handles);
    }

    loop {
        {
            let done = shared.done.lock().expect("done count poisoned");
            if *done >= n {
                break;
            }
            // Wake on unit completion or every 20 ms to scan the clock.
            let _ = shared
                .cv
                .wait_timeout(done, Duration::from_millis(20))
                .expect("done count poisoned");
        }
        if interrupted() {
            shared.halt.store(true, Ordering::Relaxed);
            exit_interrupted();
        }
        if let Some(budget) = max_failures {
            let failed = shared.failures.load(Ordering::Relaxed);
            if failed > budget {
                shared.halt.store(true, Ordering::Relaxed);
                exit_budget(failed, budget);
            }
        }
        if let Some(deadline) = deadline {
            for i in 0..n {
                let mut slot = shared.slots[i].lock().expect("slot poisoned");
                if let SlotState::Running(started) = *slot {
                    if started.elapsed() >= deadline {
                        *slot = SlotState::Done(UnitOutcome::Failed(
                            FailureKind::Timeout,
                            format!("exceeded per-unit deadline of {} ms", deadline.as_millis()),
                        ));
                        drop(slot);
                        shared.failures.fetch_add(1, Ordering::Relaxed);
                        *shared.done.lock().expect("done count poisoned") += 1;
                        // The worker stuck on this unit is detached, never
                        // joined; a replacement keeps the pool full.
                        spawn_worker(&mut handles);
                    }
                }
            }
        }
    }
    // Stop idle workers and join only those that actually finished — a
    // detached worker wedged inside a timed-out unit is left behind.
    shared.halt.store(true, Ordering::Relaxed);
    for h in handles {
        if h.is_finished() {
            let _ = h.join();
        }
    }
    let shared = match Arc::try_unwrap(shared) {
        Ok(s) => s,
        Err(shared) => {
            // Detached workers still hold the Arc; copy the outcomes out.
            return shared
                .slots
                .iter()
                .map(|s| match &*s.lock().expect("slot poisoned") {
                    SlotState::Done(out) => out.clone(),
                    _ => unreachable!("supervisor returned before all units were done"),
                })
                .collect();
        }
    };
    shared
        .slots
        .into_iter()
        .map(|s| match s.into_inner().expect("slot poisoned") {
            SlotState::Done(out) => out,
            _ => unreachable!("supervisor returned before all units were done"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_task(label: &str, seed: u64, v: f64) -> UnitTask {
        UnitTask {
            label: label.to_string(),
            seed,
            key: String::new(),
            work: Arc::new(move || {
                Ok(UnitValues {
                    iops: Some(v),
                    bw: Some(v),
                    arpt: Some(v),
                    bps: Some(v),
                    exec_s: v,
                    extra: Vec::new(),
                })
            }),
        }
    }

    #[test]
    fn worst_kind_prefers_panic_then_timeout() {
        use FailureKind::*;
        assert_eq!(
            FailureKind::worst([Io, Timeout, InvalidSpec]),
            Some(Timeout)
        );
        assert_eq!(FailureKind::worst([Timeout, Panic]), Some(Panic));
        assert_eq!(FailureKind::worst([]), None);
    }

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        use FailureKind::*;
        let codes: Vec<i32> = [Panic, Timeout, InvalidSpec, Io]
            .iter()
            .map(|k| k.exit_code())
            .collect();
        assert_eq!(codes, vec![5, 6, 3, 4]);
    }

    #[test]
    fn outcomes_come_back_in_task_order_at_any_thread_count() {
        for threads in [1, 4] {
            let tasks: Vec<UnitTask> = (0..10)
                .map(|i| ok_task(&format!("t{i}"), i, i as f64))
                .collect();
            let out = run_supervised(tasks, threads, None, None, Arc::new(|_, _| {}));
            assert_eq!(out.len(), 10);
            for (i, o) in out.iter().enumerate() {
                match o {
                    UnitOutcome::Done(v) => assert_eq!(v.exec_s, i as f64),
                    other => panic!("unit {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn panicking_unit_is_classified_not_fatal() {
        let mut tasks = vec![ok_task("ok", 1, 1.0)];
        tasks.push(UnitTask {
            label: "bad".into(),
            seed: 2,
            key: String::new(),
            work: Arc::new(|| panic!("injected supervise panic")),
        });
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_supervised(tasks, 2, None, None, Arc::new(|_, _| {}));
        std::panic::set_hook(prev);
        assert!(matches!(out[0], UnitOutcome::Done(_)));
        match &out[1] {
            UnitOutcome::Failed(FailureKind::Panic, detail) => {
                assert!(detail.contains("injected supervise panic"), "{detail}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overrunning_unit_times_out_instead_of_hanging() {
        let mut tasks = vec![ok_task("fast", 1, 1.0)];
        tasks.push(UnitTask {
            label: "stuck".into(),
            seed: 2,
            key: String::new(),
            work: Arc::new(|| {
                std::thread::sleep(Duration::from_secs(30));
                Ok(UnitValues {
                    iops: None,
                    bw: None,
                    arpt: None,
                    bps: None,
                    exec_s: 0.0,
                    extra: Vec::new(),
                })
            }),
        });
        tasks.push(ok_task("after", 3, 3.0));
        let started = Instant::now();
        let out = run_supervised(
            tasks,
            2,
            Some(Duration::from_millis(80)),
            None,
            Arc::new(|_, _| {}),
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "sweep hung on the stuck unit"
        );
        assert!(matches!(out[0], UnitOutcome::Done(_)));
        match &out[1] {
            UnitOutcome::Failed(FailureKind::Timeout, detail) => {
                assert!(detail.contains("deadline"), "{detail}");
            }
            other => panic!("{other:?}"),
        }
        // The unit behind the stuck one still ran (replacement worker).
        assert!(matches!(out[2], UnitOutcome::Done(_)));
    }

    #[test]
    fn on_done_sees_every_completed_unit() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let tasks: Vec<UnitTask> = (0..6)
            .map(|i| {
                let mut t = ok_task(&format!("t{i}"), i, i as f64);
                t.key = format!("k{i}");
                t
            })
            .collect();
        let out = run_supervised(
            tasks,
            3,
            None,
            None,
            Arc::new(move |task, _| sink.lock().unwrap().push(task.key.clone())),
        );
        assert_eq!(out.len(), 6);
        let mut keys = seen.lock().unwrap().clone();
        keys.sort();
        assert_eq!(keys, vec!["k0", "k1", "k2", "k3", "k4", "k5"]);
    }
}
