//! # bps-experiments — reproducing every table and figure
//!
//! One module per experiment in the paper's evaluation (§IV), each
//! assembling the simulated cluster, the benchmark workload, and the BPS
//! measurement pipeline, then reporting the same rows/series the paper
//! plots. The `reproduce` binary prints them:
//!
//! ```text
//! cargo run -p bps-experiments --release --bin reproduce -- all
//! cargo run -p bps-experiments --release --bin reproduce -- fig12
//! cargo run -p bps-experiments --release --bin reproduce -- fig5 --paper
//! ```
//!
//! Absolute numbers are simulator-scale, not the authors' testbed; the
//! reproduction criterion is the *shape*: correlation directions, who
//! misleads where, and approximate strengths (see EXPERIMENTS.md).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod figures;
pub mod journal;
pub mod reference;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod supervise;
pub mod sweep;

pub use runner::{run_case, run_case_streaming, CasePoint, CaseSpec, LayoutPolicy, Storage};
pub use scale::Scale;
pub use supervise::{FailureKind, UnitFailure};
pub use sweep::SweepExec;
