//! Machine-readable figure exports.
//!
//! `reproduce --csv <dir>` writes each figure's sweep as CSV next to the
//! printed tables, so the bar charts and detail plots can be regenerated
//! with any plotting tool.

use crate::figures::common::{CcFigure, DetailSeries};
use bps_core::metrics::registry;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// CSV of a CC figure: one row per case, then the normalized CC rows.
/// Selected metrics beyond the paper four appear as extra columns between
/// `bps` and `exec_s`, headed by their registry `csv_label`; under the
/// default paper selection the CSV is byte-identical to the historical
/// fixed-column form.
pub fn cc_figure_csv(fig: &CcFigure) -> String {
    let extras: &[(String, f64)] = fig.cases.first().map(|c| c.extra.as_slice()).unwrap_or(&[]);
    let mut out = String::new();
    write!(out, "case,iops,bw_mbs,arpt_s,bps").unwrap();
    for (name, _) in extras {
        let label = registry()
            .find(name)
            .map(|m| m.csv_label().to_string())
            .unwrap_or_else(|| name.to_lowercase());
        write!(out, ",{label}").unwrap();
    }
    writeln!(out, ",exec_s").unwrap();
    for c in &fig.cases {
        // A case whose every seed failed writes an annotated `n/a (kind)`
        // for each undefined value instead of a bare NaN, so downstream
        // tooling can tell "metric undefined" from "case never ran".
        let cell = |out: &mut String, v: f64| match c.failed {
            Some(kind) if !v.is_finite() => write!(out, ",n/a ({})", kind.name()).unwrap(),
            _ => write!(out, ",{v}").unwrap(),
        };
        write!(out, "{}", c.label).unwrap();
        cell(&mut out, c.iops);
        cell(&mut out, c.bw);
        cell(&mut out, c.arpt);
        cell(&mut out, c.bps);
        for &(_, v) in &c.extra {
            cell(&mut out, v);
        }
        cell(&mut out, c.exec_s);
        writeln!(out).unwrap();
    }
    writeln!(out).unwrap();
    writeln!(out, "metric,normalized_cc,raw_cc,direction_correct").unwrap();
    for row in &fig.rows {
        match &row.outcome {
            Some(o) => writeln!(
                out,
                "{},{},{},{}",
                row.metric, o.normalized, o.raw, o.direction_correct
            )
            .unwrap(),
            None => writeln!(out, "{},,,", row.metric).unwrap(),
        }
    }
    out
}

/// CSV of a detail series; the metric column is headed by its registry
/// `csv_label` (lowercased name for a metric the registry does not know).
pub fn detail_series_csv(series: &DetailSeries) -> String {
    let label = registry()
        .find(&series.metric)
        .map(|m| m.csv_label().to_string())
        .unwrap_or_else(|| series.metric.to_lowercase());
    let mut out = String::new();
    writeln!(out, "case,{label},exec_s").unwrap();
    for (label, value, exec) in &series.points {
        writeln!(out, "{label},{value},{exec}").unwrap();
    }
    out
}

/// Write a figure's CSV into `dir/<name>.csv`.
pub fn write_csv(dir: &Path, name: &str, csv: &str) -> io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, csv)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CasePoint;

    fn fig() -> CcFigure {
        CcFigure::from_points(
            "test",
            (1..=4u32)
                .map(|k| CasePoint {
                    label: format!("c{k}"),
                    iops: 100.0 / k as f64,
                    bw: 10.0 / k as f64,
                    arpt: 0.001 * k as f64,
                    bps: 1000.0 / k as f64,
                    exec_s: k as f64,
                    extra: Vec::new(),
                    failed: None,
                })
                .collect(),
        )
    }

    #[test]
    fn cc_csv_has_cases_and_rows() {
        let csv = cc_figure_csv(&fig());
        assert!(csv.starts_with("case,iops,bw_mbs,arpt_s,bps,exec_s"));
        assert_eq!(csv.matches('\n').count(), 1 + 4 + 1 + 1 + 4);
        assert!(csv.contains("c3,"));
        assert!(csv.contains("BPS,"));
        assert!(csv.contains(",true"));
    }

    #[test]
    fn cc_csv_appends_extra_metric_columns_by_csv_label() {
        let mut fig = fig();
        for c in &mut fig.cases {
            c.extra = vec![("P99".to_string(), 0.5), ("MaxQD".to_string(), 4.0)];
        }
        let csv = cc_figure_csv(&fig);
        assert!(
            csv.starts_with("case,iops,bw_mbs,arpt_s,bps,p99_s,max_qd,exec_s"),
            "{csv}"
        );
        assert!(csv.contains(",0.5,4,"), "{csv}");
    }

    #[test]
    fn cc_csv_annotates_failed_cases_instead_of_bare_nan() {
        let mut fig = fig();
        fig.cases[2].iops = f64::NAN;
        fig.cases[2].bw = f64::NAN;
        fig.cases[2].arpt = f64::NAN;
        fig.cases[2].bps = f64::NAN;
        fig.cases[2].exec_s = f64::NAN;
        fig.cases[2].failed = Some(crate::supervise::FailureKind::Panic);
        let csv = cc_figure_csv(&fig);
        assert!(
            csv.contains("c3,n/a (panic),n/a (panic),n/a (panic),n/a (panic),n/a (panic)"),
            "{csv}"
        );
        // Healthy cases keep the plain numeric form.
        assert!(csv.contains("c1,100,"), "{csv}");
        // A NaN without a recorded failure still writes NaN (an undefined
        // metric on a case that ran is not a failed case).
        fig.cases[0].bps = f64::NAN;
        fig.cases[0].failed = None;
        let csv = cc_figure_csv(&fig);
        assert!(csv.contains("c1,100,10,0.001,NaN,"), "{csv}");
    }

    #[test]
    fn detail_csv_shape() {
        let f = fig();
        let s = DetailSeries::from_points("d", "IOPS", &f.cases);
        let csv = detail_series_csv(&s);
        assert!(csv.starts_with("case,iops,exec_s"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn write_roundtrip() {
        let dir = std::env::temp_dir().join("bps_export_test");
        let path = write_csv(&dir, "fig_test", &cc_figure_csv(&fig())).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("exec_s"));
        std::fs::remove_file(path).ok();
    }
}
