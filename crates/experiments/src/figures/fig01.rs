//! Figure 1: the six two-request cases where conventional metrics mislead.
//!
//! Each subfigure contrasts two I/O access cases that a conventional metric
//! scores as equal (or backwards) while the overall I/O performance seen by
//! the application differs — and shows that BPS scores them correctly.

use bps_core::metrics::{Arpt, Bandwidth, Bps, Iops, Metric};
use bps_core::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
use bps_core::time::Nanos;
use bps_core::trace::Trace;
use std::fmt::Write;

const S: u64 = 1 << 20; // the request size "S" of the figure
const T_MS: u64 = 10; // the service time "T" of the figure

fn app(pid: u32, offset: u64, bytes: u64, s_ms: u64, e_ms: u64) -> IoRecord {
    IoRecord::app_read(
        ProcessId(pid),
        FileId(0),
        offset,
        bytes,
        Nanos::from_millis(s_ms),
        Nanos::from_millis(e_ms),
    )
}

fn fs(bytes: u64, s_ms: u64, e_ms: u64) -> IoRecord {
    IoRecord::new(
        ProcessId(0),
        IoOp::Read,
        FileId(0),
        0,
        bytes,
        Nanos::from_millis(s_ms),
        Nanos::from_millis(e_ms),
        Layer::FileSystem,
    )
}

/// The six cases of Figure 1 as traces:
/// `(subfigure label, left-case trace, right-case trace)`.
pub fn cases() -> Vec<(&'static str, Trace, Trace)> {
    // (a) Different I/O sizes: two size-S requests in T each, sequential,
    // vs both served together as one size-2S request in T.
    let a_left = Trace::from_records(vec![app(0, 0, S, 0, T_MS), app(0, S, S, T_MS, 2 * T_MS)]);
    let a_right = Trace::from_records(vec![app(0, 0, 2 * S, 0, T_MS)]);

    // (b) Different actual amounts of data movement: the application asks
    // for 2 requests of S in both cases (same times), but the right case's
    // file system moves twice the data (prefetch/sieving overshoot).
    let b_left = Trace::from_records(vec![
        app(0, 0, S, 0, T_MS),
        app(0, S, S, T_MS, 2 * T_MS),
        fs(2 * S, 0, 2 * T_MS),
    ]);
    let b_right = Trace::from_records(vec![
        app(0, 0, S, 0, T_MS),
        app(0, S, S, T_MS, 2 * T_MS),
        fs(4 * S, 0, 2 * T_MS),
    ]);

    // (c) Different I/O concurrency: sequential vs fully concurrent.
    let c_left = Trace::from_records(vec![app(0, 0, S, 0, T_MS), app(0, S, S, T_MS, 2 * T_MS)]);
    let c_right = Trace::from_records(vec![app(0, 0, S, 0, T_MS), app(1, S, S, 0, T_MS)]);

    vec![
        ("(a) different I/O sizes", a_left, a_right),
        ("(b) different data movement", b_left, b_right),
        ("(c) different concurrency", c_left, c_right),
    ]
}

/// Render the figure: per subfigure, each metric's left/right values and
/// whether the metric distinguishes the cases the way the application
/// experiences them.
pub fn report() -> String {
    let mut out = String::new();
    writeln!(out, "=== Figure 1: two-request cases ===").unwrap();
    for (label, left, right) in cases() {
        writeln!(out, "{label}").unwrap();
        let metrics: Vec<(&str, f64, f64)> = vec![
            (
                "IOPS",
                Iops.compute(&left).unwrap(),
                Iops.compute(&right).unwrap(),
            ),
            (
                "BW",
                Bandwidth.compute(&left).unwrap(),
                Bandwidth.compute(&right).unwrap(),
            ),
            (
                "ARPT",
                Arpt.compute(&left).unwrap(),
                Arpt.compute(&right).unwrap(),
            ),
            (
                "BPS",
                Bps.compute(&left).unwrap(),
                Bps.compute(&right).unwrap(),
            ),
        ];
        for (name, l, r) in metrics {
            writeln!(out, "  {name:<5} left {l:>12.2}   right {r:>12.2}").unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subfigure_a_iops_equal_bps_differs() {
        let cs = cases();
        let (_, left, right) = &cs[0];
        // IOPS identical (the paper's 1/T in both cases)...
        let il = Iops.compute(left).unwrap();
        let ir = Iops.compute(right).unwrap();
        assert!((il - ir).abs() < 1e-9);
        // ...but the right case is twice as fast by BPS.
        let bl = Bps.compute(left).unwrap();
        let br = Bps.compute(right).unwrap();
        assert!((br / bl - 2.0).abs() < 1e-9);
    }

    #[test]
    fn subfigure_b_bw_differs_bps_equal() {
        let cs = cases();
        let (_, left, right) = &cs[1];
        let wl = Bandwidth.compute(left).unwrap();
        let wr = Bandwidth.compute(right).unwrap();
        assert!(wr > 1.9 * wl, "BW rewards the extra movement");
        let bl = Bps.compute(left).unwrap();
        let br = Bps.compute(right).unwrap();
        assert!((bl - br).abs() < 1e-9, "BPS sees identical app performance");
    }

    #[test]
    fn subfigure_c_arpt_equal_bps_differs() {
        let cs = cases();
        let (_, left, right) = &cs[2];
        let al = Arpt.compute(left).unwrap();
        let ar = Arpt.compute(right).unwrap();
        assert!((al - ar).abs() < 1e-12, "ARPT blind to concurrency");
        let bl = Bps.compute(left).unwrap();
        let br = Bps.compute(right).unwrap();
        assert!((br / bl - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_renders_all_subfigures() {
        let r = report();
        assert!(r.contains("(a)") && r.contains("(b)") && r.contains("(c)"));
        assert!(r.contains("BPS"));
    }
}
