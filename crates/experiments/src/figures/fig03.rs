//! Figure 3: the BPS time-calculating algorithm.
//!
//! The paper gives O(n log n) pseudocode (sort by start time, then one
//! merging pass). `bps-core` carries a faithful port
//! ([`bps_core::interval::paper_union_time`]) and an independently written
//! sweep ([`bps_core::interval::union_time`]); this module demonstrates
//! their agreement on randomized traces — the executable version of the
//! figure.

use bps_core::interval::{paper_union_time, union_time, Interval};
use bps_core::time::Nanos;
use bps_sim::rng::SimRng;
use std::fmt::Write;

/// Generate `n` random request intervals (bursty arrivals, mixed lengths).
pub fn random_intervals(n: usize, seed: u64) -> Vec<Interval> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            // Arrivals drift forward with occasional idle gaps.
            t += rng.below(200_000);
            if rng.unit() < 0.05 {
                t += 5_000_000; // idle period
            }
            let len = 1_000 + rng.below(500_000);
            Interval::new(Nanos(t), Nanos(t + len))
        })
        .collect()
}

/// Run both implementations across sizes; returns
/// `(n, paper algorithm T seconds, sweep T seconds)` rows.
pub fn agreement(sizes: &[usize], seed: u64) -> Vec<(usize, f64, f64)> {
    sizes
        .iter()
        .map(|&n| {
            let ivs = random_intervals(n, seed ^ n as u64);
            let a = paper_union_time(&ivs).as_secs_f64();
            let b = union_time(ivs).as_secs_f64();
            (n, a, b)
        })
        .collect()
}

/// Render the demonstration.
pub fn report() -> String {
    let rows = agreement(&[10, 100, 1_000, 10_000], 42);
    let mut out = String::new();
    writeln!(out, "=== Figure 3: BPS time-calculating algorithm ===").unwrap();
    writeln!(
        out,
        "{:>8} {:>18} {:>18}",
        "records", "paper algo T (s)", "sweep T (s)"
    )
    .unwrap();
    for (n, a, b) in rows {
        writeln!(out, "{n:>8} {a:>18.6} {b:>18.6}").unwrap();
    }
    writeln!(
        out,
        "complexity O(n log n); 32-byte records => 65535 ops ~ 2 MiB (paper §III.C)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implementations_agree_on_random_traces() {
        for (n, a, b) in agreement(&[1, 10, 1_000, 20_000], 7) {
            assert!((a - b).abs() < 1e-12, "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn random_intervals_are_valid_and_sized() {
        let ivs = random_intervals(500, 3);
        assert_eq!(ivs.len(), 500);
        assert!(ivs.iter().all(|iv| iv.end >= iv.start));
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("paper algo"));
        assert!(r.contains("65535"));
    }
}
