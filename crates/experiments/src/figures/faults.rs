//! Set 5 — degraded-mode experiments: the four metrics under faults.
//!
//! The paper scores IOPS/Bandwidth/ARPT/BPS on a healthy cluster; this
//! set re-runs the scoring while the cluster is sick. Each *fault
//! variety* (straggler server, transient device errors, lossy links,
//! server outages) is swept over five intensity levels — level 0 is the
//! healthy cluster — and the four metrics are correlated against
//! application execution time exactly as in Figures 4–12.
//!
//! The workload mixes 1 MB writes with 64 KB reads so each rival
//! metric's failure mode can surface:
//!
//! * **Bandwidth** counts file-system bytes: a 16-chunk write that fails
//!   on its 12th chunk still moved 11 chunks of data, every retry moves
//!   them again, and degraded-stripe read failover re-reads at double
//!   width — recovery traffic inflates the numerator exactly when the
//!   application is receiving less.
//! * **ARPT** only averages requests that *complete*: a request whose
//!   retries exhaust leaves retry records but no application record, so
//!   the slowest requests are censored from the mean right when the
//!   cluster is at its worst (survivorship bias).
//! * **IOPS** counts operations, and faults abandon large requests far
//!   more often than small ones (more chunks, more failure
//!   opportunities), so the surviving op mix drifts smaller as intensity
//!   rises and the op count barely reflects the damage.
//! * **BPS** counts delivered application blocks over overlapped
//!   application I/O time, which keeps tracking what the application
//!   actually experienced.

use crate::figures::common::CcFigure;
use crate::runner::CasePoint;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{
    CaseDecl, CaseTemplate, DeviceErrorSpec, FaultSpec, Grid, LayoutSpec, LinkLossSpec,
    OutageTrainSpec, OutputSpec, Patch, RetrySpec, Scenario, SlowdownSpec, StorageSpec,
    WorkloadTemplate,
};
use bps_core::extent::Extent;
use bps_workloads::spec::{AppOp, OpStream, Workload};
use std::fmt::Write;

/// I/O servers in every degraded-mode case.
pub const SERVERS: usize = 4;
/// Application processes (one per client node).
pub const PROCESSES: usize = 4;
/// Cases per variety (one healthy + four fault shapes).
pub const CASES_PER_VARIETY: usize = 5;

/// The large request of each workload round (a write: 16 stripe chunks,
/// each a failure opportunity, and no degraded-read failover to absorb
/// them).
const LARGE_WRITE: u64 = 1 << 20;
/// The small request size (reads; failover-protected).
const SMALL_IO: u64 = 64 << 10;
/// Small requests per round.
const SMALLS_PER_ROUND: u64 = 4;
/// Bytes one round advances through the file.
const ROUND_BYTES: u64 = LARGE_WRITE + SMALLS_PER_ROUND * SMALL_IO;

/// A mixed-size checkpoint-style workload: each process walks its own
/// file in rounds of one 1 MB write followed by four 64 KB reads.
#[derive(Debug, Clone)]
pub struct DegradedMix {
    processes: usize,
    rounds: u64,
}

impl DegradedMix {
    /// Size the workload from a scale preset (total bytes across all
    /// processes ≈ `scale.fig9_total / 2`; the sweep runs 4 varieties × 5
    /// levels, so each case is kept lighter than a Set 3 case).
    pub fn from_scale(scale: &Scale) -> Self {
        let per_proc = (scale.fig9_total / 2) / PROCESSES as u64;
        DegradedMix {
            processes: PROCESSES,
            rounds: (per_proc / ROUND_BYTES).max(4),
        }
    }
}

impl Workload for DegradedMix {
    fn name(&self) -> &'static str {
        "degraded-mix"
    }
    fn processes(&self) -> usize {
        self.processes
    }
    fn file_sizes(&self) -> Vec<u64> {
        vec![self.rounds * ROUND_BYTES; self.processes]
    }
    fn stream(&self, pid: usize) -> OpStream {
        let rounds = self.rounds;
        Box::new((0..rounds).flat_map(move |r| {
            let base = r * ROUND_BYTES;
            let mut ops = Vec::with_capacity(1 + SMALLS_PER_ROUND as usize);
            ops.push(AppOp::Write {
                file: pid,
                extent: Extent::new(base, LARGE_WRITE),
            });
            for s in 0..SMALLS_PER_ROUND {
                let offset = base + LARGE_WRITE + s * SMALL_IO;
                ops.push(AppOp::Read {
                    file: pid,
                    extent: Extent::new(offset, SMALL_IO),
                });
            }
            ops
        }))
    }
}

/// One fault variety of the Set 5 sweep. Each variety sweeps *shapes* of
/// one fault type — concentrated on one server, spread over two, uniform
/// over all — rather than a single monotone intensity knob, the same way
/// Set 1 sweeps device types and Set 3 sweeps process counts. Execution
/// time responds to the *worst* component (the straggler, the hot disk,
/// the longest outage) while per-op averages respond to the *mean*
/// damage, and that asymmetry is exactly what separates the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Slowdown windows: one big straggler vs several mild ones.
    Straggler,
    /// Transient device errors: one failing disk vs uniform bit-rot.
    DeviceErrors,
    /// Lossy links: rate/delay combinations.
    LinkLoss,
    /// Pause-and-recover outages: frequent-short vs rare-long windows.
    Outages,
}

impl FaultKind {
    /// All varieties, in Table-2-row order.
    pub fn all() -> [FaultKind; 4] {
        [
            FaultKind::Straggler,
            FaultKind::DeviceErrors,
            FaultKind::LinkLoss,
            FaultKind::Outages,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Straggler => "straggler",
            FaultKind::DeviceErrors => "device-err",
            FaultKind::LinkLoss => "link-loss",
            FaultKind::Outages => "outage",
        }
    }

    /// The labelled fault shapes of this variety's cases, healthy first
    /// (`None` = no plan). The plan seed is derived from the variety so
    /// two varieties never share an injector stream.
    pub fn shapes(&self) -> Vec<(String, Option<FaultSpec>)> {
        let base = || FaultSpec::seeded(0x5E7_5000 + *self as u64);
        let slow = |server: usize, factor: f64| SlowdownSpec { server, factor };
        // Periodic outages on one server: `width` ms down starting `phase`
        // ms into every `period` ms cycle. Blanketing a long horizon keeps
        // the duty cycle meaningful at any scale preset's run length.
        let outages = |server: usize, width: u64, period: u64, phase: u64| {
            let mut spec = base();
            spec.outage_trains = vec![OutageTrainSpec {
                server,
                width_ms: width,
                period_ms: period,
                phase_ms: phase,
                cycles: 4000,
            }];
            spec
        };
        let slowed = |windows: Vec<SlowdownSpec>| {
            let mut spec = base();
            spec.slowdowns = windows;
            spec
        };
        let errors = |rates: Vec<DeviceErrorSpec>| {
            let mut spec = base();
            spec.device_errors = rates;
            spec
        };
        let lossy = |rate: f64, delay_ms: u64| {
            let mut spec = base();
            spec.link_loss = Some(LinkLossSpec {
                rate,
                retransmit_delay_ms: delay_ms,
            });
            spec
        };
        let healthy = ("healthy".to_string(), None);
        let shaped: Vec<(&str, FaultSpec)> = match self {
            FaultKind::Straggler => vec![
                (
                    "all-x1.5",
                    slowed((0..SERVERS).map(|s| slow(s, 1.5)).collect()),
                ),
                ("one-x2.5", slowed(vec![slow(0, 2.5)])),
                ("two-x2.0", slowed(vec![slow(0, 2.0), slow(1, 2.0)])),
                ("one-x4.0", slowed(vec![slow(0, 4.0)])),
            ],
            FaultKind::DeviceErrors => vec![
                (
                    "uni-.05",
                    errors(vec![DeviceErrorSpec::Uniform { rate: 0.05 }]),
                ),
                (
                    "hot1-.65",
                    errors(vec![DeviceErrorSpec::Server {
                        server: 0,
                        rate: 0.65,
                    }]),
                ),
                (
                    "hot2-.40",
                    errors(vec![
                        DeviceErrorSpec::Server {
                            server: 0,
                            rate: 0.40,
                        },
                        DeviceErrorSpec::Server {
                            server: 1,
                            rate: 0.40,
                        },
                    ]),
                ),
                (
                    "uni-.15",
                    errors(vec![DeviceErrorSpec::Uniform { rate: 0.15 }]),
                ),
            ],
            FaultKind::LinkLoss => vec![
                ("p.01-d8", lossy(0.01, 8)),
                ("p.04-d2", lossy(0.04, 2)),
                ("p.04-d8", lossy(0.04, 8)),
                ("p.10-d4", lossy(0.10, 4)),
            ],
            FaultKind::Outages => vec![
                // Short windows are ridden out (duration inflation, no
                // censoring); 60 ms windows outlast the ~57 ms write-retry
                // span and abandon the write caught inside, so block damage
                // accelerates down the list while execution time grows.
                ("freq-8ms", outages(1, 8, 64, 40)),
                ("one-60ms", outages(1, 60, 480, 30)),
                ("two-60ms", outages(1, 60, 240, 30)),
                ("many-60ms", outages(1, 60, 110, 30)),
            ],
        };
        std::iter::once(healthy)
            .chain(shaped.into_iter().map(|(l, p)| (l.to_string(), Some(p))))
            .collect()
    }

    /// File layout for this variety's cases. Server-locus varieties pin
    /// each process's file to its own server (the Set 3a layout) so a
    /// concentrated fault degrades one process while the others stay
    /// healthy — the asymmetry per-op averages dilute away. Link loss is
    /// uniform over the fabric, so those cases stripe normally.
    pub fn layout(&self) -> LayoutSpec {
        match self {
            FaultKind::LinkLoss => LayoutSpec::DefaultStripe,
            _ => LayoutSpec::PinnedPerFile,
        }
    }

    /// Middleware retry policy for this variety's cases. Outages keep the
    /// retry budget shallow — a failed 1 MB write pays its full payload
    /// transfer before the refusal, so four attempts span roughly 43 ms:
    /// windows shorter than that are ridden out with inflated durations,
    /// longer ones exhaust the budget and abandon the request. Error
    /// varieties keep the backoff tight so retry inflation stays in
    /// proportion to the damage.
    pub fn retry(&self) -> RetrySpec {
        match self {
            FaultKind::Outages => RetrySpec::Custom {
                max_attempts: 3,
                base_backoff_us: 500,
                max_backoff_us: 4_000,
            },
            FaultKind::DeviceErrors => RetrySpec::Custom {
                max_attempts: 4,
                base_backoff_us: 300,
                max_backoff_us: 3_000,
            },
            _ => RetrySpec::Default,
        }
    }

    /// This variety's sweep as data.
    pub fn scenario(&self) -> Scenario {
        let mut base = CaseTemplate::new(
            StorageSpec::Pvfs { servers: SERVERS },
            WorkloadTemplate::DegradedMix,
        );
        base.layout = Some(self.layout());
        base.retry = Some(self.retry());
        Scenario {
            name: format!("faults-{}", self.name()),
            title: format!("Set 5 ({}): CC across fault shapes", self.name()),
            output: OutputSpec::Cc,
            base,
            grid: Grid::single(
                self.shapes()
                    .into_iter()
                    .map(|(label, fault)| {
                        CaseDecl::new(
                            label,
                            Patch {
                                fault,
                                ..Patch::none()
                            },
                        )
                    })
                    .collect(),
            ),
            metrics: Vec::new(),
            deadline_ms: None,
            expect: Vec::new(),
            verdict: None,
        }
    }
}

/// Sweep one variety over its fault shapes and score the metrics.
pub fn variety(kind: FaultKind, scale: &Scale) -> CcFigure {
    engine::run(&kind.scenario(), scale)
        .expect("bundled scenario is valid")
        .into_cc()
}

/// The averaged sweep points of one variety.
pub fn points(kind: FaultKind, scale: &Scale) -> Vec<CasePoint> {
    variety(kind, scale).cases
}

/// Whether BPS has the strictly largest |CC| of the four metrics in a
/// variety's figure (the acceptance bar for the degraded-mode claim).
pub fn bps_strictly_best(fig: &CcFigure) -> bool {
    let Some(bps) = fig.normalized("BPS") else {
        return false;
    };
    ["IOPS", "BW", "ARPT"]
        .iter()
        .all(|m| match fig.normalized(m) {
            Some(cc) => bps.abs() > cc.abs(),
            None => true,
        })
}

/// Run every variety.
pub fn run(scale: &Scale) -> Vec<(FaultKind, CcFigure)> {
    FaultKind::all()
        .into_iter()
        .map(|kind| (kind, variety(kind, scale)))
        .collect()
}

/// Render the whole set: one CC figure per variety plus the verdict line.
pub fn report(scale: &Scale) -> String {
    render(&run(scale))
}

/// Render already-run variety figures (shared by [`report`] and the
/// `reproduce` binary, which also exports each figure as CSV).
pub fn render(figures: &[(FaultKind, CcFigure)]) -> String {
    let mut out = String::new();
    for (_, fig) in figures {
        writeln!(out, "{fig}").unwrap();
    }
    let winners: Vec<&str> = figures
        .iter()
        .filter(|(_, fig)| bps_strictly_best(fig))
        .map(|(kind, _)| kind.name())
        .collect();
    writeln!(
        out,
        "BPS has the strictly highest |CC| under {} of {} fault varieties: {}",
        winners.len(),
        figures.len(),
        if winners.is_empty() {
            "none".to_string()
        } else {
            winners.join(", ")
        }
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape() {
        let w = DegradedMix {
            processes: 2,
            rounds: 3,
        };
        assert_eq!(w.file_sizes(), vec![3 * ROUND_BYTES, 3 * ROUND_BYTES]);
        let ops: Vec<AppOp> = w.stream(1).collect();
        assert_eq!(ops.len(), 3 * (1 + SMALLS_PER_ROUND as usize));
        // One large write per round, everything else reads, all on file 1.
        let writes = ops
            .iter()
            .filter(|o| matches!(o, AppOp::Write { file: 1, .. }))
            .count();
        assert_eq!(writes, 3);
        assert!(ops.iter().all(|o| matches!(
            o,
            AppOp::Read { file: 1, .. } | AppOp::Write { file: 1, .. }
        )));
        let total: u64 = ops.iter().map(|o| o.required_bytes()).sum();
        assert_eq!(total, 3 * ROUND_BYTES);
    }

    #[test]
    fn first_case_is_the_healthy_cluster() {
        for kind in FaultKind::all() {
            let shapes = kind.shapes();
            assert_eq!(shapes.len(), CASES_PER_VARIETY, "{}", kind.name());
            assert!(shapes[0].1.is_none(), "{}", kind.name());
            for (label, spec) in &shapes[1..] {
                let plan = engine::build_fault(spec.as_ref().unwrap());
                assert!(!plan.is_none(), "{}/{label}", kind.name());
            }
        }
    }

    #[test]
    fn faults_lengthen_execution_time() {
        // Every faulted shape runs longer than its variety's healthy case.
        for kind in FaultKind::all() {
            let pts = points(kind, &Scale::tiny());
            for p in &pts[1..] {
                assert!(
                    p.exec_s > pts[0].exec_s,
                    "{}/{}: {pts:?}",
                    kind.name(),
                    p.label
                );
            }
        }
    }

    #[test]
    fn bps_highest_under_at_least_two_fault_types() {
        // The acceptance bar: |CC(BPS)| strictly highest under ≥ 2
        // distinct fault varieties.
        let figures = run(&Scale::tiny());
        let winners: Vec<&str> = figures
            .iter()
            .filter(|(_, fig)| bps_strictly_best(fig))
            .map(|(kind, _)| kind.name())
            .collect();
        assert!(
            winners.len() >= 2,
            "BPS strictly best under only {winners:?}:\n{}",
            figures
                .iter()
                .map(|(_, f)| format!("{f}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
