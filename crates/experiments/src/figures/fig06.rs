//! Figure 6 — Set 2 on SSD: various I/O request sizes.
//!
//! The same sweep as Figure 5 on the PCI-E SSD. Same verdicts: BW and BPS
//! correct, IOPS and ARPT direction-wrong — the pathology is about request
//! sizing, not the medium.

use crate::figures::common::CcFigure;
use crate::figures::fig05::{record_size_scenario, size_sweep_expect};
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{OutputSpec, Scenario, StorageSpec};
use bps_workloads::iozone::IozoneMode;

/// The sweep as data.
pub fn scenario() -> Scenario {
    record_size_scenario(
        "fig6",
        "Figure 6: CC across I/O sizes (SSD)",
        StorageSpec::Ssd,
        IozoneMode::SeqRead,
        OutputSpec::Cc,
        size_sweep_expect(None),
    )
}

/// Run the SSD sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_cc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::assert_cc_expectations;

    #[test]
    fn same_verdicts_as_hdd() {
        let fig = run(&Scale::tiny());
        assert_cc_expectations(&fig, &scenario().expect);
    }

    #[test]
    fn ssd_faster_than_hdd_at_small_records() {
        let scale = Scale::tiny();
        let ssd = run(&scale);
        let hdd = crate::figures::fig05::run(&scale);
        assert!(ssd.cases[0].exec_s < hdd.cases[0].exec_s);
    }
}
