//! Figure 6 — Set 2 on SSD: various I/O request sizes.
//!
//! The same sweep as Figure 5 on the PCI-E SSD. Same verdicts: BW and BPS
//! correct, IOPS and ARPT direction-wrong — the pathology is about request
//! sizing, not the medium.

use crate::figures::common::CcFigure;
use crate::figures::fig05::points_on;
use crate::runner::Storage;
use crate::scale::Scale;

/// Run the SSD sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    let points = points_on(Storage::Ssd, scale.fig5_file, &scale.seeds());
    CcFigure::from_points("Figure 6: CC across I/O sizes (SSD)", points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_verdicts_as_hdd() {
        let fig = run(&Scale::tiny());
        assert_eq!(fig.direction_correct("BW"), Some(true), "{fig}");
        assert_eq!(fig.direction_correct("BPS"), Some(true), "{fig}");
        assert_eq!(fig.direction_correct("IOPS"), Some(false), "{fig}");
        assert_eq!(fig.direction_correct("ARPT"), Some(false), "{fig}");
    }

    #[test]
    fn ssd_faster_than_hdd_at_small_records() {
        let scale = Scale::tiny();
        let ssd = run(&scale);
        let hdd = crate::figures::fig05::run(&scale);
        assert!(ssd.cases[0].exec_s < hdd.cases[0].exec_s);
    }
}
