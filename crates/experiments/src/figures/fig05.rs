//! Figure 5 — Set 2 on HDD: various I/O request sizes.
//!
//! "We ran IOzone to read a 16GB file from the local file system with the
//! record size from 4KB to 8MB." Bandwidth and BPS correlate correctly
//! (~0.90); IOPS and ARPT come out with the *wrong* direction: bigger
//! records mean fewer, slower ops (IOPS down, ARPT up) yet much faster
//! applications.

use crate::figures::common::CcFigure;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{
    CaseDecl, CaseTemplate, Expect, Grid, Num, OutputSpec, Patch, ScaleKnob, Scenario, StorageSpec,
    WorkloadTemplate,
};
use bps_workloads::iozone::IozoneMode;

/// The record-size sweep: 4 KB to 8 MB.
pub const RECORD_SIZES: [u64; 7] = [
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    8 << 20,
];

/// Human label of a record size ("4KB", "1MB", ...).
pub fn label_of(rs: u64) -> String {
    if rs >= 1 << 20 {
        format!("{}MB", rs >> 20)
    } else {
        format!("{}KB", rs >> 10)
    }
}

/// The record-size grid dimension (shared by Figures 5–8 and the write
/// extension).
pub fn record_size_cells() -> Vec<CaseDecl> {
    RECORD_SIZES
        .iter()
        .map(|&rs| {
            CaseDecl::new(
                label_of(rs),
                Patch {
                    record_size: Some(rs),
                    ..Patch::none()
                },
            )
        })
        .collect()
}

/// The Set 2 sweep shape as data: IOzone over the record sizes on one
/// device, parameterized by mode and output so Figures 5–8 and the write
/// extension all declare one-liners.
pub fn record_size_scenario(
    name: &str,
    title: &str,
    storage: StorageSpec,
    mode: IozoneMode,
    output: OutputSpec,
    expect: Vec<Expect>,
) -> Scenario {
    Scenario {
        name: name.to_string(),
        title: title.to_string(),
        output,
        base: CaseTemplate::new(
            storage,
            WorkloadTemplate::Iozone {
                mode,
                file_size: Num::Knob {
                    knob: ScaleKnob::Fig5File,
                },
                record_size: Num::Abs { n: RECORD_SIZES[0] },
                processes: 1,
                seed: 0,
            },
        ),
        grid: Grid::single(record_size_cells()),
        metrics: Vec::new(),
        deadline_ms: None,
        expect,
        verdict: None,
    }
}

/// The Set 2 expectations: throughput-per-byte metrics track the
/// application, per-op metrics point the wrong way.
pub(crate) fn size_sweep_expect(bps_floor: Option<f64>) -> Vec<Expect> {
    vec![
        match bps_floor {
            Some(floor) => Expect::correct("BPS", floor),
            None => Expect::correct_direction("BPS"),
        },
        Expect::correct_direction("BW"),
        Expect::wrong("IOPS"),
        Expect::wrong("ARPT"),
    ]
}

/// The sweep as data.
pub fn scenario() -> Scenario {
    record_size_scenario(
        "fig5",
        "Figure 5: CC across I/O sizes (HDD)",
        StorageSpec::Hdd,
        IozoneMode::SeqRead,
        OutputSpec::Cc,
        size_sweep_expect(Some(0.7)),
    )
}

/// Run the HDD sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_cc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::assert_cc_expectations;

    #[test]
    fn bw_and_bps_correct_iops_and_arpt_wrong() {
        let fig = run(&Scale::tiny());
        assert_cc_expectations(&fig, &scenario().expect);
    }

    #[test]
    fn bigger_records_run_faster() {
        let fig = run(&Scale::tiny());
        let first = &fig.cases[0];
        let last = &fig.cases[fig.cases.len() - 1];
        assert!(last.exec_s < first.exec_s / 2.0, "{fig}");
    }
}
