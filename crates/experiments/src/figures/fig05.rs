//! Figure 5 — Set 2 on HDD: various I/O request sizes.
//!
//! "We ran IOzone to read a 16GB file from the local file system with the
//! record size from 4KB to 8MB." Bandwidth and BPS correlate correctly
//! (~0.90); IOPS and ARPT come out with the *wrong* direction: bigger
//! records mean fewer, slower ops (IOPS down, ARPT up) yet much faster
//! applications.

use crate::figures::common::CcFigure;
use crate::runner::{CasePoint, CaseSpec, Storage};
use crate::scale::Scale;
use crate::sweep::SweepExec;
use bps_workloads::iozone::Iozone;

/// The record-size sweep: 4 KB to 8 MB.
pub const RECORD_SIZES: [u64; 7] = [
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    8 << 20,
];

fn label_of(rs: u64) -> String {
    if rs >= 1 << 20 {
        format!("{}MB", rs >> 20)
    } else {
        format!("{}KB", rs >> 10)
    }
}

/// Run the sweep on the given storage (shared with Figure 6).
pub fn points_on(storage: Storage, file_size: u64, seeds: &[u64]) -> Vec<CasePoint> {
    let workloads: Vec<Iozone> = RECORD_SIZES
        .iter()
        .map(|&rs| Iozone::seq_read(file_size, rs))
        .collect();
    let cases: Vec<(String, CaseSpec)> = workloads
        .iter()
        .map(|w| (label_of(w.record_size), CaseSpec::new(storage, w)))
        .collect();
    SweepExec::from_env().run(&cases, seeds)
}

/// Run the HDD sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    let points = points_on(Storage::Hdd, scale.fig5_file, &scale.seeds());
    CcFigure::from_points("Figure 5: CC across I/O sizes (HDD)", points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bw_and_bps_correct_iops_and_arpt_wrong() {
        let fig = run(&Scale::tiny());
        assert_eq!(fig.direction_correct("BW"), Some(true), "{fig}");
        assert_eq!(fig.direction_correct("BPS"), Some(true), "{fig}");
        assert!(fig.normalized("BPS").unwrap() > 0.7, "{fig}");
        assert_eq!(fig.direction_correct("IOPS"), Some(false), "{fig}");
        assert_eq!(fig.direction_correct("ARPT"), Some(false), "{fig}");
    }

    #[test]
    fn bigger_records_run_faster() {
        let fig = run(&Scale::tiny());
        let first = &fig.cases[0];
        let last = &fig.cases[fig.cases.len() - 1];
        assert!(last.exec_s < first.exec_s / 2.0, "{fig}");
    }
}
