//! Figure 4 — Set 1: various storage devices.
//!
//! "We ran IOzone in single process mode to read a 64GB file sequentially
//! in different storage device configurations ... local file systems
//! mounted on HDD, SSD, and a PVFS2 file system ... from 1 I/O server to 8
//! I/O servers." All four metrics correlate strongly and correctly here —
//! the point of the figure is that conventional metrics *do* work for
//! plain device upgrades.
//!
//! The paper does not state the IOzone record size; we use 1 MB so that a
//! single reader's requests span multiple 64 KB stripes and the PVFS
//! server count actually matters.

use crate::figures::common::CcFigure;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{
    CaseDecl, CaseTemplate, Expect, Grid, Num, OutputSpec, Patch, ScaleKnob, Scenario, StorageSpec,
    WorkloadTemplate,
};
use bps_workloads::iozone::IozoneMode;

/// Record size used for the sequential read.
pub const RECORD_SIZE: u64 = 1 << 20;

/// The storage cases, in the paper's order.
pub fn storages() -> Vec<(String, StorageSpec)> {
    let mut v = vec![
        ("hdd".to_string(), StorageSpec::Hdd),
        ("ssd".to_string(), StorageSpec::Ssd),
    ];
    for servers in 1..=8 {
        v.push((format!("pvfs-{servers}"), StorageSpec::Pvfs { servers }));
    }
    v
}

/// The sweep as data.
pub fn scenario() -> Scenario {
    Scenario {
        name: "fig4".to_string(),
        title: "Figure 4: CC across storage devices".to_string(),
        output: OutputSpec::Cc,
        base: CaseTemplate::new(
            StorageSpec::Hdd,
            WorkloadTemplate::Iozone {
                mode: IozoneMode::SeqRead,
                file_size: Num::Knob {
                    knob: ScaleKnob::Fig4File,
                },
                record_size: Num::Abs { n: RECORD_SIZE },
                processes: 1,
                seed: 0,
            },
        ),
        grid: Grid::single(
            storages()
                .into_iter()
                .map(|(label, storage)| {
                    CaseDecl::new(
                        label,
                        Patch {
                            storage: Some(storage),
                            ..Patch::none()
                        },
                    )
                })
                .collect(),
        ),
        metrics: Vec::new(),
        deadline_ms: None,
        expect: ["IOPS", "BW", "ARPT", "BPS"]
            .iter()
            .map(|m| Expect::correct(m, 0.7))
            .collect(),
        verdict: None,
    }
}

/// Run the sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_cc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::assert_cc_expectations;

    #[test]
    fn all_four_metrics_correct_and_strong() {
        let fig = run(&Scale::tiny());
        assert_cc_expectations(&fig, &scenario().expect);
    }

    #[test]
    fn ssd_fastest_pvfs_scales() {
        let fig = run(&Scale::tiny());
        let by_label = |l: &str| fig.cases.iter().find(|c| c.label == l).unwrap();
        assert!(by_label("ssd").exec_s < by_label("hdd").exec_s);
        assert!(by_label("pvfs-8").exec_s < by_label("pvfs-1").exec_s);
    }
}
