//! Figure 4 — Set 1: various storage devices.
//!
//! "We ran IOzone in single process mode to read a 64GB file sequentially
//! in different storage device configurations ... local file systems
//! mounted on HDD, SSD, and a PVFS2 file system ... from 1 I/O server to 8
//! I/O servers." All four metrics correlate strongly and correctly here —
//! the point of the figure is that conventional metrics *do* work for
//! plain device upgrades.
//!
//! The paper does not state the IOzone record size; we use 1 MB so that a
//! single reader's requests span multiple 64 KB stripes and the PVFS
//! server count actually matters.

use crate::figures::common::CcFigure;
use crate::runner::{CaseSpec, Storage};
use crate::scale::Scale;
use crate::sweep::SweepExec;
use bps_workloads::iozone::Iozone;

/// Record size used for the sequential read.
pub const RECORD_SIZE: u64 = 1 << 20;

/// The storage cases, in the paper's order.
pub fn storages() -> Vec<(String, Storage)> {
    let mut v = vec![
        ("hdd".to_string(), Storage::Hdd),
        ("ssd".to_string(), Storage::Ssd),
    ];
    for servers in 1..=8 {
        v.push((format!("pvfs-{servers}"), Storage::Pvfs { servers }));
    }
    v
}

/// Run the sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    let seeds = scale.seeds();
    let workload = Iozone::seq_read(scale.fig4_file, RECORD_SIZE);
    let cases: Vec<(String, CaseSpec)> = storages()
        .into_iter()
        .map(|(label, storage)| (label, CaseSpec::new(storage, &workload)))
        .collect();
    let points = SweepExec::from_env().run(&cases, &seeds);
    CcFigure::from_points("Figure 4: CC across storage devices", points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_metrics_correct_and_strong() {
        let fig = run(&Scale::tiny());
        for m in ["IOPS", "BW", "ARPT", "BPS"] {
            assert_eq!(fig.direction_correct(m), Some(true), "{m}: {fig}");
            assert!(
                fig.normalized(m).unwrap() > 0.7,
                "{m} weak: {}",
                fig.normalized(m).unwrap()
            );
        }
    }

    #[test]
    fn ssd_fastest_pvfs_scales() {
        let fig = run(&Scale::tiny());
        let by_label = |l: &str| fig.cases.iter().find(|c| c.label == l).unwrap();
        assert!(by_label("ssd").exec_s < by_label("hdd").exec_s);
        assert!(by_label("pvfs-8").exec_s < by_label("pvfs-1").exec_s);
    }
}
