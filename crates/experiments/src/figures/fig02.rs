//! Figure 2: measuring `T` for four concurrent requests.
//!
//! R1, R2, R3 overlap each other partially; R4 is disjoint after an idle
//! gap. `T = Δt1 + Δt2`: the merged extent of R1–R3 plus R4's own time;
//! the idle period between them is excluded.

use bps_core::interval::{Interval, IntervalSet};
use bps_core::time::{Dur, Nanos};
use std::fmt::Write;

/// The four requests of Figure 2 (times in milliseconds, as drawn:
/// t1..t8 at 0, 1, 2, 4, 5, 6, 7, 9).
pub fn requests() -> Vec<Interval> {
    let ms = Nanos::from_millis;
    vec![
        Interval::new(ms(0), ms(4)), // R1: t1..t4
        Interval::new(ms(1), ms(5)), // R2: t2..t5
        Interval::new(ms(2), ms(6)), // R3: t3..t6
        Interval::new(ms(7), ms(9)), // R4: t7..t8 (after idle t6..t7)
    ]
}

/// The measured `T` and its decomposition.
pub fn measure() -> (Dur, Vec<Interval>, Vec<Interval>) {
    let set = IntervalSet::from_unsorted(requests());
    (set.total(), set.spans().to_vec(), set.gaps())
}

/// Render the figure's measurement.
pub fn report() -> String {
    let (t, spans, gaps) = measure();
    let mut out = String::new();
    writeln!(out, "=== Figure 2: overlapped I/O time ===").unwrap();
    for (i, iv) in requests().iter().enumerate() {
        writeln!(out, "  R{} = [{}, {})", i + 1, iv.start, iv.end).unwrap();
    }
    for (i, span) in spans.iter().enumerate() {
        writeln!(
            out,
            "  Δt{} = [{}, {}) = {}",
            i + 1,
            span.start,
            span.end,
            span.duration()
        )
        .unwrap();
    }
    for gap in gaps {
        writeln!(out, "  idle  [{}, {}) excluded", gap.start, gap.end).unwrap();
    }
    writeln!(out, "  T = Δt1 + Δt2 = {t}").unwrap();
    writeln!(
        out,
        "  (naive sum of response times would be {})",
        requests()
            .iter()
            .fold(Dur::ZERO, |acc, iv| acc + iv.duration())
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_core::interval::union_time;

    #[test]
    fn t_is_delta_t1_plus_delta_t2() {
        let (t, spans, gaps) = measure();
        assert_eq!(spans.len(), 2);
        assert_eq!(t, Dur::from_millis(6 + 2));
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].duration(), Dur::from_millis(1));
        // Matches the raw union.
        assert_eq!(t, union_time(requests()));
    }

    #[test]
    fn naive_sum_overcounts() {
        let naive = requests()
            .iter()
            .fold(Dur::ZERO, |acc, iv| acc + iv.duration());
        let (t, _, _) = measure();
        assert_eq!(naive, Dur::from_millis(14));
        assert!(naive > t);
    }

    #[test]
    fn report_shows_decomposition() {
        let r = report();
        assert!(r.contains("Δt1") && r.contains("Δt2"));
        assert!(r.contains("idle"));
        assert!(r.contains("8.00ms"));
    }
}
