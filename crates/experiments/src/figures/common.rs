//! Shared figure plumbing: CC bar charts and detail series.

use crate::runner::CasePoint;
use crate::scenario::spec::Expect;
use bps_core::correlation::{normalized_cc, CcOutcome};
use bps_core::metrics::{registry, MetricSelection};
use serde::Serialize;
use std::fmt;

/// One metric's correlation verdict in a [`CcFigure`].
#[derive(Debug, Clone, Serialize)]
pub struct CcRow {
    /// Registry metric name ("IOPS", "BW", "ARPT", "BPS", "P99", ...).
    pub metric: String,
    /// The correlation outcome; `None` when the CC is undefined.
    pub outcome: Option<CcOutcome>,
    /// The cases whose value for this metric was non-finite — the reason
    /// an outcome is missing (e.g. every seed of that case panicked, or a
    /// zero-time run left the metric undefined).
    pub undefined_in: Vec<String>,
}

/// A reproduced CC bar chart (Figures 4–6, 9, 11, 12): the selected
/// registry metrics scored against execution time over the sweep's cases.
#[derive(Debug, Clone, Serialize)]
pub struct CcFigure {
    /// Figure label.
    pub label: String,
    /// The averaged sweep points.
    pub cases: Vec<CasePoint>,
    /// One verdict per selected metric, in registry order.
    pub rows: Vec<CcRow>,
}

impl CcFigure {
    /// [`CcFigure::from_points_selected`] with the paper selection — the
    /// four metrics the paper's figures score.
    pub fn from_points(label: impl Into<String>, cases: Vec<CasePoint>) -> CcFigure {
        CcFigure::from_points_selected(label, cases, &MetricSelection::paper())
    }

    /// Score each selected metric over averaged case points. A metric with
    /// a non-finite value in any case gets no outcome, and the offending
    /// cases are recorded so the report can say *why* the CC is missing.
    pub fn from_points_selected(
        label: impl Into<String>,
        cases: Vec<CasePoint>,
        selection: &MetricSelection,
    ) -> CcFigure {
        let exec: Vec<f64> = cases.iter().map(|c| c.exec_s).collect();
        let rows = selection
            .metrics()
            .iter()
            .map(|m| {
                let values: Vec<f64> = cases
                    .iter()
                    .map(|c| c.metric(m.name()).unwrap_or(f64::NAN))
                    .collect();
                let undefined_in: Vec<String> = cases
                    .iter()
                    .zip(&values)
                    .filter(|(c, v)| !v.is_finite() || !c.exec_s.is_finite())
                    .map(|(c, _)| match c.failed {
                        // A case whose every seed failed carries the worst
                        // failure kind, so "why n/a" names it instead of
                        // leaving a bare NaN mystery.
                        Some(kind) => format!("{} [{}]", c.label, kind.name()),
                        None => c.label.clone(),
                    })
                    .collect();
                let outcome = if undefined_in.is_empty() {
                    normalized_cc(&values, &exec, m.expected_direction()).ok()
                } else {
                    None
                };
                CcRow {
                    metric: m.name().to_string(),
                    outcome,
                    undefined_in,
                }
            })
            .collect();
        CcFigure {
            label: label.into(),
            cases,
            rows,
        }
    }

    /// The row of a metric (case-insensitive), if it was selected.
    pub fn row(&self, metric: &str) -> Option<&CcRow> {
        self.rows
            .iter()
            .find(|r| r.metric.eq_ignore_ascii_case(metric))
    }

    /// Normalized CC of a metric, if defined.
    pub fn normalized(&self, metric: &str) -> Option<f64> {
        self.row(metric)
            .and_then(|r| r.outcome.map(|o| o.normalized))
    }

    /// True when the metric's observed direction matches Table 1.
    pub fn direction_correct(&self, metric: &str) -> Option<bool> {
        self.row(metric)
            .and_then(|r| r.outcome.map(|o| o.direction_correct))
    }
}

impl fmt::Display for CcFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column labels and precisions come from the registry's display
        // hints, so the table renders any selection; under the paper
        // selection the output is byte-identical to the historical
        // hard-coded four-column table.
        let metrics: Vec<_> = self
            .rows
            .iter()
            .filter_map(|r| registry().find(&r.metric))
            .collect();
        writeln!(f, "=== {} ===", self.label)?;
        write!(f, "{:<14}", "case")?;
        for m in &metrics {
            write!(f, " {:>12}", m.col_label())?;
        }
        writeln!(f, " {:>10}", "exec(s)")?;
        for c in &self.cases {
            write!(f, "{:<14}", c.label)?;
            for m in &metrics {
                let v = c.metric(m.name()).unwrap_or(f64::NAN);
                write!(f, " {:>12.prec$}", v, prec = m.col_precision())?;
            }
            writeln!(f, " {:>10.3}", c.exec_s)?;
        }
        writeln!(f, "normalized CC vs execution time:")?;
        for row in &self.rows {
            match &row.outcome {
                Some(o) => writeln!(
                    f,
                    "  {:<5} {:>6.2}   ({})",
                    row.metric,
                    o.normalized,
                    if o.direction_correct {
                        "correct direction"
                    } else {
                        "WRONG direction"
                    }
                )?,
                None if !row.undefined_in.is_empty() => writeln!(
                    f,
                    "  {:<5}    n/a   (undefined in: {})",
                    row.metric,
                    row.undefined_in.join(", ")
                )?,
                None => writeln!(f, "  {:<5}    n/a", row.metric)?,
            }
        }
        Ok(())
    }
}

/// Assert that a figure meets a scenario's Table-1 expectations (test
/// helper shared by every figure module; panics with the figure rendered
/// so a failure shows the whole sweep).
pub fn assert_cc_expectations(fig: &CcFigure, expect: &[Expect]) {
    assert!(
        !expect.is_empty(),
        "no expectations to check for {}",
        fig.label
    );
    let violations = crate::scenario::engine::violations(
        &crate::scenario::engine::ScenarioOutput::Cc(fig.clone()),
        expect,
        None,
    );
    assert!(
        violations.is_empty(),
        "{}:\n  {}\n{fig}",
        fig.label,
        violations.join("\n  ")
    );
}

/// A detail figure (Figures 7, 8, 10): one metric plotted against execution
/// time over the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DetailSeries {
    /// Figure label.
    pub label: String,
    /// Name of the highlighted metric.
    pub metric: String,
    /// (case label, metric value, execution seconds).
    pub points: Vec<(String, f64, f64)>,
}

impl DetailSeries {
    /// Extract a metric's series from averaged case points. Any registry
    /// metric name works (case-insensitive), provided the points were
    /// scored with a selection that includes it.
    pub fn from_points(
        label: impl Into<String>,
        metric: &str,
        cases: &[CasePoint],
    ) -> DetailSeries {
        DetailSeries {
            label: label.into(),
            metric: metric.to_string(),
            points: cases
                .iter()
                .map(|c| {
                    (
                        c.label.clone(),
                        c.metric(metric).unwrap_or(f64::NAN),
                        c.exec_s,
                    )
                })
                .collect(),
        }
    }
}

impl fmt::Display for DetailSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.label)?;
        writeln!(
            f,
            "{:<14} {:>14} {:>16}",
            "case", self.metric, "exec time (s)"
        )?;
        for (label, value, exec) in &self.points {
            writeln!(f, "{label:<14} {value:>14.5} {exec:>16.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(label: &str, iops: f64, bw: f64, arpt: f64, bps: f64, exec_s: f64) -> CasePoint {
        CasePoint {
            label: label.into(),
            iops,
            bw,
            arpt,
            bps,
            exec_s,
            extra: Vec::new(),
            failed: None,
        }
    }

    /// Hand-built sweep where all four metrics behave (fixed request size):
    /// throughputs fall as time rises, latency rises.
    fn well_behaved() -> Vec<CasePoint> {
        (1..=5u32)
            .map(|k| {
                let t = k as f64;
                pt(
                    &format!("case{k}"),
                    100.0 / t,
                    50.0 / t,
                    0.001 * t,
                    6400.0 / t,
                    t,
                )
            })
            .collect()
    }

    #[test]
    fn all_metrics_correct_on_well_behaved_sweep() {
        let fig = CcFigure::from_points("test", well_behaved());
        for m in ["IOPS", "BW", "ARPT", "BPS"] {
            assert_eq!(fig.direction_correct(m), Some(true), "{m}");
            assert!(fig.normalized(m).unwrap() > 0.9, "{m}");
        }
        let shown = format!("{fig}");
        assert!(shown.contains("correct direction"));
        // The expectation helper agrees.
        let expect: Vec<Expect> = ["IOPS", "BW", "ARPT", "BPS"]
            .iter()
            .map(|m| Expect::correct(m, 0.9))
            .collect();
        assert_cc_expectations(&fig, &expect);
    }

    #[test]
    fn misleading_metric_flagged() {
        // IOPS rises with execution time (the Fig. 5 pathology).
        let cases: Vec<CasePoint> = (1..=5u32)
            .map(|k| {
                let t = k as f64;
                pt(
                    &format!("c{k}"),
                    100.0 * t,
                    50.0 / t,
                    0.001 * t,
                    6400.0 / t,
                    t,
                )
            })
            .collect();
        let fig = CcFigure::from_points("test", cases);
        assert_eq!(fig.direction_correct("IOPS"), Some(false));
        assert!(fig.normalized("IOPS").unwrap() < 0.0);
        assert_eq!(fig.direction_correct("BPS"), Some(true));
        assert!(format!("{fig}").contains("WRONG direction"));
    }

    #[test]
    #[should_panic(expected = "expected WRONG")]
    fn expectation_helper_panics_on_violation() {
        let fig = CcFigure::from_points("test", well_behaved());
        assert_cc_expectations(&fig, &[Expect::wrong("IOPS")]);
    }

    #[test]
    fn selected_figure_scores_extras_and_renders_their_columns() {
        // p99 falls with execution time here: direction "wrong" for a
        // Positive-direction metric is irrelevant — we only check plumbing.
        let mut cases = well_behaved();
        for (k, c) in cases.iter_mut().enumerate() {
            c.extra = vec![("P99".to_string(), 0.002 * (k + 1) as f64)];
        }
        let sel = MetricSelection::parse(&["BPS", "p99"]).unwrap();
        let fig = CcFigure::from_points_selected("test", cases, &sel);
        let rows: Vec<&str> = fig.rows.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(rows, ["BPS", "P99"]);
        // Lookup is case-insensitive and the extended metric scores.
        assert_eq!(fig.direction_correct("p99"), Some(true));
        assert!(fig.normalized("P99").unwrap() > 0.9);
        assert!(fig.normalized("IOPS").is_none());
        let shown = format!("{fig}");
        assert!(shown.contains("P99(s)"), "{shown}");
        assert!(!shown.contains("BW(MB/s)"), "{shown}");
    }

    #[test]
    fn detail_series_extracts_metric() {
        let cases = well_behaved();
        let s = DetailSeries::from_points("fig", "IOPS", &cases);
        assert_eq!(s.points.len(), 5);
        assert_eq!(s.points[0].1, 100.0);
        assert!(format!("{s}").contains("exec time"));
    }

    #[test]
    fn nan_metric_yields_none_and_names_the_case() {
        let mut cases = well_behaved();
        cases[0].bw = f64::NAN;
        cases[2].bw = f64::NAN;
        let fig = CcFigure::from_points("test", cases);
        assert!(fig.normalized("BW").is_none());
        assert!(fig.normalized("BPS").is_some());
        // The report names the cases that blanked the CC.
        assert_eq!(fig.row("BW").unwrap().undefined_in, vec!["case1", "case3"]);
        let shown = format!("{fig}");
        assert!(
            shown.contains("n/a   (undefined in: case1, case3)"),
            "{shown}"
        );
    }

    #[test]
    fn failed_case_annotates_the_undefined_report_with_its_kind() {
        let mut cases = well_behaved();
        cases[1].iops = f64::NAN;
        cases[1].bw = f64::NAN;
        cases[1].arpt = f64::NAN;
        cases[1].bps = f64::NAN;
        cases[1].exec_s = f64::NAN;
        cases[1].failed = Some(crate::supervise::FailureKind::Timeout);
        let fig = CcFigure::from_points("test", cases);
        assert_eq!(
            fig.row("BPS").unwrap().undefined_in,
            vec!["case2 [timeout]"]
        );
        let shown = format!("{fig}");
        assert!(
            shown.contains("n/a   (undefined in: case2 [timeout])"),
            "{shown}"
        );
    }

    #[test]
    fn nan_exec_time_blanks_every_metric_with_the_case_named() {
        let mut cases = well_behaved();
        cases[1].exec_s = f64::NAN;
        let fig = CcFigure::from_points("test", cases);
        for m in ["IOPS", "BW", "ARPT", "BPS"] {
            assert!(fig.normalized(m).is_none(), "{m}");
            assert_eq!(fig.row(m).unwrap().undefined_in, vec!["case2"], "{m}");
        }
    }
}
