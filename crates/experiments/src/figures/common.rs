//! Shared figure plumbing: CC bar charts and detail series.

use crate::runner::CasePoint;
use bps_core::correlation::{normalized_cc, CcOutcome};
use bps_core::metrics::paper_metrics;
use serde::Serialize;
use std::fmt;

/// A reproduced CC bar chart (Figures 4–6, 9, 11, 12): the four paper
/// metrics scored against execution time over the sweep's cases.
#[derive(Debug, Clone, Serialize)]
pub struct CcFigure {
    /// Figure label.
    pub label: String,
    /// The averaged sweep points.
    pub cases: Vec<CasePoint>,
    /// (metric name, correlation outcome) in figure order.
    pub rows: Vec<(String, Option<CcOutcome>)>,
}

impl CcFigure {
    /// Score the four metrics over averaged case points.
    pub fn from_points(label: impl Into<String>, cases: Vec<CasePoint>) -> CcFigure {
        let exec: Vec<f64> = cases.iter().map(|c| c.exec_s).collect();
        let rows = paper_metrics()
            .iter()
            .map(|m| {
                let values: Vec<f64> = cases
                    .iter()
                    .map(|c| c.metric(m.name()).unwrap_or(f64::NAN))
                    .collect();
                let outcome = if values.iter().all(|v| v.is_finite()) {
                    normalized_cc(&values, &exec, m.expected_direction()).ok()
                } else {
                    None
                };
                (m.name().to_string(), outcome)
            })
            .collect();
        CcFigure {
            label: label.into(),
            cases,
            rows,
        }
    }

    /// Normalized CC of a metric, if defined.
    pub fn normalized(&self, metric: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(name, _)| name == metric)
            .and_then(|(_, o)| o.map(|o| o.normalized))
    }

    /// True when the metric's observed direction matches Table 1.
    pub fn direction_correct(&self, metric: &str) -> Option<bool> {
        self.rows
            .iter()
            .find(|(name, _)| name == metric)
            .and_then(|(_, o)| o.map(|o| o.direction_correct))
    }
}

impl fmt::Display for CcFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.label)?;
        writeln!(
            f,
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "case", "IOPS", "BW(MB/s)", "ARPT(s)", "BPS", "exec(s)"
        )?;
        for c in &self.cases {
            writeln!(
                f,
                "{:<14} {:>12.1} {:>12.2} {:>12.6} {:>12.1} {:>10.3}",
                c.label, c.iops, c.bw, c.arpt, c.bps, c.exec_s
            )?;
        }
        writeln!(f, "normalized CC vs execution time:")?;
        for (name, outcome) in &self.rows {
            match outcome {
                Some(o) => writeln!(
                    f,
                    "  {:<5} {:>6.2}   ({})",
                    name,
                    o.normalized,
                    if o.direction_correct {
                        "correct direction"
                    } else {
                        "WRONG direction"
                    }
                )?,
                None => writeln!(f, "  {name:<5}    n/a")?,
            }
        }
        Ok(())
    }
}

/// A detail figure (Figures 7, 8, 10): one metric plotted against execution
/// time over the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DetailSeries {
    /// Figure label.
    pub label: String,
    /// Name of the highlighted metric.
    pub metric: String,
    /// (case label, metric value, execution seconds).
    pub points: Vec<(String, f64, f64)>,
}

impl DetailSeries {
    /// Extract a metric's series from averaged case points.
    pub fn from_points(
        label: impl Into<String>,
        metric: &'static str,
        cases: &[CasePoint],
    ) -> DetailSeries {
        DetailSeries {
            label: label.into(),
            metric: metric.to_string(),
            points: cases
                .iter()
                .map(|c| {
                    (
                        c.label.clone(),
                        c.metric(metric).unwrap_or(f64::NAN),
                        c.exec_s,
                    )
                })
                .collect(),
        }
    }
}

impl fmt::Display for DetailSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.label)?;
        writeln!(
            f,
            "{:<14} {:>14} {:>16}",
            "case", self.metric, "exec time (s)"
        )?;
        for (label, value, exec) in &self.points {
            writeln!(f, "{label:<14} {value:>14.5} {exec:>16.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(label: &str, iops: f64, bw: f64, arpt: f64, bps: f64, exec_s: f64) -> CasePoint {
        CasePoint {
            label: label.into(),
            iops,
            bw,
            arpt,
            bps,
            exec_s,
        }
    }

    /// Hand-built sweep where all four metrics behave (fixed request size):
    /// throughputs fall as time rises, latency rises.
    fn well_behaved() -> Vec<CasePoint> {
        (1..=5u32)
            .map(|k| {
                let t = k as f64;
                pt(
                    &format!("case{k}"),
                    100.0 / t,
                    50.0 / t,
                    0.001 * t,
                    6400.0 / t,
                    t,
                )
            })
            .collect()
    }

    #[test]
    fn all_metrics_correct_on_well_behaved_sweep() {
        let fig = CcFigure::from_points("test", well_behaved());
        for m in ["IOPS", "BW", "ARPT", "BPS"] {
            assert_eq!(fig.direction_correct(m), Some(true), "{m}");
            assert!(fig.normalized(m).unwrap() > 0.9, "{m}");
        }
        let shown = format!("{fig}");
        assert!(shown.contains("correct direction"));
    }

    #[test]
    fn misleading_metric_flagged() {
        // IOPS rises with execution time (the Fig. 5 pathology).
        let cases: Vec<CasePoint> = (1..=5u32)
            .map(|k| {
                let t = k as f64;
                pt(
                    &format!("c{k}"),
                    100.0 * t,
                    50.0 / t,
                    0.001 * t,
                    6400.0 / t,
                    t,
                )
            })
            .collect();
        let fig = CcFigure::from_points("test", cases);
        assert_eq!(fig.direction_correct("IOPS"), Some(false));
        assert!(fig.normalized("IOPS").unwrap() < 0.0);
        assert_eq!(fig.direction_correct("BPS"), Some(true));
        assert!(format!("{fig}").contains("WRONG direction"));
    }

    #[test]
    fn detail_series_extracts_metric() {
        let cases = well_behaved();
        let s = DetailSeries::from_points("fig", "IOPS", &cases);
        assert_eq!(s.points.len(), 5);
        assert_eq!(s.points[0].1, 100.0);
        assert!(format!("{s}").contains("exec time"));
    }

    #[test]
    fn nan_metric_yields_none() {
        let mut cases = well_behaved();
        cases[0].bw = f64::NAN;
        let fig = CcFigure::from_points("test", cases);
        assert!(fig.normalized("BW").is_none());
        assert!(fig.normalized("BPS").is_some());
    }
}
