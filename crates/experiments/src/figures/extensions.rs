//! Extension experiment (the paper's future work): "we will adopt and
//! evaluate different I/O optimization mechanisms and their combinations
//! in terms of overall I/O system performance."
//!
//! This module sweeps the optimization space — data sieving × read-ahead
//! prefetching × disk scheduling — on a mixed workload (a noncontiguous
//! HPIO phase followed by a sequential IOzone phase) and ranks every
//! combination by BPS, demonstrating the metric doing the job the paper
//! built it for.

use crate::scale::Scale;
use crate::sweep::SweepExec;
use bps_core::record::FileId;
use bps_core::sink::StreamingMetrics;
use bps_core::time::Dur;
use bps_fs::cluster::{Cluster, ClusterConfig, DeviceSpec};
use bps_fs::layout::StripeLayout;
use bps_fs::pfs::ParallelFs;
use bps_middleware::prefetch::PrefetchConfig;
use bps_middleware::process::run_workload;
use bps_middleware::sieving::SievingConfig;
use bps_middleware::stack::{FsBackend, IoStack};
use bps_sim::device::hdd::HddProfile;
use bps_sim::device::DiskSched;
use bps_sim::rng::Jitter;
use bps_workloads::spec::{AppOp, OpStream, Workload};
use bps_workloads::{hpio::Hpio, iozone::Iozone};
use std::fmt::Write;

/// One optimization combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Combo {
    /// Data sieving on noncontiguous reads.
    pub sieving: bool,
    /// Sequential read-ahead.
    pub prefetch: bool,
    /// Elevator disk scheduling.
    pub elevator: bool,
}

impl Combo {
    /// All eight combinations.
    pub fn all() -> Vec<Combo> {
        let mut v = Vec::new();
        for sieving in [false, true] {
            for prefetch in [false, true] {
                for elevator in [false, true] {
                    v.push(Combo {
                        sieving,
                        prefetch,
                        elevator,
                    });
                }
            }
        }
        v
    }

    /// Short label like "S+P-E-".
    pub fn label(&self) -> String {
        format!(
            "S{}P{}E{}",
            if self.sieving { "+" } else { "-" },
            if self.prefetch { "+" } else { "-" },
            if self.elevator { "+" } else { "-" },
        )
    }
}

/// A mixed workload: one HPIO noncontiguous phase, then one sequential
/// read phase, per process.
struct Mixed {
    hpio: Hpio,
    seq: Iozone,
}

impl Workload for Mixed {
    fn name(&self) -> &'static str {
        "mixed"
    }
    fn processes(&self) -> usize {
        self.hpio.processes()
    }
    fn file_sizes(&self) -> Vec<u64> {
        // File 0: the HPIO file. Files 1..: one sequential file per proc.
        let mut v = self.hpio.file_sizes();
        v.extend(self.seq.file_sizes());
        v
    }
    fn stream(&self, pid: usize) -> OpStream {
        let noncontig = self.hpio.stream(pid);
        // Shift the sequential phase's file indices past the HPIO file.
        let seq = self.seq.stream(pid).map(|op| match op {
            AppOp::Read { file, extent } => AppOp::Read {
                file: file + 1,
                extent,
            },
            AppOp::Write { file, extent } => AppOp::Write {
                file: file + 1,
                extent,
            },
            other => other,
        });
        Box::new(noncontig.chain(seq))
    }
}

/// Result of one combination.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// The combination.
    pub combo: Combo,
    /// Mean execution time, seconds.
    pub exec_s: f64,
    /// Mean BPS.
    pub bps: f64,
    /// Mean file-system bandwidth, MB/s.
    pub bw: f64,
}

fn run_combo(combo: Combo, scale: &Scale, seed: u64) -> StreamingMetrics {
    let procs = 2;
    let workload = Mixed {
        hpio: Hpio {
            region_count: scale.fig12_regions / 8,
            region_size: 256,
            region_spacing: 1024,
            regions_per_call: 512,
            processes: procs,
            collective: false,
        },
        seq: Iozone::throughput_read(procs, scale.fig12_regions * 256, 64 << 10),
    };
    let cfg = ClusterConfig {
        servers: 4,
        clients: procs,
        device: DeviceSpec::Hdd(HddProfile::sata_7200_250gb()),
        sched: if combo.elevator {
            DiskSched::Elevator
        } else {
            DiskSched::Fifo
        },
        server_cpu: Dur::from_micros(25),
        jitter: Jitter::DEFAULT,
        seed,
        record_device_layer: false,
        record_net_layer: false,
        fault: bps_sim::fault::FaultPlan::none(),
    };
    let cluster = Cluster::with_sink(&cfg, StreamingMetrics::new());
    let mut pfs = ParallelFs::new(4);
    let files: Vec<FileId> = workload
        .file_sizes()
        .iter()
        .map(|&s| pfs.create(s, StripeLayout::default_over(4)))
        .collect();
    let mut stack = IoStack::new(cluster, FsBackend::Parallel(pfs));
    stack.sieving = if combo.sieving {
        SievingConfig::romio_default()
    } else {
        SievingConfig::disabled()
    };
    stack.prefetch = combo.prefetch.then(PrefetchConfig::readahead_128k);
    let (metrics, _) = run_workload(stack, &workload, &files, Dur::from_micros(5));
    metrics
}

/// Sweep all combinations — every `(combo, seed)` unit in parallel through
/// the streaming pipeline — averaged over the scale's seeds, sorted by BPS
/// (best first).
pub fn sweep(scale: &Scale) -> Vec<ComboResult> {
    let seeds = scale.seeds();
    let combos = Combo::all();
    let units = combos.len() * seeds.len();
    let runs = SweepExec::from_env().run_indexed(units, |i| {
        run_combo(combos[i / seeds.len()], scale, seeds[i % seeds.len()])
    });
    let mut results: Vec<ComboResult> = combos
        .iter()
        .zip(runs.chunks_exact(seeds.len()))
        .map(|(&combo, per_combo)| {
            let mut exec = 0.0;
            let mut bps = 0.0;
            let mut bw = 0.0;
            for m in per_combo {
                exec += m.execution_time().as_secs_f64();
                bps += m.bps().unwrap_or(f64::NAN);
                bw += m.bandwidth().unwrap_or(f64::NAN);
            }
            let n = seeds.len() as f64;
            ComboResult {
                combo,
                exec_s: exec / n,
                bps: bps / n,
                bw: bw / n,
            }
        })
        .collect();
    results.sort_by(|a, b| b.bps.partial_cmp(&a.bps).expect("finite BPS"));
    results
}

/// Render the extension study.
pub fn report(scale: &Scale) -> String {
    let results = sweep(scale);
    let mut out = String::new();
    writeln!(
        out,
        "=== Extension: optimization combinations ranked by BPS ==="
    )
    .unwrap();
    writeln!(
        out,
        "(S = data sieving, P = prefetch, E = elevator; mixed HPIO+sequential workload)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>10} {:>12} {:>12}",
        "combo", "exec(s)", "BPS", "BW(MB/s)"
    )
    .unwrap();
    for r in &results {
        writeln!(
            out,
            "{:<8} {:>10.3} {:>12.0} {:>12.1}",
            r.combo.label(),
            r.exec_s,
            r.bps,
            r.bw
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nBPS order matches execution-time order: {}",
        if bps_ranks_match_exec(&results) {
            "yes"
        } else {
            "no (see EXPERIMENTS.md)"
        }
    )
    .unwrap();
    out
}

/// Whether sorting by BPS descending equals sorting by exec time ascending.
pub fn bps_ranks_match_exec(results: &[ComboResult]) -> bool {
    let mut by_exec: Vec<&ComboResult> = results.iter().collect();
    by_exec.sort_by(|a, b| a.exec_s.partial_cmp(&b.exec_s).expect("finite"));
    by_exec.iter().zip(results).all(|(a, b)| a.combo == b.combo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_combos() {
        let combos = Combo::all();
        assert_eq!(combos.len(), 8);
        let labels: std::collections::HashSet<String> = combos.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn sieving_dominates_on_this_workload() {
        let results = sweep(&Scale::tiny());
        assert_eq!(results.len(), 8);
        // The best combination uses sieving (the noncontiguous phase is
        // hostile without it), and every sieving combo beats every
        // non-sieving combo on BPS.
        assert!(results[0].combo.sieving, "{results:?}");
        let worst_sieving = results
            .iter()
            .filter(|r| r.combo.sieving)
            .map(|r| r.bps)
            .fold(f64::MAX, f64::min);
        let best_plain = results
            .iter()
            .filter(|r| !r.combo.sieving)
            .map(|r| r.bps)
            .fold(f64::MIN, f64::max);
        assert!(worst_sieving > best_plain, "{results:?}");
    }

    #[test]
    fn bps_ranking_tracks_execution_time() {
        // The whole point of the metric: ranking optimizations by BPS is
        // ranking them by what the application experiences.
        let results = sweep(&Scale::tiny());
        assert!(bps_ranks_match_exec(&results), "{results:?}");
    }
}
