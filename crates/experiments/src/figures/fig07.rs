//! Figure 7 — detail: IOPS vs application execution time (HDD).
//!
//! The paper's anchors: at 4 KB records, IOPS ≈ 5156 while the 16 GB read
//! takes 809.6 s; at 64 KB, IOPS drops to 732 while the run *speeds up* to
//! 358.1 s. "Obviously, the IOPS is largely decreased, but the overall
//! computer performance is largely increased."

use crate::figures::common::DetailSeries;
use crate::figures::fig05::record_size_scenario;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{OutputSpec, Scenario, StorageSpec};
use bps_workloads::iozone::IozoneMode;

/// The sweep as data.
pub fn scenario() -> Scenario {
    record_size_scenario(
        "fig7",
        "Figure 7: IOPS vs execution time across I/O sizes (HDD)",
        StorageSpec::Hdd,
        IozoneMode::SeqRead,
        OutputSpec::Detail {
            metric: "IOPS".to_string(),
        },
        Vec::new(),
    )
}

/// Run the sweep and extract the IOPS detail series.
pub fn run(scale: &Scale) -> DetailSeries {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_detail()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iops_falls_while_time_falls() {
        let s = run(&Scale::tiny());
        let first = &s.points[0]; // 4 KB
        let last = &s.points[s.points.len() - 1]; // 8 MB
        assert!(first.1 > 10.0 * last.1, "IOPS should collapse: {s}");
        assert!(first.2 > 2.0 * last.2, "exec time should shrink: {s}");
    }

    #[test]
    fn iops_anchor_order_of_magnitude() {
        // At 4 KB sequential HDD records the simulator should land in the
        // same order of magnitude as the paper's 5156 IOPS.
        let s = run(&Scale::tiny());
        let iops_4k = s.points[0].1;
        assert!((2000.0..12000.0).contains(&iops_4k), "4KB IOPS = {iops_4k}");
    }
}
