//! Figure 8 — detail: ARPT vs application execution time (SSD).
//!
//! The paper's anchors: ARPT grows from 0.14 ms at 4 KB records to
//! 22.35 ms at 4 MB — "meaning a decreased I/O performance. However, the
//! overall computer performance is largely increased."

use crate::figures::common::DetailSeries;
use crate::figures::fig05::record_size_scenario;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{OutputSpec, Scenario, StorageSpec};
use bps_workloads::iozone::IozoneMode;

/// The sweep as data.
pub fn scenario() -> Scenario {
    record_size_scenario(
        "fig8",
        "Figure 8: ARPT vs execution time across I/O sizes (SSD)",
        StorageSpec::Ssd,
        IozoneMode::SeqRead,
        OutputSpec::Detail {
            metric: "ARPT".to_string(),
        },
        Vec::new(),
    )
}

/// Run the sweep and extract the ARPT detail series.
pub fn run(scale: &Scale) -> DetailSeries {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_detail()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arpt_rises_while_time_falls() {
        let s = run(&Scale::tiny());
        let first = &s.points[0]; // 4 KB
        let large = s.points.iter().find(|p| p.0 == "4MB").unwrap();
        assert!(large.1 > 20.0 * first.1, "ARPT should grow: {s}");
        assert!(first.2 > large.2, "exec time should shrink: {s}");
    }

    #[test]
    fn arpt_anchors_near_paper() {
        let s = run(&Scale::tiny());
        let arpt_4k = s.points[0].1;
        let arpt_4m = s.points.iter().find(|p| p.0 == "4MB").unwrap().1;
        // Paper: 0.00014 s and 0.02235 s.
        assert!((0.00008..0.0004).contains(&arpt_4k), "4KB ARPT {arpt_4k}");
        assert!((0.012..0.04).contains(&arpt_4m), "4MB ARPT {arpt_4m}");
    }
}
