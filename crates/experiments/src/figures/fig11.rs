//! Figure 11 — Set 3b: IOR shared-file concurrency.
//!
//! "We ran IOR with the MPI-IO interface to access a shared PVFS2 file,
//! which is striped across the underlying 8 I/O servers with a default
//! stripe layout. Each of n MPI processes is responsible for reading its
//! own 1/n of a 32 GB file ... fixed transfer size (64KB)." Processes vary
//! 1–32. IOPS/BW/BPS stay correct (~0.91); ARPT again points the wrong
//! way (paper: ~0.39) as server queues grow with fan-in.

use crate::figures::common::CcFigure;
use crate::runner::{CaseSpec, LayoutPolicy, Storage};
use crate::scale::Scale;
use crate::sweep::SweepExec;
use bps_workloads::ior::Ior;

/// The process counts swept.
pub const PROCESS_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Run the sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    let seeds = scale.seeds();
    let workloads: Vec<(usize, Ior)> = PROCESS_COUNTS
        .iter()
        .map(|&n| (n, Ior::shared_read(n, scale.fig11_total)))
        .collect();
    let cases: Vec<(String, CaseSpec)> = workloads
        .iter()
        .map(|(n, w)| {
            let mut spec = CaseSpec::new(Storage::Pvfs { servers: 8 }, w);
            spec.layout = LayoutPolicy::DefaultStripe;
            spec.clients = *n;
            (format!("np={n}"), spec)
        })
        .collect();
    let points = SweepExec::from_env().run(&cases, &seeds);
    CcFigure::from_points("Figure 11: CC for IOR on a shared striped file", points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_metrics_correct_arpt_wrong() {
        let fig = run(&Scale::tiny());
        for m in ["IOPS", "BW", "BPS"] {
            assert_eq!(fig.direction_correct(m), Some(true), "{m}: {fig}");
            assert!(fig.normalized(m).unwrap() > 0.6, "{m}: {fig}");
        }
        assert_eq!(fig.direction_correct("ARPT"), Some(false), "{fig}");
    }

    #[test]
    fn speedup_then_saturation() {
        let fig = run(&Scale::tiny());
        let t = |label: &str| fig.cases.iter().find(|c| c.label == label).unwrap().exec_s;
        // Concurrency helps early...
        assert!(t("np=8") < t("np=1"), "{fig}");
        // ...but the last doubling buys little (servers saturated).
        let ratio = t("np=32") / t("np=16");
        assert!(ratio > 0.6, "still scaling linearly at np=32? {fig}");
    }

    #[test]
    fn arpt_grows_under_fan_in() {
        let fig = run(&Scale::tiny());
        let a = |label: &str| fig.cases.iter().find(|c| c.label == label).unwrap().arpt;
        assert!(a("np=32") > a("np=1"), "{fig}");
    }
}
