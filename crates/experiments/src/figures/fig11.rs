//! Figure 11 — Set 3b: IOR shared-file concurrency.
//!
//! "We ran IOR with the MPI-IO interface to access a shared PVFS2 file,
//! which is striped across the underlying 8 I/O servers with a default
//! stripe layout. Each of n MPI processes is responsible for reading its
//! own 1/n of a 32 GB file ... fixed transfer size (64KB)." Processes vary
//! 1–32. IOPS/BW/BPS stay correct (~0.91); ARPT again points the wrong
//! way (paper: ~0.39) as server queues grow with fan-in.

use crate::figures::common::CcFigure;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{
    CaseDecl, CaseTemplate, Expect, Grid, Num, OutputSpec, Patch, ScaleKnob, Scenario, StorageSpec,
    WorkloadTemplate,
};

/// The process counts swept.
pub const PROCESS_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The IOR transfer size (the paper's 64 KB).
pub const TRANSFER_SIZE: u64 = 64 << 10;

/// The sweep as data.
pub fn scenario() -> Scenario {
    Scenario {
        name: "fig11".to_string(),
        title: "Figure 11: CC for IOR on a shared striped file".to_string(),
        output: OutputSpec::Cc,
        base: CaseTemplate::new(
            StorageSpec::Pvfs { servers: 8 },
            WorkloadTemplate::IorShared {
                file_size: Num::Knob {
                    knob: ScaleKnob::Fig11Total,
                },
                transfer_size: TRANSFER_SIZE,
                write: false,
                processes: 1,
            },
        ),
        grid: Grid::single(
            PROCESS_COUNTS
                .iter()
                .map(|&n| {
                    CaseDecl::new(
                        format!("np={n}"),
                        Patch {
                            processes: Some(n),
                            ..Patch::none()
                        },
                    )
                })
                .collect(),
        ),
        metrics: Vec::new(),
        deadline_ms: None,
        expect: vec![
            Expect::correct("IOPS", 0.6),
            Expect::correct("BW", 0.6),
            Expect::correct("BPS", 0.6),
            Expect::wrong("ARPT"),
        ],
        verdict: None,
    }
}

/// Run the sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_cc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::assert_cc_expectations;

    #[test]
    fn throughput_metrics_correct_arpt_wrong() {
        let fig = run(&Scale::tiny());
        assert_cc_expectations(&fig, &scenario().expect);
    }

    #[test]
    fn speedup_then_saturation() {
        let fig = run(&Scale::tiny());
        let t = |label: &str| fig.cases.iter().find(|c| c.label == label).unwrap().exec_s;
        // Concurrency helps early...
        assert!(t("np=8") < t("np=1"), "{fig}");
        // ...but the last doubling buys little (servers saturated).
        let ratio = t("np=32") / t("np=16");
        assert!(ratio > 0.6, "still scaling linearly at np=32? {fig}");
    }

    #[test]
    fn arpt_grows_under_fan_in() {
        let fig = run(&Scale::tiny());
        let a = |label: &str| fig.cases.iter().find(|c| c.label == label).unwrap().arpt;
        assert!(a("np=32") > a("np=1"), "{fig}");
    }
}
