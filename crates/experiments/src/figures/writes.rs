//! Extension: the Set 2 sweep with *writes*.
//!
//! The paper's evaluation reads; IOzone also tests writes, and nothing in
//! the BPS definition is read-specific ("Letting B denote the number of
//! I/O blocks (Read/Write)"). This module repeats the record-size sweep
//! with sequential writes on both devices and checks the verdicts carry
//! over: IOPS and ARPT still mislead, BW and BPS still track the
//! application.

use crate::figures::common::CcFigure;
use crate::figures::fig05::RECORD_SIZES;
use crate::runner::{CaseSpec, Storage};
use crate::scale::Scale;
use crate::sweep::SweepExec;
use bps_workloads::iozone::{Iozone, IozoneMode};

fn label_of(rs: u64) -> String {
    if rs >= 1 << 20 {
        format!("{}MB", rs >> 20)
    } else {
        format!("{}KB", rs >> 10)
    }
}

/// Run the write sweep on one device.
pub fn run_on(storage: Storage, scale: &Scale) -> CcFigure {
    let seeds = scale.seeds();
    let workloads: Vec<Iozone> = RECORD_SIZES
        .iter()
        .map(|&rs| Iozone {
            mode: IozoneMode::SeqWrite,
            file_size: scale.fig5_file,
            record_size: rs,
            processes: 1,
            seed: 0,
        })
        .collect();
    let cases: Vec<(String, CaseSpec)> = workloads
        .iter()
        .map(|w| (label_of(w.record_size), CaseSpec::new(storage, w)))
        .collect();
    let points = SweepExec::from_env().run(&cases, &seeds);
    let name = match storage {
        Storage::Hdd => "HDD",
        Storage::Ssd => "SSD",
        Storage::Pvfs { .. } => "PVFS",
    };
    CcFigure::from_points(
        format!("Extension: CC across I/O sizes, sequential WRITES ({name})"),
        points,
    )
}

/// Both device sweeps.
pub fn report(scale: &Scale) -> String {
    format!(
        "{}\n{}",
        run_on(Storage::Hdd, scale),
        run_on(Storage::Ssd, scale)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_sweep_same_verdicts_as_reads() {
        for storage in [Storage::Hdd, Storage::Ssd] {
            let fig = run_on(storage, &Scale::tiny());
            assert_eq!(fig.direction_correct("IOPS"), Some(false), "{fig}");
            assert_eq!(fig.direction_correct("ARPT"), Some(false), "{fig}");
            assert_eq!(fig.direction_correct("BW"), Some(true), "{fig}");
            assert_eq!(fig.direction_correct("BPS"), Some(true), "{fig}");
        }
    }

    #[test]
    fn ssd_writes_slower_than_reads_at_same_size() {
        // The SSD's program latency exceeds its read latency; sanity-check
        // the asymmetry survives the full stack.
        let scale = Scale::tiny();
        let writes = run_on(Storage::Ssd, &scale);
        let reads = crate::figures::fig06::run(&scale);
        let w4k = writes.cases[0].exec_s;
        let r4k = reads.cases[0].exec_s;
        assert!(w4k > r4k, "write {w4k} vs read {r4k}");
    }
}
