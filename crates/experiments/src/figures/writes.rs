//! Extension: the Set 2 sweep with *writes*.
//!
//! The paper's evaluation reads; IOzone also tests writes, and nothing in
//! the BPS definition is read-specific ("Letting B denote the number of
//! I/O blocks (Read/Write)"). This module repeats the record-size sweep
//! with sequential writes on both devices and checks the verdicts carry
//! over: IOPS and ARPT still mislead, BW and BPS still track the
//! application.

use crate::figures::common::CcFigure;
use crate::figures::fig05::{record_size_scenario, size_sweep_expect};
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{OutputSpec, Scenario, StorageSpec};
use bps_workloads::iozone::IozoneMode;

fn write_scenario(name: &str, storage: StorageSpec, device: &str) -> Scenario {
    record_size_scenario(
        name,
        &format!("Extension: CC across I/O sizes, sequential WRITES ({device})"),
        storage,
        IozoneMode::SeqWrite,
        OutputSpec::Cc,
        size_sweep_expect(None),
    )
}

/// The HDD write sweep as data.
pub fn scenario_hdd() -> Scenario {
    write_scenario("writes-hdd", StorageSpec::Hdd, "HDD")
}

/// The SSD write sweep as data.
pub fn scenario_ssd() -> Scenario {
    write_scenario("writes-ssd", StorageSpec::Ssd, "SSD")
}

/// Run the write sweep on one device.
pub fn run_on(storage: StorageSpec, scale: &Scale) -> CcFigure {
    let sc = match storage {
        StorageSpec::Hdd => scenario_hdd(),
        StorageSpec::Ssd => scenario_ssd(),
        StorageSpec::Pvfs { .. } => panic!("the write extension sweeps local devices only"),
    };
    engine::run(&sc, scale)
        .expect("bundled scenario is valid")
        .into_cc()
}

/// Both device sweeps.
pub fn report(scale: &Scale) -> String {
    format!(
        "{}\n{}",
        run_on(StorageSpec::Hdd, scale),
        run_on(StorageSpec::Ssd, scale)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::assert_cc_expectations;

    #[test]
    fn write_sweep_same_verdicts_as_reads() {
        for (storage, sc) in [
            (StorageSpec::Hdd, scenario_hdd()),
            (StorageSpec::Ssd, scenario_ssd()),
        ] {
            let fig = run_on(storage, &Scale::tiny());
            assert_cc_expectations(&fig, &sc.expect);
        }
    }

    #[test]
    fn ssd_writes_slower_than_reads_at_same_size() {
        // The SSD's program latency exceeds its read latency; sanity-check
        // the asymmetry survives the full stack.
        let scale = Scale::tiny();
        let writes = run_on(StorageSpec::Ssd, &scale);
        let reads = crate::figures::fig06::run(&scale);
        let w4k = writes.cases[0].exec_s;
        let r4k = reads.cases[0].exec_s;
        assert!(w4k > r4k, "write {w4k} vs read {r4k}");
    }
}
