//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Paper content |
//! |---|---|
//! | [`tables`] | Table 1 (expected CC directions), Table 2 (experiment sets) |
//! | [`fig01`] | Figure 1: the six two-request cases where IOPS/BW/ARPT mislead |
//! | [`fig02`] | Figure 2: the overlapped-time example (T = Δt1 + Δt2) |
//! | [`fig03`] | Figure 3: the time-calculating algorithm on a sample trace |
//! | [`fig04`] | Figure 4: CC across storage devices |
//! | [`fig05`] / [`fig06`] | Figures 5/6: CC across I/O sizes (HDD / SSD) |
//! | [`fig07`] / [`fig08`] | Figures 7/8: detail series (IOPS / ARPT vs exec time) |
//! | [`fig09`] / [`fig10`] | Figures 9/10: "pure" concurrency CC + ARPT detail |
//! | [`fig11`] | Figure 11: IOR shared-file concurrency CC |
//! | [`fig12`] | Figure 12: data-sieving additional-data-movement CC |
//! | [`summary`] | §IV.C.5: the cross-experiment summary |
//! | [`extensions`] | future-work extension: optimization combos ranked by BPS |
//! | [`faults`] | extension (Set 5): CC under fault injection / degraded mode |
//! | [`overhead`] | §III.C: measurement overhead (space + time) |
//! | [`writes`] | extension: the Set 2 sweep with sequential writes |

pub mod common;
pub mod extensions;
pub mod faults;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod overhead;
pub mod summary;
pub mod tables;
pub mod writes;

pub use common::{CcFigure, DetailSeries};
