//! §III.C — overhead analysis of the BPS measurement itself.
//!
//! The paper argues the methodology is cheap on two axes:
//!
//! * **Space**: "the size of each record is 32 bytes, even for 65535 I/O
//!   operations, all the records need about 3 megabytes".
//! * **Time**: the overlap algorithm is O(n log n) and "can be overlapped
//!   with data accesses".
//!
//! This module measures both on the real implementation: the binary record
//! size, the encoded footprint at the paper's example op count, and the
//! wall time of the union algorithm across record counts.

use bps_core::interval::{paper_union_time, union_time, Interval};
use bps_core::time::Nanos;
use bps_sim::rng::SimRng;
use std::fmt::Write;
use std::time::Instant;

/// One row of the time-cost table.
#[derive(Debug, Clone, Copy)]
pub struct OverheadRow {
    /// Record count.
    pub n: usize,
    /// Wall nanoseconds for the paper's Figure 3 algorithm.
    pub paper_ns: u64,
    /// Wall nanoseconds for the independent sweep.
    pub sweep_ns: u64,
}

fn random_intervals(n: usize, seed: u64) -> Vec<Interval> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            t += rng.below(100_000);
            let len = 1_000 + rng.below(300_000);
            Interval::new(Nanos(t), Nanos(t + len))
        })
        .collect()
}

/// Measure the union algorithms at the given record counts.
pub fn measure(counts: &[usize]) -> Vec<OverheadRow> {
    counts
        .iter()
        .map(|&n| {
            let ivs = random_intervals(n, 1234);
            let t0 = Instant::now();
            let a = paper_union_time(&ivs);
            let paper_ns = t0.elapsed().as_nanos() as u64;
            let t0 = Instant::now();
            let b = union_time(ivs.iter().copied());
            let sweep_ns = t0.elapsed().as_nanos() as u64;
            assert_eq!(a, b, "algorithms disagree at n={n}");
            OverheadRow {
                n,
                paper_ns,
                sweep_ns,
            }
        })
        .collect()
}

/// Render the overhead analysis.
pub fn report() -> String {
    let mut out = String::new();
    writeln!(out, "=== Overhead analysis (paper §III.C) ===").unwrap();
    // Space.
    let record = bps_trace::format::BINARY_RECORD_SIZE;
    let example_ops = 65_535usize;
    writeln!(out, "record size: {record} bytes (paper: 32 bytes)").unwrap();
    writeln!(
        out,
        "{} ops => {:.2} MiB on disk (paper: \"about 3 megabytes\")",
        example_ops,
        (example_ops * record) as f64 / (1 << 20) as f64
    )
    .unwrap();
    // Time.
    writeln!(out, "\nunion-time cost (single run, this machine):").unwrap();
    writeln!(
        out,
        "{:>9} {:>14} {:>14}",
        "records", "paper (us)", "sweep (us)"
    )
    .unwrap();
    for row in measure(&[1_000, 10_000, 100_000]) {
        writeln!(
            out,
            "{:>9} {:>14.1} {:>14.1}",
            row.n,
            row.paper_ns as f64 / 1e3,
            row.sweep_ns as f64 / 1e3
        )
        .unwrap();
    }
    writeln!(
        out,
        "\n(criterion-grade numbers: cargo bench -p bps-bench interval_union)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_claim_holds() {
        assert_eq!(bps_trace::format::BINARY_RECORD_SIZE, 32);
        let bytes = 65_535 * bps_trace::format::BINARY_RECORD_SIZE;
        // "about 3 megabytes": 2 MiB exactly, ~2.1 MB decimal.
        assert!(bytes < 3 * 1024 * 1024);
    }

    #[test]
    fn measurement_is_fast_and_consistent() {
        let rows = measure(&[1_000, 10_000]);
        assert_eq!(rows.len(), 2);
        for r in rows {
            // Both algorithms finish 10k records far under a millisecond on
            // any modern machine — but keep the bound loose for CI noise.
            assert!(r.paper_ns < 500_000_000, "{r:?}");
            assert!(r.sweep_ns < 500_000_000, "{r:?}");
        }
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("32 bytes"));
        assert!(r.contains("65535"));
        assert!(r.contains("sweep"));
    }
}
