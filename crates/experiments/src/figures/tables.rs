//! Tables 1 and 2 of the paper.

use bps_core::metrics::{paper_metrics, Direction};
use std::fmt::Write;

/// Table 1: the expected correlation direction of each I/O metric against
/// application execution time. Rendered from the live metric definitions,
/// so the table cannot drift from the code.
pub fn table1() -> String {
    let mut out = String::new();
    writeln!(out, "=== Table 1: expected correlation directions ===").unwrap();
    writeln!(out, "{:<22} {:>10}", "I/O metric", "CC value").unwrap();
    for m in paper_metrics() {
        let dir = match m.expected_direction() {
            Direction::Negative => "negative",
            Direction::Positive => "positive",
        };
        let name = match m.name() {
            "BW" => "Bandwidth",
            "ARPT" => "Average response time",
            other => other,
        };
        writeln!(out, "{name:<22} {dir:>10}").unwrap();
    }
    out
}

/// Table 2: the four I/O access case sets of the evaluation, mapped to the
/// modules that reproduce them — plus the degraded-mode extension set,
/// which sweeps fault shapes instead of a healthy-cluster dimension.
pub fn table2() -> String {
    let rows = [
        ("Set1", "various storage device", "fig04"),
        (
            "Set2",
            "various I/O request size",
            "fig05 fig06 fig07 fig08",
        ),
        ("Set3", "various I/O concurrency", "fig09 fig10 fig11"),
        ("Set4", "various additional data movement", "fig12"),
        ("Set5", "various fault shape (extension)", "faults"),
    ];
    let mut out = String::new();
    writeln!(out, "=== Table 2: I/O access cases ===").unwrap();
    writeln!(out, "{:<6} {:<34} Reproduced by", "Set", "Description").unwrap();
    for (set, desc, by) in rows {
        writeln!(out, "{set:<6} {desc:<34} {by}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert!(t.contains("IOPS") && t.contains("negative"));
        assert!(t.contains("Average response time"));
        assert!(t.contains("positive"));
        assert!(t.contains("BPS"));
        // Exactly one positive row (ARPT).
        assert_eq!(t.matches("positive").count(), 1);
    }

    #[test]
    fn table2_lists_all_sets() {
        let t = table2();
        for set in ["Set1", "Set2", "Set3", "Set4", "Set5"] {
            assert!(t.contains(set));
        }
        assert!(t.contains("additional data movement"));
        assert!(t.contains("fault shape"));
    }
}
