//! Figure 10 — detail: ARPT vs execution time across concurrency.
//!
//! "Compared with the variation of application execution time, ARPT has a
//! smaller variation, so it is not able to reflect the overall computer
//! performance accurately."

use crate::figures::common::DetailSeries;
use crate::figures::fig09::concurrency_scenario;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{OutputSpec, Scenario};

/// The sweep as data.
pub fn scenario() -> Scenario {
    concurrency_scenario(
        "fig10",
        "Figure 10: ARPT vs execution time across I/O concurrency",
        OutputSpec::Detail {
            metric: "ARPT".to_string(),
        },
        Vec::new(),
    )
}

/// Run the sweep and extract the ARPT detail series.
pub fn run(scale: &Scale) -> DetailSeries {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_detail()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arpt_variation_much_smaller_than_exec_variation() {
        let s = run(&Scale::tiny());
        let arpts: Vec<f64> = s.points.iter().map(|p| p.1).collect();
        let execs: Vec<f64> = s.points.iter().map(|p| p.2).collect();
        let rel = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / max
        };
        assert!(
            rel(&arpts) < rel(&execs) / 3.0,
            "ARPT spread {} vs exec spread {}: {s}",
            rel(&arpts),
            rel(&execs)
        );
    }
}
