//! §IV.C.5 — summary of experiment results.
//!
//! "BPS is the only metric that works well for all the scenarios. BPS
//! correctly correlates with the overall computer performance in all the
//! tests, and achieves high CC values." The paper's headline: BPS has a
//! 0.91 correlation coefficient overall.

use crate::figures::common::CcFigure;
use crate::figures::{fig04, fig05, fig06, fig09, fig11, fig12};
use crate::scale::Scale;
use bps_core::metrics::paper_metrics;
use std::fmt::Write;

/// Run every CC figure.
pub fn all_figures(scale: &Scale) -> Vec<CcFigure> {
    vec![
        fig04::run(scale),
        fig05::run(scale),
        fig06::run(scale),
        fig09::run(scale),
        fig11::run(scale),
        fig12::run(scale),
    ]
}

/// The cross-experiment verdict per metric: `(name, mean normalized CC,
/// number of scenarios with the wrong direction)`.
pub fn verdicts(figures: &[CcFigure]) -> Vec<(String, f64, usize)> {
    paper_metrics()
        .iter()
        .map(|m| m.name())
        .map(|m| {
            let ccs: Vec<f64> = figures.iter().filter_map(|f| f.normalized(m)).collect();
            let mean = ccs.iter().sum::<f64>() / ccs.len() as f64;
            let wrong = figures
                .iter()
                .filter(|f| f.direction_correct(m) == Some(false))
                .count();
            (m.to_string(), mean, wrong)
        })
        .collect()
}

/// Render the summary table.
pub fn report(scale: &Scale) -> String {
    let figures = all_figures(scale);
    let mut out = String::new();
    writeln!(out, "=== Summary (paper §IV.C.5) ===").unwrap();
    writeln!(
        out,
        "{:<6} {:>14} {:>22}",
        "metric", "mean norm. CC", "wrong-direction cases"
    )
    .unwrap();
    for (name, mean, wrong) in verdicts(&figures) {
        writeln!(out, "{name:<6} {mean:>14.3} {wrong:>22}").unwrap();
    }
    writeln!(
        out,
        "\nBPS is the only metric correct in every scenario (paper: ~0.91 mean CC)."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bps_wins_everywhere_others_fail_somewhere() {
        let figures = all_figures(&Scale::tiny());
        let v = verdicts(&figures);
        let get = |m: &str| v.iter().find(|(n, _, _)| n == m).unwrap().clone();
        // BPS: correct in all six scenarios, high mean CC.
        let (_, bps_mean, bps_wrong) = get("BPS");
        assert_eq!(bps_wrong, 0, "{figures:?}");
        assert!(bps_mean > 0.75, "BPS mean {bps_mean}");
        // Every conventional metric misleads in at least one scenario.
        for m in ["IOPS", "BW", "ARPT"] {
            let (_, _, wrong) = get(m);
            assert!(wrong >= 1, "{m} never wrong?");
        }
        // ARPT specifically fails the concurrency sets (paper Figs. 9/11).
        let (_, _, arpt_wrong) = get("ARPT");
        assert!(arpt_wrong >= 2);
    }
}
