//! Figure 9 — Set 3a: "pure" concurrent I/O.
//!
//! "Each process of IOzone accessed its own PVFS2 file, and each file is
//! hosted on an individual I/O server. We limited each file to locate on
//! one I/O server by setting the file stripe layout attributes. There were
//! eight I/O servers ... the POSIX interface, and the total data amount of
//! file accesses is 32GB." Processes vary 1–8. IOPS, BW and BPS correlate
//! correctly (~0.96); ARPT points the wrong way — more concurrency
//! finishes sooner while per-request response times inch *up*.

use crate::figures::common::CcFigure;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{
    CaseDecl, CaseTemplate, Expect, Grid, LayoutSpec, Num, OutputSpec, Patch, ScaleKnob, Scenario,
    StorageSpec, WorkloadTemplate,
};
use bps_workloads::iozone::IozoneMode;

/// Record size of the per-process sequential reads.
pub const RECORD_SIZE: u64 = 64 << 10;

/// The Set 3a sweep shape as data (shared with Figure 10): `np` processes
/// on 8 pinned servers, the scale's total bytes split over the processes.
pub fn concurrency_scenario(
    name: &str,
    title: &str,
    output: OutputSpec,
    expect: Vec<Expect>,
) -> Scenario {
    let mut base = CaseTemplate::new(
        StorageSpec::Pvfs { servers: 8 },
        WorkloadTemplate::Iozone {
            mode: IozoneMode::SeqRead,
            file_size: Num::KnobPerProcess {
                knob: ScaleKnob::Fig9Total,
            },
            record_size: Num::Abs { n: RECORD_SIZE },
            processes: 1,
            seed: 0,
        },
    );
    base.layout = Some(LayoutSpec::PinnedPerFile);
    Scenario {
        name: name.to_string(),
        title: title.to_string(),
        output,
        base,
        grid: Grid::single(
            (1..=8usize)
                .map(|n| {
                    CaseDecl::new(
                        format!("np={n}"),
                        Patch {
                            processes: Some(n),
                            ..Patch::none()
                        },
                    )
                })
                .collect(),
        ),
        metrics: Vec::new(),
        deadline_ms: None,
        expect,
        verdict: None,
    }
}

/// The sweep as data.
pub fn scenario() -> Scenario {
    concurrency_scenario(
        "fig9",
        "Figure 9: CC under pure concurrency (per-process files, pinned servers)",
        OutputSpec::Cc,
        vec![
            Expect::correct("IOPS", 0.8),
            Expect::correct("BW", 0.8),
            Expect::correct("BPS", 0.8),
            Expect::wrong("ARPT"),
        ],
    )
}

/// Run the sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_cc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::assert_cc_expectations;

    #[test]
    fn throughput_metrics_correct_arpt_wrong() {
        let fig = run(&Scale::tiny());
        assert_cc_expectations(&fig, &scenario().expect);
    }

    #[test]
    fn more_processes_finish_sooner() {
        let fig = run(&Scale::tiny());
        assert!(fig.cases[7].exec_s < fig.cases[0].exec_s / 3.0, "{fig}");
    }
}
