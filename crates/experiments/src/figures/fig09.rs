//! Figure 9 — Set 3a: "pure" concurrent I/O.
//!
//! "Each process of IOzone accessed its own PVFS2 file, and each file is
//! hosted on an individual I/O server. We limited each file to locate on
//! one I/O server by setting the file stripe layout attributes. There were
//! eight I/O servers ... the POSIX interface, and the total data amount of
//! file accesses is 32GB." Processes vary 1–8. IOPS, BW and BPS correlate
//! correctly (~0.96); ARPT points the wrong way — more concurrency
//! finishes sooner while per-request response times inch *up*.

use crate::figures::common::CcFigure;
use crate::runner::{CasePoint, CaseSpec, LayoutPolicy, Storage};
use crate::scale::Scale;
use crate::sweep::SweepExec;
use bps_workloads::iozone::Iozone;

/// Record size of the per-process sequential reads.
pub const RECORD_SIZE: u64 = 64 << 10;

/// Run the sweep points (shared with Figure 10).
pub fn points(scale: &Scale) -> Vec<CasePoint> {
    let seeds = scale.seeds();
    let workloads: Vec<Iozone> = (1..=8usize)
        .map(|n| Iozone::throughput_read(n, scale.fig9_total / n as u64, RECORD_SIZE))
        .collect();
    let cases: Vec<(String, CaseSpec)> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let n = i + 1;
            let mut spec = CaseSpec::new(Storage::Pvfs { servers: 8 }, w);
            spec.layout = LayoutPolicy::PinnedPerFile;
            spec.clients = n;
            (format!("np={n}"), spec)
        })
        .collect();
    SweepExec::from_env().run(&cases, &seeds)
}

/// Run the sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    CcFigure::from_points(
        "Figure 9: CC under pure concurrency (per-process files, pinned servers)",
        points(scale),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_metrics_correct_arpt_wrong() {
        let fig = run(&Scale::tiny());
        for m in ["IOPS", "BW", "BPS"] {
            assert_eq!(fig.direction_correct(m), Some(true), "{m}: {fig}");
            assert!(fig.normalized(m).unwrap() > 0.8, "{m}: {fig}");
        }
        assert_eq!(fig.direction_correct("ARPT"), Some(false), "{fig}");
    }

    #[test]
    fn more_processes_finish_sooner() {
        let fig = run(&Scale::tiny());
        assert!(fig.cases[7].exec_s < fig.cases[0].exec_s / 3.0, "{fig}");
    }
}
