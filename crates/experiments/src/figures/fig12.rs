//! Figure 12 — Set 4: various additional data movement (data sieving).
//!
//! "We ran Hpio ... noncontiguous file read ... PVFS2 ... 4 I/O servers.
//! Data sieving was enabled ... region count 4096000, region size 256
//! bytes ... region spacing from 8 bytes to 4096 bytes." IOPS, ARPT and
//! BPS stay correct (~0.92); **bandwidth points the wrong way** — the file
//! system moves ever more hole bytes at a healthy rate while the
//! application only gets slower. "File system performance does not
//! represent I/O system performance."

use crate::figures::common::CcFigure;
use crate::scale::Scale;
use crate::scenario::engine;
use crate::scenario::spec::{
    CaseDecl, CaseTemplate, Expect, Grid, Num, OutputSpec, Patch, ScaleKnob, Scenario, StorageSpec,
    WorkloadTemplate,
};

/// The region spacings swept (bytes of hole between 256-byte regions).
pub const SPACINGS: [u64; 5] = [8, 64, 256, 1024, 4096];

/// MPI processes issuing the noncontiguous reads.
pub const PROCESSES: usize = 4;

/// The sweep as data. The regions-per-call expression keeps roughly 40
/// noncontiguous calls per sweep point at any scale, matching the paper's
/// regions-per-call at full scale.
pub fn scenario() -> Scenario {
    Scenario {
        name: "fig12".to_string(),
        title: "Figure 12: CC with data sieving (additional data movement)".to_string(),
        output: OutputSpec::Cc,
        base: CaseTemplate::new(
            StorageSpec::Pvfs { servers: 4 },
            WorkloadTemplate::Hpio {
                region_count: Num::Knob {
                    knob: ScaleKnob::Fig12Regions,
                },
                region_size: 256,
                region_spacing: Num::Abs { n: SPACINGS[0] },
                regions_per_call: Num::KnobScaled {
                    knob: ScaleKnob::Fig12Regions,
                    div: 40,
                    min: 256,
                    max: 4096,
                },
                processes: PROCESSES,
                collective: false,
            },
        ),
        grid: Grid::single(
            SPACINGS
                .iter()
                .map(|&spacing| {
                    CaseDecl::new(
                        format!("gap={spacing}B"),
                        Patch {
                            region_spacing: Some(spacing),
                            ..Patch::none()
                        },
                    )
                })
                .collect(),
        ),
        metrics: Vec::new(),
        deadline_ms: None,
        expect: vec![
            Expect::correct("IOPS", 0.7),
            Expect::correct("ARPT", 0.7),
            Expect::correct("BPS", 0.7),
            Expect::wrong("BW"),
        ],
        verdict: None,
    }
}

/// Run the sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    engine::run(&scenario(), scale)
        .expect("bundled scenario is valid")
        .into_cc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::assert_cc_expectations;

    #[test]
    fn bw_wrong_direction_others_correct() {
        let fig = run(&Scale::tiny());
        assert_cc_expectations(&fig, &scenario().expect);
    }

    #[test]
    fn wider_gaps_slow_the_application() {
        let fig = run(&Scale::tiny());
        let first = &fig.cases[0];
        let last = &fig.cases[fig.cases.len() - 1];
        assert!(last.exec_s > 2.0 * first.exec_s, "{fig}");
        // ...while the BW number stays healthy or improves.
        assert!(last.bw >= first.bw * 0.9, "{fig}");
    }
}
