//! Figure 12 — Set 4: various additional data movement (data sieving).
//!
//! "We ran Hpio ... noncontiguous file read ... PVFS2 ... 4 I/O servers.
//! Data sieving was enabled ... region count 4096000, region size 256
//! bytes ... region spacing from 8 bytes to 4096 bytes." IOPS, ARPT and
//! BPS stay correct (~0.92); **bandwidth points the wrong way** — the file
//! system moves ever more hole bytes at a healthy rate while the
//! application only gets slower. "File system performance does not
//! represent I/O system performance."

use crate::figures::common::CcFigure;
use crate::runner::{CaseSpec, LayoutPolicy, Storage};
use crate::scale::Scale;
use crate::sweep::SweepExec;
use bps_middleware::sieving::SievingConfig;
use bps_workloads::hpio::Hpio;

/// The region spacings swept (bytes of hole between 256-byte regions).
pub const SPACINGS: [u64; 5] = [8, 64, 256, 1024, 4096];

/// MPI processes issuing the noncontiguous reads.
pub const PROCESSES: usize = 4;

/// Build the HPIO workload for one spacing at a given scale.
pub fn workload(scale: &Scale, spacing: u64) -> Hpio {
    let mut w = Hpio::paper_shape(scale.fig12_regions, spacing, PROCESSES);
    // Keep roughly 40 noncontiguous calls per sweep point at any scale,
    // matching the paper's regions-per-call at full scale.
    w.regions_per_call = (scale.fig12_regions / 40).clamp(256, 4096);
    w
}

/// Run the sweep and score the metrics.
pub fn run(scale: &Scale) -> CcFigure {
    let seeds = scale.seeds();
    let workloads: Vec<Hpio> = SPACINGS.iter().map(|&s| workload(scale, s)).collect();
    let cases: Vec<(String, CaseSpec)> = SPACINGS
        .iter()
        .zip(&workloads)
        .map(|(&spacing, w)| {
            let mut spec = CaseSpec::new(Storage::Pvfs { servers: 4 }, w);
            spec.layout = LayoutPolicy::DefaultStripe;
            spec.clients = PROCESSES;
            spec.sieving = SievingConfig::romio_default();
            (format!("gap={spacing}B"), spec)
        })
        .collect();
    let points = SweepExec::from_env().run(&cases, &seeds);
    CcFigure::from_points(
        "Figure 12: CC with data sieving (additional data movement)",
        points,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bw_wrong_direction_others_correct() {
        let fig = run(&Scale::tiny());
        for m in ["IOPS", "ARPT", "BPS"] {
            assert_eq!(fig.direction_correct(m), Some(true), "{m}: {fig}");
            assert!(fig.normalized(m).unwrap() > 0.7, "{m}: {fig}");
        }
        assert_eq!(fig.direction_correct("BW"), Some(false), "{fig}");
    }

    #[test]
    fn wider_gaps_slow_the_application() {
        let fig = run(&Scale::tiny());
        let first = &fig.cases[0];
        let last = &fig.cases[fig.cases.len() - 1];
        assert!(last.exec_s > 2.0 * first.exec_s, "{fig}");
        // ...while the BW number stays healthy or improves.
        assert!(last.bw >= first.bw * 0.9, "{fig}");
    }
}
