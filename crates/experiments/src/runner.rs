//! Building and running one experiment case.
//!
//! A [`CaseSpec`] names a storage configuration plus a workload; `run_case`
//! assembles the simulated cluster and file system, binds the workload's
//! files, drives all processes to completion, and returns the collected
//! multi-layer trace. [`CasePoint`] averages the four paper metrics over
//! repeated seeded runs, as the paper averages 5 runs per case.

use bps_core::metrics::{Arpt, Bandwidth, Bps, Iops, Metric};
use bps_core::record::FileId;
use bps_core::time::Dur;
use bps_core::trace::Trace;
use bps_fs::cluster::{Cluster, ClusterConfig, DeviceSpec};
use bps_fs::layout::StripeLayout;
use bps_fs::localfs::LocalFs;
use bps_fs::pfs::ParallelFs;
use bps_middleware::process::run_workload;
use bps_middleware::sieving::SievingConfig;
use bps_middleware::stack::{FsBackend, IoStack};
use bps_sim::device::hdd::HddProfile;
use bps_sim::device::ssd::SsdProfile;
use bps_sim::device::DiskSched;
use bps_sim::rng::{Jitter, SimRng};
use bps_workloads::spec::Workload;
use serde::Serialize;

/// Storage configuration of a case (the paper's Set 1 dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Local file system on the testbed HDD.
    Hdd,
    /// Local file system on the testbed SSD.
    Ssd,
    /// PVFS2-like parallel FS over this many I/O servers.
    Pvfs {
        /// Number of I/O servers.
        servers: usize,
    },
}

/// How the workload's files are laid out on a PVFS case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutPolicy {
    /// Default 64 KB striping over all servers (paper's IOR setup).
    DefaultStripe,
    /// File `i` pinned to server `i % servers` (paper's "pure" concurrency
    /// setup: each process's file on its own server).
    PinnedPerFile,
}

/// One experiment case: a storage configuration plus a workload.
pub struct CaseSpec<'a> {
    /// Storage under test.
    pub storage: Storage,
    /// Number of client nodes (the paper runs each MPI process on its own
    /// node).
    pub clients: usize,
    /// The benchmark.
    pub workload: &'a dyn Workload,
    /// File layout policy (PVFS only).
    pub layout: LayoutPolicy,
    /// Data sieving configuration for noncontiguous reads.
    pub sieving: SievingConfig,
    /// Per-op CPU cost charged by each application process.
    pub cpu_per_op: Dur,
}

impl<'a> CaseSpec<'a> {
    /// A sensible default case over the given storage and workload.
    pub fn new(storage: Storage, workload: &'a dyn Workload) -> Self {
        CaseSpec {
            storage,
            clients: workload.processes(),
            workload,
            layout: LayoutPolicy::DefaultStripe,
            sieving: SievingConfig::romio_default(),
            cpu_per_op: Dur::from_micros(5),
        }
    }
}

/// Run one case once with one seed; returns the trace (execution time set).
pub fn run_case(spec: &CaseSpec<'_>, seed: u64) -> Trace {
    let servers = match spec.storage {
        Storage::Pvfs { servers } => servers,
        _ => 1,
    };
    // Per-run variability beyond per-request jitter: server CPU cost and
    // device behaviour differ slightly run to run (placement, background
    // daemons), which is why the paper averages 5 runs.
    let mut seed_rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let server_cpu =
        Dur::from_secs_f64(25e-6 * (0.85 + 0.3 * seed_rng.unit()));
    let cfg = ClusterConfig {
        servers,
        clients: spec.clients.max(1),
        device: match spec.storage {
            Storage::Ssd => DeviceSpec::Ssd(SsdProfile::pcie_x4_100gb()),
            _ => DeviceSpec::Hdd(HddProfile::sata_7200_250gb()),
        },
        sched: DiskSched::Fifo,
        server_cpu,
        jitter: Jitter::DEFAULT,
        seed,
        record_device_layer: false,
    };
    let cluster = Cluster::new(&cfg);
    let file_sizes = spec.workload.file_sizes();
    let mut file_map: Vec<FileId> = Vec::with_capacity(file_sizes.len());
    let backend = match spec.storage {
        Storage::Hdd | Storage::Ssd => {
            let mut fs = LocalFs::new(0);
            for &size in &file_sizes {
                file_map.push(fs.create(size));
            }
            FsBackend::Local(fs)
        }
        Storage::Pvfs { servers } => {
            let mut pfs = ParallelFs::new(servers);
            for (i, &size) in file_sizes.iter().enumerate() {
                let layout = match spec.layout {
                    LayoutPolicy::DefaultStripe => StripeLayout::default_over(servers),
                    LayoutPolicy::PinnedPerFile => StripeLayout::pinned(i % servers),
                };
                file_map.push(pfs.create(size, layout));
            }
            FsBackend::Parallel(pfs)
        }
    };
    let mut stack = IoStack::new(cluster, backend);
    stack.sieving = spec.sieving;
    let (trace, _outcome) = run_workload(stack, spec.workload, &file_map, spec.cpu_per_op);
    trace
}

/// The four paper metrics plus execution time for one case, averaged over
/// seeds.
#[derive(Debug, Clone, Serialize)]
pub struct CasePoint {
    /// Case label (e.g. "pvfs-4", "64KB", "np=8", "spacing=512").
    pub label: String,
    /// Mean IOPS.
    pub iops: f64,
    /// Mean bandwidth, MB/s.
    pub bw: f64,
    /// Mean average response time, seconds.
    pub arpt: f64,
    /// Mean BPS, blocks/second.
    pub bps: f64,
    /// Mean application execution time, seconds.
    pub exec_s: f64,
}

impl CasePoint {
    /// Run a case once per seed and average the metrics.
    pub fn averaged(label: impl Into<String>, spec: &CaseSpec<'_>, seeds: &[u64]) -> CasePoint {
        assert!(!seeds.is_empty(), "need at least one seed");
        let mut sums = [0.0f64; 5];
        for &seed in seeds {
            let trace = run_case(spec, seed);
            sums[0] += Iops.compute(&trace).unwrap_or(f64::NAN);
            sums[1] += Bandwidth.compute(&trace).unwrap_or(f64::NAN);
            sums[2] += Arpt.compute(&trace).unwrap_or(f64::NAN);
            sums[3] += Bps.compute(&trace).unwrap_or(f64::NAN);
            sums[4] += trace.execution_time().as_secs_f64();
        }
        let n = seeds.len() as f64;
        CasePoint {
            label: label.into(),
            iops: sums[0] / n,
            bw: sums[1] / n,
            arpt: sums[2] / n,
            bps: sums[3] / n,
            exec_s: sums[4] / n,
        }
    }

    /// The metric value by paper name ("IOPS", "BW", "ARPT", "BPS").
    pub fn metric(&self, name: &str) -> f64 {
        match name {
            "IOPS" => self.iops,
            "BW" => self.bw,
            "ARPT" => self.arpt,
            "BPS" => self.bps,
            other => panic!("unknown metric {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_workloads::iozone::Iozone;

    #[test]
    fn run_case_produces_layered_trace() {
        let w = Iozone::seq_read(8 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Hdd, &w);
        let trace = run_case(&spec, 1);
        use bps_core::record::Layer;
        assert_eq!(trace.op_count(Layer::Application), 32);
        assert_eq!(trace.op_count(Layer::FileSystem), 32);
        assert!(trace.execution_time() > Dur::ZERO);
    }

    #[test]
    fn seeds_change_timing_but_not_structure() {
        let w = Iozone::seq_read(4 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Hdd, &w);
        let a = run_case(&spec, 1);
        let b = run_case(&spec, 2);
        assert_eq!(a.len(), b.len());
        assert_ne!(
            a.execution_time(),
            b.execution_time(),
            "different seeds should jitter timing"
        );
        // Same seed: byte-identical.
        let c = run_case(&spec, 1);
        assert_eq!(a.records(), c.records());
    }

    #[test]
    fn averaged_point_is_finite() {
        let w = Iozone::seq_read(4 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Ssd, &w);
        let p = CasePoint::averaged("ssd", &spec, &[1, 2]);
        assert!(p.iops.is_finite() && p.iops > 0.0);
        assert!(p.bw.is_finite() && p.bw > 0.0);
        assert!(p.arpt.is_finite() && p.arpt > 0.0);
        assert!(p.bps.is_finite() && p.bps > 0.0);
        assert!(p.exec_s > 0.0);
        assert_eq!(p.metric("BPS"), p.bps);
    }

    #[test]
    fn pvfs_case_runs() {
        let w = Iozone::seq_read(8 << 20, 1 << 20);
        let mut spec = CaseSpec::new(Storage::Pvfs { servers: 4 }, &w);
        spec.layout = LayoutPolicy::DefaultStripe;
        let trace = run_case(&spec, 3);
        use bps_core::record::Layer;
        // 1 MB records over 64 KB stripes on 4 servers: >1 FS op per app op.
        assert!(trace.op_count(Layer::FileSystem) > trace.op_count(Layer::Application));
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_panics() {
        let p = CasePoint {
            label: "x".into(),
            iops: 0.0,
            bw: 0.0,
            arpt: 0.0,
            bps: 0.0,
            exec_s: 0.0,
        };
        p.metric("nope");
    }
}
