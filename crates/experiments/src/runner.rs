//! Building and running one experiment case.
//!
//! A [`CaseSpec`] names a storage configuration plus a workload; `run_case`
//! assembles the simulated cluster and file system, binds the workload's
//! files, drives all processes to completion, and returns the collected
//! multi-layer trace. [`run_case_streaming`] runs the same case through
//! [`StreamingMetrics`] instead — constant space, identical numbers.
//! [`CasePoint`] averages the four paper metrics over repeated seeded
//! runs, as the paper averages 5 runs per case.

use bps_core::metrics::MetricSelection;
use bps_core::sink::{RecordSink, StreamingMetrics};
use bps_core::time::Dur;
use bps_core::trace::Trace;
use bps_middleware::process::run_workload;
use bps_middleware::sieving::SievingConfig;
use bps_middleware::stack::RetryPolicy;
use bps_sim::fault::FaultPlan;
use bps_sim::rng::SimRng;
use bps_topology::{BuildEnv, DeviceNode, Layout, TopologySpec};
use bps_workloads::spec::Workload;
use serde::Serialize;

/// Storage configuration of a case (the paper's Set 1 dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Local file system on the testbed HDD.
    Hdd,
    /// Local file system on the testbed SSD.
    Ssd,
    /// PVFS2-like parallel FS over this many I/O servers.
    Pvfs {
        /// Number of I/O servers.
        servers: usize,
    },
}

impl Storage {
    /// The prebuilt component graph this storage historically hardcoded:
    /// local-over-device for `Hdd`/`Ssd`, striped-over-the-network for
    /// `Pvfs`. A case without an explicit topology runs this graph.
    pub fn default_topology(&self) -> TopologySpec {
        match *self {
            Storage::Hdd => TopologySpec::local(DeviceNode::Hdd),
            Storage::Ssd => TopologySpec::local(DeviceNode::Ssd),
            Storage::Pvfs { servers } => TopologySpec::pfs(servers),
        }
    }
}

/// How the workload's files are laid out on a PVFS case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutPolicy {
    /// Default 64 KB striping over all servers (paper's IOR setup).
    DefaultStripe,
    /// File `i` pinned to server `i % servers` (paper's "pure" concurrency
    /// setup: each process's file on its own server).
    PinnedPerFile,
}

/// One experiment case: a storage configuration plus a workload.
pub struct CaseSpec<'a> {
    /// Storage under test.
    pub storage: Storage,
    /// Number of client nodes (the paper runs each MPI process on its own
    /// node).
    pub clients: usize,
    /// The benchmark.
    pub workload: &'a dyn Workload,
    /// File layout policy (PVFS only).
    pub layout: LayoutPolicy,
    /// Data sieving configuration for noncontiguous reads.
    pub sieving: SievingConfig,
    /// Per-op CPU cost charged by each application process.
    pub cpu_per_op: Dur,
    /// Fault injection plan ([`FaultPlan::none()`] = healthy cluster,
    /// bit-for-bit identical to the pre-fault code path).
    pub fault: FaultPlan,
    /// Middleware timeout/retry/backoff behavior under faults.
    pub retry: RetryPolicy,
    /// Explicit component graph to run instead of the prebuilt one
    /// [`Storage::default_topology`] derives from `storage`. When set, the
    /// graph decides the file system, interconnect, and device; `storage`
    /// only labels the case.
    pub topology: Option<TopologySpec>,
}

impl<'a> CaseSpec<'a> {
    /// A sensible default case over the given storage and workload.
    pub fn new(storage: Storage, workload: &'a dyn Workload) -> Self {
        CaseSpec {
            storage,
            clients: workload.processes(),
            workload,
            layout: LayoutPolicy::DefaultStripe,
            sieving: SievingConfig::romio_default(),
            cpu_per_op: Dur::from_micros(5),
            fault: FaultPlan::none(),
            retry: RetryPolicy::default(),
            topology: None,
        }
    }

    /// Same case under a fault plan.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Same case over an explicit component graph.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The component graph this case runs: the explicit one if declared,
    /// otherwise the storage's prebuilt default.
    pub fn effective_topology(&self) -> TopologySpec {
        self.topology
            .clone()
            .unwrap_or_else(|| self.storage.default_topology())
    }
}

/// Run one case once with one seed; returns the trace (execution time set).
pub fn run_case(spec: &CaseSpec<'_>, seed: u64) -> Trace {
    run_case_with(spec, seed, Trace::new())
}

/// Run one case once with one seed, folding every record into streaming
/// accumulators as it completes — no trace is materialized. The returned
/// metrics are bit-for-bit what [`run_case`] plus `Metric::compute` yield.
pub fn run_case_streaming(spec: &CaseSpec<'_>, seed: u64) -> StreamingMetrics {
    run_case_with(spec, seed, StreamingMetrics::new())
}

/// Like [`run_case_streaming`], but the sink retains whatever per-record
/// state `selection` needs, so any selected registry metric can be
/// finished from the result.
pub fn run_case_streaming_selected(
    spec: &CaseSpec<'_>,
    seed: u64,
    selection: &MetricSelection,
) -> StreamingMetrics {
    run_case_with(spec, seed, StreamingMetrics::for_selection(selection))
}

/// Run one case once with one seed, feeding records into `sink`. The
/// case's component graph (explicit or prebuilt) is assembled over the
/// sink and driven by the engine loop.
pub fn run_case_with<S: RecordSink + Default>(spec: &CaseSpec<'_>, seed: u64, sink: S) -> S {
    // Per-run variability beyond per-request jitter: server CPU cost and
    // device behaviour differ slightly run to run (placement, background
    // daemons), which is why the paper averages 5 runs.
    let mut seed_rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let server_cpu = Dur::from_secs_f64(25e-6 * (0.85 + 0.3 * seed_rng.unit()));
    let file_sizes = spec.workload.file_sizes();
    let env = BuildEnv {
        clients: spec.clients,
        server_cpu,
        seed,
        file_sizes: &file_sizes,
        layout: match spec.layout {
            LayoutPolicy::DefaultStripe => Layout::DefaultStripe,
            LayoutPolicy::PinnedPerFile => Layout::PinnedPerFile,
        },
        sieving: spec.sieving,
        retry: spec.retry,
        fault: spec.fault.clone(),
    };
    let built = spec
        .effective_topology()
        .build(&env, sink)
        .unwrap_or_else(|e| panic!("invalid topology: {e}"));
    let (sink, _outcome) = run_workload(built.stack, spec.workload, &built.files, spec.cpu_per_op);
    sink
}

/// The captured metric values of one completed `(case, seed)` unit: what
/// a [`StreamingMetrics`] sink reduces to once the per-record state is no
/// longer needed. This is the unit of the run journal — small, owned, and
/// bit-exactly averageable, so a resumed run reproduces a cold run's
/// bytes. `None` marks a metric the run left undefined (e.g. a zero-time
/// run), which averaging counts and skips.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitValues {
    /// I/O operations per second.
    pub iops: Option<f64>,
    /// Bandwidth, MB/s.
    pub bw: Option<f64>,
    /// Average response time, seconds.
    pub arpt: Option<f64>,
    /// BPS, blocks/second.
    pub bps: Option<f64>,
    /// Application execution time, seconds.
    pub exec_s: f64,
    /// `(name, value)` for selected registry metrics beyond the paper
    /// four, in selection order.
    pub extra: Vec<(String, Option<f64>)>,
}

impl UnitValues {
    /// Capture a finished run's values under a metric selection.
    pub fn capture(run: &StreamingMetrics, selection: &MetricSelection) -> UnitValues {
        UnitValues {
            iops: run.iops(),
            bw: run.bandwidth(),
            arpt: run.arpt(),
            bps: run.bps(),
            exec_s: run.execution_time().as_secs_f64(),
            extra: selection
                .metrics()
                .iter()
                .filter(|m| !matches!(m.name(), "IOPS" | "BW" | "ARPT" | "BPS"))
                .map(|m| (m.name().to_string(), m.finish(run)))
                .collect(),
        }
    }
}

/// The four paper metrics plus execution time for one case, averaged over
/// seeds, plus the mean of any further selected registry metrics.
#[derive(Debug, Clone)]
pub struct CasePoint {
    /// Case label (e.g. "pvfs-4", "64KB", "np=8", "spacing=512").
    pub label: String,
    /// Mean IOPS.
    pub iops: f64,
    /// Mean bandwidth, MB/s.
    pub bw: f64,
    /// Mean average response time, seconds.
    pub arpt: f64,
    /// Mean BPS, blocks/second.
    pub bps: f64,
    /// Mean application execution time, seconds.
    pub exec_s: f64,
    /// `(name, mean)` for selected registry metrics beyond the paper four,
    /// in registry order (empty under the default paper selection).
    pub extra: Vec<(String, f64)>,
    /// Set when every seed of this case failed — the metrics above are
    /// NaN and this records *why* (panic, timeout, ...), so reports and
    /// CSV exports annotate `n/a` with the failure class.
    pub failed: Option<crate::supervise::FailureKind>,
}

// Hand-rolled so the empty `extra` of a paper-selection point is omitted
// on the wire, keeping serialized sweeps byte-identical to the
// pre-registry format.
impl Serialize for CasePoint {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            ("label".to_string(), self.label.to_value()),
            ("iops".to_string(), self.iops.to_value()),
            ("bw".to_string(), self.bw.to_value()),
            ("arpt".to_string(), self.arpt.to_value()),
            ("bps".to_string(), self.bps.to_value()),
            ("exec_s".to_string(), self.exec_s.to_value()),
        ];
        if !self.extra.is_empty() {
            pairs.push(("extra".to_string(), self.extra.to_value()));
        }
        if let Some(kind) = self.failed {
            pairs.push((
                "failed".to_string(),
                serde::Value::Str(kind.name().to_string()),
            ));
        }
        serde::Value::Object(pairs)
    }
}

impl CasePoint {
    /// Run a case once per seed and average the metrics. The seeds are
    /// fanned across threads by [`crate::sweep::SweepExec::from_env`]
    /// (`BPS_THREADS` controls the count); the result is byte-identical
    /// at any thread count.
    pub fn averaged(label: impl Into<String>, spec: &CaseSpec<'_>, seeds: &[u64]) -> CasePoint {
        crate::sweep::SweepExec::from_env().run_one(label, spec, seeds)
    }

    /// Average already-finished per-seed runs into one point (runs in seed
    /// order). A seed where a metric is undefined (e.g. a zero-time run)
    /// is counted and skipped with a warning rather than poisoning the
    /// mean with NaN; if *every* run leaves a metric undefined — including
    /// the degenerate case of no surviving runs at all, e.g. when every
    /// seed of a case panicked and was isolated by the sweep executor —
    /// that metric is NaN and downstream correlation scoring reports
    /// `n/a`.
    pub fn from_runs(label: impl Into<String>, runs: &[StreamingMetrics]) -> CasePoint {
        CasePoint::from_runs_selected(label, runs, &MetricSelection::paper())
    }

    /// Like [`CasePoint::from_runs`], additionally averaging every selected
    /// registry metric beyond the paper four into [`CasePoint::extra`]
    /// (the runs must have been folded with the selection's needs, e.g. via
    /// [`run_case_streaming_selected`]).
    pub fn from_runs_selected(
        label: impl Into<String>,
        runs: &[StreamingMetrics],
        selection: &MetricSelection,
    ) -> CasePoint {
        let units: Vec<UnitValues> = runs
            .iter()
            .map(|r| UnitValues::capture(r, selection))
            .collect();
        CasePoint::from_units(label, &units, selection)
    }

    /// Average captured per-unit values into one point — the journaled
    /// form of [`CasePoint::from_runs_selected`], bit-identical to it
    /// because [`UnitValues::capture`] records the exact `f64`s the live
    /// sinks would have contributed.
    pub fn from_units(
        label: impl Into<String>,
        units: &[UnitValues],
        selection: &MetricSelection,
    ) -> CasePoint {
        let label = label.into();
        let extra_metrics: Vec<_> = selection
            .metrics()
            .iter()
            .copied()
            .filter(|m| !matches!(m.name(), "IOPS" | "BW" | "ARPT" | "BPS"))
            .collect();
        if units.is_empty() {
            eprintln!("warning: case {label}: no surviving runs; reporting NaN metrics");
            return CasePoint {
                label,
                iops: f64::NAN,
                bw: f64::NAN,
                arpt: f64::NAN,
                bps: f64::NAN,
                exec_s: f64::NAN,
                extra: extra_metrics
                    .iter()
                    .map(|m| (m.name().to_string(), f64::NAN))
                    .collect(),
                failed: None,
            };
        }
        fn mean(label: &str, name: &str, values: Vec<Option<f64>>) -> f64 {
            let total = values.len();
            let defined: Vec<f64> = values.into_iter().flatten().collect();
            let skipped = total - defined.len();
            if skipped > 0 {
                eprintln!(
                    "warning: case {label}: {name} undefined in {skipped}/{total} run(s); \
                     averaging the rest"
                );
            }
            if defined.is_empty() {
                f64::NAN
            } else {
                defined.iter().sum::<f64>() / defined.len() as f64
            }
        }
        let named = |name: &str| -> Vec<Option<f64>> {
            units
                .iter()
                .map(|u| {
                    u.extra
                        .iter()
                        .find(|(n, _)| n == name)
                        .and_then(|(_, v)| *v)
                })
                .collect()
        };
        CasePoint {
            iops: mean(&label, "IOPS", units.iter().map(|u| u.iops).collect()),
            bw: mean(&label, "BW", units.iter().map(|u| u.bw).collect()),
            arpt: mean(&label, "ARPT", units.iter().map(|u| u.arpt).collect()),
            bps: mean(&label, "BPS", units.iter().map(|u| u.bps).collect()),
            exec_s: units.iter().map(|u| u.exec_s).sum::<f64>() / units.len() as f64,
            extra: extra_metrics
                .iter()
                .map(|m| {
                    let values = named(m.name());
                    (m.name().to_string(), mean(&label, m.name(), values))
                })
                .collect(),
            label,
            failed: None,
        }
    }

    /// The metric value by registry name, case-insensitive ("IOPS", "BW",
    /// "ARPT", "BPS", or any selected extra); `None` for an unknown or
    /// unselected name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        if name.eq_ignore_ascii_case("IOPS") {
            return Some(self.iops);
        }
        if name.eq_ignore_ascii_case("BW") {
            return Some(self.bw);
        }
        if name.eq_ignore_ascii_case("ARPT") {
            return Some(self.arpt);
        }
        if name.eq_ignore_ascii_case("BPS") {
            return Some(self.bps);
        }
        self.extra
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_workloads::iozone::Iozone;

    #[test]
    fn run_case_produces_layered_trace() {
        let w = Iozone::seq_read(8 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Hdd, &w);
        let trace = run_case(&spec, 1);
        use bps_core::record::Layer;
        assert_eq!(trace.op_count(Layer::Application), 32);
        assert_eq!(trace.op_count(Layer::FileSystem), 32);
        assert!(trace.execution_time() > Dur::ZERO);
    }

    #[test]
    fn seeds_change_timing_but_not_structure() {
        let w = Iozone::seq_read(4 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Hdd, &w);
        let a = run_case(&spec, 1);
        let b = run_case(&spec, 2);
        assert_eq!(a.len(), b.len());
        assert_ne!(
            a.execution_time(),
            b.execution_time(),
            "different seeds should jitter timing"
        );
        // Same seed: byte-identical.
        let c = run_case(&spec, 1);
        assert_eq!(a.records(), c.records());
    }

    #[test]
    fn averaged_point_is_finite() {
        let w = Iozone::seq_read(4 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Ssd, &w);
        let p = CasePoint::averaged("ssd", &spec, &[1, 2]);
        assert!(p.iops.is_finite() && p.iops > 0.0);
        assert!(p.bw.is_finite() && p.bw > 0.0);
        assert!(p.arpt.is_finite() && p.arpt > 0.0);
        assert!(p.bps.is_finite() && p.bps > 0.0);
        assert!(p.exec_s > 0.0);
        assert_eq!(p.metric("BPS"), Some(p.bps));
    }

    #[test]
    fn streaming_case_matches_trace_case() {
        use bps_core::metrics::{Arpt, Bandwidth, Bps, Iops, Metric};
        let w = Iozone::seq_read(4 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Hdd, &w);
        let trace = run_case(&spec, 7);
        let stream = run_case_streaming(&spec, 7);
        assert_eq!(Bps.compute(&trace), stream.bps());
        assert_eq!(Iops.compute(&trace), stream.iops());
        assert_eq!(Bandwidth.compute(&trace), stream.bandwidth());
        assert_eq!(Arpt.compute(&trace), stream.arpt());
        assert_eq!(trace.execution_time(), stream.execution_time());
        assert_eq!(trace.len() as u64, stream.len());
    }

    #[test]
    fn pvfs_case_runs() {
        let w = Iozone::seq_read(8 << 20, 1 << 20);
        let mut spec = CaseSpec::new(Storage::Pvfs { servers: 4 }, &w);
        spec.layout = LayoutPolicy::DefaultStripe;
        let trace = run_case(&spec, 3);
        use bps_core::record::Layer;
        // 1 MB records over 64 KB stripes on 4 servers: >1 FS op per app op.
        assert!(trace.op_count(Layer::FileSystem) > trace.op_count(Layer::Application));
    }

    #[test]
    fn unknown_metric_is_none() {
        let p = CasePoint {
            label: "x".into(),
            iops: 1.0,
            bw: 2.0,
            arpt: 3.0,
            bps: 4.0,
            exec_s: 5.0,
            extra: vec![("P99".into(), 6.0)],
            failed: None,
        };
        assert_eq!(p.metric("nope"), None);
        assert_eq!(p.metric("ARPT"), Some(3.0));
        // Lookup is case-insensitive, over named fields and extras alike.
        assert_eq!(p.metric("arpt"), Some(3.0));
        assert_eq!(p.metric("p99"), Some(6.0));
    }

    #[test]
    fn selected_runs_carry_extra_metrics() {
        use bps_core::metrics::MetricSelection;
        let w = Iozone::seq_read(4 << 20, 256 << 10);
        let spec = CaseSpec::new(Storage::Hdd, &w);
        let sel = MetricSelection::parse(&["BPS", "p99", "MaxQD"]).unwrap();
        let runs = [
            run_case_streaming_selected(&spec, 1, &sel),
            run_case_streaming_selected(&spec, 2, &sel),
        ];
        let p = CasePoint::from_runs_selected("hdd", &runs, &sel);
        // Paper fields are always populated; extras follow the selection.
        assert!(p.bps.is_finite() && p.bps > 0.0);
        let names: Vec<&str> = p.extra.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["P99", "MaxQD"]);
        assert!(p.metric("P99").unwrap() > 0.0);
        assert!(p.metric("MaxQD").unwrap() >= 1.0);
        // The selected streaming run matches the trace computed the batch way.
        use bps_core::metrics::extended::LatencyPercentile;
        use bps_core::metrics::{Metric, MetricFold};
        let trace = run_case(&spec, 1);
        assert_eq!(
            LatencyPercentile::P99.compute(&trace),
            LatencyPercentile::P99.finish(&runs[0])
        );
    }

    #[test]
    fn from_runs_skips_undefined_samples() {
        use bps_core::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
        use bps_core::sink::RecordSink;
        use bps_core::sink::StreamingMetrics;
        use bps_core::time::Nanos;
        // One healthy run and one zero-time run (BPS/IOPS/BW undefined).
        let mut good = StreamingMetrics::new();
        good.on_record(&IoRecord::new(
            ProcessId(0),
            IoOp::Read,
            FileId(0),
            0,
            4096,
            Nanos::ZERO,
            Nanos::from_micros(100),
            Layer::Application,
        ));
        let mut degenerate = StreamingMetrics::new();
        degenerate.on_record(&IoRecord::new(
            ProcessId(0),
            IoOp::Read,
            FileId(0),
            0,
            4096,
            Nanos::from_micros(5),
            Nanos::from_micros(5),
            Layer::Application,
        ));
        let p = CasePoint::from_runs("mixed", &[good.clone(), degenerate]);
        // The undefined samples are skipped, not NaN-poisoned.
        assert_eq!(p.bps, good.bps().unwrap());
        assert_eq!(p.iops, good.iops().unwrap());
        assert!(p.bps.is_finite() && p.iops.is_finite());
        // ARPT is defined in both runs and averages over both.
        let arpt_mean = (good.arpt().unwrap() + 0.0) / 2.0;
        assert_eq!(p.arpt, arpt_mean);
    }
}
