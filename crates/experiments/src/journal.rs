//! Append-only run journal: checkpoint/resume for supervised sweeps.
//!
//! `reproduce run --journal <path>` writes one JSONL line per completed
//! `(case, seed)` unit, flushed as it lands, so a killed run loses at
//! most its in-flight units. `reproduce resume <path>` replays the
//! journal — completed units are served from it instead of re-simulated
//! — and re-runs the rest, producing byte-identical output to an
//! uninterrupted run at any thread count.
//!
//! ## Format
//!
//! The first line is a header recording the original CLI arguments
//! (minus the `--journal` pair), which is how `resume` reconstructs the
//! run:
//!
//! ```text
//! {"kind":"header","version":1,"args":["run","fig4","--tiny"]}
//! {"kind":"unit","key":"<case-key>#<seed>","label":"hdd","seed":1,
//!  "exec_s":"3fe8a3d70a3d70a4","iops":"40f86a0000000000",...,"extra":[...]}
//! ```
//!
//! Units are content-keyed exactly like the cross-figure memo cache
//! (`case_key(case, scale, selection)` plus the seed), so a journal is
//! valid across any target list that shares cases and is simply ignored
//! for units whose content changed. Every `f64` is stored as the
//! 16-hex-digit big-endian encoding of its IEEE-754 bits (`null` for an
//! undefined sample): the vendored JSON writer renders non-finite floats
//! as `null` and decimal round-trips are not bit-exact, while the bits
//! encoding is — resume must reproduce cold-run bytes exactly.
//!
//! Torn or unparseable lines (a SIGKILL mid-write) are skipped with a
//! warning; the affected unit just re-runs.

use crate::runner::UnitValues;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Journal format version (the header's `version` field).
const VERSION: u64 = 1;

/// An open run journal: an append handle plus the replay map of every
/// unit already on disk.
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    replay: HashMap<String, UnitValues>,
}

/// Encode an `f64` as its IEEE-754 bits in hex — exact, NaN-safe. Shared
/// with the persistent case store so both on-disk formats are bit-exact.
pub(crate) fn f64_to_value(x: f64) -> serde::Value {
    serde::Value::Str(format!("{:016x}", x.to_bits()))
}

fn opt_f64_to_value(x: Option<f64>) -> serde::Value {
    match x {
        Some(x) => f64_to_value(x),
        None => serde::Value::Null,
    }
}

pub(crate) fn f64_from_value(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::Str(s) if s.len() == 16 => {
            u64::from_str_radix(s, 16).ok().map(f64::from_bits)
        }
        _ => None,
    }
}

fn opt_f64_from_value(v: &serde::Value) -> Result<Option<f64>, ()> {
    match v {
        serde::Value::Null => Ok(None),
        other => f64_from_value(other).map(Some).ok_or(()),
    }
}

/// Parse one journal line into a `(key, values)` unit entry; `None` for
/// headers, torn lines, or anything else unusable.
fn parse_unit(line: &str) -> Option<(String, UnitValues)> {
    let v: serde::Value = serde_json::from_str(line).ok()?;
    let field = |name: &str| v.field(name).ok().cloned();
    match field("kind")? {
        serde::Value::Str(k) if k == "unit" => {}
        _ => return None,
    }
    let key = match field("key")? {
        serde::Value::Str(k) => k,
        _ => return None,
    };
    let extra = match field("extra")? {
        serde::Value::Null => Vec::new(),
        serde::Value::Array(items) => {
            let mut extra = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    serde::Value::Array(pair) if pair.len() == 2 => {
                        let name = match &pair[0] {
                            serde::Value::Str(n) => n.clone(),
                            _ => return None,
                        };
                        extra.push((name, opt_f64_from_value(&pair[1]).ok()?));
                    }
                    _ => return None,
                }
            }
            extra
        }
        _ => return None,
    };
    let values = UnitValues {
        iops: opt_f64_from_value(&field("iops")?).ok()?,
        bw: opt_f64_from_value(&field("bw")?).ok()?,
        arpt: opt_f64_from_value(&field("arpt")?).ok()?,
        bps: opt_f64_from_value(&field("bps")?).ok()?,
        exec_s: f64_from_value(&field("exec_s")?)?,
        extra,
    };
    Some((key, values))
}

impl Journal {
    /// Create (truncating) a journal at `path`, stamping the header with
    /// the run's CLI arguments.
    pub fn create(path: &Path, args: &[String]) -> io::Result<Journal> {
        let mut file = File::create(path)?;
        let header = serde::Value::Object(vec![
            ("kind".to_string(), serde::Value::Str("header".to_string())),
            ("version".to_string(), serde::Value::UInt(VERSION)),
            (
                "args".to_string(),
                serde::Value::Array(args.iter().map(|a| serde::Value::Str(a.clone())).collect()),
            ),
        ]);
        let line = serde_json::to_string(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(file, "{line}")?;
        file.flush()?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            replay: HashMap::new(),
        })
    }

    /// Open an existing journal for resumption: parse the header and every
    /// unit line (skipping torn ones with a warning), then reopen the file
    /// in append mode. Returns the journal and the original CLI arguments
    /// from the header.
    pub fn open_resume(path: &Path) -> io::Result<(Journal, Vec<String>)> {
        let text = std::fs::read_to_string(path)?;
        let mut args: Option<Vec<String>> = None;
        let mut replay = HashMap::new();
        let mut torn = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if args.is_none() {
                if let Ok(v) = serde_json::from_str::<serde::Value>(line) {
                    if let (Ok(serde::Value::Str(kind)), Ok(serde::Value::Array(items))) =
                        (v.field("kind"), v.field("args"))
                    {
                        if kind == "header" {
                            args = Some(
                                items
                                    .iter()
                                    .filter_map(|i| match i {
                                        serde::Value::Str(s) => Some(s.clone()),
                                        _ => None,
                                    })
                                    .collect(),
                            );
                            continue;
                        }
                    }
                }
            }
            match parse_unit(line) {
                // Later lines win: a re-run unit appended after a resume
                // supersedes (bit-identically) its earlier record.
                Some((key, values)) => {
                    replay.insert(key, values);
                }
                None => torn += 1,
            }
        }
        let args = args.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: no journal header line", path.display()),
            )
        })?;
        if torn > 0 {
            eprintln!(
                "warning: {}: skipped {torn} torn/unparseable journal line(s); \
                 those units will re-run",
                path.display()
            );
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
                replay,
            },
            args,
        ))
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many completed units the journal replays.
    pub fn replayed_units(&self) -> usize {
        self.replay.len()
    }

    /// The recorded values of a unit, if the journal has it.
    pub fn lookup(&self, key: &str) -> Option<UnitValues> {
        self.replay.get(key).cloned()
    }

    /// Append one completed unit and flush, so the line survives a SIGKILL
    /// arriving right after. A write error is reported, not fatal — losing
    /// journal durability should not kill a healthy sweep.
    pub fn record(&self, key: &str, label: &str, seed: u64, values: &UnitValues) {
        let extra = serde::Value::Array(
            values
                .extra
                .iter()
                .map(|(name, v)| {
                    serde::Value::Array(vec![serde::Value::Str(name.clone()), opt_f64_to_value(*v)])
                })
                .collect(),
        );
        let unit = serde::Value::Object(vec![
            ("kind".to_string(), serde::Value::Str("unit".to_string())),
            ("key".to_string(), serde::Value::Str(key.to_string())),
            ("label".to_string(), serde::Value::Str(label.to_string())),
            ("seed".to_string(), serde::Value::UInt(seed)),
            ("exec_s".to_string(), f64_to_value(values.exec_s)),
            ("iops".to_string(), opt_f64_to_value(values.iops)),
            ("bw".to_string(), opt_f64_to_value(values.bw)),
            ("arpt".to_string(), opt_f64_to_value(values.arpt)),
            ("bps".to_string(), opt_f64_to_value(values.bps)),
            ("extra".to_string(), extra),
        ]);
        let line = match serde_json::to_string(&unit) {
            Ok(line) => line,
            Err(e) => {
                eprintln!("warning: journal: cannot encode unit {key}: {e}");
                return;
            }
        };
        let mut file = self.file.lock().expect("journal file poisoned");
        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
            eprintln!(
                "warning: journal: cannot append to {}: {e}",
                self.path.display()
            );
        }
    }
}

fn active_slot() -> &'static Mutex<Option<Arc<Journal>>> {
    static ACTIVE: OnceLock<Mutex<Option<Arc<Journal>>>> = OnceLock::new();
    ACTIVE.get_or_init(Default::default)
}

/// Install (or clear) the process-wide journal every scenario run records
/// to and replays from. The CLI sets it for `--journal` and `resume`.
pub fn set_active(journal: Option<Arc<Journal>>) {
    *active_slot().lock().expect("journal slot poisoned") = journal;
}

/// The process-wide journal, if one is installed.
pub fn active() -> Option<Arc<Journal>> {
    active_slot().lock().expect("journal slot poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bps_journal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn values(x: f64) -> UnitValues {
        UnitValues {
            iops: Some(x),
            bw: None,
            arpt: Some(x * 0.5),
            bps: Some(f64::NAN),
            exec_s: x + 0.125,
            extra: vec![("P99".to_string(), Some(x)), ("MaxQD".to_string(), None)],
        }
    }

    #[test]
    fn round_trips_bits_exactly_including_nan() {
        let path = tmp("roundtrip");
        let j = Journal::create(&path, &["run".into(), "fig4".into()]).unwrap();
        let v = values(std::f64::consts::PI);
        j.record("k#1", "hdd", 1, &v);
        drop(j);
        let (j, args) = Journal::open_resume(&path).unwrap();
        assert_eq!(args, vec!["run".to_string(), "fig4".to_string()]);
        assert_eq!(j.replayed_units(), 1);
        let back = j.lookup("k#1").unwrap();
        assert_eq!(back.iops.unwrap().to_bits(), v.iops.unwrap().to_bits());
        assert_eq!(back.bw, None);
        assert_eq!(back.arpt.unwrap().to_bits(), v.arpt.unwrap().to_bits());
        // NaN survives bit-for-bit — the whole point of the hex encoding.
        assert_eq!(back.bps.unwrap().to_bits(), v.bps.unwrap().to_bits());
        assert_eq!(back.exec_s.to_bits(), v.exec_s.to_bits());
        assert_eq!(back.extra, v.extra);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_line_is_skipped_not_fatal() {
        let path = tmp("torn");
        let j = Journal::create(&path, &["fig5".into()]).unwrap();
        j.record("a#1", "c", 1, &values(1.0));
        j.record("b#2", "c", 2, &values(2.0));
        drop(j);
        // Simulate a SIGKILL mid-write: chop the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();
        let (j, _) = Journal::open_resume(&path).unwrap();
        assert_eq!(j.replayed_units(), 1);
        assert!(j.lookup("a#1").is_some());
        assert!(j.lookup("b#2").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_appends_after_replay() {
        let path = tmp("append");
        let j = Journal::create(&path, &[]).unwrap();
        j.record("a#1", "c", 1, &values(1.0));
        drop(j);
        let (j, _) = Journal::open_resume(&path).unwrap();
        j.record("b#1", "c", 1, &values(2.0));
        drop(j);
        let (j, _) = Journal::open_resume(&path).unwrap();
        assert_eq!(j.replayed_units(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_is_an_error() {
        let path = tmp("headerless");
        std::fs::write(&path, "{\"kind\":\"unit\"}\n").unwrap();
        let e = match Journal::open_resume(&path) {
            Err(e) => e,
            Ok(_) => panic!("headerless journal must not open"),
        };
        assert!(e.to_string().contains("header"), "{e}");
        std::fs::remove_file(&path).ok();
    }
}
