//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce all                    # everything, quick scale (default)
//! reproduce fig12                  # one experiment
//! reproduce fig5 --tiny            # test scale
//! reproduce all --paper            # the paper's full data volumes (slow)
//! reproduce list                   # the bundled scenarios, by name
//! reproduce metrics                # the metric registry, by name
//! reproduce run fig9 --tiny        # any bundled scenario through the engine
//! reproduce run my_sweep.json      # a user-authored scenario, no recompiling
//! reproduce check my_sweep.json    # parse + expand without running
//! reproduce topology fig9          # the component graph a scenario's cases run
//! reproduce fig4 --metrics BPS,p99 # score a custom metric selection
//! reproduce fig4 --journal r.jsonl # checkpoint every finished unit
//! reproduce resume r.jsonl         # pick the run back up, skipping done units
//! reproduce cache stats            # the persistent case store, by the numbers
//! reproduce all --no-cache         # bypass the persistent store for one run
//! ```

use bps_experiments::export;
use bps_experiments::figures::{
    extensions, faults, fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10,
    fig11, fig12, overhead, summary, tables, writes,
};
use bps_experiments::journal::{self, Journal};
use bps_experiments::scale::Scale;
use bps_experiments::scenario::{engine, registry, spec::Scenario, store};
use bps_experiments::supervise::{self, FailureKind};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The fixed report targets, in `all` order.
const TARGETS: [&str; 19] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "summary",
    "extensions",
    "overhead",
    "writes",
    "faults",
];

fn usage() -> ! {
    eprintln!(
        "usage: reproduce <target>... [--quick|--tiny|--paper] [--csv <dir>] [--threads <n>] [--metrics a,b,c]\n\
         \x20                       [--journal <path>] [--deadline-ms <n>] [--max-failures <n>] [--no-cache]\n\
         \x20      reproduce list [filter]\n\
         \x20      reproduce metrics\n\
         \x20      reproduce run <name|path.json>... [same flags as above]\n\
         \x20      reproduce check <path.json>...\n\
         \x20      reproduce topology <name|path.json>... [--quick|--tiny|--paper]\n\
         \x20      reproduce resume <journal> [extra flags]\n\
         \x20      reproduce cache stats|verify|clear\n\
         targets: all, {}\n\
         threads: --threads <n> outranks the BPS_THREADS environment variable;\n\
         \x20        with neither set, the machine's available parallelism is used\n\
         metrics: --metrics selects registry metrics (see `reproduce metrics`) for any\n\
         \x20        scenario that does not pin its own `metrics` list\n\
         robustness: --journal records every finished (case, seed) unit to an append-only\n\
         \x20        JSONL file; `reproduce resume <journal>` replays it and runs only the\n\
         \x20        rest, byte-identical to an uninterrupted run. --deadline-ms bounds\n\
         \x20        each unit's wall-clock time (a scenario's own `deadline_ms` outranks\n\
         \x20        it); --max-failures N aborts once more than N units fail\n\
         cache: scored cases persist in a content-addressed store (default\n\
         \x20        target/bps-cache, BPS_CACHE_DIR overrides) and replay bit-exactly in\n\
         \x20        later runs; BPS_CACHE=0 or --no-cache bypasses it. `reproduce cache`\n\
         \x20        prints stats, names unservable entries, or clears the store\n\
         exit codes: 0 ok; 1 expectation violations or unknown name; 2 usage;\n\
         \x20        3 invalid scenario; 4 I/O error; 5 unit panicked; 6 unit timed out;\n\
         \x20        7 failure budget exceeded; 130 interrupted (journal flushed)",
        TARGETS.join(", ")
    );
    std::process::exit(2);
}

/// Exit with a one-line diagnostic (used for failures that have no more
/// specific class: an unknown bundled name, a CSV directory that cannot
/// be written).
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Exit with the engine error's class code: 3 for an invalid scenario,
/// 4 for an I/O failure.
fn fail_engine(e: engine::EngineError) -> ! {
    let code = match e.kind() {
        engine::EngineErrorKind::InvalidSpec => FailureKind::InvalidSpec.exit_code(),
        engine::EngineErrorKind::Io => FailureKind::Io.exit_code(),
    };
    eprintln!("error: {e}");
    std::process::exit(code);
}

/// Drain the run's failure ledger, print a per-kind summary, and exit
/// with the worst kind's code — or with 1 on expectation violations, or
/// 0 on a clean run.
fn finish(violations: bool) -> ! {
    let failures = supervise::take_recorded_failures();
    if !failures.is_empty() {
        let mut counts: Vec<(FailureKind, usize)> = Vec::new();
        for f in &failures {
            match counts.iter_mut().find(|(k, _)| *k == f.kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.kind, 1)),
            }
        }
        let summary: Vec<String> = counts
            .iter()
            .map(|(k, n)| format!("{n} {}", k.name()))
            .collect();
        eprintln!("{} unit(s) failed: {}", failures.len(), summary.join(", "));
        let worst = FailureKind::worst(failures.iter().map(|f| f.kind))
            .expect("non-empty failure ledger has a worst kind");
        std::process::exit(worst.exit_code());
    }
    std::process::exit(if violations { 1 } else { 0 });
}

/// Install a SIGINT/SIGTERM handler that asks the supervisor to stop at
/// the next unit boundary (the journal is flushed per unit, so completed
/// work is already safe). Only installed for journaled runs — an
/// unjournaled run keeps the default kill-me-now behavior.
#[cfg(unix)]
fn install_interrupt_handler() {
    extern "C" fn handle(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        supervise::request_interrupt();
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, handle);
        signal(SIGTERM, handle);
    }
}

#[cfg(not(unix))]
fn install_interrupt_handler() {}

/// Make a journal live: publish it to the engine, arm the interrupt
/// handler, and remember the resume command for diagnostics.
fn activate_journal(j: Arc<Journal>) {
    supervise::set_resume_hint(Some(format!("reproduce resume {}", j.path().display())));
    journal::set_active(Some(j));
    install_interrupt_handler();
}

/// Resolve a `run` operand: a bundled scenario name, or a path to a JSON
/// file (anything with a `.json` suffix or that exists on disk).
fn resolve_scenario(arg: &str) -> Scenario {
    if arg.ends_with(".json") || Path::new(arg).exists() {
        match engine::load_path(Path::new(arg)) {
            Ok(sc) => sc,
            Err(e) => fail_engine(e),
        }
    } else {
        match registry::find(arg) {
            Some(sc) => sc,
            None => fail(format_args!(
                "no bundled scenario named `{arg}` (try `reproduce list`, or pass a .json path)"
            )),
        }
    }
}

fn cmd_list(filter: Option<&str>) {
    for sc in registry::all() {
        if let Some(f) = filter {
            if !sc.name.contains(f) {
                continue;
            }
        }
        println!("{:<18} {}", sc.name, sc.title);
    }
}

/// `reproduce metrics` — the metric registry: every name a scenario's
/// `metrics` list, an `expect` clause, a Detail output, or `--metrics`
/// can use.
fn cmd_metrics() {
    let reg = bps_core::metrics::registry();
    let row = |m: &dyn bps_core::metrics::MetricFold| {
        println!(
            "  {:<7} {:<9} {:<8} {}",
            m.name(),
            match m.expected_direction() {
                bps_core::metrics::Direction::Negative => "negative",
                bps_core::metrics::Direction::Positive => "positive",
            },
            if m.unit().is_empty() { "-" } else { m.unit() },
            m.describe()
        );
    };
    println!("paper metrics (Table 1 expected correlation directions):");
    for m in reg.paper() {
        row(*m);
    }
    println!("extended metrics:");
    for m in reg.extended() {
        row(*m);
    }
}

/// Parse and validate a `--metrics` argument ("BPS,p99,MaxQD"); exits
/// with the registry listing on an unknown name, mirroring the
/// unknown-target diagnostic.
fn parse_metrics_flag(arg: &str) -> Vec<String> {
    let names: Vec<String> = arg
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if names.is_empty() {
        fail(format_args!(
            "--metrics wants a comma-separated list of metric names, got `{arg}`"
        ));
    }
    for n in &names {
        if bps_core::metrics::registry().find(n).is_none() {
            eprintln!("unknown metric: {n}");
            eprintln!("valid metrics: {}", bps_core::metrics::registry().listing());
            eprintln!("see `reproduce metrics` for descriptions");
            std::process::exit(2);
        }
    }
    names
}

/// `reproduce cache stats|verify|clear` — inspect or manage the
/// persistent case store (the directory `BPS_CACHE_DIR` selects, or the
/// build's default). `verify` exits 1 when any entry is unservable.
fn cmd_cache(op: &str) -> ! {
    let s = store::CaseStore::at(store::env_dir());
    match op {
        "stats" => {
            let st = s.stats();
            println!("cache directory: {}", s.dir().display());
            println!("build fingerprint: {}", store::code_fingerprint());
            println!(
                "entries: {} ({} fresh, {} stale, {} corrupt), {} bytes",
                st.entries, st.fresh, st.stale, st.corrupt, st.bytes
            );
            std::process::exit(0);
        }
        "verify" => {
            let (checked, problems) = s.verify();
            for p in &problems {
                println!("{}: {}", p.file, p.reason);
            }
            println!(
                "verified {checked} entries: {}",
                if problems.is_empty() {
                    "all servable".to_string()
                } else {
                    format!("{} unservable", problems.len())
                }
            );
            std::process::exit(if problems.is_empty() { 0 } else { 1 });
        }
        "clear" => match s.clear() {
            Ok(n) => {
                println!("cleared {n} entries from {}", s.dir().display());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: cannot clear {}: {e}", s.dir().display());
                std::process::exit(FailureKind::Io.exit_code());
            }
        },
        _ => usage(),
    }
}

fn cmd_check(paths: &[String]) {
    for p in paths {
        let sc = match engine::load_path(Path::new(p)) {
            Ok(sc) => sc,
            Err(e) => fail_engine(e),
        };
        let scales = [
            ("tiny", Scale::tiny()),
            ("quick", Scale::quick()),
            ("paper", Scale::paper()),
        ];
        let mut quick_cases = 0;
        for (name, scale) in &scales {
            match engine::expand(&sc, scale) {
                Ok(cases) => {
                    if *name == "quick" {
                        quick_cases = cases.len();
                    }
                }
                Err(e) => {
                    eprintln!("error: {p}: at --{name}: {e}");
                    std::process::exit(match e.kind() {
                        engine::EngineErrorKind::InvalidSpec => {
                            FailureKind::InvalidSpec.exit_code()
                        }
                        engine::EngineErrorKind::Io => FailureKind::Io.exit_code(),
                    });
                }
            }
        }
        println!("ok: {} ({} cases at quick scale)", sc.name, quick_cases);
    }
}

/// `reproduce topology <name|path.json>...` — expand each scenario at
/// the selected scale and pretty-print the component graph(s) its cases
/// run: one block per distinct effective topology, with the case labels
/// that share it. Scenarios without an explicit `topology` field show
/// the prebuilt graph derived from their `storage`.
fn cmd_topology(refs: &[String], scale: &Scale) {
    for r in refs {
        let sc = resolve_scenario(r);
        let cases = match engine::expand(&sc, scale) {
            Ok(c) => c,
            Err(e) => fail_engine(e),
        };
        println!(
            "{}: {} ({} case{})",
            sc.name,
            sc.title,
            cases.len(),
            if cases.len() == 1 { "" } else { "s" }
        );
        // Group cases by distinct effective topology, first-seen order.
        let mut groups: Vec<(bps_topology::TopologySpec, Vec<usize>)> = Vec::new();
        for (i, c) in cases.iter().enumerate() {
            let topo = c.effective_topology();
            match groups.iter_mut().find(|(t, _)| *t == topo) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((topo, vec![i])),
            }
        }
        for (topo, idxs) in &groups {
            let labels: Vec<&str> = idxs.iter().map(|&i| cases[i].label.as_str()).collect();
            println!("cases: {}", labels.join(", "));
            let mut summaries: Vec<String> =
                idxs.iter().map(|&i| cases[i].workload_summary()).collect();
            summaries.dedup();
            let workload = match summaries.as_slice() {
                [one] => Some(one.as_str()),
                _ => None,
            };
            println!("{}", topo.render(workload));
            println!();
        }
    }
}

fn cmd_run(refs: &[String], scale: &Scale, csv_dir: Option<&PathBuf>) -> bool {
    let mut bad = false;
    for r in refs {
        let sc = resolve_scenario(r);
        let out = match engine::run(&sc, scale) {
            Ok(out) => out,
            Err(e) => fail_engine(e),
        };
        if let Some(dir) = csv_dir {
            let csv = match &out {
                engine::ScenarioOutput::Cc(fig) => export::cc_figure_csv(fig),
                engine::ScenarioOutput::Detail(s) => export::detail_series_csv(s),
            };
            match export::write_csv(dir, &sc.name, &csv) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => fail(format_args!(
                    "cannot write {}.csv under {}: {e}",
                    sc.name,
                    dir.display()
                )),
            }
        }
        print!("{out}");
        let violations = engine::violations(&out, &sc.expect, sc.verdict);
        if !violations.is_empty() {
            eprintln!("{}: expectation violations:", sc.name);
            for v in &violations {
                eprintln!("  {v}");
            }
            bad = true;
        }
        println!();
    }
    bad
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    // `resume <journal> [extra flags]`: the journal header stores the
    // original arguments (minus its own `--journal` pair); extra flags
    // append after them, so a later flag wins via the last-wins parse.
    let mut resumed: Option<Arc<Journal>> = None;
    if args[0] == "resume" {
        if args.len() < 2 {
            usage();
        }
        let path = PathBuf::from(&args[1]);
        let (j, stored) = match Journal::open_resume(&path) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: cannot resume from {}: {e}", path.display());
                std::process::exit(FailureKind::Io.exit_code());
            }
        };
        eprintln!(
            "resuming from {}: {} completed unit(s)",
            path.display(),
            j.replayed_units()
        );
        let j = Arc::new(j);
        activate_journal(j.clone());
        resumed = Some(j);
        let mut full = stored;
        full.extend(args.drain(2..));
        args = full;
        if args.is_empty() {
            usage();
        }
    }

    let mut scale = Scale::quick();
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut no_cache = false;
    // The arguments a fresh journal stores in its header: everything
    // except the `--journal <path>` pair (resume installs its own).
    let mut header_args: Vec<String> = Vec::new();
    let mut expect_csv_dir = false;
    let mut expect_threads = false;
    let mut expect_metrics = false;
    let mut expect_journal = false;
    let mut expect_deadline = false;
    let mut expect_max_failures = false;
    for a in &args {
        if expect_csv_dir {
            csv_dir = Some(PathBuf::from(a));
            header_args.push(a.clone());
            expect_csv_dir = false;
            continue;
        }
        if expect_metrics {
            engine::set_metric_override(Some(parse_metrics_flag(a)));
            header_args.push(a.clone());
            expect_metrics = false;
            continue;
        }
        if expect_threads {
            match a.parse::<usize>() {
                Ok(n) if n > 0 => bps_experiments::sweep::set_thread_override(Some(n)),
                _ => fail(format_args!(
                    "--threads wants a positive integer, got `{a}`"
                )),
            }
            header_args.push(a.clone());
            expect_threads = false;
            continue;
        }
        if expect_journal {
            journal_path = Some(PathBuf::from(a));
            expect_journal = false;
            continue;
        }
        if expect_deadline {
            match a.parse::<u64>() {
                Ok(n) if n > 0 => supervise::set_deadline_override(Some(n)),
                _ => fail(format_args!(
                    "--deadline-ms wants a positive integer, got `{a}`"
                )),
            }
            header_args.push(a.clone());
            expect_deadline = false;
            continue;
        }
        if expect_max_failures {
            match a.parse::<usize>() {
                Ok(n) => supervise::set_max_failures(Some(n)),
                _ => fail(format_args!(
                    "--max-failures wants a non-negative integer, got `{a}`"
                )),
            }
            header_args.push(a.clone());
            expect_max_failures = false;
            continue;
        }
        match a.as_str() {
            "--paper" => scale = Scale::paper(),
            "--quick" => scale = Scale::quick(),
            "--tiny" => scale = Scale::tiny(),
            "--csv" => expect_csv_dir = true,
            "--threads" => expect_threads = true,
            "--metrics" => expect_metrics = true,
            "--journal" => {
                expect_journal = true;
                continue;
            }
            "--deadline-ms" => expect_deadline = true,
            "--max-failures" => expect_max_failures = true,
            "--no-cache" => no_cache = true,
            other if other.starts_with("--") => usage(),
            other => targets.push(other.to_string()),
        }
        header_args.push(a.clone());
    }
    if expect_csv_dir
        || expect_threads
        || expect_metrics
        || expect_journal
        || expect_deadline
        || expect_max_failures
        || targets.is_empty()
    {
        usage();
    }
    if let Some(path) = &journal_path {
        if resumed.is_some() {
            fail(format_args!(
                "resume already journals to the original file; drop --journal {}",
                path.display()
            ));
        }
        let j = match Journal::create(path, &header_args) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: cannot create journal {}: {e}", path.display());
                std::process::exit(FailureKind::Io.exit_code());
            }
        };
        activate_journal(Arc::new(j));
    }

    // Make the persistent case store live for anything that runs cases;
    // `--no-cache` or BPS_CACHE=0 leaves the engine memo-only.
    if !no_cache {
        if let Some(s) = store::from_env() {
            store::set_active(Some(Arc::new(s)));
        }
    }

    match targets[0].as_str() {
        "cache" => {
            let op = match targets.as_slice() {
                [_, op] => op.as_str(),
                _ => usage(),
            };
            cmd_cache(op);
        }
        "list" => {
            if targets.len() > 2 {
                usage();
            }
            cmd_list(targets.get(1).map(|s| s.as_str()));
            return;
        }
        "metrics" => {
            if targets.len() > 1 {
                usage();
            }
            cmd_metrics();
            return;
        }
        "run" => {
            if targets.len() < 2 {
                usage();
            }
            let bad = cmd_run(&targets[1..], &scale, csv_dir.as_ref());
            finish(bad);
        }
        "check" => {
            if targets.len() < 2 {
                usage();
            }
            cmd_check(&targets[1..]);
            return;
        }
        "topology" => {
            if targets.len() < 2 {
                usage();
            }
            cmd_topology(&targets[1..], &scale);
            return;
        }
        _ => {}
    }

    let expanded: Vec<&str> = if targets.iter().any(|t| t == "all") {
        TARGETS.to_vec()
    } else {
        targets.iter().map(|s| s.as_str()).collect()
    };

    let export_cc = |name: &str, fig: &bps_experiments::figures::common::CcFigure| {
        if let Some(dir) = &csv_dir {
            match export::write_csv(dir, name, &export::cc_figure_csv(fig)) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => fail(format_args!(
                    "cannot write {name}.csv under {}: {e}",
                    dir.display()
                )),
            }
        }
    };
    let export_detail = |name: &str, s: &bps_experiments::figures::common::DetailSeries| {
        if let Some(dir) = &csv_dir {
            match export::write_csv(dir, name, &export::detail_series_csv(s)) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => fail(format_args!(
                    "cannot write {name}.csv under {}: {e}",
                    dir.display()
                )),
            }
        }
    };

    for target in expanded {
        match target {
            "table1" => print!("{}", tables::table1()),
            "table2" => print!("{}", tables::table2()),
            "fig1" => print!("{}", fig01::report()),
            "fig2" => print!("{}", fig02::report()),
            "fig3" => print!("{}", fig03::report()),
            "fig4" => {
                let fig = fig04::run(&scale);
                export_cc("fig04", &fig);
                print!("{fig}");
            }
            "fig5" => {
                let fig = fig05::run(&scale);
                export_cc("fig05", &fig);
                print!("{fig}");
            }
            "fig6" => {
                let fig = fig06::run(&scale);
                export_cc("fig06", &fig);
                print!("{fig}");
            }
            "fig7" => {
                let s = fig07::run(&scale);
                export_detail("fig07", &s);
                print!("{s}");
            }
            "fig8" => {
                let s = fig08::run(&scale);
                export_detail("fig08", &s);
                print!("{s}");
            }
            "fig9" => {
                let fig = fig09::run(&scale);
                export_cc("fig09", &fig);
                print!("{fig}");
            }
            "fig10" => {
                let s = fig10::run(&scale);
                export_detail("fig10", &s);
                print!("{s}");
            }
            "fig11" => {
                let fig = fig11::run(&scale);
                export_cc("fig11", &fig);
                print!("{fig}");
            }
            "fig12" => {
                let fig = fig12::run(&scale);
                export_cc("fig12", &fig);
                print!("{fig}");
            }
            "summary" => print!("{}", summary::report(&scale)),
            "extensions" => print!("{}", extensions::report(&scale)),
            "overhead" => print!("{}", overhead::report()),
            "writes" => print!("{}", writes::report(&scale)),
            "faults" => {
                let figures = faults::run(&scale);
                for (kind, fig) in &figures {
                    export_cc(&format!("faults-{}", kind.name()), fig);
                }
                print!("{}", faults::render(&figures));
            }
            other => {
                eprintln!("unknown target: {other}");
                eprintln!("valid targets: all, {}", TARGETS.join(", "));
                eprintln!(
                    "bundled scenarios run with `reproduce run <name>`; see `reproduce list`"
                );
                std::process::exit(2);
            }
        }
        println!();
    }
    finish(false);
}
