//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce all                    # everything, quick scale (default)
//! reproduce fig12                  # one experiment
//! reproduce fig5 --tiny            # test scale
//! reproduce all --paper            # the paper's full data volumes (slow)
//! reproduce list                   # the bundled scenarios, by name
//! reproduce metrics                # the metric registry, by name
//! reproduce run fig9 --tiny        # any bundled scenario through the engine
//! reproduce run my_sweep.json      # a user-authored scenario, no recompiling
//! reproduce check my_sweep.json    # parse + expand without running
//! reproduce topology fig9          # the component graph a scenario's cases run
//! reproduce fig4 --metrics BPS,p99 # score a custom metric selection
//! reproduce fig4 --journal r.jsonl # checkpoint every finished unit
//! reproduce resume r.jsonl         # pick the run back up, skipping done units
//! reproduce cache stats            # the persistent case store, by the numbers
//! reproduce all --no-cache         # bypass the persistent store for one run
//! reproduce fig4 --telemetry t.jsonl  # record phase spans, unit timings, counters
//! reproduce profile fig4 --tiny    # per-phase/per-case time and counter tables
//! reproduce docs                   # regenerate docs/reference from the registries
//! ```

use bps_experiments::export;
use bps_experiments::figures::{
    extensions, faults, fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10,
    fig11, fig12, overhead, summary, tables, writes,
};
use bps_experiments::journal::{self, Journal};
use bps_experiments::scale::Scale;
use bps_experiments::scenario::{engine, registry, spec::Scenario, store};
use bps_experiments::supervise::{self, FailureKind};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The fixed report targets, in `all` order.
const TARGETS: [&str; 19] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "summary",
    "extensions",
    "overhead",
    "writes",
    "faults",
];

/// Every subcommand, for the unknown-name diagnostic: a first operand
/// that is neither a subcommand nor a target lists these and exits 2
/// before anything runs.
const SUBCOMMANDS: [&str; 9] = [
    "list", "metrics", "run", "check", "topology", "resume", "cache", "profile", "docs",
];

fn usage() -> ! {
    eprintln!(
        "usage: reproduce <target>... [--quick|--tiny|--paper] [--csv <dir>] [--threads <n>] [--metrics a,b,c]\n\
         \x20                       [--journal <path>] [--deadline-ms <n>] [--max-failures <n>] [--no-cache]\n\
         \x20      reproduce list [filter]\n\
         \x20      reproduce metrics\n\
         \x20      reproduce run <name|path.json>... [same flags as above]\n\
         \x20      reproduce check <path.json>...\n\
         \x20      reproduce topology <name|path.json>... [--quick|--tiny|--paper]\n\
         \x20      reproduce resume <journal> [extra flags]\n\
         \x20      reproduce cache stats|verify|clear\n\
         \x20      reproduce profile <target>... [--quick|--tiny|--paper]\n\
         \x20      reproduce docs [--out <dir>]\n\
         targets: all, {}\n\
         threads: --threads <n> outranks the BPS_THREADS environment variable;\n\
         \x20        with neither set, the machine's available parallelism is used\n\
         metrics: --metrics selects registry metrics (see `reproduce metrics`) for any\n\
         \x20        scenario that does not pin its own `metrics` list\n\
         robustness: --journal records every finished (case, seed) unit to an append-only\n\
         \x20        JSONL file; `reproduce resume <journal>` replays it and runs only the\n\
         \x20        rest, byte-identical to an uninterrupted run. --deadline-ms bounds\n\
         \x20        each unit's wall-clock time (a scenario's own `deadline_ms` outranks\n\
         \x20        it); --max-failures N aborts once more than N units fail\n\
         cache: scored cases persist in a content-addressed store (default\n\
         \x20        target/bps-cache, BPS_CACHE_DIR overrides) and replay bit-exactly in\n\
         \x20        later runs; BPS_CACHE=0 or --no-cache bypasses it. `reproduce cache`\n\
         \x20        prints stats, names unservable entries, or clears the store\n\
         telemetry: --telemetry <path> records phase spans, per-unit timings, and a\n\
         \x20        final counter snapshot to a JSONL file; `reproduce profile` prints\n\
         \x20        the same data as tables; `reproduce docs` regenerates the reference\n\
         \x20        pages (docs/reference by default) from the live registries\n\
         exit codes: 0 ok; 1 expectation violations or unknown name; 2 usage;\n\
         \x20        3 invalid scenario; 4 I/O error; 5 unit panicked; 6 unit timed out;\n\
         \x20        7 failure budget exceeded; 130 interrupted (journal flushed)",
        TARGETS.join(", ")
    );
    std::process::exit(2);
}

/// Exit with a one-line diagnostic (used for failures that have no more
/// specific class: an unknown bundled name, a CSV directory that cannot
/// be written).
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Exit with the engine error's class code: 3 for an invalid scenario,
/// 4 for an I/O failure.
fn fail_engine(e: engine::EngineError) -> ! {
    let code = match e.kind() {
        engine::EngineErrorKind::InvalidSpec => FailureKind::InvalidSpec.exit_code(),
        engine::EngineErrorKind::Io => FailureKind::Io.exit_code(),
    };
    eprintln!("error: {e}");
    std::process::exit(code);
}

/// Where `--telemetry` writes its JSONL stream, plus the argv recorded in
/// the meta line; armed during flag parsing, drained by [`finish`].
static TELEMETRY_OUT: OnceLock<(PathBuf, Vec<String>)> = OnceLock::new();

/// Microseconds of a span offset, saturating (spans are process-lifetime
/// scale, far below u64 µs).
fn us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// Render the collector's events and counter snapshot as the JSONL
/// stream: one `meta` line, `phase`/`unit` lines in completion order, one
/// final `counters` line.
fn telemetry_jsonl(argv: &[String]) -> String {
    use serde::Value;
    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let mut lines = Vec::new();
    lines.push(obj(vec![
        ("kind", Value::Str("meta".to_string())),
        ("version", Value::UInt(1)),
        (
            "args",
            Value::Array(argv.iter().map(|a| Value::Str(a.clone())).collect()),
        ),
    ]));
    for e in bps_telemetry::drain_events() {
        lines.push(match e {
            bps_telemetry::Event::Phase { name, start, end } => obj(vec![
                ("kind", Value::Str("phase".to_string())),
                ("name", Value::Str(name)),
                ("start_us", Value::UInt(us(start))),
                ("dur_us", Value::UInt(us(end.saturating_sub(start)))),
            ]),
            bps_telemetry::Event::Unit {
                case,
                seed,
                start,
                end,
            } => obj(vec![
                ("kind", Value::Str("unit".to_string())),
                ("case", Value::Str(case)),
                ("seed", Value::UInt(seed)),
                ("start_us", Value::UInt(us(start))),
                ("dur_us", Value::UInt(us(end.saturating_sub(start)))),
            ]),
        });
    }
    let counters = bps_telemetry::snapshot()
        .into_iter()
        .map(|(c, v)| (c.name().to_string(), Value::UInt(v)))
        .collect();
    lines.push(obj(vec![
        ("kind", Value::Str("counters".to_string())),
        ("counters", Value::Object(counters)),
    ]));
    let mut out = String::new();
    for line in lines {
        out.push_str(&serde_json::to_string(&line).expect("telemetry line encodes"));
        out.push('\n');
    }
    out
}

/// Write the armed `--telemetry` stream, if any. Called on every exit
/// path that follows a run (expectation violations and unit failures
/// still leave a useful stream behind).
fn flush_telemetry() {
    if let Some((path, argv)) = TELEMETRY_OUT.get() {
        if let Err(e) = std::fs::write(path, telemetry_jsonl(argv)) {
            eprintln!("warning: cannot write telemetry to {}: {e}", path.display());
        }
    }
}

/// Drain the run's failure ledger, print a per-kind summary, and exit
/// with the worst kind's code — or with 1 on expectation violations, or
/// 0 on a clean run.
fn finish(violations: bool) -> ! {
    flush_telemetry();
    let failures = supervise::take_recorded_failures();
    if !failures.is_empty() {
        let mut counts: Vec<(FailureKind, usize)> = Vec::new();
        for f in &failures {
            match counts.iter_mut().find(|(k, _)| *k == f.kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.kind, 1)),
            }
        }
        let summary: Vec<String> = counts
            .iter()
            .map(|(k, n)| format!("{n} {}", k.name()))
            .collect();
        eprintln!("{} unit(s) failed: {}", failures.len(), summary.join(", "));
        let worst = FailureKind::worst(failures.iter().map(|f| f.kind))
            .expect("non-empty failure ledger has a worst kind");
        std::process::exit(worst.exit_code());
    }
    std::process::exit(if violations { 1 } else { 0 });
}

/// Install a SIGINT/SIGTERM handler that asks the supervisor to stop at
/// the next unit boundary (the journal is flushed per unit, so completed
/// work is already safe). Only installed for journaled runs — an
/// unjournaled run keeps the default kill-me-now behavior.
#[cfg(unix)]
fn install_interrupt_handler() {
    extern "C" fn handle(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        supervise::request_interrupt();
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, handle);
        signal(SIGTERM, handle);
    }
}

#[cfg(not(unix))]
fn install_interrupt_handler() {}

/// Make a journal live: publish it to the engine, arm the interrupt
/// handler, and remember the resume command for diagnostics.
fn activate_journal(j: Arc<Journal>) {
    supervise::set_resume_hint(Some(format!("reproduce resume {}", j.path().display())));
    journal::set_active(Some(j));
    install_interrupt_handler();
}

/// Resolve a `run` operand: a bundled scenario name, or a path to a JSON
/// file (anything with a `.json` suffix or that exists on disk).
fn resolve_scenario(arg: &str) -> Scenario {
    if arg.ends_with(".json") || Path::new(arg).exists() {
        match engine::load_path(Path::new(arg)) {
            Ok(sc) => sc,
            Err(e) => fail_engine(e),
        }
    } else {
        match registry::find(arg) {
            Some(sc) => sc,
            None => fail(format_args!(
                "no bundled scenario named `{arg}` (try `reproduce list`, or pass a .json path)"
            )),
        }
    }
}

fn cmd_list(filter: Option<&str>) {
    for sc in registry::all() {
        if let Some(f) = filter {
            if !sc.name.contains(f) {
                continue;
            }
        }
        println!("{:<18} {}", sc.name, sc.title);
    }
}

/// `reproduce metrics` — the metric registry: every name a scenario's
/// `metrics` list, an `expect` clause, a Detail output, or `--metrics`
/// can use.
fn cmd_metrics() {
    let reg = bps_core::metrics::registry();
    let row = |m: &dyn bps_core::metrics::MetricFold| {
        println!(
            "  {:<7} {:<9} {:<8} {}",
            m.name(),
            match m.expected_direction() {
                bps_core::metrics::Direction::Negative => "negative",
                bps_core::metrics::Direction::Positive => "positive",
            },
            if m.unit().is_empty() { "-" } else { m.unit() },
            m.describe()
        );
    };
    println!("paper metrics (Table 1 expected correlation directions):");
    for m in reg.paper() {
        row(*m);
    }
    println!("extended metrics:");
    for m in reg.extended() {
        row(*m);
    }
}

/// Parse and validate a `--metrics` argument ("BPS,p99,MaxQD"); exits
/// with the registry listing on an unknown name, mirroring the
/// unknown-target diagnostic.
fn parse_metrics_flag(arg: &str) -> Vec<String> {
    let names: Vec<String> = arg
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if names.is_empty() {
        fail(format_args!(
            "--metrics wants a comma-separated list of metric names, got `{arg}`"
        ));
    }
    for n in &names {
        if bps_core::metrics::registry().find(n).is_none() {
            eprintln!("unknown metric: {n}");
            eprintln!("valid metrics: {}", bps_core::metrics::registry().listing());
            eprintln!("see `reproduce metrics` for descriptions");
            std::process::exit(2);
        }
    }
    names
}

/// `reproduce cache stats|verify|clear` — inspect or manage the
/// persistent case store (the directory `BPS_CACHE_DIR` selects, or the
/// build's default). `verify` exits 1 when any entry is unservable.
fn cmd_cache(op: &str) -> ! {
    let s = store::CaseStore::at(store::env_dir());
    match op {
        "stats" => {
            let st = s.stats();
            println!("cache directory: {}", s.dir().display());
            println!("build fingerprint: {}", store::code_fingerprint());
            println!(
                "entries: {} ({} fresh, {} stale, {} corrupt), {} bytes",
                st.entries, st.fresh, st.stale, st.corrupt, st.bytes
            );
            if !st.stale_origins.is_empty() {
                // Name the foreign builds (fingerprint prefixes) so a
                // rebuild's orphans are self-explaining.
                let origins: Vec<String> = st
                    .stale_origins
                    .iter()
                    .map(|(origin, n)| {
                        let shown = match origin.strip_prefix("build ") {
                            Some(fp) if fp.len() > 12 => format!("build {}..", &fp[..12]),
                            _ => origin.clone(),
                        };
                        format!("{shown} ({n})")
                    })
                    .collect();
                println!("stale entries by origin: {}", origins.join(", "));
            }
            std::process::exit(0);
        }
        "verify" => {
            let (checked, problems) = s.verify();
            for p in &problems {
                println!("{}: {}", p.file, p.reason);
            }
            println!(
                "verified {checked} entries: {}",
                if problems.is_empty() {
                    "all servable".to_string()
                } else {
                    format!("{} unservable", problems.len())
                }
            );
            std::process::exit(if problems.is_empty() { 0 } else { 1 });
        }
        "clear" => match s.clear() {
            Ok(n) => {
                println!("cleared {n} entries from {}", s.dir().display());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: cannot clear {}: {e}", s.dir().display());
                std::process::exit(FailureKind::Io.exit_code());
            }
        },
        _ => usage(),
    }
}

/// `reproduce docs [--out dir]` — render the reference pages from the
/// live registries into `dir` (default `docs/reference`). Deterministic:
/// two runs write byte-identical trees.
fn cmd_docs(out_dir: &Path) -> ! {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        std::process::exit(FailureKind::Io.exit_code());
    }
    let pages = bps_experiments::reference::pages();
    for (name, text) in &pages {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(FailureKind::Io.exit_code());
        }
    }
    eprintln!("wrote {} pages under {}", pages.len(), out_dir.display());
    std::process::exit(0);
}

/// Format a span-offset duration as milliseconds with one decimal.
fn ms(total_us: u64) -> String {
    format!("{:.1} ms", total_us as f64 / 1000.0)
}

/// `reproduce profile <target>...` — after the targets ran with the
/// collector installed, aggregate and print the sorted per-phase and
/// per-case breakdowns plus every counter that moved.
fn print_profile(targets: &[&str], scale_label: &str) {
    let wall = us(bps_telemetry::now()).max(1);
    let events = bps_telemetry::drain_events();
    // Aggregate spans: name -> (calls, total µs), first-seen order, then
    // sorted by total descending (ties by name for determinism).
    let mut phases: Vec<(String, u64, u64)> = Vec::new();
    let mut cases: Vec<(String, u64, u64)> = Vec::new();
    for e in &events {
        let (table, key, dur) = match e {
            bps_telemetry::Event::Phase { name, start, end } => {
                (&mut phases, name.clone(), us(end.saturating_sub(*start)))
            }
            bps_telemetry::Event::Unit {
                case, start, end, ..
            } => (&mut cases, case.clone(), us(end.saturating_sub(*start))),
        };
        match table.iter_mut().find(|(k, ..)| *k == key) {
            Some((_, calls, total)) => {
                *calls += 1;
                *total += dur;
            }
            None => table.push((key, 1, dur)),
        }
    }
    let by_total =
        |a: &(String, u64, u64), b: &(String, u64, u64)| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0));
    phases.sort_by(by_total);
    cases.sort_by(by_total);

    println!("== profile: {} ({scale_label} scale) ==", targets.join(" "));
    println!();
    println!("phases (wall time, nested spans overlap):");
    println!(
        "  {:<28} {:>6} {:>12} {:>7}",
        "phase", "calls", "total", "share"
    );
    for (name, calls, total) in &phases {
        println!(
            "  {:<28} {:>6} {:>12} {:>6.1}%",
            name,
            calls,
            ms(*total),
            *total as f64 * 100.0 / wall as f64
        );
    }
    if phases.is_empty() {
        println!("  (no phase spans recorded)");
    }
    println!();
    println!("cases (sweep unit time; cached cases never run):");
    println!(
        "  {:<28} {:>6} {:>12} {:>12}",
        "case", "units", "total", "mean"
    );
    const CASE_ROWS: usize = 20;
    for (name, units, total) in cases.iter().take(CASE_ROWS) {
        println!(
            "  {:<28} {:>6} {:>12} {:>12}",
            name,
            units,
            ms(*total),
            ms(total / units.max(&1))
        );
    }
    if cases.len() > CASE_ROWS {
        println!("  ... and {} more case(s)", cases.len() - CASE_ROWS);
    }
    if cases.is_empty() {
        println!("  (no sweep units ran — every case was served from cache)");
    }
    println!();
    println!("counters (delta over this run):");
    let mut any = false;
    for (c, v) in bps_telemetry::snapshot() {
        if v > 0 {
            println!("  {:<28} {:>12}", c.name(), v);
            any = true;
        }
    }
    if !any {
        println!("  (all zero)");
    }
}

fn cmd_check(paths: &[String]) {
    for p in paths {
        let sc = match engine::load_path(Path::new(p)) {
            Ok(sc) => sc,
            Err(e) => fail_engine(e),
        };
        let scales = [
            ("tiny", Scale::tiny()),
            ("quick", Scale::quick()),
            ("paper", Scale::paper()),
        ];
        let mut quick_cases = 0;
        for (name, scale) in &scales {
            match engine::expand(&sc, scale) {
                Ok(cases) => {
                    if *name == "quick" {
                        quick_cases = cases.len();
                    }
                }
                Err(e) => {
                    eprintln!("error: {p}: at --{name}: {e}");
                    std::process::exit(match e.kind() {
                        engine::EngineErrorKind::InvalidSpec => {
                            FailureKind::InvalidSpec.exit_code()
                        }
                        engine::EngineErrorKind::Io => FailureKind::Io.exit_code(),
                    });
                }
            }
        }
        println!("ok: {} ({} cases at quick scale)", sc.name, quick_cases);
    }
}

/// `reproduce topology <name|path.json>...` — expand each scenario at
/// the selected scale and pretty-print the component graph(s) its cases
/// run: one block per distinct effective topology, with the case labels
/// that share it. Scenarios without an explicit `topology` field show
/// the prebuilt graph derived from their `storage`.
fn cmd_topology(refs: &[String], scale: &Scale) {
    for r in refs {
        let sc = resolve_scenario(r);
        let cases = match engine::expand(&sc, scale) {
            Ok(c) => c,
            Err(e) => fail_engine(e),
        };
        println!(
            "{}: {} ({} case{})",
            sc.name,
            sc.title,
            cases.len(),
            if cases.len() == 1 { "" } else { "s" }
        );
        // Group cases by distinct effective topology, first-seen order.
        let mut groups: Vec<(bps_topology::TopologySpec, Vec<usize>)> = Vec::new();
        for (i, c) in cases.iter().enumerate() {
            let topo = c.effective_topology();
            match groups.iter_mut().find(|(t, _)| *t == topo) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((topo, vec![i])),
            }
        }
        for (topo, idxs) in &groups {
            let labels: Vec<&str> = idxs.iter().map(|&i| cases[i].label.as_str()).collect();
            println!("cases: {}", labels.join(", "));
            let mut summaries: Vec<String> =
                idxs.iter().map(|&i| cases[i].workload_summary()).collect();
            summaries.dedup();
            let workload = match summaries.as_slice() {
                [one] => Some(one.as_str()),
                _ => None,
            };
            println!("{}", topo.render(workload));
            println!();
        }
    }
}

fn cmd_run(refs: &[String], scale: &Scale, csv_dir: Option<&PathBuf>) -> bool {
    let mut bad = false;
    for r in refs {
        let sc = resolve_scenario(r);
        let out = match engine::run(&sc, scale) {
            Ok(out) => out,
            Err(e) => fail_engine(e),
        };
        if let Some(dir) = csv_dir {
            let csv = match &out {
                engine::ScenarioOutput::Cc(fig) => export::cc_figure_csv(fig),
                engine::ScenarioOutput::Detail(s) => export::detail_series_csv(s),
            };
            match export::write_csv(dir, &sc.name, &csv) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => fail(format_args!(
                    "cannot write {}.csv under {}: {e}",
                    sc.name,
                    dir.display()
                )),
            }
        }
        print!("{out}");
        let violations = engine::violations(&out, &sc.expect, sc.verdict);
        if !violations.is_empty() {
            eprintln!("{}: expectation violations:", sc.name);
            for v in &violations {
                eprintln!("  {v}");
            }
            bad = true;
        }
        println!();
    }
    bad
}

/// Expand fixed-target operands (`all` means every target) and reject
/// unknown names *before* anything runs: a typo'd subcommand or target
/// prints the full command surface and exits 2 instead of falling
/// through to a partial run.
fn expand_targets(targets: &[String]) -> Vec<&'static str> {
    if targets.iter().any(|t| t == "all") {
        return TARGETS.to_vec();
    }
    let mut out = Vec::with_capacity(targets.len());
    for t in targets {
        match TARGETS.iter().find(|k| **k == t.as_str()) {
            Some(k) => out.push(*k),
            None => {
                eprintln!("unknown target: {t}");
                eprintln!("subcommands: {}", SUBCOMMANDS.join(", "));
                eprintln!("valid targets: all, {}", TARGETS.join(", "));
                eprintln!(
                    "bundled scenarios run with `reproduce run <name>`; see `reproduce list`"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// Run the fixed report targets in order. With `quiet`, reports are
/// computed (and exported, if `--csv` asks) but not printed — `profile`
/// wants the work without the figure text.
fn run_fixed_targets(expanded: &[&str], scale: &Scale, csv_dir: Option<&PathBuf>, quiet: bool) {
    let emit = |text: String| {
        if !quiet {
            print!("{text}");
            println!();
        }
    };
    let export_cc = |name: &str, fig: &bps_experiments::figures::common::CcFigure| {
        if let Some(dir) = csv_dir {
            match export::write_csv(dir, name, &export::cc_figure_csv(fig)) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => fail(format_args!(
                    "cannot write {name}.csv under {}: {e}",
                    dir.display()
                )),
            }
        }
    };
    let export_detail = |name: &str, s: &bps_experiments::figures::common::DetailSeries| {
        if let Some(dir) = csv_dir {
            match export::write_csv(dir, name, &export::detail_series_csv(s)) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => fail(format_args!(
                    "cannot write {name}.csv under {}: {e}",
                    dir.display()
                )),
            }
        }
    };

    for &target in expanded {
        let _span = if bps_telemetry::enabled() {
            bps_telemetry::phase(&format!("target:{target}"))
        } else {
            bps_telemetry::PhaseGuard::disabled()
        };
        match target {
            "table1" => emit(tables::table1().to_string()),
            "table2" => emit(tables::table2().to_string()),
            "fig1" => emit(fig01::report().to_string()),
            "fig2" => emit(fig02::report().to_string()),
            "fig3" => emit(fig03::report().to_string()),
            "fig4" => {
                let fig = fig04::run(scale);
                export_cc("fig04", &fig);
                emit(fig.to_string());
            }
            "fig5" => {
                let fig = fig05::run(scale);
                export_cc("fig05", &fig);
                emit(fig.to_string());
            }
            "fig6" => {
                let fig = fig06::run(scale);
                export_cc("fig06", &fig);
                emit(fig.to_string());
            }
            "fig7" => {
                let s = fig07::run(scale);
                export_detail("fig07", &s);
                emit(s.to_string());
            }
            "fig8" => {
                let s = fig08::run(scale);
                export_detail("fig08", &s);
                emit(s.to_string());
            }
            "fig9" => {
                let fig = fig09::run(scale);
                export_cc("fig09", &fig);
                emit(fig.to_string());
            }
            "fig10" => {
                let s = fig10::run(scale);
                export_detail("fig10", &s);
                emit(s.to_string());
            }
            "fig11" => {
                let fig = fig11::run(scale);
                export_cc("fig11", &fig);
                emit(fig.to_string());
            }
            "fig12" => {
                let fig = fig12::run(scale);
                export_cc("fig12", &fig);
                emit(fig.to_string());
            }
            "summary" => emit(summary::report(scale)),
            "extensions" => emit(extensions::report(scale)),
            "overhead" => emit(overhead::report()),
            "writes" => emit(writes::report(scale)),
            "faults" => {
                let figures = faults::run(scale);
                for (kind, fig) in &figures {
                    export_cc(&format!("faults-{}", kind.name()), fig);
                }
                emit(faults::render(&figures));
            }
            other => unreachable!("expand_targets admitted `{other}`"),
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    // `resume <journal> [extra flags]`: the journal header stores the
    // original arguments (minus its own `--journal` pair); extra flags
    // append after them, so a later flag wins via the last-wins parse.
    let mut resumed: Option<Arc<Journal>> = None;
    if args[0] == "resume" {
        if args.len() < 2 {
            usage();
        }
        let path = PathBuf::from(&args[1]);
        let (j, stored) = match Journal::open_resume(&path) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: cannot resume from {}: {e}", path.display());
                std::process::exit(FailureKind::Io.exit_code());
            }
        };
        eprintln!(
            "resuming from {}: {} completed unit(s)",
            path.display(),
            j.replayed_units()
        );
        let j = Arc::new(j);
        activate_journal(j.clone());
        resumed = Some(j);
        let mut full = stored;
        full.extend(args.drain(2..));
        args = full;
        if args.is_empty() {
            usage();
        }
    }

    let mut scale = Scale::quick();
    let mut scale_label = "quick";
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    // The arguments a fresh journal stores in its header: everything
    // except the `--journal <path>` pair (resume installs its own).
    let mut header_args: Vec<String> = Vec::new();
    let mut expect_csv_dir = false;
    let mut expect_threads = false;
    let mut expect_metrics = false;
    let mut expect_journal = false;
    let mut expect_deadline = false;
    let mut expect_max_failures = false;
    let mut expect_telemetry = false;
    let mut expect_out = false;
    for a in &args {
        if expect_telemetry {
            telemetry_path = Some(PathBuf::from(a));
            header_args.push(a.clone());
            expect_telemetry = false;
            continue;
        }
        if expect_out {
            out_dir = Some(PathBuf::from(a));
            header_args.push(a.clone());
            expect_out = false;
            continue;
        }
        if expect_csv_dir {
            csv_dir = Some(PathBuf::from(a));
            header_args.push(a.clone());
            expect_csv_dir = false;
            continue;
        }
        if expect_metrics {
            engine::set_metric_override(Some(parse_metrics_flag(a)));
            header_args.push(a.clone());
            expect_metrics = false;
            continue;
        }
        if expect_threads {
            match a.parse::<usize>() {
                Ok(n) if n > 0 => bps_experiments::sweep::set_thread_override(Some(n)),
                _ => fail(format_args!(
                    "--threads wants a positive integer, got `{a}`"
                )),
            }
            header_args.push(a.clone());
            expect_threads = false;
            continue;
        }
        if expect_journal {
            journal_path = Some(PathBuf::from(a));
            expect_journal = false;
            continue;
        }
        if expect_deadline {
            match a.parse::<u64>() {
                Ok(n) if n > 0 => supervise::set_deadline_override(Some(n)),
                _ => fail(format_args!(
                    "--deadline-ms wants a positive integer, got `{a}`"
                )),
            }
            header_args.push(a.clone());
            expect_deadline = false;
            continue;
        }
        if expect_max_failures {
            match a.parse::<usize>() {
                Ok(n) => supervise::set_max_failures(Some(n)),
                _ => fail(format_args!(
                    "--max-failures wants a non-negative integer, got `{a}`"
                )),
            }
            header_args.push(a.clone());
            expect_max_failures = false;
            continue;
        }
        match a.as_str() {
            "--paper" => {
                scale = Scale::paper();
                scale_label = "paper";
            }
            "--quick" => {
                scale = Scale::quick();
                scale_label = "quick";
            }
            "--tiny" => {
                scale = Scale::tiny();
                scale_label = "tiny";
            }
            "--csv" => expect_csv_dir = true,
            "--threads" => expect_threads = true,
            "--metrics" => expect_metrics = true,
            "--journal" => {
                expect_journal = true;
                continue;
            }
            "--deadline-ms" => expect_deadline = true,
            "--max-failures" => expect_max_failures = true,
            "--telemetry" => expect_telemetry = true,
            "--out" => expect_out = true,
            "--no-cache" => no_cache = true,
            other if other.starts_with("--") => usage(),
            other => targets.push(other.to_string()),
        }
        header_args.push(a.clone());
    }
    if expect_csv_dir
        || expect_threads
        || expect_metrics
        || expect_journal
        || expect_deadline
        || expect_max_failures
        || expect_telemetry
        || expect_out
        || targets.is_empty()
    {
        usage();
    }

    // Arm the collector before anything that could emit telemetry runs.
    // `profile` implies collection even without `--telemetry <path>`.
    let profile_mode = targets[0] == "profile";
    if telemetry_path.is_some() || profile_mode {
        bps_telemetry::install(Arc::new(bps_telemetry::AtomicCollector::new()));
    }
    if let Some(path) = &telemetry_path {
        let _ = TELEMETRY_OUT.set((path.clone(), args.clone()));
    }
    if let Some(path) = &journal_path {
        if resumed.is_some() {
            fail(format_args!(
                "resume already journals to the original file; drop --journal {}",
                path.display()
            ));
        }
        let j = match Journal::create(path, &header_args) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: cannot create journal {}: {e}", path.display());
                std::process::exit(FailureKind::Io.exit_code());
            }
        };
        activate_journal(Arc::new(j));
    }

    // Make the persistent case store live for anything that runs cases;
    // `--no-cache` or BPS_CACHE=0 leaves the engine memo-only.
    if !no_cache {
        if let Some(s) = store::from_env() {
            store::set_active(Some(Arc::new(s)));
        }
    }

    match targets[0].as_str() {
        "cache" => {
            let op = match targets.as_slice() {
                [_, op] => op.as_str(),
                _ => usage(),
            };
            cmd_cache(op);
        }
        "list" => {
            if targets.len() > 2 {
                usage();
            }
            cmd_list(targets.get(1).map(|s| s.as_str()));
            return;
        }
        "metrics" => {
            if targets.len() > 1 {
                usage();
            }
            cmd_metrics();
            return;
        }
        "run" => {
            if targets.len() < 2 {
                usage();
            }
            let bad = cmd_run(&targets[1..], &scale, csv_dir.as_ref());
            finish(bad);
        }
        "check" => {
            if targets.len() < 2 {
                usage();
            }
            cmd_check(&targets[1..]);
            return;
        }
        "topology" => {
            if targets.len() < 2 {
                usage();
            }
            cmd_topology(&targets[1..], &scale);
            return;
        }
        "docs" => {
            if targets.len() > 1 {
                usage();
            }
            let dir = out_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from("docs/reference"));
            cmd_docs(&dir);
        }
        "profile" => {
            if targets.len() < 2 {
                usage();
            }
            let expanded = expand_targets(&targets[1..]);
            run_fixed_targets(&expanded, &scale, csv_dir.as_ref(), true);
            print_profile(&expanded, scale_label);
            finish(false);
        }
        _ => {}
    }

    let expanded = expand_targets(&targets);
    run_fixed_targets(&expanded, &scale, csv_dir.as_ref(), false);
    finish(false);
}
