//! # bps-trace — the BPS measurement toolkit
//!
//! The paper's conclusion promises to "make BPS an easy-to-use toolkit and
//! release it to the public". This crate is that toolkit:
//!
//! * [`recorder`] — per-process recording of I/O accesses (paper §III.B
//!   Step 1), both single-threaded and shared/concurrent variants.
//! * [`collector`] — gathering all processes' records into the global
//!   collection (Step 2), including a channel-based streaming collector for
//!   multi-threaded tracing.
//! * [`format`] — trace persistence: human-readable JSON and the compact
//!   32-byte-per-record binary format whose size the paper's overhead
//!   analysis assumes ("as the size of each record is 32 bytes, even for
//!   65535 I/O operations, all the records need about 3 megabytes").
//! * [`realfile`] — [`realfile::TracedFile`], a wrapper around
//!   [`std::fs::File`] that records every read/write with wall-clock
//!   timestamps, so the BPS of *real* I/O can be measured, not only
//!   simulated I/O.
//! * [`validate`] — sanity checks on loaded traces (coarse clocks,
//!   impossible overlaps, missing layers) before metrics are trusted.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collector;
pub mod format;
pub mod realfile;
pub mod recorder;
pub mod validate;

pub use collector::Collector;
pub use recorder::{ProcessRecorder, SharedRecorder};
