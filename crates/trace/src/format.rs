//! Trace persistence.
//!
//! Two formats:
//!
//! * **JSON** — the full [`IoRecord`] fidelity, human-readable, for
//!   interchange and debugging.
//! * **Binary** — the paper's 32-byte record: "the size of each record is
//!   32 bytes, even for 65535 I/O operations, all the records need about 3
//!   megabytes". Like the paper's record (process ID, I/O size in blocks,
//!   start, end), the compact form drops the byte offset; it keeps the
//!   file id and an op/layer flag byte in the remaining space.

use bps_core::block::{blocks_for_bytes, BLOCK_SIZE};
use bps_core::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
use bps_core::time::Nanos;
use bps_core::trace::Trace;
use std::io;

/// Size of one binary record on disk.
pub const BINARY_RECORD_SIZE: usize = 32;

/// Magic header of the binary trace format.
const MAGIC: &[u8; 8] = b"BPSTRC01";

/// Serialize a trace to pretty JSON.
pub fn to_json(trace: &Trace) -> serde_json::Result<String> {
    serde_json::to_string_pretty(trace)
}

/// Deserialize a trace from JSON.
pub fn from_json(json: &str) -> serde_json::Result<Trace> {
    serde_json::from_str(json)
}

fn op_layer_flags(op: IoOp, layer: Layer) -> u8 {
    let op_bit = match op {
        IoOp::Read => 0u8,
        IoOp::Write => 1,
    };
    let layer_bits = match layer {
        Layer::Application => 0u8,
        Layer::FileSystem => 1,
        Layer::Device => 2,
        Layer::Retry => 3,
        // Network was added after the 2-bit encodings above shipped; it
        // takes the first 3-bit code so old traces decode unchanged.
        Layer::Network => 4,
    };
    op_bit | (layer_bits << 1)
}

fn decode_flags(flags: u8) -> (IoOp, Layer) {
    let op = if flags & 1 == 0 {
        IoOp::Read
    } else {
        IoOp::Write
    };
    let layer = match (flags >> 1) & 0b111 {
        0 => Layer::Application,
        1 => Layer::FileSystem,
        2 => Layer::Device,
        4 => Layer::Network,
        _ => Layer::Retry,
    };
    (op, layer)
}

/// Encode a trace into the compact 32-byte-per-record binary format.
///
/// Layout per record (little-endian):
/// `pid: u32 | size_blocks: u32 | start: u64 | end: u64 | file: u32 |
/// flags: u8 | reserved: [u8; 3]`.
pub fn to_binary(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + trace.len() * BINARY_RECORD_SIZE);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for r in trace.records() {
        buf.extend_from_slice(&r.pid.0.to_le_bytes());
        buf.extend_from_slice(&(blocks_for_bytes(r.bytes) as u32).to_le_bytes());
        buf.extend_from_slice(&r.start.0.to_le_bytes());
        buf.extend_from_slice(&r.end.0.to_le_bytes());
        buf.extend_from_slice(&r.file.0.to_le_bytes());
        buf.push(op_layer_flags(r.op, r.layer));
        buf.extend_from_slice(&[0u8; 3]);
    }
    buf
}

/// Little-endian reader over a byte slice for [`from_binary`].
struct Cursor<'a> {
    data: &'a [u8],
}

impl Cursor<'_> {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let (head, rest) = self.data.split_at(N);
        self.data = rest;
        head.try_into().expect("split_at returned N bytes")
    }

    fn u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }

    fn u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }

    fn u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn skip(&mut self, n: usize) {
        self.data = &self.data[n..];
    }
}

/// Decode the binary format. Byte sizes come back block-rounded (the
/// format stores block counts, as the paper's record does); offsets come
/// back as zero.
pub fn from_binary(data: &[u8]) -> io::Result<Trace> {
    if data.len() < 16 || &data[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a BPS binary trace",
        ));
    }
    let mut data = Cursor { data };
    data.skip(8);
    let count = data.u64_le() as usize;
    if data.data.len() != count * BINARY_RECORD_SIZE {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "expected {} record bytes, found {}",
                count * BINARY_RECORD_SIZE,
                data.data.len()
            ),
        ));
    }
    let mut trace = Trace::new();
    for _ in 0..count {
        let pid = ProcessId(data.u32_le());
        let blocks = u64::from(data.u32_le());
        let start = Nanos(data.u64_le());
        let end = Nanos(data.u64_le());
        let file = FileId(data.u32_le());
        let flags = data.u8();
        data.skip(3);
        let (op, layer) = decode_flags(flags);
        if end < start {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record ends before it starts",
            ));
        }
        trace.push(IoRecord::new(
            pid,
            op,
            file,
            0,
            blocks * BLOCK_SIZE,
            start,
            end,
            layer,
        ));
    }
    Ok(trace)
}

/// Write a trace to a file in the binary format.
pub fn write_binary_file(trace: &Trace, path: &std::path::Path) -> io::Result<()> {
    std::fs::write(path, to_binary(trace))
}

/// Read a binary-format trace file.
pub fn read_binary_file(path: &std::path::Path) -> io::Result<Trace> {
    from_binary(&std::fs::read(path)?)
}

/// Load a trace by file extension: `.json` (lossless) or `.bpstrc`
/// (compact binary).
pub fn load_path(path: &std::path::Path) -> io::Result<Trace> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("json") => {
            let text = std::fs::read_to_string(path)?;
            from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        }
        Some("bpstrc") => read_binary_file(path),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown trace extension {other:?} (expected .json or .bpstrc)"),
        )),
    }
}

/// Store a trace by file extension: `.json` or `.bpstrc`.
pub fn store_path(trace: &Trace, path: &std::path::Path) -> io::Result<()> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("json") => {
            let text = to_json(trace).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            std::fs::write(path, text)
        }
        Some("bpstrc") => write_binary_file(trace, path),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown trace extension {other:?} (expected .json or .bpstrc)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_core::metrics::{Bps, Metric};

    fn sample() -> Trace {
        let mut t = Trace::new();
        for pid in 0..3u32 {
            for i in 0..10u64 {
                t.push(IoRecord::new(
                    ProcessId(pid),
                    if i % 2 == 0 { IoOp::Read } else { IoOp::Write },
                    FileId(pid),
                    i * 4096,
                    4096,
                    Nanos::from_micros(i * 100),
                    Nanos::from_micros(i * 100 + 40),
                    if i % 3 == 0 {
                        Layer::FileSystem
                    } else {
                        Layer::Application
                    },
                ));
            }
        }
        t
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let t = sample();
        let json = to_json(&t).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(t.records(), back.records());
    }

    #[test]
    fn binary_record_is_exactly_32_bytes() {
        let t = sample();
        let bin = to_binary(&t);
        assert_eq!(bin.len(), 16 + t.len() * BINARY_RECORD_SIZE);
        // The paper's overhead claim: 65535 ops ≈ 2 MiB + header.
        assert_eq!(65535 * BINARY_RECORD_SIZE, 2_097_120);
    }

    #[test]
    fn binary_roundtrip_preserves_bps() {
        // Offsets are dropped but everything BPS needs survives.
        let t = sample();
        let back = from_binary(&to_binary(&t)).unwrap();
        assert_eq!(back.len(), t.len());
        let a = Bps.compute(&t).unwrap();
        let b = Bps.compute(&back).unwrap();
        assert!((a - b).abs() < 1e-9);
        // Pids, ops, layers, times survive exactly.
        for (x, y) in t.records().iter().zip(back.records()) {
            assert_eq!(x.pid, y.pid);
            assert_eq!(x.op, y.op);
            assert_eq!(x.layer, y.layer);
            assert_eq!(x.start, y.start);
            assert_eq!(x.end, y.end);
            assert_eq!(x.file, y.file);
            assert_eq!(y.bytes % BLOCK_SIZE, 0);
        }
    }

    #[test]
    fn retry_layer_roundtrips() {
        let mut t = Trace::new();
        for (i, layer) in [
            Layer::Application,
            Layer::FileSystem,
            Layer::Device,
            Layer::Retry,
            Layer::Network,
        ]
        .into_iter()
        .enumerate()
        {
            t.push(IoRecord::new(
                ProcessId(0),
                IoOp::Read,
                FileId(0),
                0,
                4096,
                Nanos::from_micros(i as u64 * 10),
                Nanos::from_micros(i as u64 * 10 + 5),
                layer,
            ));
        }
        let back = from_binary(&to_binary(&t)).unwrap();
        for (x, y) in t.records().iter().zip(back.records()) {
            assert_eq!(x.layer, y.layer);
        }
        assert_eq!(back.records()[3].layer, Layer::Retry);
        assert_eq!(back.records()[4].layer, Layer::Network);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_binary(b"nonsense").is_err());
        assert!(from_binary(b"BPSTRC01").is_err());
        // Valid header, truncated body.
        let t = sample();
        let bin = to_binary(&t);
        assert!(from_binary(&bin[..bin.len() - 1]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bps_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bpstrc");
        let t = sample();
        write_binary_file(&t, &path).unwrap();
        let back = read_binary_file(&path).unwrap();
        assert_eq!(back.len(), t.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_store_by_extension() {
        let dir = std::env::temp_dir().join("bps_format_ext_test");
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample();
        for name in ["a.json", "a.bpstrc"] {
            let p = dir.join(name);
            store_path(&t, &p).unwrap();
            let back = load_path(&p).unwrap();
            assert_eq!(back.len(), t.len(), "{name}");
            std::fs::remove_file(&p).ok();
        }
        assert!(store_path(&t, &dir.join("a.xyz")).is_err());
        assert!(load_path(&dir.join("a.xyz")).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let back = from_binary(&to_binary(&t)).unwrap();
        assert!(back.is_empty());
    }
}
