//! Trace sanity checking.
//!
//! Traces arrive from instrumented applications, files on disk, and
//! simulations; before metrics are trusted, the toolkit can vet the data.
//! Every check returns findings rather than failing hard — a trace with
//! oddities is still analyzable, but the analyst should know.

use bps_core::record::Layer;
use bps_core::time::Dur;
use bps_core::trace::Trace;
use serde::Serialize;
use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Severity {
    /// Suspicious but analyzable.
    Warning,
    /// The metrics computed from this trace are likely meaningless.
    Error,
}

/// One validation finding.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Machine-readable check name.
    pub check: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Warning => "warn",
            Severity::Error => "ERROR",
        };
        write!(f, "[{tag}] {}: {}", self.check, self.detail)
    }
}

/// Validate a trace; returns all findings (empty = clean).
pub fn validate(trace: &Trace) -> Vec<Finding> {
    let mut findings = Vec::new();

    if trace.is_empty() {
        findings.push(Finding {
            severity: Severity::Error,
            check: "empty",
            detail: "trace contains no records".into(),
        });
        return findings;
    }

    // Zero-duration records: legal, but many of them usually means the
    // clock resolution was too coarse for the I/O being measured.
    let zero = trace
        .records()
        .iter()
        .filter(|r| r.duration().is_zero())
        .count();
    if zero > 0 {
        let frac = zero as f64 / trace.len() as f64;
        findings.push(Finding {
            severity: if frac > 0.5 {
                Severity::Error
            } else {
                Severity::Warning
            },
            check: "zero-duration",
            detail: format!(
                "{zero} of {} records have zero duration ({:.0}% — clock too coarse?)",
                trace.len(),
                frac * 100.0
            ),
        });
    }

    // Zero-byte records.
    let empty_io = trace.records().iter().filter(|r| r.bytes == 0).count();
    if empty_io > 0 {
        findings.push(Finding {
            severity: Severity::Warning,
            check: "zero-bytes",
            detail: format!("{empty_io} records moved zero bytes"),
        });
    }

    // Per-process overlap at the application layer: a single-threaded
    // process cannot have two POSIX calls in flight; overlap suggests
    // thread-shared pids or broken timestamps.
    for pid in trace.pids(Layer::Application) {
        let mut intervals: Vec<_> = trace
            .process(Layer::Application, pid)
            .map(|r| r.interval())
            .collect();
        intervals.sort_unstable_by_key(|iv| (iv.start, iv.end));
        let overlapping = intervals
            .windows(2)
            .filter(|w| w[1].start < w[0].end)
            .count();
        if overlapping > 0 {
            findings.push(Finding {
                severity: Severity::Warning,
                check: "intra-process-overlap",
                detail: format!(
                    "process {} has {overlapping} overlapping request pairs \
                     (multithreaded process, or clock skew between threads)",
                    pid.0
                ),
            });
        }
    }

    // FS layer moving less than the app required is physically impossible
    // for reads without caching; flag when both layers are instrumented.
    let app = trace.bytes(Layer::Application);
    let fs = trace.bytes(Layer::FileSystem);
    if fs > 0 && fs < app / 2 {
        findings.push(Finding {
            severity: Severity::Warning,
            check: "fs-underflow",
            detail: format!(
                "file system moved {fs} bytes but the application required {app} \
                 (cache hits, or missing FS-layer records)"
            ),
        });
    }

    // Giant idle fraction: execution dominated by non-I/O time is fine,
    // but worth surfacing since BPS excludes it by design.
    let exec = trace.execution_time();
    let io = trace.overlapped_io_time(Layer::Application);
    if !exec.is_zero() && io < exec / 100 && exec > Dur::from_millis(1) {
        findings.push(Finding {
            severity: Severity::Warning,
            check: "mostly-idle",
            detail: format!(
                "only {io} of {exec} execution was I/O-active (<1%) — BPS will \
                 reflect the I/O bursts, not the run"
            ),
        });
    }

    findings
}

/// True when no [`Severity::Error`] findings exist.
pub fn is_usable(findings: &[Finding]) -> bool {
    findings.iter().all(|f| f.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_core::record::{FileId, IoOp, IoRecord, ProcessId};
    use bps_core::time::Nanos;

    fn rec(pid: u32, bytes: u64, s_us: u64, e_us: u64) -> IoRecord {
        IoRecord::app_read(
            ProcessId(pid),
            FileId(0),
            0,
            bytes,
            Nanos::from_micros(s_us),
            Nanos::from_micros(e_us),
        )
    }

    #[test]
    fn clean_trace_has_no_findings() {
        let t = Trace::from_records(vec![rec(0, 4096, 0, 100), rec(0, 4096, 100, 200)]);
        let f = validate(&t);
        assert!(f.is_empty(), "{f:?}");
        assert!(is_usable(&f));
    }

    #[test]
    fn empty_trace_is_an_error() {
        let f = validate(&Trace::new());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Error);
        assert!(!is_usable(&f));
    }

    #[test]
    fn zero_duration_flagged_and_escalates() {
        // One of three: warning.
        let t = Trace::from_records(vec![
            rec(0, 512, 0, 0),
            rec(0, 512, 10, 20),
            rec(0, 512, 30, 40),
        ]);
        let f = validate(&t);
        assert!(f
            .iter()
            .any(|x| x.check == "zero-duration" && x.severity == Severity::Warning));
        // All of them: error.
        let t = Trace::from_records(vec![rec(0, 512, 5, 5), rec(0, 512, 9, 9)]);
        let f = validate(&t);
        assert!(f
            .iter()
            .any(|x| x.check == "zero-duration" && x.severity == Severity::Error));
        assert!(!is_usable(&f));
    }

    #[test]
    fn intra_process_overlap_flagged() {
        let t = Trace::from_records(vec![rec(0, 512, 0, 100), rec(0, 512, 50, 150)]);
        let f = validate(&t);
        assert!(f.iter().any(|x| x.check == "intra-process-overlap"));
        // Different processes overlapping is fine.
        let t = Trace::from_records(vec![rec(0, 512, 0, 100), rec(1, 512, 50, 150)]);
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn fs_underflow_flagged() {
        use bps_core::record::Layer;
        let mut t = Trace::from_records(vec![rec(0, 1 << 20, 0, 100)]);
        t.push(IoRecord::new(
            ProcessId(0),
            IoOp::Read,
            FileId(0),
            0,
            1024, // far less than the app required
            Nanos::ZERO,
            Nanos::from_micros(100),
            Layer::FileSystem,
        ));
        let f = validate(&t);
        assert!(f.iter().any(|x| x.check == "fs-underflow"), "{f:?}");
    }

    #[test]
    fn mostly_idle_flagged() {
        let mut t = Trace::from_records(vec![rec(0, 512, 0, 10)]);
        t.set_execution_time(Dur::from_secs(10));
        let f = validate(&t);
        assert!(f.iter().any(|x| x.check == "mostly-idle"));
        assert!(is_usable(&f));
    }

    #[test]
    fn findings_render() {
        let f = validate(&Trace::new());
        assert!(format!("{}", f[0]).contains("ERROR"));
    }
}
