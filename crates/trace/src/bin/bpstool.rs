//! bpstool — inspect and convert BPS trace files.
//!
//! ```text
//! bpstool summary <trace>            # all registry metrics for a trace file
//! bpstool summary <trace> --metrics BPS,p99   # a selection of them
//! bpstool processes <trace>          # per-process breakdown
//! bpstool timeline <trace> [ms]      # windowed BPS series (default 100 ms)
//! bpstool validate <trace>           # sanity-check a trace
//! bpstool compare <a> <b>            # metrics side by side (--metrics too)
//! bpstool convert <in> <out>         # json <-> binary by extension
//! ```
//!
//! Trace files are `.json` (full fidelity) or `.bpstrc` (the paper's
//! 32-byte-per-record binary format).

use bps_core::metrics::MetricSelection;
use bps_core::report::MetricsSummary;
use bps_core::time::Dur;
use bps_core::trace::Trace;
use bps_core::window::windowed_series;
use std::path::Path;
use std::process::ExitCode;

fn load(path: &Path) -> Result<Trace, String> {
    bps_trace::format::load_path(path).map_err(|e| e.to_string())
}

/// Split off a trailing `--metrics <names>` pair, resolving the names
/// against the metric registry; `None` means no flag (caller picks its
/// default selection).
fn take_metrics_flag(args: &mut Vec<String>) -> Result<Option<MetricSelection>, String> {
    let Some(pos) = args.iter().position(|a| a == "--metrics") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("--metrics wants a comma-separated list of metric names".into());
    }
    let names: Vec<String> = args[pos + 1]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    args.drain(pos..pos + 2);
    let sel = MetricSelection::parse(&names).map_err(|e| e.to_string())?;
    Ok(Some(sel))
}

fn store(trace: &Trace, path: &Path) -> Result<(), String> {
    bps_trace::format::store_path(trace, path).map_err(|e| e.to_string())
}

/// A crude unicode sparkline for the timeline view.
fn sparkline(values: &[Option<f64>]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values
        .iter()
        .flatten()
        .cloned()
        .fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|v| match v {
            None => ' ',
            Some(x) => BARS[((x / max * 7.0).round() as usize).min(7)],
        })
        .collect()
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = take_metrics_flag(&mut args)?;
    match args.first().map(String::as_str) {
        Some("summary") => {
            let path = args.get(1).ok_or("summary needs a trace path")?;
            let trace = load(Path::new(path))?;
            println!("{} records", trace.len());
            // Default: every registered metric.
            let summary = match &metrics {
                Some(sel) => MetricsSummary::from_trace_selected(&trace, sel),
                None => MetricsSummary::from_trace(&trace),
            };
            print!("{summary}");
            Ok(())
        }
        Some("processes") => {
            let path = args.get(1).ok_or("processes needs a trace path")?;
            let trace = load(Path::new(path))?;
            println!(
                "{:<6} {:>8} {:>14} {:>12} {:>12} {:>12}",
                "pid", "ops", "bytes", "ARPT(ms)", "io(s)", "BPS"
            );
            for row in bps_core::report::per_process(&trace) {
                println!(
                    "{:<6} {:>8} {:>14} {:>12.3} {:>12.4} {:>12}",
                    row.pid.0,
                    row.ops,
                    row.bytes,
                    row.arpt_s * 1e3,
                    row.io_time_s,
                    row.bps
                        .map(|b| format!("{b:.0}"))
                        .unwrap_or_else(|| "n/a".into()),
                );
            }
            Ok(())
        }
        Some("timeline") => {
            let path = args.get(1).ok_or("timeline needs a trace path")?;
            let window_ms: u64 = match args.get(2) {
                Some(w) => w.parse().map_err(|_| "window must be milliseconds")?,
                None => 100,
            };
            let trace = load(Path::new(path))?;
            let series = windowed_series(&trace, Dur::from_millis(window_ms));
            println!("windowed BPS, {window_ms} ms windows:");
            println!(
                "{}",
                sparkline(&series.iter().map(|p| p.bps).collect::<Vec<_>>())
            );
            for p in &series {
                match p.bps {
                    Some(b) => println!(
                        "  {}  {:>12.0} blocks/s  ({} reqs, {} busy)",
                        p.start, b, p.active_requests, p.io_time
                    ),
                    None => println!("  {}  idle", p.start),
                }
            }
            Ok(())
        }
        Some("compare") => {
            let a_path = args.get(1).ok_or("compare needs <a> <b>")?;
            let b_path = args.get(2).ok_or("compare needs <a> <b>")?;
            let sel = metrics.unwrap_or_default();
            let a = MetricsSummary::from_trace_selected(&load(Path::new(a_path))?, &sel);
            let b = MetricsSummary::from_trace_selected(&load(Path::new(b_path))?, &sel);
            let fmt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "n/a".into());
            println!("{:<12} {:>16} {:>16} {:>10}", "metric", "A", "B", "B/A");
            let mut rows: Vec<(String, Option<f64>, Option<f64>)> = sel
                .metrics()
                .iter()
                .map(|m| {
                    (
                        m.col_label().to_string(),
                        a.value(m.name()),
                        b.value(m.name()),
                    )
                })
                .collect();
            rows.push(("exec(s)".into(), Some(a.exec_time_s), Some(b.exec_time_s)));
            for (name, av, bv) in rows {
                let ratio = match (av, bv) {
                    (Some(x), Some(y)) if x != 0.0 => format!("{:.2}x", y / x),
                    _ => "-".into(),
                };
                println!("{name:<12} {:>16} {:>16} {ratio:>10}", fmt(av), fmt(bv));
            }
            Ok(())
        }
        Some("validate") => {
            let path = args.get(1).ok_or("validate needs a trace path")?;
            let trace = load(Path::new(path))?;
            let findings = bps_trace::validate::validate(&trace);
            if findings.is_empty() {
                println!("clean: {} records, no findings", trace.len());
            } else {
                for f in &findings {
                    println!("{f}");
                }
            }
            if bps_trace::validate::is_usable(&findings) {
                Ok(())
            } else {
                Err("trace has errors".into())
            }
        }
        Some("convert") => {
            let from = args.get(1).ok_or("convert needs <in> <out>")?;
            let to = args.get(2).ok_or("convert needs <in> <out>")?;
            let trace = load(Path::new(from))?;
            store(&trace, Path::new(to))?;
            println!("wrote {} records to {to}", trace.len());
            Ok(())
        }
        _ => Err(
            "usage: bpstool <summary|processes|timeline|validate|compare|convert> ...".to_string(),
        ),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bpstool: {e}");
            ExitCode::from(2)
        }
    }
}
