//! Tracing real file I/O.
//!
//! [`TracedFile`] wraps [`std::fs::File`] (or any `Read + Write + Seek`)
//! and records every operation with wall-clock timestamps against a shared
//! session epoch — the "I/O function libraries for ordinary POSIX interface
//! applications" hook of the paper's methodology, without modifying the
//! application beyond the open call.

use crate::recorder::SharedRecorder;
use bps_core::record::{FileId, IoOp, ProcessId};
use bps_core::time::Nanos;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::Arc;
use std::time::Instant;

/// The wall-clock epoch shared by all recorders of one tracing session.
#[derive(Debug, Clone)]
pub struct SessionClock {
    epoch: Arc<Instant>,
}

impl SessionClock {
    /// Start a session clock now.
    pub fn start() -> Self {
        SessionClock {
            epoch: Arc::new(Instant::now()),
        }
    }

    /// Nanoseconds since the session epoch.
    pub fn now(&self) -> Nanos {
        Nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// A file whose reads and writes are recorded.
#[derive(Debug)]
pub struct TracedFile<F> {
    inner: F,
    file_id: FileId,
    position: u64,
    recorder: SharedRecorder,
    clock: SessionClock,
}

impl TracedFile<std::fs::File> {
    /// Open a file read-only and trace it.
    pub fn open(
        path: &std::path::Path,
        file_id: FileId,
        recorder: SharedRecorder,
        clock: SessionClock,
    ) -> std::io::Result<Self> {
        Ok(TracedFile::wrap(
            std::fs::File::open(path)?,
            file_id,
            recorder,
            clock,
        ))
    }

    /// Create/truncate a file for writing and trace it.
    pub fn create(
        path: &std::path::Path,
        file_id: FileId,
        recorder: SharedRecorder,
        clock: SessionClock,
    ) -> std::io::Result<Self> {
        Ok(TracedFile::wrap(
            std::fs::File::create(path)?,
            file_id,
            recorder,
            clock,
        ))
    }
}

impl<F> TracedFile<F> {
    /// Wrap any reader/writer.
    pub fn wrap(inner: F, file_id: FileId, recorder: SharedRecorder, clock: SessionClock) -> Self {
        TracedFile {
            inner,
            file_id,
            position: 0,
            recorder,
            clock,
        }
    }

    /// The wrapped value.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl<F: Read> Read for TracedFile<F> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let start = self.clock.now();
        let n = self.inner.read(buf)?;
        let end = self.clock.now();
        // The paper counts unsuccessful and short accesses too; n is what
        // actually moved at this layer, buf.len() was the ask — we record
        // the ask, matching "data required by applications".
        self.recorder.record(
            IoOp::Read,
            self.file_id,
            self.position,
            buf.len() as u64,
            start,
            end,
        );
        self.position += n as u64;
        Ok(n)
    }
}

impl<F: Write> Write for TracedFile<F> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let start = self.clock.now();
        let n = self.inner.write(buf)?;
        let end = self.clock.now();
        self.recorder.record(
            IoOp::Write,
            self.file_id,
            self.position,
            buf.len() as u64,
            start,
            end,
        );
        self.position += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl<F: Seek> Seek for TracedFile<F> {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        let p = self.inner.seek(pos)?;
        self.position = p;
        Ok(p)
    }
}

/// Convenience: trace a closure's worth of I/O on one process and return
/// the collected trace.
pub fn trace_session<R>(
    f: impl FnOnce(&SessionClock, &SharedRecorder) -> R,
) -> (R, bps_core::trace::Trace) {
    let clock = SessionClock::start();
    let recorder = SharedRecorder::new(ProcessId(0));
    let out = f(&clock, &recorder);
    let exec = clock.now();
    let mut trace = bps_core::trace::Trace::from_records(recorder.drain());
    trace.sort_by_start();
    trace.set_execution_time(exec.since(Nanos::ZERO));
    (out, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_core::metrics::{Bps, Metric};
    use bps_core::record::Layer;
    use std::io::Cursor;

    #[test]
    fn cursor_reads_are_recorded() {
        let ((), trace) = trace_session(|clock, rec| {
            let data = vec![7u8; 64 << 10];
            let mut f = TracedFile::wrap(Cursor::new(data), FileId(0), rec.clone(), clock.clone());
            let mut buf = vec![0u8; 4096];
            for _ in 0..16 {
                f.read_exact(&mut buf).unwrap();
            }
        });
        assert_eq!(trace.op_count(Layer::Application), 16);
        assert_eq!(trace.bytes(Layer::Application), 64 << 10);
        // Real wall-clock I/O on memory is fast but nonzero; BPS computes.
        assert!(Bps.compute(&trace).is_some());
        assert!(trace.execution_time() > bps_core::time::Dur::ZERO);
    }

    #[test]
    fn writes_and_position_tracking() {
        let ((), trace) = trace_session(|clock, rec| {
            let mut f = TracedFile::wrap(
                Cursor::new(Vec::new()),
                FileId(1),
                rec.clone(),
                clock.clone(),
            );
            f.write_all(b"hello").unwrap();
            f.write_all(b"world").unwrap();
            f.flush().unwrap();
        });
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.records()[0].offset, 0);
        assert_eq!(trace.records()[1].offset, 5);
        assert!(trace
            .records()
            .iter()
            .all(|r| r.op == IoOp::Write && r.bytes == 5));
    }

    #[test]
    fn seek_updates_offset() {
        let ((), trace) = trace_session(|clock, rec| {
            let data = vec![1u8; 1024];
            let mut f = TracedFile::wrap(Cursor::new(data), FileId(0), rec.clone(), clock.clone());
            f.seek(SeekFrom::Start(512)).unwrap();
            let mut buf = [0u8; 16];
            f.read_exact(&mut buf).unwrap();
        });
        assert_eq!(trace.records()[0].offset, 512);
    }

    #[test]
    fn real_tempfile_roundtrip() {
        let dir = std::env::temp_dir().join("bps_realfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        let ((), trace) = trace_session(|clock, rec| {
            {
                let mut w =
                    TracedFile::create(&path, FileId(0), rec.clone(), clock.clone()).unwrap();
                w.write_all(&vec![42u8; 8192]).unwrap();
            }
            let mut r = TracedFile::open(&path, FileId(0), rec.clone(), clock.clone()).unwrap();
            let mut buf = vec![0u8; 8192];
            r.read_exact(&mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 42));
        });
        assert!(trace.len() >= 2);
        assert!(trace.bytes(Layer::Application) >= 16384);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timestamps_are_monotone_per_record() {
        let ((), trace) = trace_session(|clock, rec| {
            let mut f = TracedFile::wrap(
                Cursor::new(vec![0u8; 4096]),
                FileId(0),
                rec.clone(),
                clock.clone(),
            );
            let mut buf = [0u8; 512];
            for _ in 0..8 {
                f.read_exact(&mut buf).unwrap();
            }
        });
        for r in trace.records() {
            assert!(r.end >= r.start);
        }
    }
}
