//! Per-process I/O recording (paper §III.B, Step 1).
//!
//! "We use one record to capture the information of each I/O access of a
//! process. ... We get this information in the I/O middleware layer for
//! MPI-IO applications, or I/O function libraries for ordinary POSIX
//! interface applications, to avoid the modification of applications."
//!
//! [`ProcessRecorder`] is the single-threaded building block;
//! [`SharedRecorder`] wraps it for concurrent use from many threads of one
//! process.

use bps_core::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
use bps_core::time::Nanos;
use std::sync::{Arc, Mutex};

/// A begun-but-unfinished access, returned by [`ProcessRecorder::begin`].
#[derive(Debug, Clone, Copy)]
#[must_use = "finish the access with ProcessRecorder::end"]
pub struct PendingIo {
    op: IoOp,
    file: FileId,
    offset: u64,
    bytes: u64,
    start: Nanos,
}

/// Records the I/O accesses of one process.
#[derive(Debug)]
pub struct ProcessRecorder {
    pid: ProcessId,
    layer: Layer,
    records: Vec<IoRecord>,
}

impl ProcessRecorder {
    /// A recorder for `pid`, observing at the application layer.
    pub fn new(pid: ProcessId) -> Self {
        Self::at_layer(pid, Layer::Application)
    }

    /// A recorder observing at an explicit layer.
    pub fn at_layer(pid: ProcessId, layer: Layer) -> Self {
        ProcessRecorder {
            pid,
            layer,
            records: Vec::new(),
        }
    }

    /// Mark the start of an access.
    pub fn begin(&self, op: IoOp, file: FileId, offset: u64, bytes: u64, now: Nanos) -> PendingIo {
        PendingIo {
            op,
            file,
            offset,
            bytes,
            start: now,
        }
    }

    /// Complete an access begun earlier.
    pub fn end(&mut self, pending: PendingIo, now: Nanos) {
        self.records.push(IoRecord::new(
            self.pid,
            pending.op,
            pending.file,
            pending.offset,
            pending.bytes,
            pending.start,
            now,
            self.layer,
        ));
    }

    /// Record a complete access in one call.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        op: IoOp,
        file: FileId,
        offset: u64,
        bytes: u64,
        start: Nanos,
        end: Nanos,
    ) {
        let p = self.begin(op, file, offset, bytes, start);
        self.end(p, end);
    }

    /// The process id being recorded.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drain the records (hand-off to a collector).
    pub fn drain(&mut self) -> Vec<IoRecord> {
        std::mem::take(&mut self.records)
    }

    /// Peek at the records.
    pub fn records(&self) -> &[IoRecord] {
        &self.records
    }
}

/// A thread-safe recorder shareable across the threads of one process.
#[derive(Debug, Clone)]
pub struct SharedRecorder {
    inner: Arc<Mutex<ProcessRecorder>>,
}

impl SharedRecorder {
    /// A shared recorder for `pid` at the application layer.
    pub fn new(pid: ProcessId) -> Self {
        SharedRecorder {
            inner: Arc::new(Mutex::new(ProcessRecorder::new(pid))),
        }
    }

    /// Record one complete access.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        op: IoOp,
        file: FileId,
        offset: u64,
        bytes: u64,
        start: Nanos,
        end: Nanos,
    ) {
        self.inner
            .lock()
            .expect("recorder lock poisoned")
            .record(op, file, offset, bytes, start, end);
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the records.
    pub fn drain(&self) -> Vec<IoRecord> {
        self.inner.lock().expect("recorder lock poisoned").drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_roundtrip() {
        let mut r = ProcessRecorder::new(ProcessId(7));
        let p = r.begin(IoOp::Read, FileId(1), 0, 4096, Nanos::from_micros(10));
        r.end(p, Nanos::from_micros(35));
        assert_eq!(r.len(), 1);
        let rec = r.records()[0];
        assert_eq!(rec.pid, ProcessId(7));
        assert_eq!(rec.bytes, 4096);
        assert_eq!(rec.duration(), bps_core::time::Dur::from_micros(25));
        assert_eq!(rec.layer, Layer::Application);
    }

    #[test]
    fn drain_empties() {
        let mut r = ProcessRecorder::new(ProcessId(0));
        r.record(
            IoOp::Write,
            FileId(0),
            0,
            512,
            Nanos::ZERO,
            Nanos::from_micros(1),
        );
        let v = r.drain();
        assert_eq!(v.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn layer_override() {
        let mut r = ProcessRecorder::at_layer(ProcessId(0), Layer::FileSystem);
        r.record(
            IoOp::Read,
            FileId(0),
            0,
            512,
            Nanos::ZERO,
            Nanos::from_micros(1),
        );
        assert_eq!(r.records()[0].layer, Layer::FileSystem);
    }

    #[test]
    fn shared_recorder_across_threads() {
        let rec = SharedRecorder::new(ProcessId(3));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        rec.record(
                            IoOp::Read,
                            FileId(0),
                            (t * 100 + i) * 512,
                            512,
                            Nanos(i * 1000),
                            Nanos(i * 1000 + 500),
                        );
                    }
                });
            }
        });
        assert_eq!(rec.len(), 400);
        let v = rec.drain();
        assert_eq!(v.len(), 400);
        assert!(rec.is_empty());
    }
}
