//! Gathering per-process records into the global collection (paper §III.B,
//! Step 2).
//!
//! "We collect the I/O access information of all processes to have a
//! comprehensive knowledge of the performance of the overall I/O system."
//!
//! Two styles: batch (drain each recorder at the end of the run) and
//! streaming (worker threads push records through a channel while the run
//! is still going — the paper's note that "this calculation can be
//! overlapped with data accesses").

use bps_core::record::IoRecord;
use bps_core::trace::Trace;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Batch collector: accumulate record batches, produce the final
/// [`Trace`].
#[derive(Debug, Default)]
pub struct Collector {
    records: Vec<IoRecord>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Absorb one process's drained records.
    pub fn add_process(&mut self, records: Vec<IoRecord>) {
        self.records.extend(records);
    }

    /// Number of records gathered so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been gathered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Produce the global trace, sorted by start time (the first half of
    /// the paper's Figure 3 algorithm).
    pub fn into_trace(self) -> Trace {
        let mut t = Trace::from_records(self.records);
        t.sort_by_start();
        t
    }
}

/// A streaming collector: hand [`StreamSender`]s to worker threads, then
/// call [`StreamCollector::finish`] once all senders are dropped.
#[derive(Debug)]
pub struct StreamCollector {
    rx: Receiver<IoRecord>,
    tx: Option<Sender<IoRecord>>,
}

/// The sending side of a [`StreamCollector`].
pub type StreamSender = Sender<IoRecord>;

impl StreamCollector {
    /// Create the channel-backed collector.
    pub fn new() -> Self {
        let (tx, rx) = channel();
        StreamCollector { rx, tx: Some(tx) }
    }

    /// A sender for one worker/process.
    pub fn sender(&self) -> StreamSender {
        self.tx.as_ref().expect("collector not finished").clone()
    }

    /// Close the intake and gather everything sent.
    pub fn finish(mut self) -> Trace {
        // Drop our own sender so the channel drains.
        self.tx = None;
        let mut t = Trace::from_records(self.rx.iter().collect());
        t.sort_by_start();
        t
    }
}

impl Default for StreamCollector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_core::record::{FileId, IoOp, Layer, ProcessId};
    use bps_core::time::Nanos;

    fn rec(pid: u32, start_us: u64) -> IoRecord {
        IoRecord::new(
            ProcessId(pid),
            IoOp::Read,
            FileId(0),
            0,
            512,
            Nanos::from_micros(start_us),
            Nanos::from_micros(start_us + 10),
            Layer::Application,
        )
    }

    #[test]
    fn batch_collection_merges_and_sorts() {
        let mut c = Collector::new();
        c.add_process(vec![rec(0, 100), rec(0, 300)]);
        c.add_process(vec![rec(1, 50), rec(1, 200)]);
        assert_eq!(c.len(), 4);
        let t = c.into_trace();
        let starts: Vec<_> = t.records().iter().map(|r| r.start).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.pids(Layer::Application).len(), 2);
    }

    #[test]
    fn empty_collector_is_empty_trace() {
        let c = Collector::new();
        assert!(c.is_empty());
        assert!(c.into_trace().is_empty());
    }

    #[test]
    fn streaming_collection_from_threads() {
        let collector = StreamCollector::new();
        std::thread::scope(|s| {
            for pid in 0..4u32 {
                let tx = collector.sender();
                s.spawn(move || {
                    for i in 0..50u64 {
                        tx.send(rec(pid, i * 10)).unwrap();
                    }
                });
            }
        });
        let t = collector.finish();
        assert_eq!(t.len(), 200);
        assert_eq!(t.pids(Layer::Application).len(), 4);
        // Sorted by start.
        let starts: Vec<_> = t.records().iter().map(|r| r.start).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }
}
