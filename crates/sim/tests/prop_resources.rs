//! Property tests for the analytic resources and device models.

use bps_core::record::IoOp;
use bps_core::time::{Dur, Nanos};
use bps_sim::device::hdd::{Hdd, HddProfile};
use bps_sim::device::ssd::{Ssd, SsdProfile};
use bps_sim::device::{DeviceModel, DeviceReq, DiskSched, ServiceCtx};
use bps_sim::resource::{FifoResource, MultiChannel};
use bps_sim::rng::{Jitter, SimRng};
use proptest::prelude::*;

/// Nondecreasing arrivals with service times.
fn arrivals() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..10_000, 1u64..5_000), 1..50).prop_map(|mut v| {
        // Make arrivals cumulative (nondecreasing).
        let mut t = 0;
        for (gap, _) in v.iter_mut() {
            t += *gap;
            *gap = t;
        }
        v
    })
}

proptest! {
    /// FIFO: service periods never overlap, never start before arrival,
    /// and total busy time equals the sum of services.
    #[test]
    fn fifo_no_overlap(reqs in arrivals()) {
        let mut r = FifoResource::new();
        let mut prev_end = Nanos::ZERO;
        let mut total = Dur::ZERO;
        for &(arr, svc) in &reqs {
            let g = r.acquire(Nanos(arr * 1000), Dur(svc * 1000));
            prop_assert!(g.start >= Nanos(arr * 1000));
            prop_assert!(g.start >= prev_end);
            prop_assert_eq!(g.end - g.start, Dur(svc * 1000));
            prev_end = g.end;
            total += Dur(svc * 1000);
        }
        prop_assert_eq!(r.stats().busy, total);
        prop_assert_eq!(r.stats().ops, reqs.len() as u64);
    }

    /// A k-channel resource is never slower than a 1-channel one and never
    /// faster than the sum of work divided by k allows.
    #[test]
    fn multichannel_dominates_fifo(reqs in arrivals(), k in 2usize..6) {
        let mut single = MultiChannel::new(1);
        let mut multi = MultiChannel::new(k);
        let mut single_end = Nanos::ZERO;
        let mut multi_end = Nanos::ZERO;
        for &(arr, svc) in &reqs {
            single_end = single_end.max(single.acquire(Nanos(arr * 1000), Dur(svc * 1000)).end);
            multi_end = multi_end.max(multi.acquire(Nanos(arr * 1000), Dur(svc * 1000)).end);
        }
        prop_assert!(multi_end <= single_end);
    }

    /// HDD service time is monotone in request size for sequential access
    /// and always positive.
    #[test]
    fn hdd_monotone_in_size(blocks_a in 1u64..10_000, blocks_b in 1u64..10_000) {
        let (small, large) = (blocks_a.min(blocks_b), blocks_a.max(blocks_b));
        prop_assume!(small != large);
        let mut rng = SimRng::seed_from_u64(1);
        let mut hdd = Hdd::new(HddProfile::sata_7200_250gb());
        let mut ctx = ServiceCtx { queued: false, sched: DiskSched::Fifo, rng: &mut rng };
        // Sequential from LBA 0 (head parked there).
        let t_small = hdd.service_time(
            &DeviceReq { lba: 0, blocks: small, op: IoOp::Read }, &mut ctx);
        let mut hdd2 = Hdd::new(HddProfile::sata_7200_250gb());
        let mut rng2 = SimRng::seed_from_u64(1);
        let mut ctx2 = ServiceCtx { queued: false, sched: DiskSched::Fifo, rng: &mut rng2 };
        let t_large = hdd2.service_time(
            &DeviceReq { lba: 0, blocks: large, op: IoOp::Read }, &mut ctx2);
        prop_assert!(t_small < t_large);
        prop_assert!(t_small > Dur::ZERO);
    }

    /// SSD service time is position-independent and linear in size.
    #[test]
    fn ssd_position_independent(lba_a in 0u64..100_000_000, lba_b in 0u64..100_000_000, blocks in 1u64..10_000) {
        let mut ssd = Ssd::new(SsdProfile::pcie_x4_100gb());
        let mut rng = SimRng::seed_from_u64(2);
        let mut ctx = ServiceCtx { queued: false, sched: DiskSched::Fifo, rng: &mut rng };
        let a = ssd.service_time(&DeviceReq { lba: lba_a, blocks, op: IoOp::Read }, &mut ctx);
        let b = ssd.service_time(&DeviceReq { lba: lba_b, blocks, op: IoOp::Read }, &mut ctx);
        prop_assert_eq!(a, b);
    }

    /// Log-normal jitter is positive, and sigma=0 is the identity.
    #[test]
    fn jitter_positive(nominal_us in 1u64..1_000_000, sigma in 0.0f64..0.5, seed in 0u64..1000) {
        let mut rng = SimRng::seed_from_u64(seed);
        let nominal = Dur::from_micros(nominal_us);
        let j = Jitter { sigma }.apply(nominal, &mut rng);
        prop_assert!(j > Dur::ZERO);
        if sigma == 0.0 {
            prop_assert_eq!(j, nominal);
        }
    }

    /// Same seed, same stream: the RNG is reproducible through forks.
    #[test]
    fn rng_fork_deterministic(seed in 0u64..10_000, salt in 0u64..10_000) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut fa = a.fork(salt);
        let mut fb = b.fork(salt);
        for _ in 0..16 {
            prop_assert_eq!(fa.unit().to_bits(), fb.unit().to_bits());
        }
    }
}
