//! Property tests for the engine: global time ordering, determinism, and
//! barrier correctness under randomized schedules.

use bps_core::time::{Dur, Nanos};
use bps_sim::engine::{run_processes, Process, Wake, Waker};
use proptest::prelude::*;

/// A process that logs its wakes and sleeps random-ish (but deterministic)
/// periods.
struct Logger {
    id: usize,
    periods: Vec<u64>,
    next: usize,
    start: u64,
}

impl Process<Vec<(Nanos, usize)>> for Logger {
    fn start_time(&self) -> Nanos {
        Nanos(self.start)
    }
    fn wake(&mut self, now: Nanos, log: &mut Vec<(Nanos, usize)>, _w: &mut Waker) -> Wake {
        log.push((now, self.id));
        match self.periods.get(self.next) {
            Some(&p) => {
                self.next += 1;
                Wake::At(now + Dur(p))
            }
            None => Wake::Done,
        }
    }
}

fn schedules() -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    proptest::collection::vec(
        (
            0u64..1_000_000,
            proptest::collection::vec(1u64..100_000, 0..20),
        ),
        1..8,
    )
}

proptest! {
    /// The engine dispatches wakes in nondecreasing global time order, and
    /// every process gets exactly periods+1 wakes.
    #[test]
    fn wakes_globally_ordered(scheds in schedules()) {
        let mut procs: Vec<Logger> = scheds
            .iter()
            .enumerate()
            .map(|(id, (start, periods))| Logger {
                id,
                periods: periods.clone(),
                next: 0,
                start: *start,
            })
            .collect();
        let mut log = Vec::new();
        let out = run_processes(&mut procs, &mut log);
        prop_assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        for (id, (_, periods)) in scheds.iter().enumerate() {
            let wakes = log.iter().filter(|&&(_, i)| i == id).count();
            prop_assert_eq!(wakes, periods.len() + 1);
        }
        prop_assert_eq!(out.wakes as usize, log.len());
        // Finish time of each process = its start + sum of periods.
        for (id, (start, periods)) in scheds.iter().enumerate() {
            let expect = Nanos(start + periods.iter().sum::<u64>());
            prop_assert_eq!(out.finish_times[id], expect);
        }
    }

    /// Reruns are byte-identical.
    #[test]
    fn engine_deterministic(scheds in schedules()) {
        let build = || -> Vec<Logger> {
            scheds
                .iter()
                .enumerate()
                .map(|(id, (start, periods))| Logger {
                    id,
                    periods: periods.clone(),
                    next: 0,
                    start: *start,
                })
                .collect()
        };
        let mut a = Vec::new();
        run_processes(&mut build(), &mut a);
        let mut b = Vec::new();
        run_processes(&mut build(), &mut b);
        prop_assert_eq!(a, b);
    }

    /// Barrier: whatever the arrival times, everyone is released exactly at
    /// the last arrival and nobody runs between their arrival and release.
    #[test]
    fn barrier_release_time_is_max_arrival(arrivals in proptest::collection::vec(0u64..1_000_000, 2..8)) {
        struct B {
            id: usize,
            at: u64,
            phase: u8,
        }
        #[derive(Default)]
        struct Env {
            arrived: Vec<usize>,
            n: usize,
            release: Option<Nanos>,
        }
        impl Process<Env> for B {
            fn start_time(&self) -> Nanos {
                Nanos(self.at)
            }
            fn wake(&mut self, now: Nanos, env: &mut Env, w: &mut Waker) -> Wake {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        env.arrived.push(self.id);
                        if env.arrived.len() == env.n {
                            env.release = Some(now);
                            for &p in &env.arrived {
                                if p != self.id {
                                    w.wake_at(p, now);
                                }
                            }
                            Wake::At(now)
                        } else {
                            Wake::Park
                        }
                    }
                    _ => Wake::Done,
                }
            }
        }
        let mut procs: Vec<B> = arrivals
            .iter()
            .enumerate()
            .map(|(id, &at)| B { id, at, phase: 0 })
            .collect();
        let mut env = Env {
            n: arrivals.len(),
            ..Default::default()
        };
        let out = run_processes(&mut procs, &mut env);
        let max_arrival = Nanos(*arrivals.iter().max().unwrap());
        prop_assert_eq!(env.release, Some(max_arrival));
        for t in &out.finish_times {
            prop_assert_eq!(*t, max_arrival);
        }
    }
}
