//! Indexed 4-ary min-heap for wake scheduling.
//!
//! The engine's hot loop is pop-one-wake / push-one-wake. A 4-ary layout
//! halves the tree height of a binary heap and keeps sift-down children in
//! one cache line (four 24-byte entries), which is where a
//! [`std::collections::BinaryHeap`] of `Reverse` tuples spends its time.
//! On top of that the heap is *indexed*: each entry belongs to a process
//! index and a positions table maps the index back to its slot, so a
//! pending wake can be rescheduled earlier **in place**
//! ([`WakeHeap::decrease_key`]) instead of by lazy re-push + stale-entry
//! filtering, keeping heap size exactly equal to the number of scheduled
//! processes.
//!
//! Ordering is identical to the previous
//! `BinaryHeap<Reverse<(Nanos, u64, usize)>>`: entries sort by
//! `(time, seq)` and `seq` is unique, so pop order — and therefore every
//! simulated trace — is bit-for-bit unchanged.

use bps_core::time::Nanos;

const ARITY: usize = 4;
const ABSENT: usize = usize::MAX;

/// One scheduled wake: at `time`, insertion sequence `seq`, for process
/// `idx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeEntry {
    /// Wake instant.
    pub time: Nanos,
    /// Insertion sequence number; unique, breaks time ties determinism.
    pub seq: u64,
    /// Process index owning this wake.
    pub idx: usize,
}

impl WakeEntry {
    #[inline]
    fn key(&self) -> (Nanos, u64) {
        (self.time, self.seq)
    }
}

/// An indexed 4-ary min-heap over [`WakeEntry`], ordered by `(time, seq)`.
///
/// At most one entry per process index may be present at a time (the
/// engine's invariant: a process is either running, parked, done, or has
/// exactly one scheduled wake).
#[derive(Debug, Clone, Default)]
pub struct WakeHeap {
    entries: Vec<WakeEntry>,
    /// `pos[idx]` is the slot of `idx`'s entry in `entries`, or `ABSENT`.
    pos: Vec<usize>,
}

impl WakeHeap {
    /// An empty heap.
    pub fn new() -> Self {
        WakeHeap::default()
    }

    /// Reset for a run over `n` process indices, keeping allocations.
    pub fn reset(&mut self, n: usize) {
        self.entries.clear();
        self.pos.clear();
        self.pos.resize(n, ABSENT);
    }

    /// Number of scheduled wakes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The instant `idx` is scheduled to wake, if it is scheduled.
    pub fn scheduled_at(&self, idx: usize) -> Option<Nanos> {
        match self.pos.get(idx) {
            Some(&p) if p != ABSENT => Some(self.entries[p].time),
            _ => None,
        }
    }

    /// Schedule a wake. Panics if `idx` already has one (use
    /// [`WakeHeap::decrease_key`] to reschedule) or is out of range.
    pub fn push(&mut self, time: Nanos, seq: u64, idx: usize) {
        assert!(
            self.pos[idx] == ABSENT,
            "process {idx} already has a scheduled wake"
        );
        let slot = self.entries.len();
        self.entries.push(WakeEntry { time, seq, idx });
        self.pos[idx] = slot;
        self.sift_up(slot);
    }

    /// Remove and return the earliest wake (ties by `seq`).
    pub fn pop(&mut self) -> Option<WakeEntry> {
        let top = *self.entries.first()?;
        self.pos[top.idx] = ABSENT;
        let last = self.entries.pop().expect("nonempty");
        if !self.entries.is_empty() {
            self.entries[0] = last;
            self.pos[last.idx] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Reschedule `idx`'s pending wake to an earlier (or equal) key,
    /// sifting it up in place. Panics if `idx` has no pending wake or the
    /// new key is larger than the current one.
    pub fn decrease_key(&mut self, idx: usize, time: Nanos, seq: u64) {
        let slot = self.pos[idx];
        assert!(slot != ABSENT, "process {idx} has no scheduled wake");
        let e = &mut self.entries[slot];
        assert!(
            (time, seq) <= e.key(),
            "decrease_key would increase the key of process {idx}"
        );
        e.time = time;
        e.seq = seq;
        self.sift_up(slot);
    }

    #[inline]
    fn sift_up(&mut self, mut slot: usize) {
        let moving = self.entries[slot];
        while slot > 0 {
            let parent = (slot - 1) / ARITY;
            if self.entries[parent].key() <= moving.key() {
                break;
            }
            let shifted = self.entries[parent];
            self.entries[slot] = shifted;
            self.pos[shifted.idx] = slot;
            slot = parent;
        }
        self.entries[slot] = moving;
        self.pos[moving.idx] = slot;
    }

    #[inline]
    fn sift_down(&mut self, mut slot: usize) {
        let moving = self.entries[slot];
        let len = self.entries.len();
        loop {
            let first_child = slot * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let mut best_key = self.entries[first_child].key();
            for child in (first_child + 1)..(first_child + ARITY).min(len) {
                let k = self.entries[child].key();
                if k < best_key {
                    best = child;
                    best_key = k;
                }
            }
            if moving.key() <= best_key {
                break;
            }
            let shifted = self.entries[best];
            self.entries[slot] = shifted;
            self.pos[shifted.idx] = slot;
            slot = best;
        }
        self.entries[slot] = moving;
        self.pos[moving.idx] = slot;
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for (slot, e) in self.entries.iter().enumerate() {
            assert_eq!(self.pos[e.idx], slot, "positions table out of sync");
            if slot > 0 {
                let parent = (slot - 1) / ARITY;
                assert!(
                    self.entries[parent].key() <= e.key(),
                    "heap property violated at slot {slot}"
                );
            }
        }
        let present = self.pos.iter().filter(|&&p| p != ABSENT).count();
        assert_eq!(present, self.entries.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn ns(v: u64) -> Nanos {
        Nanos(v)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut h = WakeHeap::new();
        h.reset(4);
        h.push(ns(30), 0, 0);
        h.push(ns(10), 1, 1);
        h.push(ns(10), 2, 2);
        h.push(ns(20), 3, 3);
        h.check_invariants();
        let order: Vec<usize> = std::iter::from_fn(|| h.pop()).map(|e| e.idx).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
        assert!(h.is_empty());
    }

    /// Interleaved push/pop agrees with `BinaryHeap<Reverse<..>>` — the
    /// exact structure the engine used before — on a pseudo-random
    /// schedule.
    #[test]
    fn matches_std_binary_heap_ordering() {
        let n = 64;
        let mut ours = WakeHeap::new();
        ours.reset(n);
        let mut std_heap: BinaryHeap<Reverse<(Nanos, u64, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut rng = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for idx in 0..n {
            let t = ns(next() % 50);
            ours.push(t, seq, idx);
            std_heap.push(Reverse((t, seq, idx)));
            seq += 1;
        }
        // Pop everything, re-pushing each popped index once with a later
        // time, like a process scheduling its next wake.
        let mut repushed = vec![false; n];
        loop {
            ours.check_invariants();
            let (a, b) = (ours.pop(), std_heap.pop());
            match (a, b) {
                (None, None) => break,
                (Some(e), Some(Reverse((t, s, i)))) => {
                    assert_eq!((e.time, e.seq, e.idx), (t, s, i));
                    if !repushed[i] {
                        repushed[i] = true;
                        let nt = t + bps_core::time::Dur(next() % 100);
                        ours.push(nt, seq, i);
                        std_heap.push(Reverse((nt, seq, i)));
                        seq += 1;
                    }
                }
                other => panic!("heaps disagree on emptiness: {other:?}"),
            }
        }
    }

    #[test]
    fn decrease_key_moves_entry_to_front() {
        let mut h = WakeHeap::new();
        h.reset(8);
        for idx in 0..8 {
            h.push(ns(100 + idx as u64 * 10), idx as u64, idx);
        }
        assert_eq!(h.scheduled_at(7), Some(ns(170)));
        h.decrease_key(7, ns(5), 100);
        h.check_invariants();
        assert_eq!(h.scheduled_at(7), Some(ns(5)));
        assert_eq!(h.pop().unwrap().idx, 7);
        // The rest still pop in order.
        let order: Vec<usize> = std::iter::from_fn(|| h.pop()).map(|e| e.idx).collect();
        assert_eq!(order, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "would increase")]
    fn decrease_key_rejects_increase() {
        let mut h = WakeHeap::new();
        h.reset(1);
        h.push(ns(10), 0, 0);
        h.decrease_key(0, ns(20), 1);
    }

    #[test]
    #[should_panic(expected = "already has a scheduled wake")]
    fn double_push_panics() {
        let mut h = WakeHeap::new();
        h.reset(1);
        h.push(ns(10), 0, 0);
        h.push(ns(20), 1, 0);
    }

    #[test]
    fn reset_reuses_allocations() {
        let mut h = WakeHeap::new();
        h.reset(4);
        for idx in 0..4 {
            h.push(ns(idx as u64), idx as u64, idx);
        }
        h.reset(2);
        assert!(h.is_empty());
        assert_eq!(h.scheduled_at(0), None);
        h.push(ns(1), 0, 1);
        assert_eq!(h.pop().unwrap().idx, 1);
    }
}
