//! Rotating-disk model.
//!
//! Matches the paper's testbed disk (250 GB, 7200 RPM SATA-II) in the
//! behaviours the experiments exercise:
//!
//! * **Sequential streaming** — a request starting where the previous one
//!   ended pays no positional cost, only transfer + controller overhead, so
//!   large-record sequential reads approach the sustained rate.
//! * **Positional costs** — any other request pays a seek (square-root
//!   distance law) plus rotational latency (uniform in one revolution,
//!   averaging half a period — §II: "the average latency is half of the
//!   rotational period").
//! * **Per-request overhead** — command processing dominates tiny requests,
//!   which is exactly what makes IOPS mislead in the paper's Figure 7.

use super::{DeviceModel, DeviceReq, DiskSched, ServiceCtx};
use bps_core::block::BLOCK_SIZE;
use bps_core::time::{Dur, NANOS_PER_SEC};

/// Parameter set for a rotating disk.
#[derive(Debug, Clone, PartialEq)]
pub struct HddProfile {
    /// Spindle speed, revolutions per minute.
    pub rpm: u32,
    /// Track-to-track (minimum nonzero) seek.
    pub track_to_track_seek: Dur,
    /// Full-stroke (maximum) seek.
    pub full_stroke_seek: Dur,
    /// Sustained media transfer rate, bytes/second.
    pub sustained_rate: u64,
    /// Fixed controller/command overhead per request.
    pub controller_overhead: Dur,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Head movements shorter than this many blocks are "near" hops:
    /// the drive's look-ahead buffer and minimal actuator travel absorb
    /// most of the positional cost, so they pay only a track-to-track seek
    /// plus a quarter revolution instead of a full seek + uniform rotation.
    /// This is what lets a few interleaved sequential streams (the IOR
    /// shared-file pattern) keep reasonable throughput on one disk.
    pub near_seek_blocks: u64,
}

impl HddProfile {
    /// A 250 GB 7200 RPM SATA-II disk of the paper's era. The sustained
    /// rate is the *effective* rate observed through a local file system
    /// (calibrated against the paper's Figure 7 anchors: 16 GB sequential
    /// read in ~360 s at 64 KB records), not the platter's peak.
    pub fn sata_7200_250gb() -> Self {
        HddProfile {
            rpm: 7200,
            track_to_track_seek: Dur::from_micros(800),
            full_stroke_seek: Dur::from_millis(17),
            sustained_rate: 95_000_000,
            controller_overhead: Dur::from_micros(60),
            capacity: 250_000_000_000,
            near_seek_blocks: 32_768, // 16 MiB
        }
    }

    /// One full revolution.
    pub fn rotation_period(&self) -> Dur {
        Dur(60 * NANOS_PER_SEC / u64::from(self.rpm))
    }
}

/// A rotating disk with head-position state.
#[derive(Debug, Clone)]
pub struct Hdd {
    profile: HddProfile,
    /// LBA one past the end of the last request (streaming detector).
    head_lba: u64,
}

impl Hdd {
    /// New disk with the head parked at LBA 0.
    pub fn new(profile: HddProfile) -> Self {
        Hdd {
            profile,
            head_lba: 0,
        }
    }

    /// Seek time for a head movement of `distance` blocks: a square-root
    /// law anchored at the track-to-track and full-stroke points.
    fn seek_time(&self, distance: u64) -> Dur {
        if distance == 0 {
            return Dur::ZERO;
        }
        let cap_blocks = (self.profile.capacity / BLOCK_SIZE).max(1);
        let frac = (distance as f64 / cap_blocks as f64).min(1.0);
        let t2t = self.profile.track_to_track_seek.as_secs_f64();
        let full = self.profile.full_stroke_seek.as_secs_f64();
        Dur::from_secs_f64(t2t + (full - t2t) * frac.sqrt())
    }

    fn transfer_time(&self, bytes: u64) -> Dur {
        Dur::from_secs_f64(bytes as f64 / self.profile.sustained_rate as f64)
    }
}

impl DeviceModel for Hdd {
    fn name(&self) -> &'static str {
        "hdd"
    }

    fn service_time(&mut self, req: &DeviceReq, ctx: &mut ServiceCtx<'_>) -> Dur {
        let sequential = req.lba == self.head_lba;
        let distance = req.lba.abs_diff(self.head_lba);
        let positional = if sequential {
            Dur::ZERO
        } else if distance < self.profile.near_seek_blocks {
            // Near hop: streams interleaved in the same disk area.
            self.profile.track_to_track_seek + self.profile.rotation_period() / 4
        } else {
            let seek = self.seek_time(distance);
            // Rotational latency: uniform over one revolution.
            let rot =
                Dur::from_secs_f64(self.profile.rotation_period().as_secs_f64() * ctx.rng.unit());
            let raw = seek + rot;
            match ctx.sched {
                DiskSched::Elevator if ctx.queued => {
                    Dur::from_secs_f64(raw.as_secs_f64() * DiskSched::ELEVATOR_FACTOR)
                }
                _ => raw,
            }
        };
        self.head_lba = req.lba + req.blocks;
        positional + self.transfer_time(req.bytes()) + self.profile.controller_overhead
    }

    fn capacity_blocks(&self) -> u64 {
        self.profile.capacity / BLOCK_SIZE
    }
}

/// Convenience: the head position is not exposed, but tests need a way to
/// observe streaming behaviour; the sequential detector is validated through
/// service times instead.
#[allow(dead_code)]
fn _doc_anchor() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use bps_core::record::IoOp;

    fn ctx<'a>(rng: &'a mut SimRng, queued: bool, sched: DiskSched) -> ServiceCtx<'a> {
        ServiceCtx { queued, sched, rng }
    }

    fn read(lba: u64, blocks: u64) -> DeviceReq {
        DeviceReq {
            lba,
            blocks,
            op: IoOp::Read,
        }
    }

    #[test]
    fn sequential_stream_has_no_positional_cost() {
        let mut hdd = Hdd::new(HddProfile::sata_7200_250gb());
        let mut rng = SimRng::seed_from_u64(1);
        // First request from LBA 0: head starts there, so it streams.
        let t1 = hdd.service_time(&read(0, 128), &mut ctx(&mut rng, false, DiskSched::Fifo));
        // Next contiguous request also streams.
        let t2 = hdd.service_time(&read(128, 128), &mut ctx(&mut rng, false, DiskSched::Fifo));
        let expected = Dur::from_secs_f64(128.0 * 512.0 / 95e6) + Dur::from_micros(60);
        assert_eq!(t1, expected);
        assert_eq!(t2, expected);
    }

    #[test]
    fn random_access_pays_seek_and_rotation() {
        let mut hdd = Hdd::new(HddProfile::sata_7200_250gb());
        let mut rng = SimRng::seed_from_u64(2);
        let far = hdd.capacity_blocks() / 2;
        let t = hdd.service_time(&read(far, 8), &mut ctx(&mut rng, false, DiskSched::Fifo));
        // Far seek: at least several milliseconds.
        assert!(t > Dur::from_millis(5), "{t}");
        // And bounded by full stroke + one rotation + transfer + overhead.
        assert!(t < Dur::from_millis(30), "{t}");
    }

    #[test]
    fn seek_time_monotone_in_distance() {
        let hdd = Hdd::new(HddProfile::sata_7200_250gb());
        let mut prev = Dur::ZERO;
        for d in [0u64, 1, 1000, 1_000_000, 100_000_000] {
            let s = hdd.seek_time(d);
            assert!(s >= prev, "seek({d}) = {s} < {prev}");
            prev = s;
        }
        assert_eq!(hdd.seek_time(0), Dur::ZERO);
        // Full stroke caps the law.
        let cap = hdd.capacity_blocks();
        assert!(hdd.seek_time(cap * 2) <= Dur::from_millis(18));
    }

    #[test]
    fn elevator_cuts_positional_cost_only_when_queued() {
        let profile = HddProfile::sata_7200_250gb();
        let far = 200_000_000;
        // Compare the same request/seed with and without queued elevator.
        let mut a = Hdd::new(profile.clone());
        let mut ra = SimRng::seed_from_u64(3);
        let t_fifo = a.service_time(&read(far, 8), &mut ctx(&mut ra, true, DiskSched::Fifo));
        let mut b = Hdd::new(profile.clone());
        let mut rb = SimRng::seed_from_u64(3);
        let t_elev = b.service_time(&read(far, 8), &mut ctx(&mut rb, true, DiskSched::Elevator));
        assert!(t_elev < t_fifo);
        // Not queued: elevator has nothing to reorder.
        let mut c = Hdd::new(profile);
        let mut rc = SimRng::seed_from_u64(3);
        let t_idle = c.service_time(&read(far, 8), &mut ctx(&mut rc, false, DiskSched::Elevator));
        assert_eq!(t_idle, t_fifo);
    }

    #[test]
    fn near_hop_cheaper_than_far_seek() {
        let mut hdd = Hdd::new(HddProfile::sata_7200_250gb());
        let mut rng = SimRng::seed_from_u64(6);
        // Position the head, then hop 8 MiB (near) vs half the disk (far).
        hdd.service_time(&read(0, 8), &mut ctx(&mut rng, false, DiskSched::Fifo));
        let near = hdd.service_time(&read(16_384, 8), &mut ctx(&mut rng, false, DiskSched::Fifo));
        let far_lba = hdd.capacity_blocks() / 2;
        let far = hdd.service_time(
            &read(far_lba, 8),
            &mut ctx(&mut rng, false, DiskSched::Fifo),
        );
        assert!(near < far, "near {near} far {far}");
        // Near hop: t2t (0.8 ms) + quarter rotation (~2.1 ms) + transfer.
        assert!(
            near > Dur::from_millis(2) && near < Dur::from_millis(4),
            "{near}"
        );
    }

    #[test]
    fn rotation_period_from_rpm() {
        let p = HddProfile::sata_7200_250gb();
        // 7200 RPM → 8.333 ms per revolution.
        assert_eq!(p.rotation_period(), Dur(8_333_333));
    }

    #[test]
    fn small_requests_dominated_by_overhead() {
        let mut hdd = Hdd::new(HddProfile::sata_7200_250gb());
        let mut rng = SimRng::seed_from_u64(4);
        // Sequential 4 KB: overhead (60 us) vs transfer (~43 us).
        let t = hdd.service_time(&read(0, 8), &mut ctx(&mut rng, false, DiskSched::Fifo));
        let transfer = Dur::from_secs_f64(4096.0 / 95e6);
        assert!(t >= Dur::from_micros(60) + transfer - Dur(10));
        assert!(t <= Dur::from_micros(60) + transfer + Dur(10));
    }

    #[test]
    fn head_position_advances() {
        let mut hdd = Hdd::new(HddProfile::sata_7200_250gb());
        let mut rng = SimRng::seed_from_u64(5);
        hdd.service_time(&read(0, 100), &mut ctx(&mut rng, false, DiskSched::Fifo));
        // A request at LBA 100 now streams (head is at 100).
        let t = hdd.service_time(&read(100, 100), &mut ctx(&mut rng, false, DiskSched::Fifo));
        let expected = Dur::from_secs_f64(100.0 * 512.0 / 95e6) + Dur::from_micros(60);
        assert_eq!(t, expected);
    }
}
