//! Block-device models and the queued device wrapper.
//!
//! A [`Device`] is a queue (FIFO, or FIFO with an elevator approximation)
//! in front of a [`DeviceModel`] that turns each request into a service
//! time. The two models shipped match the paper's testbed:
//!
//! * [`Hdd`](hdd::Hdd) — a 7200 RPM SATA disk: positional costs (seek +
//!   rotational latency) for non-sequential accesses, streaming transfer
//!   otherwise, per-request controller overhead.
//! * [`Ssd`](ssd::Ssd) — a PCI-E SSD: small fixed per-op latency, high
//!   transfer rate, internal channel parallelism.
//! * [`Raid0`](raid0::Raid0) — a striped array of identical disks
//!   (transfer scales with members, positional costs do not).

pub mod hdd;
pub mod raid0;
pub mod ram;
pub mod ssd;

use crate::resource::{Grant, MultiChannel, ResourceStats};
use crate::rng::{Jitter, SimRng};
use bps_core::record::IoOp;
use bps_core::time::{Dur, Nanos};

/// One request as seen by a block device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceReq {
    /// First logical block address.
    pub lba: u64,
    /// Number of 512-byte blocks.
    pub blocks: u64,
    /// Read or write.
    pub op: IoOp,
}

impl DeviceReq {
    /// Bytes moved by this request.
    pub fn bytes(&self) -> u64 {
        self.blocks * bps_core::block::BLOCK_SIZE
    }
}

/// Context a model may consult when pricing a request.
#[derive(Debug)]
pub struct ServiceCtx<'a> {
    /// True when the device already has queued work at the arrival instant —
    /// the elevator approximation only applies then.
    pub queued: bool,
    /// The scheduling policy of the owning device.
    pub sched: DiskSched,
    /// Device-private randomness (rotational position, etc.).
    pub rng: &'a mut SimRng,
}

/// Disk scheduling policy.
///
/// `Elevator` is an *approximation*: a real elevator reorders the queue,
/// which an analytic FIFO cannot express. Instead, when a request arrives at
/// a non-empty queue, its positional (seek + rotation) cost is scaled by
/// [`DiskSched::ELEVATOR_FACTOR`], modeling the shorter average seeks a
/// sorted service order achieves. The ablation bench compares the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskSched {
    /// Serve strictly in arrival order.
    #[default]
    Fifo,
    /// Approximate seek-optimizing reordering.
    Elevator,
}

impl DiskSched {
    /// Positional-cost multiplier applied by the elevator approximation.
    pub const ELEVATOR_FACTOR: f64 = 0.55;
}

/// A device model: prices requests, tracking whatever positional state it
/// needs. Models are consulted in arrival order.
pub trait DeviceModel: Send {
    /// Human-readable model name.
    fn name(&self) -> &'static str;
    /// Nominal (jitter-free) service time for one request.
    fn service_time(&mut self, req: &DeviceReq, ctx: &mut ServiceCtx<'_>) -> Dur;
    /// Internal parallelism (1 for disks, >1 for SSD channels).
    fn channels(&self) -> usize {
        1
    }
    /// Capacity in blocks.
    fn capacity_blocks(&self) -> u64;
}

/// A queued block device: model + queue + jitter + stats.
pub struct Device {
    model: Box<dyn DeviceModel>,
    queue: MultiChannel,
    sched: DiskSched,
    jitter: Jitter,
    rng: SimRng,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("model", &self.model.name())
            .field("sched", &self.sched)
            .field("stats", self.queue.stats())
            .finish()
    }
}

impl Device {
    /// Wrap a model with a queue.
    pub fn new(model: Box<dyn DeviceModel>, sched: DiskSched, jitter: Jitter, rng: SimRng) -> Self {
        let width = model.channels();
        Device {
            model,
            queue: MultiChannel::new(width),
            sched,
            jitter,
            rng,
        }
    }

    /// Submit one request arriving at `arrival`; returns its service grant.
    ///
    /// Arrivals must be in nondecreasing time order (engine-guaranteed).
    pub fn submit(&mut self, arrival: Nanos, req: DeviceReq) -> Grant {
        self.submit_scaled(arrival, req, 1.0)
    }

    /// [`Device::submit`] with a fault-injection service-time multiplier.
    /// A factor of exactly 1.0 bypasses the scaling arithmetic entirely,
    /// so the healthy path stays bit-for-bit identical to `submit`.
    pub fn submit_scaled(&mut self, arrival: Nanos, req: DeviceReq, slow: f64) -> Grant {
        let queued = self.queue.stats().last_completion > arrival;
        let mut ctx = ServiceCtx {
            queued,
            sched: self.sched,
            rng: &mut self.rng,
        };
        let nominal = self.model.service_time(&req, &mut ctx);
        let mut service = self.jitter.apply(nominal, &mut self.rng);
        if slow != 1.0 {
            service = Dur::from_secs_f64(service.as_secs_f64() * slow);
        }
        self.queue.acquire(arrival, service)
    }

    /// Aggregated queue statistics.
    pub fn stats(&self) -> &ResourceStats {
        self.queue.stats()
    }

    /// The wrapped model's name.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// Capacity in 512-byte blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.model.capacity_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::ram::Ram;
    use super::*;

    fn ram_device() -> Device {
        Device::new(
            Box::new(Ram::new(Dur::from_micros(10), 1_000_000_000, 1 << 30)),
            DiskSched::Fifo,
            Jitter::NONE,
            SimRng::seed_from_u64(1),
        )
    }

    #[test]
    fn sequential_submissions_queue_fifo() {
        let mut d = ram_device();
        // 1 MiB at 1 GB/s ≈ 1.048576 ms + 10 us overhead.
        let r = DeviceReq {
            lba: 0,
            blocks: 2048,
            op: IoOp::Read,
        };
        let a = d.submit(Nanos::ZERO, r);
        let b = d.submit(Nanos::ZERO, r);
        assert_eq!(b.start, a.end);
        assert_eq!(d.stats().ops, 2);
    }

    #[test]
    fn scaled_submission_stretches_service() {
        let mut slow = ram_device();
        let mut fast = ram_device();
        let r = DeviceReq {
            lba: 0,
            blocks: 2048,
            op: IoOp::Read,
        };
        let a = fast.submit_scaled(Nanos::ZERO, r, 1.0);
        let b = slow.submit_scaled(Nanos::ZERO, r, 3.0);
        // Same arrival, 3x the service time.
        assert_eq!(a.start, b.start);
        let ratio = b.end.since(b.start).as_secs_f64() / a.end.since(a.start).as_secs_f64();
        assert!((2.99..3.01).contains(&ratio), "{ratio}");
        // Factor 1.0 is exactly submit().
        let mut plain = ram_device();
        let mut scaled = ram_device();
        assert_eq!(
            plain.submit(Nanos::ZERO, r),
            scaled.submit_scaled(Nanos::ZERO, r, 1.0)
        );
    }

    #[test]
    fn req_bytes() {
        let r = DeviceReq {
            lba: 0,
            blocks: 8,
            op: IoOp::Write,
        };
        assert_eq!(r.bytes(), 4096);
    }

    #[test]
    fn device_debug_and_name() {
        let d = ram_device();
        assert_eq!(d.model_name(), "ram");
        assert!(format!("{d:?}").contains("ram"));
        assert_eq!(d.capacity_blocks(), (1 << 30) / 512);
    }
}
