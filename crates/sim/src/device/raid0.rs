//! RAID-0 (striped) disk array.
//!
//! The paper's Set 1 varies storage "in number and in media"; a striped
//! array is the classic way to add *number*. The model approximates an
//! N-member stripe: a request's transfer is split across all members (so
//! the transfer term shrinks N-fold for large requests), every member
//! still pays its own positional + controller cost (so small requests gain
//! nothing), and the array accepts `N` concurrent requests (channel
//! parallelism across requests).

use super::hdd::HddProfile;
use super::{DeviceModel, DeviceReq, DiskSched, ServiceCtx};
use bps_core::block::BLOCK_SIZE;
use bps_core::time::Dur;

/// A RAID-0 array of identical rotating disks.
#[derive(Debug, Clone)]
pub struct Raid0 {
    member: HddProfile,
    members: usize,
    /// Array-level head position (members move together under striping).
    head_lba: u64,
}

impl Raid0 {
    /// An array of `members` identical disks.
    pub fn new(member: HddProfile, members: usize) -> Self {
        assert!(members >= 1, "an array needs at least one member");
        Raid0 {
            member,
            members,
            head_lba: 0,
        }
    }

    fn seek_time(&self, distance: u64) -> Dur {
        if distance == 0 {
            return Dur::ZERO;
        }
        let cap_blocks = (self.capacity_blocks()).max(1);
        let frac = (distance as f64 / cap_blocks as f64).min(1.0);
        let t2t = self.member.track_to_track_seek.as_secs_f64();
        let full = self.member.full_stroke_seek.as_secs_f64();
        Dur::from_secs_f64(t2t + (full - t2t) * frac.sqrt())
    }
}

impl DeviceModel for Raid0 {
    fn name(&self) -> &'static str {
        "raid0"
    }

    fn service_time(&mut self, req: &DeviceReq, ctx: &mut ServiceCtx<'_>) -> Dur {
        let sequential = req.lba == self.head_lba;
        let distance = req.lba.abs_diff(self.head_lba);
        let positional = if sequential {
            Dur::ZERO
        } else if distance < self.member.near_seek_blocks {
            self.member.track_to_track_seek + self.member.rotation_period() / 4
        } else {
            let seek = self.seek_time(distance);
            let rot =
                Dur::from_secs_f64(self.member.rotation_period().as_secs_f64() * ctx.rng.unit());
            let raw = seek + rot;
            match ctx.sched {
                DiskSched::Elevator if ctx.queued => {
                    Dur::from_secs_f64(raw.as_secs_f64() * DiskSched::ELEVATOR_FACTOR)
                }
                _ => raw,
            }
        };
        self.head_lba = req.lba + req.blocks;
        // Transfer is striped over all members; positional cost is paid in
        // parallel by the members, so it is counted once.
        let share = req.bytes().div_ceil(self.members as u64);
        let transfer = Dur::from_secs_f64(share as f64 / self.member.sustained_rate as f64);
        positional + transfer + self.member.controller_overhead
    }

    fn channels(&self) -> usize {
        self.members
    }

    fn capacity_blocks(&self) -> u64 {
        self.member.capacity / BLOCK_SIZE * self.members as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::hdd::Hdd;
    use crate::rng::SimRng;
    use bps_core::record::IoOp;

    fn service<M: DeviceModel>(m: &mut M, lba: u64, blocks: u64, seed: u64) -> Dur {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut ctx = ServiceCtx {
            queued: false,
            sched: DiskSched::Fifo,
            rng: &mut rng,
        };
        m.service_time(
            &DeviceReq {
                lba,
                blocks,
                op: IoOp::Read,
            },
            &mut ctx,
        )
    }

    #[test]
    fn large_sequential_scales_with_members() {
        let mut single = Hdd::new(HddProfile::sata_7200_250gb());
        let mut array = Raid0::new(HddProfile::sata_7200_250gb(), 4);
        // 8 MB sequential read from LBA 0.
        let t1 = service(&mut single, 0, 16_384, 1);
        let t4 = service(&mut array, 0, 16_384, 1);
        // Transfer dominates: array ~4x faster, minus the fixed overhead.
        assert!(t4.as_secs_f64() < t1.as_secs_f64() / 2.5, "{t1} vs {t4}");
    }

    #[test]
    fn small_requests_gain_nothing() {
        let mut single = Hdd::new(HddProfile::sata_7200_250gb());
        let mut array = Raid0::new(HddProfile::sata_7200_250gb(), 4);
        // 4 KB sequential: the fixed controller overhead dominates, so the
        // array's advantage shrinks from 4x to well under 2x.
        let t1 = service(&mut single, 0, 8, 2);
        let t4 = service(&mut array, 0, 8, 2);
        assert!(t4.as_secs_f64() > t1.as_secs_f64() * 0.55, "{t1} vs {t4}");
    }

    #[test]
    fn capacity_and_channels_scale() {
        let array = Raid0::new(HddProfile::sata_7200_250gb(), 3);
        let single = Hdd::new(HddProfile::sata_7200_250gb());
        assert_eq!(array.capacity_blocks(), single.capacity_blocks() * 3);
        assert_eq!(array.channels(), 3);
        assert_eq!(array.name(), "raid0");
    }

    #[test]
    fn positional_cost_counted_once() {
        let mut array = Raid0::new(HddProfile::sata_7200_250gb(), 8);
        let far = array.capacity_blocks() / 2;
        let t = service(&mut array, far, 8, 3);
        // One seek + rotation, not eight.
        assert!(t < Dur::from_millis(30), "{t}");
        assert!(t > Dur::from_millis(1), "{t}");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_array_rejected() {
        let _ = Raid0::new(HddProfile::sata_7200_250gb(), 0);
    }
}
