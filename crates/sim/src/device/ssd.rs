//! Solid-state-disk model.
//!
//! Matches the paper's PCI-E X4 100 GB SSD in the behaviours the
//! experiments exercise: no positional costs at all, a small fixed per-op
//! latency (flash read + controller), read/write asymmetry, and internal
//! channel parallelism that lets concurrent requests proceed together.
//! Calibrated against the paper's Figure 8 anchors (ARPT 0.14 ms at 4 KB,
//! 22.35 ms at 4 MB ⇒ ~190 MB/s effective streaming).

use super::{DeviceModel, DeviceReq, ServiceCtx};
use bps_core::block::BLOCK_SIZE;
use bps_core::record::IoOp;
use bps_core::time::Dur;

/// Parameter set for a flash SSD.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdProfile {
    /// Fixed latency for a read op (flash sense + controller).
    pub read_latency: Dur,
    /// Fixed latency for a write op (program is slower than sense).
    pub write_latency: Dur,
    /// Transfer rate per internal channel, bytes/second.
    pub channel_rate: u64,
    /// Number of internal channels.
    pub channels: usize,
    /// Capacity in bytes.
    pub capacity: u64,
}

impl SsdProfile {
    /// The paper's PCI-E X4 100 GB SSD (2009-era), calibrated to Figure 8.
    /// The paper's ARPT anchors are measured above the local file system
    /// (~120 µs per op): 4 KB ⇒ 0.14 ms total (≈ 50 µs device latency +
    /// 20 µs transfer + FS), 4 MB ⇒ 22.35 ms ⇒ ~190 MB/s effective rate.
    pub fn pcie_x4_100gb() -> Self {
        SsdProfile {
            read_latency: Dur::from_micros(50),
            write_latency: Dur::from_micros(110),
            channel_rate: 190_000_000,
            channels: 4,
            capacity: 100_000_000_000,
        }
    }
}

/// A flash SSD. Stateless between requests — no head, no rotation.
#[derive(Debug, Clone)]
pub struct Ssd {
    profile: SsdProfile,
}

impl Ssd {
    /// New SSD from a profile.
    pub fn new(profile: SsdProfile) -> Self {
        assert!(profile.channels >= 1, "SSD needs at least one channel");
        Ssd { profile }
    }
}

impl DeviceModel for Ssd {
    fn name(&self) -> &'static str {
        "ssd"
    }

    fn service_time(&mut self, req: &DeviceReq, _ctx: &mut ServiceCtx<'_>) -> Dur {
        let latency = match req.op {
            IoOp::Read => self.profile.read_latency,
            IoOp::Write => self.profile.write_latency,
        };
        let transfer = Dur::from_secs_f64(req.bytes() as f64 / self.profile.channel_rate as f64);
        latency + transfer
    }

    fn channels(&self) -> usize {
        self.profile.channels
    }

    fn capacity_blocks(&self) -> u64 {
        self.profile.capacity / BLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DiskSched;
    use crate::rng::SimRng;

    fn service(ssd: &mut Ssd, req: DeviceReq) -> Dur {
        let mut rng = SimRng::seed_from_u64(0);
        let mut ctx = ServiceCtx {
            queued: false,
            sched: DiskSched::Fifo,
            rng: &mut rng,
        };
        ssd.service_time(&req, &mut ctx)
    }

    #[test]
    fn figure_8_anchor_4kb() {
        let mut ssd = Ssd::new(SsdProfile::pcie_x4_100gb());
        let t = service(
            &mut ssd,
            DeviceReq {
                lba: 0,
                blocks: 8,
                op: IoOp::Read,
            },
        );
        // Device-level share of the paper's 0.14 ms ARPT anchor (the rest
        // is the ~120 us local-FS overhead charged above the device).
        let secs = t.as_secs_f64();
        assert!((0.00005..0.00010).contains(&secs), "{secs}");
    }

    #[test]
    fn figure_8_anchor_4mb() {
        let mut ssd = Ssd::new(SsdProfile::pcie_x4_100gb());
        let t = service(
            &mut ssd,
            DeviceReq {
                lba: 0,
                blocks: 8192,
                op: IoOp::Read,
            },
        );
        // Paper: ARPT 0.02235 s at 4 MB.
        let secs = t.as_secs_f64();
        assert!((0.020..0.025).contains(&secs), "{secs}");
    }

    #[test]
    fn no_positional_penalty_for_random_access() {
        let mut ssd = Ssd::new(SsdProfile::pcie_x4_100gb());
        let near = service(
            &mut ssd,
            DeviceReq {
                lba: 0,
                blocks: 8,
                op: IoOp::Read,
            },
        );
        let far = service(
            &mut ssd,
            DeviceReq {
                lba: 150_000_000,
                blocks: 8,
                op: IoOp::Read,
            },
        );
        assert_eq!(near, far);
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut ssd = Ssd::new(SsdProfile::pcie_x4_100gb());
        let r = service(
            &mut ssd,
            DeviceReq {
                lba: 0,
                blocks: 8,
                op: IoOp::Read,
            },
        );
        let w = service(
            &mut ssd,
            DeviceReq {
                lba: 0,
                blocks: 8,
                op: IoOp::Write,
            },
        );
        assert!(w > r);
    }

    #[test]
    fn reports_channels() {
        let ssd = Ssd::new(SsdProfile::pcie_x4_100gb());
        assert_eq!(ssd.channels(), 4);
        assert_eq!(ssd.capacity_blocks(), 100_000_000_000 / 512);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let mut p = SsdProfile::pcie_x4_100gb();
        p.channels = 0;
        let _ = Ssd::new(p);
    }
}
