//! A trivial constant-cost device, used as a test double and as the backing
//! of the page cache's hit path.

use super::{DeviceModel, DeviceReq, ServiceCtx};
use bps_core::block::BLOCK_SIZE;
use bps_core::time::Dur;

/// A device serving every request with `fixed + bytes/rate`.
#[derive(Debug, Clone)]
pub struct Ram {
    fixed: Dur,
    rate: u64,
    capacity: u64,
}

impl Ram {
    /// Build with a fixed per-op latency, a transfer rate in bytes/second,
    /// and a capacity in bytes.
    pub fn new(fixed: Dur, rate: u64, capacity: u64) -> Self {
        assert!(rate > 0, "transfer rate must be positive");
        Ram {
            fixed,
            rate,
            capacity,
        }
    }
}

impl DeviceModel for Ram {
    fn name(&self) -> &'static str {
        "ram"
    }

    fn service_time(&mut self, req: &DeviceReq, _ctx: &mut ServiceCtx<'_>) -> Dur {
        self.fixed + Dur::from_secs_f64(req.bytes() as f64 / self.rate as f64)
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity / BLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DiskSched;
    use crate::rng::SimRng;
    use bps_core::record::IoOp;

    #[test]
    fn linear_in_bytes() {
        let mut ram = Ram::new(Dur::from_micros(1), 1_000_000_000, 1 << 30);
        let mut rng = SimRng::seed_from_u64(0);
        let mut ctx = ServiceCtx {
            queued: false,
            sched: DiskSched::Fifo,
            rng: &mut rng,
        };
        let small = ram.service_time(
            &DeviceReq {
                lba: 0,
                blocks: 2,
                op: IoOp::Read,
            },
            &mut ctx,
        );
        let big = ram.service_time(
            &DeviceReq {
                lba: 0,
                blocks: 2048,
                op: IoOp::Read,
            },
            &mut ctx,
        );
        assert!(big > small);
        // 1 MiB at 1 GB/s ≈ 1049 us + 1 us fixed.
        assert!((big.as_secs_f64() - 0.00105).abs() < 5e-5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Ram::new(Dur::ZERO, 0, 1);
    }
}
