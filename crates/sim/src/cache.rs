//! An LRU page cache.
//!
//! "In order to ensure that all data were accessed from storage devices,
//! the system caches of all computing nodes and I/O servers were flushed
//! prior to each run" (paper §IV.B). The experiments therefore run with the
//! cache disabled or flushed; the cache exists so the ablation bench can
//! show what happens when it is *not* flushed — re-reads served at memory
//! speed decouple file-system bandwidth from device performance entirely.

use bps_core::time::{Dur, Nanos};
use std::collections::{HashMap, VecDeque};

/// Cache lookup outcome for a page range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLookup {
    /// Pages found in cache.
    pub hits: u64,
    /// Pages that must be fetched from the device.
    pub misses: u64,
}

/// A page-granular LRU cache with hit-latency accounting.
#[derive(Debug)]
pub struct PageCache {
    /// Page size in bytes.
    page_size: u64,
    /// Maximum resident pages.
    capacity_pages: u64,
    /// Service time for a fully cached request (per page).
    hit_time_per_page: Dur,
    /// Resident pages: key → recency stamp.
    resident: HashMap<(u32, u64), u64>,
    /// LRU order (may contain stale stamps; validated on eviction).
    order: VecDeque<((u32, u64), u64)>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Build a cache of `capacity_bytes` with 4 KiB pages.
    pub fn new(capacity_bytes: u64) -> Self {
        PageCache {
            page_size: 4096,
            capacity_pages: (capacity_bytes / 4096).max(1),
            hit_time_per_page: Dur(400), // ~10 GB/s memcpy
            resident: HashMap::new(),
            order: VecDeque::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up (and admit) the pages of file `file` covering
    /// `[offset, offset+len)`. Returns hit/miss counts; missed pages become
    /// resident (read-allocate).
    pub fn access(&mut self, file: u32, offset: u64, len: u64) -> CacheLookup {
        if len == 0 {
            return CacheLookup { hits: 0, misses: 0 };
        }
        let first = offset / self.page_size;
        let last = (offset + len - 1) / self.page_size;
        let mut hits = 0;
        let mut misses = 0;
        for page in first..=last {
            self.stamp += 1;
            let key = (file, page);
            if self.resident.contains_key(&key) {
                hits += 1;
            } else {
                misses += 1;
                self.evict_if_full();
            }
            self.resident.insert(key, self.stamp);
            self.order.push_back((key, self.stamp));
        }
        self.hits += hits;
        self.misses += misses;
        CacheLookup { hits, misses }
    }

    fn evict_if_full(&mut self) {
        while self.resident.len() as u64 >= self.capacity_pages {
            match self.order.pop_front() {
                Some((key, stamp)) => {
                    // Only evict if this entry is the *current* stamp for the
                    // key; otherwise the key was touched again more recently.
                    if self.resident.get(&key) == Some(&stamp) {
                        self.resident.remove(&key);
                    }
                }
                None => break,
            }
        }
    }

    /// Service time for `hits` cached pages.
    pub fn hit_time(&self, hits: u64) -> Dur {
        self.hit_time_per_page * hits
    }

    /// Drop everything (the paper's pre-run flush).
    pub fn flush(&mut self) {
        self.resident.clear();
        self.order.clear();
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Bytes per page.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }
}

/// A timestamped no-op placeholder so the module exports a `Nanos` use —
/// the cache itself is time-free; callers combine [`PageCache::hit_time`]
/// with their own clocks.
#[allow(dead_code)]
fn _anchor(_: Nanos) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_warm() {
        let mut c = PageCache::new(1 << 20); // 256 pages
        let first = c.access(0, 0, 64 << 10); // 16 pages
        assert_eq!(
            first,
            CacheLookup {
                hits: 0,
                misses: 16
            }
        );
        let second = c.access(0, 0, 64 << 10);
        assert_eq!(
            second,
            CacheLookup {
                hits: 16,
                misses: 0
            }
        );
        assert_eq!(c.hits(), 16);
        assert_eq!(c.misses(), 16);
    }

    #[test]
    fn flush_forgets_everything() {
        let mut c = PageCache::new(1 << 20);
        c.access(0, 0, 4096);
        c.flush();
        let l = c.access(0, 0, 4096);
        assert_eq!(l.misses, 1);
        assert_eq!(c.resident_pages(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = PageCache::new(4 * 4096); // 4 pages
        c.access(0, 0, 4 * 4096); // pages 0..4 resident
        c.access(0, 4 * 4096, 4096); // page 4: evicts page 0
        let l = c.access(0, 0, 4096); // page 0 gone
        assert_eq!(l.misses, 1);
        // Page 4 still resident.
        let l = c.access(0, 4 * 4096, 4096);
        assert_eq!(l.hits, 1);
    }

    #[test]
    fn recency_update_protects_hot_page() {
        let mut c = PageCache::new(4 * 4096);
        c.access(0, 0, 4 * 4096); // 0,1,2,3
        c.access(0, 0, 4096); // touch page 0 again
        c.access(0, 4 * 4096, 4096); // page 4 evicts LRU = page 1
        assert_eq!(c.access(0, 0, 4096).hits, 1); // page 0 survived
        assert_eq!(c.access(0, 4096, 4096).misses, 1); // page 1 evicted
    }

    #[test]
    fn distinct_files_do_not_collide() {
        let mut c = PageCache::new(1 << 20);
        c.access(1, 0, 4096);
        let l = c.access(2, 0, 4096);
        assert_eq!(l.misses, 1);
    }

    #[test]
    fn empty_access_is_noop() {
        let mut c = PageCache::new(1 << 20);
        let l = c.access(0, 123, 0);
        assert_eq!(l, CacheLookup { hits: 0, misses: 0 });
    }

    #[test]
    fn hit_time_scales() {
        let c = PageCache::new(1 << 20);
        assert_eq!(c.hit_time(0), Dur::ZERO);
        assert!(c.hit_time(100) > c.hit_time(1));
        assert_eq!(c.page_size(), 4096);
    }
}
