//! Deterministic fault injection.
//!
//! The paper evaluates BPS on a healthy cluster; this module supplies the
//! degraded regimes real clusters live in — stragglers, transient device
//! errors, lossy links, and pause-and-recover outages — as a *declarative,
//! seeded* [`FaultPlan`]. The cluster consults one [`FaultInjector`] built
//! from the plan on every grant:
//!
//! * **Slowdown windows** scale a server's device service time and CPU cost
//!   while the window is open (a straggler node).
//! * **Device error rate** makes a device grant complete with a transient
//!   error: the device does the work, but the client receives an error
//!   reply instead of data and must retry.
//! * **Link loss** adds one retransmit delay to a payload transfer with the
//!   configured probability (a lossy NIC / congested TCP path).
//! * **Outages** make a server refuse requests during a window; the error
//!   carries the recovery instant so retry backoff can be meaningful.
//!
//! Determinism: the injector's randomness is seeded from `(plan.seed,
//! run_seed)` and is *independent* of the cluster's master RNG, so enabling
//! a plan never shifts the device jitter streams, and
//! [`FaultPlan::none()`] is bit-for-bit neutral — every probability check
//! short-circuits before drawing from the RNG when its rate is zero.

use crate::rng::SimRng;
use bps_core::time::{Dur, Nanos};

/// A straggler window: requests touching `server` inside `[start, end)`
/// have their device service time and server CPU cost multiplied by
/// `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownWindow {
    /// The degraded server.
    pub server: usize,
    /// Window start (inclusive).
    pub start: Nanos,
    /// Window end (exclusive).
    pub end: Nanos,
    /// Service-time multiplier (> 1 slows the server down).
    pub factor: f64,
}

/// A pause-and-recover outage: `server` refuses all requests arriving
/// inside `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The offline server.
    pub server: usize,
    /// Outage start (inclusive).
    pub start: Nanos,
    /// Recovery instant (exclusive).
    pub end: Nanos,
}

/// A declarative, seeded description of everything wrong with the cluster.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the injector's private randomness. Two runs with the same
    /// plan and run seed degrade identically.
    pub seed: u64,
    /// Straggler windows.
    pub slowdowns: Vec<SlowdownWindow>,
    /// Probability a device grant completes with a transient error (all
    /// servers).
    pub device_error_rate: f64,
    /// Extra per-server device error rates, added on top of
    /// [`FaultPlan::device_error_rate`] for grants on that server (a
    /// failing disk behind one server).
    pub device_error_hotspots: Vec<(usize, f64)>,
    /// Probability a payload transfer loses a packet and pays
    /// [`FaultPlan::retransmit_delay`].
    pub link_loss_rate: f64,
    /// Delay added to a transfer that lost a packet.
    pub retransmit_delay: Dur,
    /// Server pause-and-recover windows.
    pub outages: Vec<Outage>,
}

impl FaultPlan {
    /// The healthy cluster: no faults of any kind. Guaranteed bit-for-bit
    /// neutral — a run with this plan is identical to a run of the
    /// pre-fault code path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.slowdowns.is_empty()
            && self.device_error_rate == 0.0
            && self.device_error_hotspots.is_empty()
            && self.link_loss_rate == 0.0
            && self.outages.is_empty()
    }

    /// Add a straggler window.
    pub fn with_slowdown(mut self, window: SlowdownWindow) -> Self {
        assert!(window.factor > 0.0, "slowdown factor must be positive");
        self.slowdowns.push(window);
        self
    }

    /// Set the transient device error rate.
    pub fn with_device_errors(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.device_error_rate = rate;
        self
    }

    /// Add an extra device error rate on one server (on top of the
    /// all-server rate).
    pub fn with_device_errors_on(mut self, server: usize, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.device_error_hotspots.push((server, rate));
        self
    }

    /// Set the link loss rate and per-loss retransmit delay.
    pub fn with_link_loss(mut self, rate: f64, retransmit_delay: Dur) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.link_loss_rate = rate;
        self.retransmit_delay = retransmit_delay;
        self
    }

    /// Add a pause-and-recover outage window.
    pub fn with_outage(mut self, outage: Outage) -> Self {
        assert!(outage.start <= outage.end, "outage ends before it starts");
        self.outages.push(outage);
        self
    }
}

/// The runtime fault oracle the cluster consults on every grant.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
}

impl FaultInjector {
    /// Build an injector for one run. The RNG stream is derived from
    /// `(plan.seed, run_seed)` only — never forked from the cluster's
    /// master RNG — so enabling faults does not perturb device jitter.
    pub fn new(plan: &FaultPlan, run_seed: u64) -> Self {
        FaultInjector {
            plan: plan.clone(),
            rng: SimRng::seed_from_u64(plan.seed ^ run_seed.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        }
    }

    /// True when the underlying plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.plan.is_none()
    }

    /// Service-time multiplier for `server` at instant `at`: the product
    /// of all open slowdown windows (exactly 1.0 when none are open, so
    /// callers can skip scaling entirely).
    pub fn slowdown(&self, server: usize, at: Nanos) -> f64 {
        if self.plan.slowdowns.is_empty() {
            return 1.0;
        }
        let factor: f64 = self
            .plan
            .slowdowns
            .iter()
            .filter(|w| w.server == server && w.start <= at && at < w.end)
            .map(|w| w.factor)
            .product();
        if factor != 1.0 {
            bps_telemetry::incr(bps_telemetry::Counter::FaultSlowdowns);
        }
        factor
    }

    /// If `server` is inside an outage window at `at`, the recovery
    /// instant.
    pub fn outage_until(&self, server: usize, at: Nanos) -> Option<Nanos> {
        let until = self
            .plan
            .outages
            .iter()
            .filter(|o| o.server == server && o.start <= at && at < o.end)
            .map(|o| o.end)
            .max();
        if until.is_some() {
            bps_telemetry::incr(bps_telemetry::Counter::FaultOutageRefusals);
        }
        until
    }

    /// Draw: does this grant on `server`'s device complete with a
    /// transient error? Never touches the RNG when the effective rate is
    /// zero.
    pub fn device_error(&mut self, server: usize) -> bool {
        let mut rate = self.plan.device_error_rate;
        for &(s, extra) in &self.plan.device_error_hotspots {
            if s == server {
                rate += extra;
            }
        }
        let hit = rate > 0.0 && self.rng.unit() < rate.min(1.0);
        if hit {
            bps_telemetry::incr(bps_telemetry::Counter::FaultDeviceErrors);
        }
        hit
    }

    /// Draw: does this payload transfer lose a packet? Never touches the
    /// RNG when the rate is zero.
    pub fn link_lost(&mut self) -> bool {
        let lost = self.plan.link_loss_rate > 0.0 && self.rng.unit() < self.plan.link_loss_rate;
        if lost {
            bps_telemetry::incr(bps_telemetry::Counter::FaultLinkLosses);
        }
        lost
    }

    /// Delay one lost transfer pays before delivery.
    pub fn retransmit_delay(&self) -> Dur {
        self.plan.retransmit_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut inj = FaultInjector::new(&plan, 42);
        assert!(inj.is_none());
        assert_eq!(inj.slowdown(0, Nanos::from_millis(5)), 1.0);
        assert_eq!(inj.outage_until(0, Nanos::from_millis(5)), None);
        for _ in 0..100 {
            assert!(!inj.device_error(0));
            assert!(!inj.link_lost());
        }
    }

    #[test]
    fn zero_rates_never_draw_from_the_rng() {
        // Two injectors with zero rates but different seeds behave
        // identically because the RNG is never consulted.
        let plan = FaultPlan {
            seed: 1,
            ..FaultPlan::none()
        };
        let other = FaultPlan {
            seed: 999,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(&plan, 7);
        let mut b = FaultInjector::new(&other, 8);
        for _ in 0..50 {
            assert_eq!(a.device_error(0), b.device_error(1));
            assert_eq!(a.link_lost(), b.link_lost());
        }
    }

    #[test]
    fn slowdown_applies_inside_window_only() {
        let plan = FaultPlan::none().with_slowdown(SlowdownWindow {
            server: 1,
            start: Nanos::from_millis(10),
            end: Nanos::from_millis(20),
            factor: 3.0,
        });
        let inj = FaultInjector::new(&plan, 0);
        assert_eq!(inj.slowdown(1, Nanos::from_millis(15)), 3.0);
        assert_eq!(inj.slowdown(1, Nanos::from_millis(5)), 1.0);
        assert_eq!(inj.slowdown(1, Nanos::from_millis(20)), 1.0);
        assert_eq!(inj.slowdown(0, Nanos::from_millis(15)), 1.0);
    }

    #[test]
    fn overlapping_slowdowns_compound() {
        let w = |factor| SlowdownWindow {
            server: 0,
            start: Nanos::ZERO,
            end: Nanos::from_secs(1),
            factor,
        };
        let plan = FaultPlan::none()
            .with_slowdown(w(2.0))
            .with_slowdown(w(1.5));
        let inj = FaultInjector::new(&plan, 0);
        assert_eq!(inj.slowdown(0, Nanos::from_millis(1)), 3.0);
    }

    #[test]
    fn outage_reports_recovery_instant() {
        let plan = FaultPlan::none().with_outage(Outage {
            server: 2,
            start: Nanos::from_millis(1),
            end: Nanos::from_millis(4),
        });
        let inj = FaultInjector::new(&plan, 0);
        assert_eq!(
            inj.outage_until(2, Nanos::from_millis(2)),
            Some(Nanos::from_millis(4))
        );
        assert_eq!(inj.outage_until(2, Nanos::from_millis(4)), None);
        assert_eq!(inj.outage_until(0, Nanos::from_millis(2)), None);
    }

    #[test]
    fn error_draws_are_seed_deterministic() {
        let plan = FaultPlan::none().with_device_errors(0.3);
        let draws = |run_seed| {
            let mut inj = FaultInjector::new(&plan, run_seed);
            (0..64).map(|_| inj.device_error(0)).collect::<Vec<_>>()
        };
        assert_eq!(draws(5), draws(5));
        assert_ne!(draws(5), draws(6));
        assert!(draws(5).iter().any(|&e| e));
        assert!(draws(5).iter().any(|&e| !e));
    }

    #[test]
    fn link_loss_rate_roughly_holds() {
        let plan = FaultPlan::none().with_link_loss(0.25, Dur::from_millis(5));
        let mut inj = FaultInjector::new(&plan, 1);
        let lost = (0..4000).filter(|_| inj.link_lost()).count();
        let rate = lost as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
        assert_eq!(inj.retransmit_delay(), Dur::from_millis(5));
    }

    #[test]
    fn hotspot_rate_applies_to_its_server_only() {
        let plan = FaultPlan::none().with_device_errors_on(1, 0.5);
        assert!(!plan.is_none());
        let mut inj = FaultInjector::new(&plan, 3);
        // Server 0 has rate zero: never errors, never draws.
        for _ in 0..100 {
            assert!(!inj.device_error(0));
        }
        // Server 1 errors roughly half the time.
        let errs = (0..1000).filter(|_| inj.device_error(1)).count();
        assert!((350..650).contains(&errs), "errs {errs}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_rate_rejected() {
        let _ = FaultPlan::none().with_device_errors(1.5);
    }
}
