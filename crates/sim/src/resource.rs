//! Analytic FIFO resources.
//!
//! Every contended element of the simulated I/O path — a disk, a NIC, a
//! switch backplane, a server CPU — is a non-preemptive FIFO server. For
//! such a server, given arrivals in nondecreasing time order (which the
//! engine guarantees), the service start of a request is exactly
//! `max(arrival, busy_until)` and its completion is `start + service_time`.
//! No event machinery is needed; a single `busy_until` register per resource
//! suffices, which makes the simulation exact, O(1) per request, and
//! trivially deterministic.

use bps_core::time::{Dur, Nanos};
use serde::Serialize;

/// Occupancy and throughput counters for one resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ResourceStats {
    /// Number of requests served.
    pub ops: u64,
    /// Total bytes attributed to served requests (0 for byte-less resources).
    pub bytes: u64,
    /// Total time the resource spent serving.
    pub busy: Dur,
    /// Total time requests spent waiting for the resource before service.
    pub waited: Dur,
    /// Completion time of the last request.
    pub last_completion: Nanos,
}

impl ResourceStats {
    /// Utilization over a window: busy time divided by the window length.
    pub fn utilization(&self, window: Dur) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / window.as_secs_f64()
        }
    }

    /// Mean queueing delay per request.
    pub fn mean_wait(&self) -> Dur {
        if self.ops == 0 {
            Dur::ZERO
        } else {
            self.waited / self.ops
        }
    }
}

/// A single non-preemptive FIFO server.
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    busy_until: Nanos,
    stats: ResourceStats,
}

/// Timing of one request through a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (≥ arrival).
    pub start: Nanos,
    /// When service completed.
    pub end: Nanos,
}

impl Grant {
    /// Queueing delay experienced before service.
    pub fn wait_from(&self, arrival: Nanos) -> Dur {
        self.start - arrival
    }
}

impl FifoResource {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        FifoResource::default()
    }

    /// Serve a request arriving at `arrival` needing `service` time.
    ///
    /// Arrivals must be issued in nondecreasing time order (the engine's
    /// wake ordering provides this); violating it would silently model an
    /// impossible preemption, so it is checked.
    pub fn acquire(&mut self, arrival: Nanos, service: Dur) -> Grant {
        let start = arrival.max(self.busy_until);
        let end = start + service;
        self.busy_until = end;
        self.stats.ops += 1;
        self.stats.busy += service;
        self.stats.waited += start - arrival;
        self.stats.last_completion = end;
        Grant { start, end }
    }

    /// Serve a request and attribute `bytes` to it in the stats.
    pub fn acquire_bytes(&mut self, arrival: Nanos, service: Dur, bytes: u64) -> Grant {
        let g = self.acquire(arrival, service);
        self.stats.bytes += bytes;
        g
    }

    /// The instant the resource next becomes free.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Whether the resource would be idle at `t`.
    pub fn idle_at(&self, t: Nanos) -> bool {
        self.busy_until <= t
    }

    /// Counters.
    pub fn stats(&self) -> &ResourceStats {
        &self.stats
    }

    /// Pending backlog seen by an arrival at `t`: how long until the
    /// resource drains what is already queued.
    pub fn backlog_at(&self, t: Nanos) -> Dur {
        self.busy_until.since(t)
    }
}

/// `k` identical FIFO servers fed from one queue (an SSD's internal
/// channels, a multi-lane PCIe link). A request is served by the channel
/// that frees up first.
#[derive(Debug, Clone)]
pub struct MultiChannel {
    channels: Vec<FifoResource>,
    stats: ResourceStats,
}

impl MultiChannel {
    /// Build with `k ≥ 1` channels.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "a resource needs at least one channel");
        MultiChannel {
            channels: vec![FifoResource::new(); k],
            stats: ResourceStats::default(),
        }
    }

    /// Serve a request on the earliest-free channel.
    pub fn acquire(&mut self, arrival: Nanos, service: Dur) -> Grant {
        let idx = self
            .channels
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.busy_until())
            .map(|(i, _)| i)
            .expect("at least one channel");
        let g = self.channels[idx].acquire(arrival, service);
        self.stats.ops += 1;
        self.stats.busy += service;
        self.stats.waited += g.start - arrival;
        self.stats.last_completion = self.stats.last_completion.max(g.end);
        g
    }

    /// Number of channels.
    pub fn width(&self) -> usize {
        self.channels.len()
    }

    /// Aggregated counters.
    pub fn stats(&self) -> &ResourceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }
    fn dms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new();
        let g = r.acquire(ms(5), dms(3));
        assert_eq!(g.start, ms(5));
        assert_eq!(g.end, ms(8));
        assert_eq!(g.wait_from(ms(5)), Dur::ZERO);
    }

    #[test]
    fn busy_resource_queues() {
        let mut r = FifoResource::new();
        r.acquire(ms(0), dms(10));
        let g = r.acquire(ms(2), dms(5));
        assert_eq!(g.start, ms(10));
        assert_eq!(g.end, ms(15));
        assert_eq!(g.wait_from(ms(2)), dms(8));
        assert_eq!(r.stats().waited, dms(8));
        assert_eq!(r.stats().mean_wait(), dms(4));
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = FifoResource::new();
        r.acquire(ms(0), dms(1));
        assert!(r.idle_at(ms(5)));
        let g = r.acquire(ms(5), dms(1));
        assert_eq!(g.start, ms(5));
        // Busy time excludes the idle gap.
        assert_eq!(r.stats().busy, dms(2));
        assert_eq!(r.backlog_at(ms(5)), dms(1));
        assert_eq!(r.backlog_at(ms(10)), Dur::ZERO);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut r = FifoResource::new();
        let a = r.acquire(ms(0), dms(4));
        let b = r.acquire(ms(1), dms(4));
        let c = r.acquire(ms(2), dms(4));
        assert!(a.end <= b.start && b.end <= c.start);
    }

    #[test]
    fn utilization_and_bytes() {
        let mut r = FifoResource::new();
        r.acquire_bytes(ms(0), dms(5), 1000);
        r.acquire_bytes(ms(5), dms(5), 2000);
        assert_eq!(r.stats().bytes, 3000);
        assert!((r.stats().utilization(dms(20)) - 0.5).abs() < 1e-12);
        assert_eq!(ResourceStats::default().utilization(Dur::ZERO), 0.0);
    }

    /// A zero-length window yields 0.0 utilization even with accumulated
    /// busy time — not a NaN or infinity from the division.
    #[test]
    fn zero_window_utilization_is_zero_even_when_busy() {
        let mut r = FifoResource::new();
        r.acquire(ms(0), dms(5));
        let stats = r.stats();
        assert!(stats.busy > Dur::ZERO);
        let u = stats.utilization(Dur::ZERO);
        assert_eq!(u, 0.0);
        assert!(u.is_finite());
    }

    #[test]
    fn multichannel_parallelism() {
        let mut m = MultiChannel::new(2);
        let a = m.acquire(ms(0), dms(10));
        let b = m.acquire(ms(0), dms(10));
        // Two channels: both start immediately.
        assert_eq!(a.start, ms(0));
        assert_eq!(b.start, ms(0));
        // Third request waits for the first free channel.
        let c = m.acquire(ms(1), dms(10));
        assert_eq!(c.start, ms(10));
        assert_eq!(m.stats().ops, 3);
        assert_eq!(m.width(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = MultiChannel::new(0);
    }
}
