//! Seeded randomness and service-time jitter.
//!
//! Real storage service times wobble (rotational position, controller
//! scheduling, bus arbitration). We model that with a multiplicative
//! log-normal jitter around each device model's deterministic service time.
//! The paper ran every experiment 5 times and averaged; the experiment
//! harness does the same with 5 seeds.

use bps_core::time::Dur;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The workspace-wide simulation RNG: a small, fast, seedable generator.
///
/// All randomness in a simulation flows from one `SimRng`, so a run is a
/// pure function of (configuration, seed).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a seed. Equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream (for giving each device its own
    /// stream while keeping a single top-level seed).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Standard normal variate via Box–Muller (we avoid a `rand_distr`
    /// dependency; two uniforms per call is plenty fast here).
    pub fn standard_normal(&mut self) -> f64 {
        // Guard against ln(0).
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative log-normal factor with median 1 and shape `sigma`.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        (sigma * self.standard_normal()).exp()
    }
}

/// Jitter policy applied to deterministic service times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Log-normal shape parameter; 0 disables jitter entirely.
    pub sigma: f64,
}

impl Jitter {
    /// No jitter: fully deterministic service times.
    pub const NONE: Jitter = Jitter { sigma: 0.0 };

    /// The default used by the experiment presets: a few percent of wobble,
    /// enough to make 5-run averaging meaningful without drowning the
    /// signal.
    pub const DEFAULT: Jitter = Jitter { sigma: 0.03 };

    /// Apply the jitter to a nominal duration.
    pub fn apply(&self, nominal: Dur, rng: &mut SimRng) -> Dur {
        if self.sigma == 0.0 || nominal.is_zero() {
            return nominal;
        }
        let f = rng.lognormal_factor(self.sigma);
        Dur::from_secs_f64(nominal.as_secs_f64() * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = SimRng::seed_from_u64(1);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut v: Vec<f64> = (0..10_001).map(|_| rng.lognormal_factor(0.1)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 1.0).abs() < 0.02, "median {median}");
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = SimRng::seed_from_u64(3);
        let d = Dur::from_micros(123);
        assert_eq!(Jitter::NONE.apply(d, &mut rng), d);
    }

    #[test]
    fn jitter_stays_close_for_small_sigma() {
        let mut rng = SimRng::seed_from_u64(5);
        let d = Dur::from_millis(10);
        for _ in 0..1000 {
            let j = Jitter::DEFAULT.apply(d, &mut rng);
            let ratio = j.as_secs_f64() / d.as_secs_f64();
            assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
