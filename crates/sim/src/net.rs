//! Network model: point-to-point links and a shared switch.
//!
//! The paper's cluster interconnect is Gigabit Ethernet. A transfer over a
//! [`Link`] pays propagation + protocol latency once and then serializes its
//! bytes through the link's bandwidth (a FIFO resource, so concurrent
//! transfers on the same NIC queue behind each other). NICs carry
//! homogeneous traffic (a server NIC's outbound side sees only replies, its
//! inbound side only requests), so the analytic FIFO's
//! acquire-order-equals-arrival-order assumption holds to within
//! sub-millisecond skew.
//!
//! The [`Switch`] is different: *every* message crosses it — early requests
//! and late replies interleaved — so a FIFO there would let an operation
//! computed in one engine wake push the backplane's `busy_until` into the
//! future and falsely serialize other processes' earlier messages behind
//! it. The switch is therefore modeled as a causal delay element:
//! forwarding latency + backplane serialization + a soft congestion penalty
//! driven by an exponentially decaying message-rate estimate. At the
//! paper's scales the penalty is tens of microseconds — invisible to
//! throughput, but it gives ARPT the gentle upward drift under concurrency
//! that the paper's Figure 10 shows.

use crate::resource::{FifoResource, Grant, ResourceStats};
use bps_core::time::{Dur, Nanos};

/// A simplex point-to-point link (one NIC direction).
#[derive(Debug, Clone)]
pub struct Link {
    latency: Dur,
    bandwidth: u64,
    queue: FifoResource,
}

impl Link {
    /// Build from one-way latency and bandwidth in bytes/second.
    pub fn new(latency: Dur, bandwidth: u64) -> Self {
        assert!(bandwidth > 0, "link bandwidth must be positive");
        Link {
            latency,
            bandwidth,
            queue: FifoResource::new(),
        }
    }

    /// Gigabit Ethernet as deployed in the paper's cluster: ~117 MB/s of
    /// goodput and ~80 µs of stack + propagation latency.
    pub fn gigabit_ethernet() -> Self {
        Link::new(Dur::from_micros(80), 117_000_000)
    }

    /// Serialization time of `bytes` through this link's bandwidth.
    pub fn serialization(&self, bytes: u64) -> Dur {
        Dur::from_secs_f64(bytes as f64 / self.bandwidth as f64)
    }

    /// Transfer `bytes` arriving at the NIC at `arrival`. Returns the
    /// instant the last byte is delivered at the far end: queueing +
    /// serialization, then latency.
    pub fn transfer(&mut self, arrival: Nanos, bytes: u64) -> Nanos {
        let g: Grant = self
            .queue
            .acquire_bytes(arrival, self.serialization(bytes), bytes);
        g.end + self.latency
    }

    /// Counters (ops, bytes, busy time, queueing).
    pub fn stats(&self) -> &ResourceStats {
        self.queue.stats()
    }

    /// One-way latency.
    pub fn latency(&self) -> Dur {
        self.latency
    }

    /// Bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        self.bandwidth
    }

    /// Short human description, e.g. `117 MB/s, 80.00us one-way`
    /// (topology renderers, debug output).
    pub fn describe(&self) -> String {
        format!(
            "{} MB/s, {} one-way",
            self.bandwidth / 1_000_000,
            self.latency
        )
    }
}

/// A shared switch backplane all transfers cross (see module docs for why
/// it is a delay element, not a queue).
#[derive(Debug, Clone)]
pub struct Switch {
    forwarding: Dur,
    aggregate_bandwidth: u64,
    /// Extra delay per concurrently active message.
    congestion_per_msg: Dur,
    /// Decay window of the message-rate estimator.
    window: Dur,
    /// Exponentially decayed count of recent messages.
    recent_load: f64,
    /// Anchor of the last decay update (monotone).
    last_update: Nanos,
    ops: u64,
    bytes: u64,
}

impl Switch {
    /// Build from per-message forwarding cost and aggregate bandwidth.
    pub fn new(forwarding: Dur, aggregate_bandwidth: u64) -> Self {
        assert!(aggregate_bandwidth > 0, "switch bandwidth must be positive");
        Switch {
            forwarding,
            aggregate_bandwidth,
            congestion_per_msg: Dur::from_micros(4),
            window: Dur::from_millis(1),
            recent_load: 0.0,
            last_update: Nanos::ZERO,
            ops: 0,
            bytes: 0,
        }
    }

    /// A 48-port GigE switch of the era: ~10 µs forwarding, ~6 GB/s
    /// backplane.
    pub fn gigabit_cluster() -> Self {
        Switch::new(Dur::from_micros(10), 6_000_000_000)
    }

    /// The current decayed message-load estimate (messages per window).
    pub fn load_estimate(&self) -> f64 {
        self.recent_load
    }

    /// Forward `bytes` through the backplane at `arrival`; returns egress
    /// completion.
    pub fn forward(&mut self, arrival: Nanos, bytes: u64) -> Nanos {
        // Decay the load estimate. Arrivals may be slightly out of order
        // (bounded path skew); anchor decay monotonically.
        let t = self.last_update.max(arrival);
        let dt = t.since(self.last_update).as_secs_f64();
        let w = self.window.as_secs_f64();
        self.recent_load *= (-dt / w).exp();
        self.last_update = t;
        let penalty = Dur::from_secs_f64(self.congestion_per_msg.as_secs_f64() * self.recent_load);
        self.recent_load += 1.0;
        self.ops += 1;
        self.bytes += bytes;
        arrival
            + self.forwarding
            + Dur::from_secs_f64(bytes as f64 / self.aggregate_bandwidth as f64)
            + penalty
    }

    /// Messages forwarded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes forwarded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_plus_serialization() {
        let mut l = Link::new(Dur::from_micros(100), 1_000_000); // 1 MB/s
        let done = l.transfer(Nanos::ZERO, 1_000_000);
        // 1 s serialization + 100 us latency.
        assert_eq!(done, Nanos::from_micros(1_000_100));
    }

    #[test]
    fn concurrent_transfers_serialize() {
        let mut l = Link::new(Dur::ZERO, 1_000_000);
        let a = l.transfer(Nanos::ZERO, 500_000);
        let b = l.transfer(Nanos::ZERO, 500_000);
        assert_eq!(a, Nanos::from_millis(500));
        assert_eq!(b, Nanos::from_millis(1000));
        assert_eq!(l.stats().bytes, 1_000_000);
    }

    #[test]
    fn gige_goodput_shape() {
        let mut l = Link::gigabit_ethernet();
        // 64 KB at ~117 MB/s ≈ 560 us + 80 us latency.
        let done = l.transfer(Nanos::ZERO, 64 << 10);
        let secs = (done - Nanos::ZERO).as_secs_f64();
        assert!((0.0005..0.0008).contains(&secs), "{secs}");
    }

    #[test]
    fn switch_is_cheap_at_low_load() {
        let mut s = Switch::gigabit_cluster();
        let done = s.forward(Nanos::ZERO, 64 << 10);
        // ~10 us forwarding + ~11 us backplane, no congestion yet.
        assert!(done < Nanos::from_micros(40), "{done}");
    }

    #[test]
    fn switch_does_not_falsely_serialize() {
        // Two messages at the same instant: both complete at (almost) the
        // same time — the switch is a delay element, not a queue.
        let mut s = Switch::gigabit_cluster();
        let a = s.forward(Nanos::ZERO, 64 << 10);
        let b = s.forward(Nanos::ZERO, 64 << 10);
        // b pays only the small congestion penalty over a.
        assert!(b.since(a) < Dur::from_micros(10), "{a} {b}");
    }

    #[test]
    fn congestion_penalty_grows_with_load() {
        let mut s = Switch::gigabit_cluster();
        let lone = s.forward(Nanos::ZERO, 1024).since(Nanos::ZERO);
        // Hammer the switch within one window.
        for i in 0..100 {
            s.forward(Nanos::from_micros(i), 1024);
        }
        let loaded = s
            .forward(Nanos::from_micros(100), 1024)
            .since(Nanos::from_micros(100));
        assert!(loaded > lone + Dur::from_micros(50), "{lone} vs {loaded}");
        assert!(s.load_estimate() > 50.0);
        assert_eq!(s.ops(), 102);
    }

    #[test]
    fn congestion_decays_when_quiet() {
        let mut s = Switch::gigabit_cluster();
        for i in 0..100 {
            s.forward(Nanos::from_micros(i), 1024);
        }
        // After 100 windows of silence the penalty is gone.
        let calm = s
            .forward(Nanos::from_millis(200), 1024)
            .since(Nanos::from_millis(200));
        assert!(calm < Dur::from_micros(25), "{calm}");
    }

    #[test]
    fn out_of_order_arrival_is_tolerated() {
        let mut s = Switch::gigabit_cluster();
        s.forward(Nanos::from_millis(10), 1024);
        // An arrival slightly in the past still gets a sane, causal result.
        let done = s.forward(Nanos::from_millis(9), 1024);
        assert!(done >= Nanos::from_millis(9));
        assert!(done < Nanos::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_link_rejected() {
        let _ = Link::new(Dur::ZERO, 0);
    }
}
