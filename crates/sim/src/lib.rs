//! # bps-sim — deterministic discrete-event I/O substrate
//!
//! The paper evaluated BPS on a 65-node cluster (GigE, 7200 RPM SATA HDDs,
//! a PCI-E SSD, PVFS2 with 1–8 I/O servers). This crate replaces that
//! hardware with a virtual-time simulation precise enough to reproduce every
//! qualitative result of the evaluation:
//!
//! * [`engine`] — the event loop. Simulated *processes* wake in global time
//!   order; each wake lets a process issue its next I/O through the
//!   environment and schedule its own next wake.
//! * [`resource`] — analytic FIFO resources. A non-preemptive FIFO queue's
//!   completion times are exactly `max(arrival, busy_until) + service`, so
//!   queues need no per-event machinery; this keeps the simulator exact,
//!   fast, and trivially deterministic.
//! * [`device`] — HDD (seek + rotation + streaming transfer + per-request
//!   controller overhead, with head-position state) and SSD (fixed low
//!   per-op latency, channel parallelism) block-device models.
//! * [`net`] — links (latency + bandwidth serialization) and a shared
//!   switch, modeling the cluster's Gigabit Ethernet.
//! * [`cache`] — an LRU page cache. The paper flushed caches before every
//!   run; the cache exists to show (in an ablation bench) why they had to.
//! * [`rng`] — seeded RNG with log-normal service-time jitter, so the
//!   "5 runs, report the average" protocol of the paper is meaningful.
//! * [`fault`] — declarative, seeded fault injection (stragglers, transient
//!   device errors, lossy links, outages) consulted by the cluster on every
//!   grant; `FaultPlan::none()` is bit-for-bit neutral.
//!
//! Determinism: all state is integer nanoseconds, the event heap tie-breaks
//! on (time, sequence), and all randomness flows from one seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod device;
pub mod engine;
pub mod fault;
pub mod heap;
pub mod net;
pub mod resource;
pub mod rng;

pub use engine::{run_processes, Process, RunOutcome, Wake};
pub use fault::{FaultInjector, FaultPlan};
pub use resource::{FifoResource, ResourceStats};
pub use rng::SimRng;
