//! The virtual-time event loop.
//!
//! Simulation here is *process-driven*: each simulated process (an
//! application process issuing I/O) is a state machine implementing
//! [`Process`]. The engine wakes processes in global time order; a woken
//! process interacts with the shared environment (the simulated I/O stack),
//! decides when it next needs the CPU, and returns that instant.
//!
//! Resource queueing (disks, NICs) is handled *analytically* inside the
//! environment via [`crate::resource::FifoResource`]: because those
//! resources are non-preemptive FIFO servers, a request's completion time is
//! fully determined at arrival. The engine only has to guarantee that
//! arrivals happen in nondecreasing global time order — which the wake heap
//! does — for the analytic bookkeeping to be exact.

use crate::heap::WakeHeap;
use bps_core::time::Nanos;
use std::cell::Cell;

/// What a process wants after a wake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Wake me again at this instant (must be ≥ the current time).
    At(Nanos),
    /// Sleep until another process wakes me through the [`Waker`] —
    /// barrier/collective semantics.
    Park,
    /// The process has finished all its work.
    Done,
}

/// Cross-process wake requests, handed to every [`Process::wake`] call.
/// The last process to reach a barrier uses this to release its peers.
#[derive(Debug, Default)]
pub struct Waker {
    requests: Vec<(usize, Nanos)>,
}

impl Waker {
    /// Schedule process `idx` to wake at `at`. The target must currently be
    /// parked (checked by the engine).
    pub fn wake_at(&mut self, idx: usize, at: Nanos) {
        self.requests.push((idx, at));
    }

    /// Number of queued requests (tests).
    pub fn pending(&self) -> usize {
        self.requests.len()
    }
}

/// A simulated sequential process.
///
/// `E` is the shared environment — typically the simulated I/O stack plus
/// the trace being collected. The engine hands each process exclusive
/// (`&mut`) access during its wake, so no synchronization is needed and the
/// simulation is deterministic.
pub trait Process<E> {
    /// When this process first wants to run.
    fn start_time(&self) -> Nanos {
        Nanos::ZERO
    }

    /// Called at `now`; do work against `env`, optionally release parked
    /// peers through `waker`, and say when to wake next.
    fn wake(&mut self, now: Nanos, env: &mut E, waker: &mut Waker) -> Wake;
}

/// Result of running a set of processes to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Instant each process returned [`Wake::Done`] (index-aligned with the
    /// input process vector).
    pub finish_times: Vec<Nanos>,
    /// The earliest start among all processes.
    pub started_at: Nanos,
    /// The latest finish among all processes (simulation end).
    pub ended_at: Nanos,
    /// Total number of wakes dispatched.
    pub wakes: u64,
}

impl RunOutcome {
    /// Wall time of the whole run: latest finish minus earliest start —
    /// the "application execution time" the paper correlates metrics with.
    pub fn makespan(&self) -> bps_core::time::Dur {
        self.ended_at - self.started_at
    }
}

/// Run all processes to completion against a shared environment.
///
/// Ties on wake time are broken by insertion sequence, so reruns with the
/// same inputs produce byte-identical traces.
///
/// # Panics
///
/// Panics if a process asks to wake in its own past (which would break the
/// arrival-order guarantee the analytic queues rely on), if a waker
/// targets a process that is not parked, or if the run deadlocks with
/// parked processes left over.
pub fn run_processes<E, P: Process<E>>(processes: &mut [P], env: &mut E) -> RunOutcome {
    // Scheduling state (wake heap, parked flags, waker request buffer) is
    // borrowed from a per-thread pool and returned on exit, so a sweep
    // running thousands of cases on one thread allocates it once. A fresh
    // default is used if the slot is empty (first run on this thread,
    // reentrant run, or a previous run panicked mid-flight) — `reset`
    // makes the starting state identical either way.
    let mut s = ENGINE_SCRATCH.take().unwrap_or_default();
    s.reset(processes.len());

    let mut seq: u64 = 0;
    let mut started_at = Nanos::MAX;
    for (idx, p) in processes.iter().enumerate() {
        let t = p.start_time();
        started_at = started_at.min(t);
        s.heap.push(t, seq, idx);
        seq += 1;
    }
    if processes.is_empty() {
        started_at = Nanos::ZERO;
    }

    let mut finish_times = vec![Nanos::ZERO; processes.len()];
    let mut ended_at = started_at;
    let mut wakes: u64 = 0;

    while let Some(entry) = s.heap.pop() {
        let (now, idx) = (entry.time, entry.idx);
        wakes += 1;
        debug_assert!(!s.parked[idx], "parked process {idx} dispatched");
        match processes[idx].wake(now, env, &mut s.waker) {
            Wake::At(next) => {
                assert!(
                    next >= now,
                    "process {idx} scheduled a wake in the past ({next} < {now})"
                );
                s.heap.push(next, seq, idx);
                seq += 1;
            }
            Wake::Park => s.parked[idx] = true,
            Wake::Done => {
                finish_times[idx] = now;
                ended_at = ended_at.max(now);
            }
        }
        // Release peers the woken process asked for.
        for (target, at) in s.waker.requests.drain(..) {
            assert!(
                s.parked[target],
                "waker targeted process {target}, which is not parked"
            );
            assert!(
                at >= now,
                "waker scheduled process {target} in the past ({at} < {now})"
            );
            s.parked[target] = false;
            s.heap.push(at, seq, target);
            seq += 1;
        }
    }

    assert!(
        s.parked.iter().all(|&p| !p),
        "deadlock: processes still parked at end of run"
    );
    ENGINE_SCRATCH.set(Some(s));
    bps_telemetry::add(bps_telemetry::Counter::EngineWakes, wakes);

    RunOutcome {
        finish_times,
        started_at,
        ended_at,
        wakes,
    }
}

/// Reusable per-thread scheduling state for [`run_processes`].
#[derive(Debug, Default)]
struct EngineScratch {
    heap: WakeHeap,
    parked: Vec<bool>,
    waker: Waker,
}

impl EngineScratch {
    fn reset(&mut self, n: usize) {
        self.heap.reset(n);
        self.parked.clear();
        self.parked.resize(n, false);
        self.waker.requests.clear();
    }
}

thread_local! {
    static ENGINE_SCRATCH: Cell<Option<EngineScratch>> = const { Cell::new(None) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use bps_core::time::Dur;

    /// A process that appends (its id, wake time) to a shared log a fixed
    /// number of times with a fixed period.
    struct Ticker {
        id: usize,
        period: Dur,
        remaining: u32,
        start: Nanos,
    }

    impl Process<Vec<(usize, Nanos)>> for Ticker {
        fn start_time(&self) -> Nanos {
            self.start
        }
        fn wake(&mut self, now: Nanos, log: &mut Vec<(usize, Nanos)>, _waker: &mut Waker) -> Wake {
            log.push((self.id, now));
            if self.remaining == 0 {
                return Wake::Done;
            }
            self.remaining -= 1;
            Wake::At(now + self.period)
        }
    }

    #[test]
    fn interleaves_in_time_order() {
        let mut procs = vec![
            Ticker {
                id: 0,
                period: Dur::from_millis(10),
                remaining: 3,
                start: Nanos::ZERO,
            },
            Ticker {
                id: 1,
                period: Dur::from_millis(15),
                remaining: 2,
                start: Nanos::from_millis(1),
            },
        ];
        let mut log = Vec::new();
        let out = run_processes(&mut procs, &mut log);
        // Log must be nondecreasing in time.
        for w in log.windows(2) {
            assert!(w[0].1 <= w[1].1, "{log:?}");
        }
        // Proc 0 finishes at 30 ms, proc 1 at 31 ms.
        assert_eq!(out.finish_times[0], Nanos::from_millis(30));
        assert_eq!(out.finish_times[1], Nanos::from_millis(31));
        assert_eq!(out.started_at, Nanos::ZERO);
        assert_eq!(out.ended_at, Nanos::from_millis(31));
        assert_eq!(out.makespan(), Dur::from_millis(31));
        assert_eq!(out.wakes as usize, log.len());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut procs: Vec<Ticker> = (0..4)
            .map(|id| Ticker {
                id,
                period: Dur::from_millis(10),
                remaining: 1,
                start: Nanos::ZERO,
            })
            .collect();
        let mut log = Vec::new();
        run_processes(&mut procs, &mut log);
        let first_round: Vec<usize> = log.iter().take(4).map(|&(id, _)| id).collect();
        assert_eq!(first_round, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_run_is_trivial() {
        let mut procs: Vec<Ticker> = Vec::new();
        let mut log = Vec::new();
        let out = run_processes(&mut procs, &mut log);
        assert_eq!(out.wakes, 0);
        assert_eq!(out.makespan(), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "wake in the past")]
    fn waking_in_the_past_panics() {
        struct Bad;
        impl Process<()> for Bad {
            fn start_time(&self) -> Nanos {
                Nanos::from_millis(5)
            }
            fn wake(&mut self, _now: Nanos, _env: &mut (), _waker: &mut Waker) -> Wake {
                Wake::At(Nanos::ZERO)
            }
        }
        run_processes(&mut [Bad], &mut ());
    }

    /// A process that parks at a shared barrier; the last arriver releases
    /// everyone at the arrival time.
    struct BarrierProc {
        id: usize,
        arrive_at: Nanos,
        done_after: bool,
    }

    #[derive(Default)]
    struct BarrierEnv {
        arrived: Vec<usize>,
        expected: usize,
        released_at: Option<Nanos>,
    }

    impl Process<BarrierEnv> for BarrierProc {
        fn start_time(&self) -> Nanos {
            self.arrive_at
        }
        fn wake(&mut self, now: Nanos, env: &mut BarrierEnv, waker: &mut Waker) -> Wake {
            if self.done_after {
                return Wake::Done;
            }
            self.done_after = true;
            env.arrived.push(self.id);
            if env.arrived.len() == env.expected {
                env.released_at = Some(now);
                for &peer in &env.arrived {
                    if peer != self.id {
                        waker.wake_at(peer, now);
                    }
                }
                Wake::At(now)
            } else {
                Wake::Park
            }
        }
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let mut procs: Vec<BarrierProc> = (0..4)
            .map(|id| BarrierProc {
                id,
                arrive_at: Nanos::from_millis(10 * (id as u64 + 1)),
                done_after: false,
            })
            .collect();
        let mut env = BarrierEnv {
            expected: 4,
            ..Default::default()
        };
        let out = run_processes(&mut procs, &mut env);
        // Everyone finishes at the last arrival (40 ms).
        assert_eq!(env.released_at, Some(Nanos::from_millis(40)));
        for t in &out.finish_times {
            assert_eq!(*t, Nanos::from_millis(40));
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn permanent_park_is_a_deadlock() {
        struct Sleeper;
        impl Process<()> for Sleeper {
            fn wake(&mut self, _now: Nanos, _env: &mut (), _waker: &mut Waker) -> Wake {
                Wake::Park
            }
        }
        run_processes(&mut [Sleeper], &mut ());
    }

    #[test]
    #[should_panic(expected = "not parked")]
    fn waking_unparked_process_panics() {
        struct Rogue;
        impl Process<()> for Rogue {
            fn wake(&mut self, now: Nanos, _env: &mut (), waker: &mut Waker) -> Wake {
                waker.wake_at(0, now); // targets itself, which is running
                Wake::Done
            }
        }
        run_processes(&mut [Rogue], &mut ());
    }

    #[test]
    fn deterministic_repeat() {
        let build = || {
            vec![
                Ticker {
                    id: 0,
                    period: Dur::from_micros(7),
                    remaining: 50,
                    start: Nanos::ZERO,
                },
                Ticker {
                    id: 1,
                    period: Dur::from_micros(11),
                    remaining: 30,
                    start: Nanos::ZERO,
                },
            ]
        };
        let mut log_a = Vec::new();
        run_processes(&mut build(), &mut log_a);
        let mut log_b = Vec::new();
        run_processes(&mut build(), &mut log_b);
        assert_eq!(log_a, log_b);
    }
}
