//! Run telemetry: counters and scoped phase timers behind a [`Collector`]
//! trait.
//!
//! The default collector is a no-op and the global enabled flag is false, so
//! instrumentation sites cost one relaxed atomic load on the off path and
//! emit nothing. Installing an [`AtomicCollector`] (done by
//! `reproduce --telemetry` / `reproduce profile`) flips the flag and routes
//! counter increments into a fixed array of atomics and span events into a
//! mutex-guarded buffer.
//!
//! Design constraints:
//!
//! - This crate sits at the bottom of the workspace dependency graph — it
//!   must not depend on any other `bps-*` crate, because `bps-core`,
//!   `bps-sim`, `bps-fs`, and `bps-experiments` all instrument through it.
//! - Telemetry must never perturb simulation results: collection is
//!   observation-only (no RNG draws, no virtual-clock access), so golden
//!   outputs stay byte-identical whether it is on or off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Every counter the harness can report, in registry order.
///
/// The discriminant doubles as the index into [`AtomicCollector`]'s counter
/// array, and [`Counter::ALL`] is the single source of truth for the
/// generated `telemetry.md` reference page and the final JSONL snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Simulator process wake-ups across all runs.
    EngineWakes,
    /// I/O records emitted into record sinks.
    SinkRecords,
    /// Record batches flushed by the cluster wake loop.
    SinkBatches,
    /// In-process memo (L1) cache hits in the scenario engine.
    CacheL1Hits,
    /// In-process memo (L1) cache misses in the scenario engine.
    CacheL1Misses,
    /// Persistent case-store (L2) hits.
    CacheL2Hits,
    /// Persistent case-store (L2) lookups that fell through to
    /// simulation (absent, stale, or corrupt entries).
    CacheL2Misses,
    /// Persistent case-store (L2) entries rejected as stale.
    CacheL2Stale,
    /// Persistent case-store (L2) entries rejected as corrupt.
    CacheL2Corrupt,
    /// Case results written into the persistent store.
    CacheL2Writes,
    /// Injected transient device errors.
    FaultDeviceErrors,
    /// Injected network chunk losses.
    FaultLinkLosses,
    /// I/O attempts refused because a server outage window was active.
    FaultOutageRefusals,
    /// I/O issues whose service time was scaled by a slowdown window.
    FaultSlowdowns,
    /// Retry attempts issued by the bounded-backoff retry layer.
    RetryAttempts,
    /// Operations abandoned by the retry layer (deadline exceeded).
    RetryAbandoned,
    /// Operations that exhausted every retry attempt.
    RetryExhausted,
    /// Sweep units (case × seed) executed to completion.
    SweepUnits,
    /// Sweep units that failed (panic, timeout, or error).
    SweepFailures,
}

impl Counter {
    /// Registry order; index == discriminant.
    pub const ALL: [Counter; 19] = [
        Counter::EngineWakes,
        Counter::SinkRecords,
        Counter::SinkBatches,
        Counter::CacheL1Hits,
        Counter::CacheL1Misses,
        Counter::CacheL2Hits,
        Counter::CacheL2Misses,
        Counter::CacheL2Stale,
        Counter::CacheL2Corrupt,
        Counter::CacheL2Writes,
        Counter::FaultDeviceErrors,
        Counter::FaultLinkLosses,
        Counter::FaultOutageRefusals,
        Counter::FaultSlowdowns,
        Counter::RetryAttempts,
        Counter::RetryAbandoned,
        Counter::RetryExhausted,
        Counter::SweepUnits,
        Counter::SweepFailures,
    ];

    /// Stable dotted name used in JSONL snapshots and reference docs.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EngineWakes => "engine.wakes",
            Counter::SinkRecords => "sink.records",
            Counter::SinkBatches => "sink.batches",
            Counter::CacheL1Hits => "cache.l1.hits",
            Counter::CacheL1Misses => "cache.l1.misses",
            Counter::CacheL2Hits => "cache.l2.hits",
            Counter::CacheL2Misses => "cache.l2.misses",
            Counter::CacheL2Stale => "cache.l2.stale",
            Counter::CacheL2Corrupt => "cache.l2.corrupt",
            Counter::CacheL2Writes => "cache.l2.writes",
            Counter::FaultDeviceErrors => "fault.device-errors",
            Counter::FaultLinkLosses => "fault.link-losses",
            Counter::FaultOutageRefusals => "fault.outage-refusals",
            Counter::FaultSlowdowns => "fault.slowdowns",
            Counter::RetryAttempts => "retry.attempts",
            Counter::RetryAbandoned => "retry.abandoned",
            Counter::RetryExhausted => "retry.exhausted",
            Counter::SweepUnits => "sweep.units",
            Counter::SweepFailures => "sweep.failures",
        }
    }

    /// One-line description for the generated reference page.
    pub fn describe(self) -> &'static str {
        match self {
            Counter::EngineWakes => "simulator process wake-ups across all runs",
            Counter::SinkRecords => "I/O records emitted into record sinks",
            Counter::SinkBatches => "record batches flushed by the cluster wake loop",
            Counter::CacheL1Hits => "in-process memo (L1) hits in the scenario engine",
            Counter::CacheL1Misses => "in-process memo (L1) misses in the scenario engine",
            Counter::CacheL2Hits => "persistent case-store (L2) hits",
            Counter::CacheL2Misses => {
                "persistent case-store (L2) lookups that fell through to simulation"
            }
            Counter::CacheL2Stale => {
                "persistent case-store (L2) entries rejected as stale (foreign build fingerprint)"
            }
            Counter::CacheL2Corrupt => {
                "persistent case-store (L2) entries rejected as corrupt (checksum or framing)"
            }
            Counter::CacheL2Writes => "case results written into the persistent store",
            Counter::FaultDeviceErrors => "injected transient device errors",
            Counter::FaultLinkLosses => "injected network chunk losses",
            Counter::FaultOutageRefusals => {
                "I/O attempts refused because a server outage window was active"
            }
            Counter::FaultSlowdowns => {
                "I/O issues whose service time was scaled by a slowdown window"
            }
            Counter::RetryAttempts => "retry attempts issued by the bounded-backoff retry layer",
            Counter::RetryAbandoned => {
                "operations abandoned by the retry layer (deadline exceeded)"
            }
            Counter::RetryExhausted => "operations that exhausted every retry attempt",
            Counter::SweepUnits => "sweep units (case × seed) executed to completion",
            Counter::SweepFailures => "sweep units that failed (panic, timeout, or error)",
        }
    }
}

/// A timestamped interval captured by the collector. Times are offsets from
/// the collector's installation instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A named phase span (target run, engine stage, ...).
    Phase {
        name: String,
        start: Duration,
        end: Duration,
    },
    /// One sweep unit: a single (case, seed) simulation.
    Unit {
        case: String,
        seed: u64,
        start: Duration,
        end: Duration,
    },
}

/// Sink for telemetry. Implementations must be cheap and must never block
/// the caller on anything slower than a short uncontended mutex.
pub trait Collector: Send + Sync {
    /// Add `n` to a counter.
    fn add(&self, counter: Counter, n: u64);
    /// Record a completed phase span.
    fn phase_span(&self, name: &str, start: Duration, end: Duration);
    /// Record a completed sweep unit.
    fn unit_span(&self, case: &str, seed: u64, start: Duration, end: Duration);
    /// Offset of "now" from the collector's epoch.
    fn now(&self) -> Duration;
    /// Snapshot of every counter, in [`Counter::ALL`] order.
    fn snapshot(&self) -> Vec<(Counter, u64)>;
    /// Drain buffered events (in capture order).
    fn drain_events(&self) -> Vec<Event>;
}

/// Discards everything. Used when telemetry is off; instrumentation sites
/// never reach it because they check [`enabled`] first.
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn add(&self, _counter: Counter, _n: u64) {}
    fn phase_span(&self, _name: &str, _start: Duration, _end: Duration) {}
    fn unit_span(&self, _case: &str, _seed: u64, _start: Duration, _end: Duration) {}
    fn now(&self) -> Duration {
        Duration::ZERO
    }
    fn snapshot(&self) -> Vec<(Counter, u64)> {
        Counter::ALL.iter().map(|&c| (c, 0)).collect()
    }
    fn drain_events(&self) -> Vec<Event> {
        Vec::new()
    }
}

/// Thread-safe collector: counters in a fixed array of atomics, events in a
/// mutex-guarded buffer. Counter updates are monotone non-decreasing.
pub struct AtomicCollector {
    epoch: Instant,
    counters: [AtomicU64; Counter::ALL.len()],
    events: Mutex<Vec<Event>>,
}

impl AtomicCollector {
    pub fn new() -> Self {
        AtomicCollector {
            epoch: Instant::now(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            events: Mutex::new(Vec::new()),
        }
    }
}

impl Default for AtomicCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector for AtomicCollector {
    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn phase_span(&self, name: &str, start: Duration, end: Duration) {
        self.events.lock().unwrap().push(Event::Phase {
            name: name.to_string(),
            start,
            end,
        });
    }

    fn unit_span(&self, case: &str, seed: u64, start: Duration, end: Duration) {
        self.events.lock().unwrap().push(Event::Unit {
            case: case.to_string(),
            seed,
            start,
            end,
        });
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn snapshot(&self) -> Vec<(Counter, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c, self.counters[c as usize].load(Ordering::Relaxed)))
            .collect()
    }

    fn drain_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Arc<dyn Collector>> = OnceLock::new();

/// True once a collector has been installed. The off-path cost of every
/// instrumentation site is this single relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install the process-wide collector. First install wins (the CLI installs
/// exactly once, before any work runs); later calls are ignored.
pub fn install(collector: Arc<dyn Collector>) {
    if COLLECTOR.set(collector).is_ok() {
        ENABLED.store(true, Ordering::SeqCst);
    }
}

fn collector() -> &'static Arc<dyn Collector> {
    static NOOP: OnceLock<Arc<dyn Collector>> = OnceLock::new();
    COLLECTOR
        .get()
        .unwrap_or_else(|| NOOP.get_or_init(|| Arc::new(NoopCollector)))
}

/// Add `n` to a counter. No-op (one relaxed load) when telemetry is off.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() && n > 0 {
        collector().add(counter, n);
    }
}

/// Increment a counter by one.
#[inline]
pub fn incr(counter: Counter) {
    if enabled() {
        collector().add(counter, 1);
    }
}

/// Scoped phase timer: records a [`Event::Phase`] span when dropped.
/// Constructing one while telemetry is off is free (no allocation, no clock
/// read).
pub struct PhaseGuard {
    inner: Option<(String, Duration)>,
}

impl PhaseGuard {
    /// A guard that records nothing.
    pub fn disabled() -> Self {
        PhaseGuard { inner: None }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            let c = collector();
            let end = c.now();
            c.phase_span(&name, start, end);
        }
    }
}

/// Open a scoped phase span named `name`.
pub fn phase(name: &str) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard::disabled();
    }
    PhaseGuard {
        inner: Some((name.to_string(), collector().now())),
    }
}

/// Offset of "now" from the collector epoch, for callers that time a region
/// manually (sweep units). Returns [`Duration::ZERO`] when off.
pub fn now() -> Duration {
    if !enabled() {
        return Duration::ZERO;
    }
    collector().now()
}

/// Record one completed sweep unit (a single case × seed simulation).
pub fn unit(case: &str, seed: u64, start: Duration) {
    if !enabled() {
        return;
    }
    let c = collector();
    let end = c.now();
    c.unit_span(case, seed, start, end);
}

/// Snapshot every counter in registry order.
pub fn snapshot() -> Vec<(Counter, u64)> {
    collector().snapshot()
}

/// Drain buffered span events.
pub fn drain_events() -> Vec<Event> {
    collector().drain_events()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registry_is_consistent() {
        // Discriminants index ALL, and names are unique and dotted.
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c as usize, i, "{:?} out of registry order", c);
            assert!(c.name().contains('.'), "{:?} name not dotted", c);
            assert!(!c.describe().is_empty());
        }
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len(), "duplicate counter names");
    }

    #[test]
    fn atomic_collector_accumulates_and_snapshots() {
        let c = AtomicCollector::new();
        c.add(Counter::EngineWakes, 5);
        c.add(Counter::EngineWakes, 7);
        c.add(Counter::RetryAttempts, 1);
        let snap = c.snapshot();
        assert_eq!(snap.len(), Counter::ALL.len());
        let get = |want: Counter| snap.iter().find(|(c, _)| *c == want).unwrap().1;
        assert_eq!(get(Counter::EngineWakes), 12);
        assert_eq!(get(Counter::RetryAttempts), 1);
        assert_eq!(get(Counter::SweepUnits), 0);
    }

    #[test]
    fn atomic_collector_buffers_spans_in_order() {
        let c = AtomicCollector::new();
        c.phase_span("expand", Duration::from_micros(1), Duration::from_micros(2));
        c.unit_span("hdd", 3, Duration::from_micros(2), Duration::from_micros(9));
        let events = c.drain_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], Event::Phase { name, .. } if name == "expand"));
        assert!(
            matches!(&events[1], Event::Unit { case, seed, .. } if case == "hdd" && *seed == 3)
        );
        assert!(c.drain_events().is_empty(), "drain must consume");
    }

    #[test]
    fn counters_are_monotone_under_concurrency() {
        let c = Arc::new(AtomicCollector::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.add(Counter::SinkRecords, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = c.snapshot();
        let records = snap
            .iter()
            .find(|(k, _)| *k == Counter::SinkRecords)
            .unwrap()
            .1;
        assert_eq!(records, 4000);
    }

    #[test]
    fn noop_collector_reports_zeros() {
        let c = NoopCollector;
        c.add(Counter::EngineWakes, 99);
        assert!(c.snapshot().iter().all(|&(_, v)| v == 0));
        assert!(c.drain_events().is_empty());
    }
}
