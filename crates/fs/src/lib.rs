//! # bps-fs — simulated local and parallel file systems
//!
//! The paper's testbed accessed data through a local file system (on HDD or
//! SSD) and through PVFS2 striped over 1–8 I/O servers. This crate builds
//! both on top of `bps-sim`:
//!
//! * [`layout`] — PVFS-style round-robin stripe mapping, including the
//!   per-file layout attributes the paper sets in §IV.C.3 to pin each file
//!   to a single I/O server ("we limited each file to locate on one I/O
//!   server by setting the file stripe layout attributes").
//! * [`cluster`] — the simulated machines: client nodes and I/O server
//!   nodes (NIC links + device + server CPU cost) joined by a switch, plus
//!   the shared [`bps_core::trace::Trace`] into which every layer records.
//! * [`localfs`] — a local file system: per-op syscall/FS overhead in front
//!   of one device, contiguous extent allocation.
//! * [`pfs`] — the PVFS2-like parallel file system client: splits requests
//!   into per-server chunks, issues them concurrently, completes at the
//!   last chunk.
//! * [`content`] — an optional sparse in-memory content store so
//!   correctness tests (striping round-trips, data-sieving extraction) can
//!   verify actual bytes, while large timing-only simulations skip it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod content;
pub mod file;
pub mod layout;
pub mod localfs;
pub mod pfs;

pub use cluster::{Cluster, ClusterConfig};
pub use layout::{Chunk, StripeLayout};
pub use localfs::LocalFs;
pub use pfs::ParallelFs;
