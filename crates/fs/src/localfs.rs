//! The local file system: one device, per-operation software overhead.
//!
//! Models the paper's "data was accessed through local file systems mounted
//! on HDD, SSD" path. Every request pays a fixed syscall + VFS + FS cost in
//! front of the device, which is what makes small-record sequential reads so
//! much slower than large-record ones (paper Figures 5–8). Calibrated so a
//! 4 KB-record sequential HDD read lands near the paper's Figure 7 anchor
//! (IOPS ≈ 5000, ~20 MB/s) and large records approach the sustained rate.

use crate::cluster::Cluster;
use crate::content::SparseStore;
use crate::file::FileMeta;
use crate::layout::StripeLayout;
use bps_core::block::BLOCK_SIZE;
use bps_core::error::IoError;
use bps_core::record::{FileId, IoOp, ProcessId};
use bps_core::sink::RecordSink;
use bps_core::time::{Dur, Nanos};

/// A local file system on one server's device.
pub struct LocalFs {
    /// Cluster server whose device backs this file system.
    server: usize,
    /// Per-request software cost (syscall, VFS, block mapping).
    per_op_overhead: Dur,
    files: Vec<FileMeta>,
    /// Next free LBA on the device (contiguous extent allocator).
    next_lba: u64,
    /// Optional byte-level contents for correctness tests.
    content: Option<SparseStore>,
}

impl LocalFs {
    /// Default per-op software cost (calibrated against paper Fig. 7).
    pub const DEFAULT_OVERHEAD: Dur = Dur(120_000);

    /// A local FS on `server`'s device.
    pub fn new(server: usize) -> Self {
        LocalFs {
            server,
            per_op_overhead: Self::DEFAULT_OVERHEAD,
            files: Vec::new(),
            next_lba: 64,
            content: None,
        }
    }

    /// Override the per-op overhead (calibration knob).
    pub fn with_overhead(mut self, overhead: Dur) -> Self {
        self.per_op_overhead = overhead;
        self
    }

    /// Enable byte-level content tracking (small files only).
    pub fn with_content(mut self) -> Self {
        self.content = Some(SparseStore::new());
        self
    }

    /// Create a file of `size` bytes as one contiguous extent.
    pub fn create(&mut self, size: u64) -> FileId {
        let id = FileId(self.files.len() as u32);
        let blocks = bps_core::block::blocks_for_bytes(size);
        self.files.push(FileMeta {
            id,
            size,
            layout: StripeLayout::new(u64::MAX / 2, vec![self.server]),
            base_lba: vec![self.next_lba],
        });
        self.next_lba += blocks;
        id
    }

    /// Size of a file.
    pub fn file_size(&self, file: FileId) -> u64 {
        self.files[file.0 as usize].size
    }

    /// Perform a read or write of `[offset, offset+len)`, issued at `now`.
    /// Returns the completion instant. Records the file-system-layer data
    /// movement into the cluster trace; the caller records the
    /// application-layer view. A fault-injected device error or outage
    /// surfaces as `Err`; no file-system record is emitted for the failed
    /// attempt (the middleware records retries).
    #[allow(clippy::too_many_arguments)]
    pub fn io<S: RecordSink>(
        &mut self,
        cluster: &mut Cluster<S>,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        len: u64,
        op: IoOp,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        let meta = &self.files[file.0 as usize];
        if offset + len > meta.size {
            return Err(IoError::BeyondEof {
                offset,
                len,
                size: meta.size,
            });
        }
        let lba = meta.base_lba[0] + offset / BLOCK_SIZE;
        let t0 = now + self.per_op_overhead;
        let done = cluster.local_io(pid, file, self.server, lba, len, op, t0)?;
        cluster.record_fs_access(pid, file, offset, len, op, now, done);
        Ok(done)
    }

    /// Convenience read.
    #[allow(clippy::too_many_arguments)]
    pub fn read<S: RecordSink>(
        &mut self,
        cluster: &mut Cluster<S>,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        len: u64,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        self.io(cluster, pid, file, offset, len, IoOp::Read, now)
    }

    /// Convenience write.
    #[allow(clippy::too_many_arguments)]
    pub fn write<S: RecordSink>(
        &mut self,
        cluster: &mut Cluster<S>,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        len: u64,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        self.io(cluster, pid, file, offset, len, IoOp::Write, now)
    }

    /// Store bytes (content mode only; timing unaffected).
    pub fn store_bytes(&mut self, file: FileId, offset: u64, data: &[u8]) {
        self.content
            .as_mut()
            .expect("content tracking not enabled")
            .write(file, offset, data);
    }

    /// Load bytes (content mode only).
    pub fn load_bytes(&self, file: FileId, offset: u64, len: u64) -> Vec<u8> {
        self.content
            .as_ref()
            .expect("content tracking not enabled")
            .read(file, offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, DeviceSpec};
    use bps_core::record::Layer;
    use bps_sim::device::DiskSched;
    use bps_sim::rng::Jitter;

    fn hdd_cluster() -> Cluster {
        let mut cfg = ClusterConfig::hdd_cluster(1, 1, 42);
        cfg.jitter = Jitter::NONE;
        Cluster::new(&cfg)
    }

    #[test]
    fn figure_7_anchor_4kb_sequential_hdd() {
        // Sequential 4 KB reads: per-op time ≈ overhead(120us) +
        // controller(60us) + transfer(43us) ≈ 223 us ⇒ IOPS ≈ 4500,
        // same order as the paper's 5156.
        let mut cluster = hdd_cluster();
        let mut fs = LocalFs::new(0);
        let f = fs.create(1 << 20);
        // First read pays the initial seek to the file's extent; measure
        // the steady state after it.
        let warm = fs
            .read(&mut cluster, ProcessId(0), f, 0, 4096, Nanos::ZERO)
            .unwrap();
        let mut now = warm;
        let n = 64;
        for i in 1..=n {
            now = fs
                .read(&mut cluster, ProcessId(0), f, i * 4096, 4096, now)
                .unwrap();
        }
        let per_op = now.since(warm).as_secs_f64() / n as f64;
        let iops = 1.0 / per_op;
        assert!((3500.0..6000.0).contains(&iops), "IOPS {iops}");
    }

    #[test]
    fn larger_records_much_faster_per_byte() {
        let mut cluster = hdd_cluster();
        let mut fs = LocalFs::new(0);
        let f = fs.create(64 << 20);
        // 4 MB in 4 KB records vs one 4 MB record.
        let mut now = Nanos::ZERO;
        for i in 0..1024u64 {
            now = fs
                .read(&mut cluster, ProcessId(0), f, i * 4096, 4096, now)
                .unwrap();
        }
        let small_total = now.since(Nanos::ZERO);
        let mut cluster2 = hdd_cluster();
        let mut fs2 = LocalFs::new(0);
        let f2 = fs2.create(64 << 20);
        let big_done = fs2
            .read(&mut cluster2, ProcessId(0), f2, 0, 4 << 20, Nanos::ZERO)
            .unwrap();
        let big_total = big_done.since(Nanos::ZERO);
        assert!(
            small_total.as_secs_f64() > 3.0 * big_total.as_secs_f64(),
            "small {small_total} vs big {big_total}"
        );
    }

    #[test]
    fn fs_layer_records_data_moved() {
        let mut cluster = hdd_cluster();
        let mut fs = LocalFs::new(0);
        let f = fs.create(1 << 20);
        fs.read(&mut cluster, ProcessId(0), f, 0, 8192, Nanos::ZERO)
            .unwrap();
        let trace = cluster.take_trace();
        assert_eq!(trace.op_count(Layer::FileSystem), 1);
        assert_eq!(trace.bytes(Layer::FileSystem), 8192);
    }

    #[test]
    fn files_get_disjoint_extents() {
        let mut fs = LocalFs::new(0);
        let a = fs.create(1 << 20);
        let b = fs.create(1 << 20);
        let ma = &fs.files[a.0 as usize];
        let mb = &fs.files[b.0 as usize];
        assert!(mb.base_lba[0] >= ma.base_lba[0] + (1 << 20) / BLOCK_SIZE);
    }

    #[test]
    fn read_past_eof_is_a_typed_error() {
        let mut cluster = hdd_cluster();
        let mut fs = LocalFs::new(0);
        let f = fs.create(4096);
        let err = fs
            .read(&mut cluster, ProcessId(0), f, 0, 8192, Nanos::ZERO)
            .unwrap_err();
        assert!(
            matches!(err, IoError::BeyondEof { size: 4096, .. }),
            "{err}"
        );
    }

    #[test]
    fn content_mode_roundtrip() {
        let mut fs = LocalFs::new(0).with_content();
        let f = fs.create(1 << 16);
        fs.store_bytes(f, 100, b"payload");
        assert_eq!(fs.load_bytes(f, 100, 7), b"payload");
    }

    #[test]
    fn ssd_beats_hdd_on_small_reads() {
        let mk = |device: DeviceSpec| {
            let cfg = ClusterConfig {
                servers: 1,
                clients: 1,
                device,
                sched: DiskSched::Fifo,
                server_cpu: Dur::from_micros(25),
                jitter: Jitter::NONE,
                seed: 7,
                record_device_layer: false,
                record_net_layer: false,
                fault: bps_sim::fault::FaultPlan::none(),
            };
            Cluster::new(&cfg)
        };
        let run = |cluster: &mut Cluster| {
            let mut fs = LocalFs::new(0);
            let f = fs.create(1 << 22);
            let mut now = Nanos::ZERO;
            for i in 0..256u64 {
                // Random-ish strided access pattern (stride breaks streaming).
                let off = (i * 37 % 1024) * 4096;
                now = fs.read(cluster, ProcessId(0), f, off, 4096, now).unwrap();
            }
            now
        };
        let mut hdd = mk(DeviceSpec::Hdd(
            bps_sim::device::hdd::HddProfile::sata_7200_250gb(),
        ));
        let mut ssd = mk(DeviceSpec::Ssd(
            bps_sim::device::ssd::SsdProfile::pcie_x4_100gb(),
        ));
        let t_hdd = run(&mut hdd);
        let t_ssd = run(&mut ssd);
        assert!(
            t_ssd.since(Nanos::ZERO).as_secs_f64() * 5.0 < t_hdd.since(Nanos::ZERO).as_secs_f64(),
            "ssd {t_ssd} hdd {t_hdd}"
        );
    }
}
