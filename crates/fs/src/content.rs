//! Sparse in-memory file contents.
//!
//! Timing-only simulations never materialize data — a 64 GB IOzone file
//! would not fit in memory. Correctness tests do need bytes, though:
//! striping round-trips and data-sieving extraction are verified against
//! this sparse store, where unwritten regions read as zeros (matching POSIX
//! holes).

use bps_core::record::FileId;
use std::collections::HashMap;

/// Chunk granularity of the sparse store.
const CHUNK: u64 = 4096;

/// A sparse, zero-default byte store keyed by file.
#[derive(Debug, Default)]
pub struct SparseStore {
    chunks: HashMap<(FileId, u64), Box<[u8; CHUNK as usize]>>,
}

impl SparseStore {
    /// An empty store.
    pub fn new() -> Self {
        SparseStore::default()
    }

    /// Write `data` at `offset` of `file`.
    pub fn write(&mut self, file: FileId, offset: u64, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let chunk_idx = abs / CHUNK;
            let within = (abs % CHUNK) as usize;
            let n = (CHUNK as usize - within).min(data.len() - pos);
            let chunk = self
                .chunks
                .entry((file, chunk_idx))
                .or_insert_with(|| Box::new([0u8; CHUNK as usize]));
            chunk[within..within + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    /// Read `len` bytes at `offset` of `file`; holes read as zeros.
    pub fn read(&self, file: FileId, offset: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        let mut pos = 0usize;
        while (pos as u64) < len {
            let abs = offset + pos as u64;
            let chunk_idx = abs / CHUNK;
            let within = (abs % CHUNK) as usize;
            let n = (CHUNK as usize - within).min(len as usize - pos);
            if let Some(chunk) = self.chunks.get(&(file, chunk_idx)) {
                out[pos..pos + n].copy_from_slice(&chunk[within..within + n]);
            }
            pos += n;
        }
        out
    }

    /// Number of materialized chunks (memory footprint indicator).
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_chunk() {
        let mut s = SparseStore::new();
        s.write(FileId(1), 10, b"hello");
        assert_eq!(s.read(FileId(1), 10, 5), b"hello");
    }

    #[test]
    fn roundtrip_across_chunk_boundary() {
        let mut s = SparseStore::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        s.write(FileId(0), CHUNK - 100, &data);
        assert_eq!(s.read(FileId(0), CHUNK - 100, 10_000), data);
        assert!(s.resident_chunks() >= 3);
    }

    #[test]
    fn holes_read_zero() {
        let mut s = SparseStore::new();
        s.write(FileId(0), 100, b"x");
        let out = s.read(FileId(0), 0, 200);
        assert_eq!(out[100], b'x');
        assert!(out[..100].iter().all(|&b| b == 0));
        assert!(out[101..].iter().all(|&b| b == 0));
        // Entirely unwritten file reads zeros.
        assert_eq!(s.read(FileId(9), 0, 16), vec![0u8; 16]);
    }

    #[test]
    fn files_are_isolated() {
        let mut s = SparseStore::new();
        s.write(FileId(1), 0, b"aaa");
        s.write(FileId(2), 0, b"bbb");
        assert_eq!(s.read(FileId(1), 0, 3), b"aaa");
        assert_eq!(s.read(FileId(2), 0, 3), b"bbb");
    }

    #[test]
    fn overwrite_wins() {
        let mut s = SparseStore::new();
        s.write(FileId(0), 0, b"aaaa");
        s.write(FileId(0), 1, b"bb");
        assert_eq!(s.read(FileId(0), 0, 4), b"abba");
    }

    #[test]
    fn sparse_storage_is_actually_sparse() {
        let mut s = SparseStore::new();
        // Two writes a gigabyte apart cost two chunks, not a gigabyte.
        s.write(FileId(0), 0, b"a");
        s.write(FileId(0), 1 << 30, b"b");
        assert_eq!(s.resident_chunks(), 2);
    }
}
