//! File metadata: size, layout, and on-device extent placement.

use crate::layout::StripeLayout;
use bps_core::record::FileId;
use serde::{Deserialize, Serialize};

/// Metadata of one simulated file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// Identifier used in trace records.
    pub id: FileId,
    /// Logical size in bytes.
    pub size: u64,
    /// How the file is distributed over servers.
    pub layout: StripeLayout,
    /// Base LBA of this file's contiguous extent on each layout slot's
    /// device (index-aligned with `layout.servers`). Files are allocated
    /// contiguously per server, so `LBA = base + server_offset / 512`.
    pub base_lba: Vec<u64>,
}

impl FileMeta {
    /// The device LBA holding byte `server_offset` of layout slot `slot`.
    pub fn lba_of(&self, slot: usize, server_offset: u64) -> u64 {
        self.base_lba[slot] + server_offset / bps_core::block::BLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_mapping() {
        let meta = FileMeta {
            id: FileId(1),
            size: 1 << 20,
            layout: StripeLayout::new(1024, vec![0, 1]),
            base_lba: vec![100, 200],
        };
        assert_eq!(meta.lba_of(0, 0), 100);
        assert_eq!(meta.lba_of(0, 512), 101);
        assert_eq!(meta.lba_of(1, 1024), 202);
    }
}
