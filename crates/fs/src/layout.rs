//! Stripe layout: how file bytes map onto I/O servers.
//!
//! PVFS2 distributes a file round-robin in fixed-size stripe units across a
//! list of I/O servers (default stripe size 64 KB). A file's layout is an
//! attribute set at creation time — which is how the paper's §IV.C.3
//! experiment pins each process's file onto its own single server.

use serde::{Deserialize, Serialize};

/// The default PVFS2 stripe unit.
pub const DEFAULT_STRIPE_SIZE: u64 = 64 * 1024;

/// One contiguous piece of a request, as served by one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// Actual cluster server index (an element of the layout's server list).
    pub server: usize,
    /// Position within the layout's server list (indexes per-slot extents).
    pub slot: usize,
    /// Byte offset inside that server's portion of the file.
    pub server_offset: u64,
    /// Byte offset inside the whole file.
    pub file_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A round-robin stripe layout over an explicit list of servers.
///
/// ```
/// use bps_fs::layout::StripeLayout;
/// // 64 KB stripes over 4 servers: a 256 KB read touches each server once.
/// let layout = StripeLayout::default_over(4);
/// let chunks = layout.map(0, 256 << 10);
/// assert_eq!(chunks.len(), 4);
/// assert_eq!(chunks.iter().map(|c| c.len).sum::<u64>(), 256 << 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    /// Stripe unit in bytes.
    pub stripe_size: u64,
    /// The I/O servers holding this file, in round-robin order. Cluster
    /// server indices; duplicates are not meaningful.
    pub servers: Vec<usize>,
}

impl StripeLayout {
    /// Round-robin over `servers` with the given stripe size.
    pub fn new(stripe_size: u64, servers: Vec<usize>) -> Self {
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(!servers.is_empty(), "layout needs at least one server");
        StripeLayout {
            stripe_size,
            servers,
        }
    }

    /// The PVFS2 default: 64 KB stripes over servers `0..n`.
    pub fn default_over(n: usize) -> Self {
        StripeLayout::new(DEFAULT_STRIPE_SIZE, (0..n).collect())
    }

    /// The paper's §IV.C.3 pinning: the whole file on one server.
    pub fn pinned(server: usize) -> Self {
        StripeLayout::new(DEFAULT_STRIPE_SIZE, vec![server])
    }

    /// Number of servers in the layout.
    pub fn width(&self) -> usize {
        self.servers.len()
    }

    /// Map the byte extent `[offset, offset+len)` onto per-server chunks,
    /// in ascending file-offset order. Adjacent stripe units that land on
    /// the same server (the single-server case) are coalesced.
    pub fn map(&self, offset: u64, len: u64) -> Vec<Chunk> {
        let mut chunks: Vec<Chunk> = Vec::new();
        if len == 0 {
            return chunks;
        }
        let n = self.servers.len() as u64;
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe_idx = pos / self.stripe_size;
            let within = pos % self.stripe_size;
            let piece = (self.stripe_size - within).min(end - pos);
            let server_slot = (stripe_idx % n) as usize;
            // How many complete passes over the server list precede this
            // stripe: that many stripe units already sit on this server.
            let passes = stripe_idx / n;
            let server_offset = passes * self.stripe_size + within;
            let server = self.servers[server_slot];
            match chunks.last_mut() {
                Some(last)
                    if last.server == server
                        && last.server_offset + last.len == server_offset
                        && last.file_offset + last.len == pos =>
                {
                    last.len += piece;
                }
                _ => chunks.push(Chunk {
                    server,
                    slot: server_slot,
                    server_offset,
                    file_offset: pos,
                    len: piece,
                }),
            }
            pos += piece;
        }
        chunks
    }

    /// Total bytes of the file that live on layout slot `slot` for a file
    /// of `file_size` bytes (used to size per-server extents at creation).
    pub fn server_share(&self, slot: usize, file_size: u64) -> u64 {
        let n = self.servers.len() as u64;
        let full_stripes = file_size / self.stripe_size;
        let tail = file_size % self.stripe_size;
        let full_passes = full_stripes / n;
        let extra = full_stripes % n;
        let slot64 = slot as u64;
        let mut share = full_passes * self.stripe_size;
        if slot64 < extra {
            share += self.stripe_size;
        } else if slot64 == extra {
            share += tail;
        }
        share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_request_exactly() {
        let l = StripeLayout::new(100, vec![0, 1, 2]);
        let chunks = l.map(37, 1000);
        // Lengths sum; file offsets are contiguous ascending.
        let total: u64 = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 1000);
        let mut pos = 37;
        for c in &chunks {
            assert_eq!(c.file_offset, pos);
            assert!(c.len > 0);
            pos += c.len;
        }
        assert_eq!(pos, 1037);
    }

    #[test]
    fn round_robin_assignment() {
        let l = StripeLayout::new(10, vec![5, 7]);
        let chunks = l.map(0, 40);
        let servers: Vec<usize> = chunks.iter().map(|c| c.server).collect();
        assert_eq!(servers, vec![5, 7, 5, 7]);
        // Server offsets advance per pass.
        assert_eq!(chunks[0].server_offset, 0);
        assert_eq!(chunks[2].server_offset, 10);
    }

    #[test]
    fn single_server_coalesces() {
        let l = StripeLayout::pinned(3);
        let chunks = l.map(0, 10 * DEFAULT_STRIPE_SIZE);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].server, 3);
        assert_eq!(chunks[0].len, 10 * DEFAULT_STRIPE_SIZE);
        assert_eq!(chunks[0].server_offset, 0);
    }

    #[test]
    fn unaligned_start_and_end() {
        let l = StripeLayout::new(100, vec![0, 1]);
        let chunks = l.map(150, 100);
        // [150,200) on server 1 (stripe 1), [200,250) on server 0 (stripe 2).
        assert_eq!(chunks.len(), 2);
        assert_eq!(
            chunks[0],
            Chunk {
                server: 1,
                slot: 1,
                server_offset: 50,
                file_offset: 150,
                len: 50
            }
        );
        assert_eq!(
            chunks[1],
            Chunk {
                server: 0,
                slot: 0,
                server_offset: 100,
                file_offset: 200,
                len: 50
            }
        );
    }

    #[test]
    fn empty_request_maps_to_nothing() {
        let l = StripeLayout::default_over(4);
        assert!(l.map(123, 0).is_empty());
    }

    #[test]
    fn server_share_sums_to_file_size() {
        let l = StripeLayout::new(100, vec![0, 1, 2]);
        for size in [0u64, 1, 99, 100, 250, 299, 300, 301, 1000] {
            let total: u64 = (0..3).map(|s| l.server_share(s, size)).sum();
            assert_eq!(total, size, "size {size}");
        }
    }

    #[test]
    fn server_share_matches_map() {
        let l = StripeLayout::new(64, vec![0, 1, 2, 3]);
        let size = 1000;
        let chunks = l.map(0, size);
        for slot in 0..4 {
            let mapped: u64 = chunks
                .iter()
                .filter(|c| c.server == l.servers[slot])
                .map(|c| c.len)
                .sum();
            assert_eq!(mapped, l.server_share(slot, size), "slot {slot}");
        }
    }

    #[test]
    fn default_over_uses_pvfs_stripe() {
        let l = StripeLayout::default_over(8);
        assert_eq!(l.stripe_size, 64 * 1024);
        assert_eq!(l.width(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_server_list_rejected() {
        let _ = StripeLayout::new(64, vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stripe_rejected() {
        let _ = StripeLayout::new(0, vec![0]);
    }
}
