//! The simulated cluster: clients, I/O servers, switch, and the shared
//! trace.
//!
//! Mirrors the paper's testbed topology — client nodes and I/O server nodes
//! on Gigabit Ethernet through one switch, each server with its own disk —
//! at the fidelity the experiments need: every NIC, the switch backplane,
//! each server CPU, and each device is a contended FIFO resource.

use crate::layout::Chunk;
use bps_core::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
use bps_core::sink::RecordSink;
use bps_core::time::{Dur, Nanos};
use bps_core::trace::Trace;
use bps_sim::device::hdd::{Hdd, HddProfile};
use bps_sim::device::raid0::Raid0;
use bps_sim::device::ram::Ram;
use bps_sim::device::ssd::{Ssd, SsdProfile};
use bps_sim::device::{Device, DeviceReq, DiskSched};
use bps_sim::net::{Link, Switch};
use bps_sim::rng::{Jitter, SimRng};

/// Which device model an I/O server carries.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceSpec {
    /// Rotating disk.
    Hdd(HddProfile),
    /// RAID-0 array of rotating disks.
    Raid0 {
        /// Member disk profile.
        member: HddProfile,
        /// Number of members.
        members: usize,
    },
    /// Flash SSD.
    Ssd(SsdProfile),
    /// Constant-cost device (tests).
    Ram {
        /// Fixed per-op latency.
        fixed: Dur,
        /// Bytes per second.
        rate: u64,
        /// Capacity in bytes.
        capacity: u64,
    },
}

impl DeviceSpec {
    fn build(&self, sched: DiskSched, jitter: Jitter, rng: SimRng) -> Device {
        match self {
            DeviceSpec::Hdd(p) => Device::new(Box::new(Hdd::new(p.clone())), sched, jitter, rng),
            DeviceSpec::Raid0 { member, members } => Device::new(
                Box::new(Raid0::new(member.clone(), *members)),
                sched,
                jitter,
                rng,
            ),
            DeviceSpec::Ssd(p) => Device::new(Box::new(Ssd::new(p.clone())), sched, jitter, rng),
            DeviceSpec::Ram {
                fixed,
                rate,
                capacity,
            } => Device::new(
                Box::new(Ram::new(*fixed, *rate, *capacity)),
                sched,
                jitter,
                rng,
            ),
        }
    }
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of I/O server nodes.
    pub servers: usize,
    /// Number of client nodes.
    pub clients: usize,
    /// Device on each server.
    pub device: DeviceSpec,
    /// Disk scheduling policy.
    pub sched: DiskSched,
    /// Per-request CPU cost on a server (request parsing, FS lookup).
    pub server_cpu: Dur,
    /// Service-time jitter.
    pub jitter: Jitter,
    /// Master seed; every device gets a forked stream.
    pub seed: u64,
    /// Also record `Layer::Device` records (adds one record per chunk).
    pub record_device_layer: bool,
}

impl ClusterConfig {
    /// A small HDD-backed cluster with sensible defaults.
    pub fn hdd_cluster(servers: usize, clients: usize, seed: u64) -> Self {
        ClusterConfig {
            servers,
            clients,
            device: DeviceSpec::Hdd(HddProfile::sata_7200_250gb()),
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::DEFAULT,
            seed,
            record_device_layer: false,
        }
    }
}

/// One I/O server node.
struct ServerNode {
    device: Device,
    nic_in: Link,
    nic_out: Link,
}

/// One client node.
struct ClientNode {
    nic_in: Link,
    nic_out: Link,
}

/// Size of a request header message on the wire.
const REQUEST_MSG: u64 = 128;
/// Size of a write acknowledgement on the wire.
const ACK_MSG: u64 = 64;

/// The assembled cluster plus the record sink being fed.
///
/// Generic over the [`RecordSink`] observing completed accesses: the
/// default `Trace` materializes every record as before, while e.g.
/// `StreamingMetrics` folds each record into constant-size accumulators
/// the moment the simulated request completes.
pub struct Cluster<S: RecordSink = Trace> {
    servers: Vec<ServerNode>,
    clients: Vec<ClientNode>,
    switch: Switch,
    server_cpu: Dur,
    record_device_layer: bool,
    /// The global record observer (paper §III.B Step 2). All layers feed
    /// it as each access completes; experiments read it back at the end of
    /// a run.
    pub sink: S,
}

impl Cluster<Trace> {
    /// Build a cluster from a config, collecting records into a [`Trace`].
    pub fn new(cfg: &ClusterConfig) -> Self {
        Cluster::with_sink(cfg, Trace::new())
    }

    /// Take the collected trace out of the cluster (end of a run).
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.sink)
    }
}

impl<S: RecordSink> Cluster<S> {
    /// Build a cluster from a config, streaming records into `sink`.
    pub fn with_sink(cfg: &ClusterConfig, sink: S) -> Self {
        assert!(cfg.servers >= 1, "cluster needs at least one server");
        assert!(cfg.clients >= 1, "cluster needs at least one client");
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let servers = (0..cfg.servers)
            .map(|i| ServerNode {
                device: cfg.device.build(cfg.sched, cfg.jitter, rng.fork(i as u64)),
                nic_in: Link::gigabit_ethernet(),
                nic_out: Link::gigabit_ethernet(),
            })
            .collect();
        let clients = (0..cfg.clients)
            .map(|_| ClientNode {
                nic_in: Link::gigabit_ethernet(),
                nic_out: Link::gigabit_ethernet(),
            })
            .collect();
        Cluster {
            servers,
            clients,
            switch: Switch::gigabit_cluster(),
            server_cpu: cfg.server_cpu,
            record_device_layer: cfg.record_device_layer,
            sink,
        }
    }

    /// Number of I/O servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of client nodes.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Direct (no-network) device I/O on server `s` — the local-file-system
    /// path. Returns the completion instant; records a `Layer::Device`
    /// record when enabled.
    #[allow(clippy::too_many_arguments)]
    pub fn local_io(
        &mut self,
        pid: ProcessId,
        file: FileId,
        server: usize,
        lba: u64,
        bytes: u64,
        op: IoOp,
        issue: Nanos,
    ) -> Nanos {
        let blocks = bps_core::block::blocks_for_bytes(bytes);
        let grant = self.servers[server]
            .device
            .submit(issue, DeviceReq { lba, blocks, op });
        if self.record_device_layer {
            self.sink.on_record(&IoRecord::new(
                pid,
                op,
                file,
                lba * bps_core::block::BLOCK_SIZE,
                bytes,
                grant.start,
                grant.end,
                Layer::Device,
            ));
        }
        grant.end
    }

    /// One chunk of remote I/O from client `c` to server `chunk.server`,
    /// issued at `issue`. Models the full path: client NIC → switch →
    /// server NIC → server CPU → device → (data back for reads / ack back
    /// for writes). Records a `Layer::FileSystem` record for the data moved
    /// and returns the completion instant at the client.
    #[allow(clippy::too_many_arguments)]
    pub fn remote_chunk_io(
        &mut self,
        pid: ProcessId,
        file: FileId,
        client: usize,
        chunk: &Chunk,
        lba: u64,
        op: IoOp,
        issue: Nanos,
    ) -> Nanos {
        let bytes = chunk.len;
        let blocks = bps_core::block::blocks_for_bytes(bytes);
        // Request (plus payload, for writes) travels client → server.
        let outbound = match op {
            IoOp::Read => REQUEST_MSG,
            IoOp::Write => REQUEST_MSG + bytes,
        };
        let t = self.clients[client].nic_out.transfer(issue, outbound);
        let t = self.switch.forward(t, outbound);
        let t = self.servers[chunk.server].nic_in.transfer(t, outbound);
        // Server CPU, then the disk.
        let dev_arrival = t + self.server_cpu;
        let grant = self.servers[chunk.server]
            .device
            .submit(dev_arrival, DeviceReq { lba, blocks, op });
        if self.record_device_layer {
            self.sink.on_record(&IoRecord::new(
                pid,
                op,
                file,
                lba * bps_core::block::BLOCK_SIZE,
                bytes,
                grant.start,
                grant.end,
                Layer::Device,
            ));
        }
        // Reply (payload for reads, ack for writes) travels server → client.
        let inbound = match op {
            IoOp::Read => bytes,
            IoOp::Write => ACK_MSG,
        };
        let t = self.servers[chunk.server]
            .nic_out
            .transfer(grant.end, inbound);
        let t = self.switch.forward(t, inbound);
        let done = self.clients[client].nic_in.transfer(t, inbound);
        self.sink.on_record(&IoRecord::new(
            pid,
            op,
            file,
            chunk.file_offset,
            bytes,
            issue,
            done,
            Layer::FileSystem,
        ));
        done
    }

    /// A client-to-client data shipment (the exchange phase of two-phase
    /// collective I/O): sender NIC -> switch -> receiver NIC. Returns the
    /// delivery instant.
    pub fn client_to_client(&mut self, from: usize, to: usize, bytes: u64, at: Nanos) -> Nanos {
        if from == to {
            // Local delivery: a memcpy, effectively free at this scale.
            return at;
        }
        let t = self.clients[from].nic_out.transfer(at, bytes);
        let t = self.switch.forward(t, bytes);
        self.clients[to].nic_in.transfer(t, bytes)
    }

    /// Record a file-system-layer access that bypassed the network path
    /// (local file systems) — data moved between FS and device.
    #[allow(clippy::too_many_arguments)]
    pub fn record_fs_access(
        &mut self,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        bytes: u64,
        op: IoOp,
        start: Nanos,
        end: Nanos,
    ) {
        self.sink.on_record(&IoRecord::new(
            pid,
            op,
            file,
            offset,
            bytes,
            start,
            end,
            Layer::FileSystem,
        ));
    }

    /// Device utilization counters of server `s` (tests, reports).
    pub fn device_stats(&self, server: usize) -> &bps_sim::resource::ResourceStats {
        self.servers[server].device.stats()
    }
}

impl<S: RecordSink> std::fmt::Debug for Cluster<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.servers.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ram_cluster(servers: usize, clients: usize) -> Cluster {
        Cluster::new(&ClusterConfig {
            servers,
            clients,
            device: DeviceSpec::Ram {
                fixed: Dur::from_micros(100),
                rate: 100_000_000,
                capacity: 1 << 40,
            },
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::NONE,
            seed: 1,
            record_device_layer: true,
        })
    }

    fn chunk(server: usize, len: u64) -> Chunk {
        Chunk {
            server,
            slot: 0,
            server_offset: 0,
            file_offset: 0,
            len,
        }
    }

    #[test]
    fn remote_read_pays_network_and_device() {
        let mut c = ram_cluster(1, 1);
        let done = c.remote_chunk_io(
            ProcessId(0),
            FileId(0),
            0,
            &chunk(0, 64 << 10),
            0,
            IoOp::Read,
            Nanos::ZERO,
        );
        let secs = done.since(Nanos::ZERO).as_secs_f64();
        // 64 KB device transfer (~655 us) + device fixed (100 us) + server
        // CPU (25 us) + request hop (~250 us of latency) + 64 KB data reply
        // over two NICs + switch (~1.3 ms total path). Sanity bounds:
        assert!((0.0015..0.0035).contains(&secs), "{secs}");
        // FS record captured, device record captured.
        use bps_core::record::Layer;
        assert_eq!(c.sink.op_count(Layer::FileSystem), 1);
        assert_eq!(c.sink.op_count(Layer::Device), 1);
        assert_eq!(c.sink.bytes(Layer::FileSystem), 64 << 10);
    }

    #[test]
    fn writes_ship_payload_outbound() {
        let mut c = ram_cluster(1, 1);
        let r = c.remote_chunk_io(
            ProcessId(0),
            FileId(0),
            0,
            &chunk(0, 1 << 20),
            0,
            IoOp::Read,
            Nanos::ZERO,
        );
        let mut c2 = ram_cluster(1, 1);
        let w = c2.remote_chunk_io(
            ProcessId(0),
            FileId(0),
            0,
            &chunk(0, 1 << 20),
            0,
            IoOp::Write,
            Nanos::ZERO,
        );
        // Same total payload crosses the wire once in each direction, so
        // read and write completions are within ~25% of each other.
        let ratio = w.since(Nanos::ZERO).as_secs_f64() / r.since(Nanos::ZERO).as_secs_f64();
        assert!((0.75..1.25).contains(&ratio), "{ratio}");
    }

    #[test]
    fn two_servers_parallelize() {
        // One big read split across two servers completes faster than the
        // same bytes on one server.
        let total = 4 << 20;
        let mut one = ram_cluster(1, 1);
        let a = one.remote_chunk_io(
            ProcessId(0),
            FileId(0),
            0,
            &chunk(0, total),
            0,
            IoOp::Read,
            Nanos::ZERO,
        );
        let mut two = ram_cluster(2, 1);
        let b1 = two.remote_chunk_io(
            ProcessId(0),
            FileId(0),
            0,
            &chunk(0, total / 2),
            0,
            IoOp::Read,
            Nanos::ZERO,
        );
        let b2 = two.remote_chunk_io(
            ProcessId(0),
            FileId(0),
            0,
            &chunk(1, total / 2),
            0,
            IoOp::Read,
            Nanos::ZERO,
        );
        let b = b1.max(b2);
        // Devices run in parallel; the shared client NIC still serializes
        // the replies, so the speedup is real but < 2x.
        assert!(b < a, "split {b} vs single {a}");
    }

    #[test]
    fn local_io_skips_network() {
        let mut c = ram_cluster(1, 1);
        let done = c.local_io(
            ProcessId(0),
            FileId(0),
            0,
            0,
            64 << 10,
            IoOp::Read,
            Nanos::ZERO,
        );
        // Just the device: 100 us fixed + ~655 us transfer.
        let secs = done.since(Nanos::ZERO).as_secs_f64();
        assert!((0.0006..0.0009).contains(&secs), "{secs}");
    }

    #[test]
    fn take_trace_drains() {
        let mut c = ram_cluster(1, 1);
        c.local_io(ProcessId(0), FileId(0), 0, 0, 512, IoOp::Read, Nanos::ZERO);
        c.record_fs_access(
            ProcessId(0),
            FileId(0),
            0,
            512,
            IoOp::Read,
            Nanos::ZERO,
            Nanos::from_micros(10),
        );
        let t = c.take_trace();
        assert_eq!(t.len(), 2);
        assert!(c.sink.is_empty());
    }

    #[test]
    fn streaming_sink_sees_the_same_records() {
        use bps_core::sink::StreamingMetrics;
        let cfg = ClusterConfig {
            servers: 1,
            clients: 1,
            device: DeviceSpec::Ram {
                fixed: Dur::from_micros(100),
                rate: 100_000_000,
                capacity: 1 << 40,
            },
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::NONE,
            seed: 1,
            record_device_layer: true,
        };
        let mut traced = Cluster::new(&cfg);
        let mut streamed = Cluster::with_sink(&cfg, StreamingMetrics::new());
        for c in 0..2u64 {
            traced.remote_chunk_io(
                ProcessId(0),
                FileId(0),
                0,
                &chunk(0, 64 << 10),
                c * 128,
                IoOp::Read,
                Nanos::from_micros(c * 5),
            );
            streamed.remote_chunk_io(
                ProcessId(0),
                FileId(0),
                0,
                &chunk(0, 64 << 10),
                c * 128,
                IoOp::Read,
                Nanos::from_micros(c * 5),
            );
        }
        use bps_core::record::Layer;
        assert_eq!(
            traced.sink.op_count(Layer::FileSystem),
            streamed.sink.op_count(Layer::FileSystem)
        );
        assert_eq!(
            traced.sink.overlapped_io_time(Layer::FileSystem),
            streamed.sink.overlapped_io_time(Layer::FileSystem)
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let mut cfg = ClusterConfig::hdd_cluster(1, 1, 0);
        cfg.servers = 0;
        let _ = Cluster::new(&cfg);
    }
}
