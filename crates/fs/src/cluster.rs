//! The simulated cluster: clients, I/O servers, switch, and the shared
//! trace.
//!
//! Mirrors the paper's testbed topology — client nodes and I/O server nodes
//! on Gigabit Ethernet through one switch, each server with its own disk —
//! at the fidelity the experiments need: every NIC, the switch backplane,
//! each server CPU, and each device is a contended FIFO resource.

use crate::layout::Chunk;
use bps_core::batch::RecordBatch;
use bps_core::error::IoError;
use bps_core::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
use bps_core::sink::RecordSink;
use bps_core::time::{Dur, Nanos};
use bps_core::trace::Trace;
use bps_sim::device::hdd::{Hdd, HddProfile};
use bps_sim::device::raid0::Raid0;
use bps_sim::device::ram::Ram;
use bps_sim::device::ssd::{Ssd, SsdProfile};
use bps_sim::device::{Device, DeviceReq, DiskSched};
use bps_sim::fault::{FaultInjector, FaultPlan};
use bps_sim::net::{Link, Switch};
use bps_sim::rng::{Jitter, SimRng};

/// Which device model an I/O server carries.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceSpec {
    /// Rotating disk.
    Hdd(HddProfile),
    /// RAID-0 array of rotating disks.
    Raid0 {
        /// Member disk profile.
        member: HddProfile,
        /// Number of members.
        members: usize,
    },
    /// Flash SSD.
    Ssd(SsdProfile),
    /// Constant-cost device (tests).
    Ram {
        /// Fixed per-op latency.
        fixed: Dur,
        /// Bytes per second.
        rate: u64,
        /// Capacity in bytes.
        capacity: u64,
    },
}

impl DeviceSpec {
    fn build(&self, sched: DiskSched, jitter: Jitter, rng: SimRng) -> Device {
        match self {
            DeviceSpec::Hdd(p) => Device::new(Box::new(Hdd::new(p.clone())), sched, jitter, rng),
            DeviceSpec::Raid0 { member, members } => Device::new(
                Box::new(Raid0::new(member.clone(), *members)),
                sched,
                jitter,
                rng,
            ),
            DeviceSpec::Ssd(p) => Device::new(Box::new(Ssd::new(p.clone())), sched, jitter, rng),
            DeviceSpec::Ram {
                fixed,
                rate,
                capacity,
            } => Device::new(
                Box::new(Ram::new(*fixed, *rate, *capacity)),
                sched,
                jitter,
                rng,
            ),
        }
    }
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of I/O server nodes.
    pub servers: usize,
    /// Number of client nodes.
    pub clients: usize,
    /// Device on each server.
    pub device: DeviceSpec,
    /// Disk scheduling policy.
    pub sched: DiskSched,
    /// Per-request CPU cost on a server (request parsing, FS lookup).
    pub server_cpu: Dur,
    /// Service-time jitter.
    pub jitter: Jitter,
    /// Master seed; every device gets a forked stream.
    pub seed: u64,
    /// Also record `Layer::Device` records (adds one record per chunk).
    pub record_device_layer: bool,
    /// Also record `Layer::Network` records for the payload leg of each
    /// remote chunk (adds one record per chunk).
    pub record_net_layer: bool,
    /// Fault injection plan. [`FaultPlan::none()`] (the default) is
    /// bit-for-bit neutral: the injector's randomness is derived from
    /// `(fault.seed, seed)` independently of the device streams, and every
    /// check short-circuits when its rate is zero.
    pub fault: FaultPlan,
}

impl ClusterConfig {
    /// A small HDD-backed cluster with sensible defaults.
    pub fn hdd_cluster(servers: usize, clients: usize, seed: u64) -> Self {
        ClusterConfig {
            servers,
            clients,
            device: DeviceSpec::Hdd(HddProfile::sata_7200_250gb()),
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::DEFAULT,
            seed,
            record_device_layer: false,
            record_net_layer: false,
            fault: FaultPlan::none(),
        }
    }
}

/// One I/O server node.
struct ServerNode {
    device: Device,
    nic_in: Link,
    nic_out: Link,
}

/// One client node.
struct ClientNode {
    nic_in: Link,
    nic_out: Link,
}

/// Size of a request header message on the wire.
const REQUEST_MSG: u64 = 128;
/// Size of a write acknowledgement on the wire.
const ACK_MSG: u64 = 64;

/// The assembled cluster plus the record sink being fed.
///
/// Generic over the [`RecordSink`] observing completed accesses: the
/// default `Trace` materializes every record as before, while e.g.
/// `StreamingMetrics` folds each record into constant-size accumulators
/// the moment the simulated request completes.
pub struct Cluster<S: RecordSink = Trace> {
    servers: Vec<ServerNode>,
    clients: Vec<ClientNode>,
    switch: Switch,
    server_cpu: Dur,
    record_device_layer: bool,
    record_net_layer: bool,
    fault: FaultInjector,
    /// The global record observer (paper §III.B Step 2). All layers feed
    /// it as each access completes; experiments read it back at the end of
    /// a run.
    pub sink: S,
    /// Records completed inside an open batch scope, buffered in
    /// structure-of-arrays form and awaiting one
    /// [`RecordSink::push_columns`] flush. Empty whenever
    /// `batch_depth == 0`.
    pending: RecordBatch,
    /// Nesting depth of open [`Cluster::begin_batch`] scopes. At depth 0
    /// every record goes straight to the sink, so callers that never open
    /// a scope (tests poking at `sink` between calls) see records
    /// immediately, exactly as before.
    batch_depth: u32,
    /// Records routed to the sink over this cluster's lifetime. Flushed to
    /// telemetry on drop so the hot path pays one integer add, not an
    /// atomic.
    tele_records: u64,
    /// Batch flushes delivered via `push_columns`, flushed like
    /// `tele_records`.
    tele_batches: u64,
}

impl Cluster<Trace> {
    /// Build a cluster from a config, collecting records into a [`Trace`].
    pub fn new(cfg: &ClusterConfig) -> Self {
        Cluster::with_sink(cfg, Trace::new())
    }

    /// Take the collected trace out of the cluster (end of a run).
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.sink)
    }
}

impl<S: RecordSink> Cluster<S> {
    /// Build a cluster from a config, streaming records into `sink`.
    pub fn with_sink(cfg: &ClusterConfig, sink: S) -> Self {
        assert!(cfg.servers >= 1, "cluster needs at least one server");
        assert!(cfg.clients >= 1, "cluster needs at least one client");
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let servers = (0..cfg.servers)
            .map(|i| ServerNode {
                device: cfg.device.build(cfg.sched, cfg.jitter, rng.fork(i as u64)),
                nic_in: Link::gigabit_ethernet(),
                nic_out: Link::gigabit_ethernet(),
            })
            .collect();
        let clients = (0..cfg.clients)
            .map(|_| ClientNode {
                nic_in: Link::gigabit_ethernet(),
                nic_out: Link::gigabit_ethernet(),
            })
            .collect();
        Cluster {
            servers,
            clients,
            switch: Switch::gigabit_cluster(),
            server_cpu: cfg.server_cpu,
            record_device_layer: cfg.record_device_layer,
            record_net_layer: cfg.record_net_layer,
            fault: FaultInjector::new(&cfg.fault, cfg.seed),
            sink,
            pending: PENDING_POOL.take(),
            batch_depth: 0,
            tele_records: 0,
            tele_batches: 0,
        }
    }

    /// Open a batch scope: records completed until the matching
    /// [`Cluster::end_batch`] are buffered and delivered to the sink as one
    /// [`RecordSink::push_batch`] call. Scopes nest; only the outermost
    /// close flushes, so a striped operation that fans out to per-chunk
    /// calls still yields a single batch per process wake.
    pub fn begin_batch(&mut self) {
        self.batch_depth += 1;
    }

    /// Close a batch scope, flushing buffered records to the sink when the
    /// outermost scope closes. Order of delivery is exactly completion
    /// order, so batched and unbatched runs feed the sink identically; the
    /// buffer is columnar, so column-aware sinks fold it without ever
    /// reassembling records.
    pub fn end_batch(&mut self) {
        debug_assert!(self.batch_depth > 0, "end_batch without begin_batch");
        self.batch_depth -= 1;
        if self.batch_depth == 0 && !self.pending.is_empty() {
            self.sink.push_columns(&self.pending);
            self.pending.clear();
            self.tele_batches += 1;
        }
    }

    /// Route one completed record to the sink: immediately at batch depth
    /// 0, buffered inside an open batch scope.
    #[inline]
    pub fn record(&mut self, record: IoRecord) {
        self.tele_records += 1;
        if self.batch_depth == 0 {
            self.sink.on_record(&record);
        } else {
            self.pending.push(&record);
        }
    }

    /// Open batch-scope depth; 0 means records flow straight to the sink.
    pub fn batch_depth(&self) -> u32 {
        self.batch_depth
    }

    /// Number of I/O servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of client nodes.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Direct (no-network) device I/O on server `s` — the local-file-system
    /// path. Returns the completion instant; records a `Layer::Device`
    /// record when enabled. Under fault injection, an outage fails fast
    /// (no network on this path) and a transient device error surfaces at
    /// the grant's end — the device did the work, the data is bad.
    #[allow(clippy::too_many_arguments)]
    pub fn local_io(
        &mut self,
        pid: ProcessId,
        file: FileId,
        server: usize,
        lba: u64,
        bytes: u64,
        op: IoOp,
        issue: Nanos,
    ) -> Result<Nanos, IoError> {
        if let Some(until) = self.fault.outage_until(server, issue) {
            return Err(IoError::ServerOffline {
                server,
                at: issue,
                until,
            });
        }
        let blocks = bps_core::block::blocks_for_bytes(bytes);
        let slow = self.fault.slowdown(server, issue);
        let grant =
            self.servers[server]
                .device
                .submit_scaled(issue, DeviceReq { lba, blocks, op }, slow);
        if self.record_device_layer {
            self.record(IoRecord::new(
                pid,
                op,
                file,
                lba * bps_core::block::BLOCK_SIZE,
                bytes,
                grant.start,
                grant.end,
                Layer::Device,
            ));
        }
        if self.fault.device_error(server) {
            return Err(IoError::DeviceFault {
                server,
                at: grant.end,
            });
        }
        Ok(grant.end)
    }

    /// One chunk of remote I/O from client `c` to server `chunk.server`,
    /// issued at `issue`. Models the full path: client NIC → switch →
    /// server NIC → server CPU → device → (data back for reads / ack back
    /// for writes). Records a `Layer::FileSystem` record for the data moved
    /// and returns the completion instant at the client.
    ///
    /// Fault handling: an offline server is detected only after the request
    /// hop and an error reply come back (the error carries the detection
    /// instant and the recovery time); a straggler window scales both the
    /// server CPU and the device service; a transient device error pays the
    /// full device grant plus an error-reply round trip; a lossy link adds
    /// one retransmit delay to the payload leg. Errors return `Err` without
    /// recording a `Layer::FileSystem` record — no data moved for the
    /// caller; retries are recorded by the middleware as `Layer::Retry`.
    #[allow(clippy::too_many_arguments)]
    pub fn remote_chunk_io(
        &mut self,
        pid: ProcessId,
        file: FileId,
        client: usize,
        chunk: &Chunk,
        lba: u64,
        op: IoOp,
        issue: Nanos,
    ) -> Result<Nanos, IoError> {
        let bytes = chunk.len;
        let blocks = bps_core::block::blocks_for_bytes(bytes);
        let server = chunk.server;
        // One loss draw per call, applied to the payload leg below. Drawn
        // up front so the RNG stream does not depend on which branch runs.
        let lost = self.fault.link_lost();
        // Request (plus payload, for writes) travels client → server.
        let mut outbound_issue = issue;
        let outbound = match op {
            IoOp::Read => REQUEST_MSG,
            IoOp::Write => {
                // Writes carry the payload outbound; a lost packet delays
                // the transfer before it reaches the server.
                if lost {
                    outbound_issue += self.fault.retransmit_delay();
                }
                REQUEST_MSG + bytes
            }
        };
        let t = self.clients[client]
            .nic_out
            .transfer(outbound_issue, outbound);
        let t = self.switch.forward(t, outbound);
        let t = self.servers[server].nic_in.transfer(t, outbound);
        let arrived = t;
        // An offline server refuses the request; the client learns of it
        // from a short error reply, paying the network both ways.
        if let Some(until) = self.fault.outage_until(server, t) {
            let e = self.servers[server].nic_out.transfer(t, ACK_MSG);
            let e = self.switch.forward(e, ACK_MSG);
            let detected = self.clients[client].nic_in.transfer(e, ACK_MSG);
            return Err(IoError::ServerOffline {
                server,
                at: detected,
                until,
            });
        }
        // Server CPU (scaled by any open straggler window), then the disk.
        let slow = self.fault.slowdown(server, t);
        let cpu = if slow == 1.0 {
            self.server_cpu
        } else {
            Dur::from_secs_f64(self.server_cpu.as_secs_f64() * slow)
        };
        let dev_arrival = t + cpu;
        let grant = self.servers[server].device.submit_scaled(
            dev_arrival,
            DeviceReq { lba, blocks, op },
            slow,
        );
        if self.record_device_layer {
            self.record(IoRecord::new(
                pid,
                op,
                file,
                lba * bps_core::block::BLOCK_SIZE,
                bytes,
                grant.start,
                grant.end,
                Layer::Device,
            ));
        }
        // A transient device error: the device did the work, but the client
        // gets an error reply instead of data.
        if self.fault.device_error(server) {
            let e = self.servers[server].nic_out.transfer(grant.end, ACK_MSG);
            let e = self.switch.forward(e, ACK_MSG);
            let detected = self.clients[client].nic_in.transfer(e, ACK_MSG);
            return Err(IoError::DeviceFault {
                server,
                at: detected,
            });
        }
        // Reply (payload for reads, ack for writes) travels server → client.
        let mut reply_at = grant.end;
        let inbound = match op {
            IoOp::Read => {
                // Reads carry the payload inbound; a lost packet delays the
                // reply leg.
                if lost {
                    reply_at += self.fault.retransmit_delay();
                }
                bytes
            }
            IoOp::Write => ACK_MSG,
        };
        let t = self.servers[server].nic_out.transfer(reply_at, inbound);
        let t = self.switch.forward(t, inbound);
        let done = self.clients[client].nic_in.transfer(t, inbound);
        if self.record_net_layer {
            // The payload leg: outbound for writes (issue until the data
            // reaches the server NIC), inbound for reads (reply until the
            // data reaches the client).
            let (net_start, net_end) = match op {
                IoOp::Read => (reply_at, done),
                IoOp::Write => (outbound_issue, arrived),
            };
            self.record(IoRecord::new(
                pid,
                op,
                file,
                chunk.file_offset,
                bytes,
                net_start,
                net_end,
                Layer::Network,
            ));
        }
        self.record(IoRecord::new(
            pid,
            op,
            file,
            chunk.file_offset,
            bytes,
            issue,
            done,
            Layer::FileSystem,
        ));
        Ok(done)
    }

    /// Record a failed or abandoned attempt of a retried request
    /// (`Layer::Retry`): the span from issue to the instant the failure was
    /// detected. Retry records never count toward the four paper metrics.
    #[allow(clippy::too_many_arguments)]
    pub fn record_retry(
        &mut self,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        bytes: u64,
        op: IoOp,
        start: Nanos,
        end: Nanos,
    ) {
        self.record(IoRecord::new(
            pid,
            op,
            file,
            offset,
            bytes,
            start,
            end.max(start),
            Layer::Retry,
        ));
    }

    /// A client-to-client data shipment (the exchange phase of two-phase
    /// collective I/O): sender NIC -> switch -> receiver NIC. Returns the
    /// delivery instant.
    pub fn client_to_client(&mut self, from: usize, to: usize, bytes: u64, at: Nanos) -> Nanos {
        if from == to {
            // Local delivery: a memcpy, effectively free at this scale.
            return at;
        }
        let t = self.clients[from].nic_out.transfer(at, bytes);
        let t = self.switch.forward(t, bytes);
        self.clients[to].nic_in.transfer(t, bytes)
    }

    /// Record a file-system-layer access that bypassed the network path
    /// (local file systems) — data moved between FS and device.
    #[allow(clippy::too_many_arguments)]
    pub fn record_fs_access(
        &mut self,
        pid: ProcessId,
        file: FileId,
        offset: u64,
        bytes: u64,
        op: IoOp,
        start: Nanos,
        end: Nanos,
    ) {
        self.record(IoRecord::new(
            pid,
            op,
            file,
            offset,
            bytes,
            start,
            end,
            Layer::FileSystem,
        ));
    }

    /// Device utilization counters of server `s` (tests, reports).
    pub fn device_stats(&self, server: usize) -> &bps_sim::resource::ResourceStats {
        self.servers[server].device.stats()
    }
}

thread_local! {
    /// Per-thread recycling pool for the batch buffer: a sweep thread
    /// builds thousands of short-lived clusters, and the buffer's column
    /// capacities survive from one case to the next instead of being
    /// reallocated.
    static PENDING_POOL: std::cell::Cell<RecordBatch> =
        const { std::cell::Cell::new(RecordBatch::new()) };
}

impl<S: RecordSink> Drop for Cluster<S> {
    fn drop(&mut self) {
        bps_telemetry::add(bps_telemetry::Counter::SinkRecords, self.tele_records);
        bps_telemetry::add(bps_telemetry::Counter::SinkBatches, self.tele_batches);
        let mut buf = std::mem::take(&mut self.pending);
        buf.clear();
        PENDING_POOL.set(buf);
    }
}

impl<S: RecordSink> std::fmt::Debug for Cluster<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.servers.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ram_cluster(servers: usize, clients: usize) -> Cluster {
        Cluster::new(&ClusterConfig {
            servers,
            clients,
            device: DeviceSpec::Ram {
                fixed: Dur::from_micros(100),
                rate: 100_000_000,
                capacity: 1 << 40,
            },
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::NONE,
            seed: 1,
            record_device_layer: true,
            record_net_layer: false,
            fault: FaultPlan::none(),
        })
    }

    fn chunk(server: usize, len: u64) -> Chunk {
        Chunk {
            server,
            slot: 0,
            server_offset: 0,
            file_offset: 0,
            len,
        }
    }

    #[test]
    fn remote_read_pays_network_and_device() {
        let mut c = ram_cluster(1, 1);
        let done = c
            .remote_chunk_io(
                ProcessId(0),
                FileId(0),
                0,
                &chunk(0, 64 << 10),
                0,
                IoOp::Read,
                Nanos::ZERO,
            )
            .unwrap();
        let secs = done.since(Nanos::ZERO).as_secs_f64();
        // 64 KB device transfer (~655 us) + device fixed (100 us) + server
        // CPU (25 us) + request hop (~250 us of latency) + 64 KB data reply
        // over two NICs + switch (~1.3 ms total path). Sanity bounds:
        assert!((0.0015..0.0035).contains(&secs), "{secs}");
        // FS record captured, device record captured.
        use bps_core::record::Layer;
        assert_eq!(c.sink.op_count(Layer::FileSystem), 1);
        assert_eq!(c.sink.op_count(Layer::Device), 1);
        assert_eq!(c.sink.bytes(Layer::FileSystem), 64 << 10);
    }

    #[test]
    fn writes_ship_payload_outbound() {
        let mut c = ram_cluster(1, 1);
        let r = c
            .remote_chunk_io(
                ProcessId(0),
                FileId(0),
                0,
                &chunk(0, 1 << 20),
                0,
                IoOp::Read,
                Nanos::ZERO,
            )
            .unwrap();
        let mut c2 = ram_cluster(1, 1);
        let w = c2
            .remote_chunk_io(
                ProcessId(0),
                FileId(0),
                0,
                &chunk(0, 1 << 20),
                0,
                IoOp::Write,
                Nanos::ZERO,
            )
            .unwrap();
        // Same total payload crosses the wire once in each direction, so
        // read and write completions are within ~25% of each other.
        let ratio = w.since(Nanos::ZERO).as_secs_f64() / r.since(Nanos::ZERO).as_secs_f64();
        assert!((0.75..1.25).contains(&ratio), "{ratio}");
    }

    #[test]
    fn two_servers_parallelize() {
        // One big read split across two servers completes faster than the
        // same bytes on one server.
        let total = 4 << 20;
        let mut one = ram_cluster(1, 1);
        let a = one
            .remote_chunk_io(
                ProcessId(0),
                FileId(0),
                0,
                &chunk(0, total),
                0,
                IoOp::Read,
                Nanos::ZERO,
            )
            .unwrap();
        let mut two = ram_cluster(2, 1);
        let b1 = two
            .remote_chunk_io(
                ProcessId(0),
                FileId(0),
                0,
                &chunk(0, total / 2),
                0,
                IoOp::Read,
                Nanos::ZERO,
            )
            .unwrap();
        let b2 = two
            .remote_chunk_io(
                ProcessId(0),
                FileId(0),
                0,
                &chunk(1, total / 2),
                0,
                IoOp::Read,
                Nanos::ZERO,
            )
            .unwrap();
        let b = b1.max(b2);
        // Devices run in parallel; the shared client NIC still serializes
        // the replies, so the speedup is real but < 2x.
        assert!(b < a, "split {b} vs single {a}");
    }

    #[test]
    fn local_io_skips_network() {
        let mut c = ram_cluster(1, 1);
        let done = c
            .local_io(
                ProcessId(0),
                FileId(0),
                0,
                0,
                64 << 10,
                IoOp::Read,
                Nanos::ZERO,
            )
            .unwrap();
        // Just the device: 100 us fixed + ~655 us transfer.
        let secs = done.since(Nanos::ZERO).as_secs_f64();
        assert!((0.0006..0.0009).contains(&secs), "{secs}");
    }

    #[test]
    fn take_trace_drains() {
        let mut c = ram_cluster(1, 1);
        c.local_io(ProcessId(0), FileId(0), 0, 0, 512, IoOp::Read, Nanos::ZERO)
            .unwrap();
        c.record_fs_access(
            ProcessId(0),
            FileId(0),
            0,
            512,
            IoOp::Read,
            Nanos::ZERO,
            Nanos::from_micros(10),
        );
        let t = c.take_trace();
        assert_eq!(t.len(), 2);
        assert!(c.sink.is_empty());
    }

    #[test]
    fn streaming_sink_sees_the_same_records() {
        use bps_core::sink::StreamingMetrics;
        let cfg = ClusterConfig {
            servers: 1,
            clients: 1,
            device: DeviceSpec::Ram {
                fixed: Dur::from_micros(100),
                rate: 100_000_000,
                capacity: 1 << 40,
            },
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::NONE,
            seed: 1,
            record_device_layer: true,
            record_net_layer: false,
            fault: FaultPlan::none(),
        };
        let mut traced = Cluster::new(&cfg);
        let mut streamed = Cluster::with_sink(&cfg, StreamingMetrics::new());
        for c in 0..2u64 {
            traced
                .remote_chunk_io(
                    ProcessId(0),
                    FileId(0),
                    0,
                    &chunk(0, 64 << 10),
                    c * 128,
                    IoOp::Read,
                    Nanos::from_micros(c * 5),
                )
                .unwrap();
            streamed
                .remote_chunk_io(
                    ProcessId(0),
                    FileId(0),
                    0,
                    &chunk(0, 64 << 10),
                    c * 128,
                    IoOp::Read,
                    Nanos::from_micros(c * 5),
                )
                .unwrap();
        }
        use bps_core::record::Layer;
        assert_eq!(
            traced.sink.op_count(Layer::FileSystem),
            streamed.sink.op_count(Layer::FileSystem)
        );
        assert_eq!(
            traced.sink.overlapped_io_time(Layer::FileSystem),
            streamed.sink.overlapped_io_time(Layer::FileSystem)
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let mut cfg = ClusterConfig::hdd_cluster(1, 1, 0);
        cfg.servers = 0;
        let _ = Cluster::new(&cfg);
    }
}
