//! The PVFS2-like striped parallel file system.
//!
//! A client request is split by the file's stripe layout into per-server
//! chunks issued concurrently; the request completes when the last chunk
//! does. Per-file layout attributes reproduce both of the paper's
//! configurations: the default stripe over all servers (§IV.C.3's IOR
//! experiment) and the one-file-per-server pinning (§IV.C.3's "pure"
//! concurrency experiment).

use crate::cluster::Cluster;
use crate::content::SparseStore;
use crate::file::FileMeta;
use crate::layout::{Chunk, StripeLayout};
use bps_core::error::IoError;
use bps_core::record::{FileId, IoOp, ProcessId};
use bps_core::sink::RecordSink;
use bps_core::time::{Dur, Nanos};

/// The parallel file system client + metadata service.
pub struct ParallelFs {
    files: Vec<FileMeta>,
    /// Next free LBA on each cluster server (contiguous extent allocator).
    alloc_cursor: Vec<u64>,
    /// Client-side software cost per request (request construction, layout
    /// lookup, PVFS client state machine).
    client_overhead: Dur,
    /// Optional byte-level contents for correctness tests.
    content: Option<SparseStore>,
}

impl ParallelFs {
    /// Default client-side request overhead.
    pub const DEFAULT_OVERHEAD: Dur = Dur(50_000);

    /// A PFS over a cluster of `server_count` I/O servers.
    pub fn new(server_count: usize) -> Self {
        ParallelFs {
            files: Vec::new(),
            alloc_cursor: vec![64; server_count],
            client_overhead: Self::DEFAULT_OVERHEAD,
            content: None,
        }
    }

    /// Override the client-side overhead (calibration knob).
    pub fn with_overhead(mut self, overhead: Dur) -> Self {
        self.client_overhead = overhead;
        self
    }

    /// Enable byte-level content tracking (small files only).
    pub fn with_content(mut self) -> Self {
        self.content = Some(SparseStore::new());
        self
    }

    /// Create a file of `size` bytes with the given layout: one contiguous
    /// extent is reserved on each layout server for its share of the file.
    pub fn create(&mut self, size: u64, layout: StripeLayout) -> FileId {
        let id = FileId(self.files.len() as u32);
        let mut base_lba = Vec::with_capacity(layout.width());
        for (slot, &server) in layout.servers.iter().enumerate() {
            let share_blocks = bps_core::block::blocks_for_bytes(layout.server_share(slot, size));
            base_lba.push(self.alloc_cursor[server]);
            self.alloc_cursor[server] += share_blocks;
        }
        self.files.push(FileMeta {
            id,
            size,
            layout,
            base_lba,
        });
        id
    }

    /// A file's metadata.
    pub fn meta(&self, file: FileId) -> &FileMeta {
        &self.files[file.0 as usize]
    }

    /// Degraded-read inflation: reconstructing a chunk from the surviving
    /// servers moves this multiple of the chunk's bytes (replica + verify
    /// pass, mirroring RAID-style degraded reads).
    pub const DEGRADED_READ_INFLATION: u64 = 2;

    /// Perform a striped read or write, issued at `now` from `client`.
    /// Chunks are dispatched together after the client-side overhead; the
    /// call completes when the last chunk completes.
    ///
    /// Failover: when a *read* chunk fails with a transient error (offline
    /// or faulty server) and the cluster has another server, the client
    /// reissues the chunk as a degraded-stripe read against the next
    /// server, moving [`Self::DEGRADED_READ_INFLATION`]× the bytes
    /// (reconstruction overhead). The abandoned attempt is recorded as
    /// `Layer::Retry`. Writes and exhausted failovers propagate the error.
    #[allow(clippy::too_many_arguments)]
    pub fn io<S: RecordSink>(
        &mut self,
        cluster: &mut Cluster<S>,
        pid: ProcessId,
        client: usize,
        file: FileId,
        offset: u64,
        len: u64,
        op: IoOp,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        let meta = &self.files[file.0 as usize];
        if offset + len > meta.size {
            return Err(IoError::BeyondEof {
                offset,
                len,
                size: meta.size,
            });
        }
        let t0 = now + self.client_overhead;
        let mut done = t0;
        for chunk in meta.layout.map(offset, len) {
            let lba = meta.lba_of(chunk.slot, chunk.server_offset);
            let chunk_done = match cluster.remote_chunk_io(pid, file, client, &chunk, lba, op, t0) {
                Ok(t) => t,
                Err(e) => Self::failover_chunk(cluster, pid, file, client, &chunk, lba, op, t0, e)?,
            };
            done = done.max(chunk_done);
        }
        Ok(done)
    }

    /// Reissue one failed read chunk against the next server as a degraded
    /// read; writes and non-transient errors propagate.
    #[allow(clippy::too_many_arguments)]
    fn failover_chunk<S: RecordSink>(
        cluster: &mut Cluster<S>,
        pid: ProcessId,
        file: FileId,
        client: usize,
        chunk: &Chunk,
        lba: u64,
        op: IoOp,
        t0: Nanos,
        err: IoError,
    ) -> Result<Nanos, IoError> {
        let servers = cluster.server_count();
        if op != IoOp::Read || servers < 2 || !err.is_transient() {
            return Err(err);
        }
        // The abandoned attempt: issue to failure detection.
        let detected = err.fail_time().unwrap_or(t0);
        cluster.record_retry(pid, file, chunk.file_offset, chunk.len, op, t0, detected);
        let degraded = Chunk {
            server: (chunk.server + 1) % servers,
            len: chunk.len * Self::DEGRADED_READ_INFLATION,
            ..*chunk
        };
        cluster.remote_chunk_io(pid, file, client, &degraded, lba, op, detected)
    }

    /// Convenience read.
    #[allow(clippy::too_many_arguments)]
    pub fn read<S: RecordSink>(
        &mut self,
        cluster: &mut Cluster<S>,
        pid: ProcessId,
        client: usize,
        file: FileId,
        offset: u64,
        len: u64,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        self.io(cluster, pid, client, file, offset, len, IoOp::Read, now)
    }

    /// Convenience write.
    #[allow(clippy::too_many_arguments)]
    pub fn write<S: RecordSink>(
        &mut self,
        cluster: &mut Cluster<S>,
        pid: ProcessId,
        client: usize,
        file: FileId,
        offset: u64,
        len: u64,
        now: Nanos,
    ) -> Result<Nanos, IoError> {
        self.io(cluster, pid, client, file, offset, len, IoOp::Write, now)
    }

    /// Store bytes (content mode only; timing unaffected).
    pub fn store_bytes(&mut self, file: FileId, offset: u64, data: &[u8]) {
        self.content
            .as_mut()
            .expect("content tracking not enabled")
            .write(file, offset, data);
    }

    /// Load bytes (content mode only).
    pub fn load_bytes(&self, file: FileId, offset: u64, len: u64) -> Vec<u8> {
        self.content
            .as_ref()
            .expect("content tracking not enabled")
            .read(file, offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, DeviceSpec};
    use bps_core::record::Layer;
    use bps_sim::device::DiskSched;
    use bps_sim::rng::Jitter;

    fn ram_cluster(servers: usize, clients: usize) -> Cluster {
        Cluster::new(&ClusterConfig {
            servers,
            clients,
            device: DeviceSpec::Ram {
                fixed: Dur::from_micros(100),
                rate: 100_000_000,
                capacity: 1 << 40,
            },
            sched: DiskSched::Fifo,
            server_cpu: Dur::from_micros(25),
            jitter: Jitter::NONE,
            seed: 3,
            record_device_layer: false,
            record_net_layer: false,
            fault: bps_sim::fault::FaultPlan::none(),
        })
    }

    #[test]
    fn striped_read_touches_all_servers() {
        let mut cluster = ram_cluster(4, 1);
        let mut pfs = ParallelFs::new(4);
        let f = pfs.create(16 << 20, StripeLayout::default_over(4));
        pfs.read(&mut cluster, ProcessId(0), 0, f, 0, 1 << 20, Nanos::ZERO)
            .unwrap();
        // 1 MiB over 64 KB stripes on 4 servers: 16 chunks, 4 per server.
        let trace = cluster.take_trace();
        assert_eq!(trace.op_count(Layer::FileSystem), 16);
        assert_eq!(trace.bytes(Layer::FileSystem), 1 << 20);
        for s in 0..4 {
            // Each server device saw 4 chunks. (Device stats survive
            // take_trace.)
            let _ = s;
        }
    }

    #[test]
    fn more_servers_finish_sooner() {
        let run = |n: usize| {
            let mut cluster = ram_cluster(n, 1);
            let mut pfs = ParallelFs::new(n);
            let f = pfs.create(64 << 20, StripeLayout::default_over(n));
            let done = pfs
                .read(&mut cluster, ProcessId(0), 0, f, 0, 16 << 20, Nanos::ZERO)
                .unwrap();
            done.since(Nanos::ZERO).as_secs_f64()
        };
        let t1 = run(1);
        let t4 = run(4);
        // Device time parallelizes; the client NIC still serializes replies,
        // so speedup is > 1 but bounded.
        assert!(t4 < t1, "t4 {t4} vs t1 {t1}");
    }

    #[test]
    fn pinned_files_use_only_their_server() {
        let mut cluster = ram_cluster(4, 2);
        let mut pfs = ParallelFs::new(4);
        let f0 = pfs.create(1 << 20, StripeLayout::pinned(2));
        pfs.read(&mut cluster, ProcessId(0), 0, f0, 0, 1 << 20, Nanos::ZERO)
            .unwrap();
        assert_eq!(cluster.device_stats(2).ops, 1);
        for s in [0usize, 1, 3] {
            assert_eq!(cluster.device_stats(s).ops, 0, "server {s}");
        }
    }

    #[test]
    fn extents_per_server_do_not_overlap() {
        let mut pfs = ParallelFs::new(2);
        let a = pfs.create(1 << 20, StripeLayout::default_over(2));
        let b = pfs.create(1 << 20, StripeLayout::default_over(2));
        let (ma, mb) = (pfs.meta(a).clone(), pfs.meta(b).clone());
        for slot in 0..2 {
            let a_end = ma.base_lba[slot]
                + bps_core::block::blocks_for_bytes(ma.layout.server_share(slot, 1 << 20));
            assert!(mb.base_lba[slot] >= a_end, "slot {slot}");
        }
    }

    #[test]
    fn write_then_read_content() {
        let mut pfs = ParallelFs::new(2).with_content();
        let f = pfs.create(1 << 20, StripeLayout::default_over(2));
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
        pfs.store_bytes(f, 1234, &data);
        assert_eq!(pfs.load_bytes(f, 1234, data.len() as u64), data);
    }

    #[test]
    fn read_past_eof_is_a_typed_error() {
        let mut cluster = ram_cluster(1, 1);
        let mut pfs = ParallelFs::new(1);
        let f = pfs.create(4096, StripeLayout::default_over(1));
        let err = pfs
            .read(&mut cluster, ProcessId(0), 0, f, 4096, 1, Nanos::ZERO)
            .unwrap_err();
        assert!(
            matches!(err, IoError::BeyondEof { size: 4096, .. }),
            "{err}"
        );
        assert!(!err.is_transient());
        // Nothing was issued to any device.
        assert_eq!(cluster.device_stats(0).ops, 0);
    }

    #[test]
    fn concurrent_clients_contend_on_shared_server() {
        // Two clients hammer one pinned file's server; their requests
        // serialize at the device.
        let mut cluster = ram_cluster(1, 2);
        let mut pfs = ParallelFs::new(1);
        let f = pfs.create(8 << 20, StripeLayout::pinned(0));
        let a = pfs
            .read(&mut cluster, ProcessId(0), 0, f, 0, 4 << 20, Nanos::ZERO)
            .unwrap();
        let b = pfs
            .read(
                &mut cluster,
                ProcessId(1),
                1,
                f,
                4 << 20,
                4 << 20,
                Nanos::ZERO,
            )
            .unwrap();
        // Second request's device service queues behind the first.
        let serial_each = 4.0 * 1024.0 * 1024.0 / 100e6;
        assert!(b.since(Nanos::ZERO).as_secs_f64() > 2.0 * serial_each * 0.9);
        let _ = a;
    }
}
