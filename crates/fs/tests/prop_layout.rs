//! Property tests: stripe mapping is an exact partition, and content
//! round-trips through the sparse store.

use bps_core::record::FileId;
use bps_fs::content::SparseStore;
use bps_fs::layout::StripeLayout;
use proptest::prelude::*;

fn layout() -> impl Strategy<Value = StripeLayout> {
    (1u64..300_000, 1usize..9).prop_map(|(stripe, n)| StripeLayout::new(stripe, (0..n).collect()))
}

proptest! {
    /// Chunks cover the requested byte range exactly: contiguous ascending
    /// file offsets, lengths summing to the request, nothing beyond.
    #[test]
    fn map_partitions_exactly(l in layout(), offset in 0u64..10_000_000, len in 0u64..5_000_000) {
        let chunks = l.map(offset, len);
        let mut pos = offset;
        for c in &chunks {
            prop_assert_eq!(c.file_offset, pos);
            prop_assert!(c.len > 0);
            prop_assert!(c.slot < l.width());
            prop_assert_eq!(c.server, l.servers[c.slot]);
            pos += c.len;
        }
        prop_assert_eq!(pos, offset + len);
    }

    /// No chunk crosses a stripe boundary unless it was coalesced on the
    /// same server with contiguous server offsets.
    #[test]
    fn chunk_server_offsets_consistent(l in layout(), offset in 0u64..1_000_000, len in 1u64..1_000_000) {
        let chunks = l.map(offset, len);
        // Per server, server offsets are strictly increasing and disjoint.
        for slot in 0..l.width() {
            let mut last_end: Option<u64> = None;
            for c in chunks.iter().filter(|c| c.slot == slot) {
                if let Some(e) = last_end {
                    prop_assert!(c.server_offset >= e);
                }
                last_end = Some(c.server_offset + c.len);
            }
        }
    }

    /// server_share sums to the file size and matches the full-file map.
    #[test]
    fn shares_match_map(l in layout(), size in 0u64..2_000_000) {
        let total: u64 = (0..l.width()).map(|s| l.server_share(s, size)).sum();
        prop_assert_eq!(total, size);
        let chunks = l.map(0, size);
        for slot in 0..l.width() {
            let mapped: u64 = chunks.iter().filter(|c| c.slot == slot).map(|c| c.len).sum();
            prop_assert_eq!(mapped, l.server_share(slot, size), "slot {}", slot);
        }
    }

    /// Two maps of adjacent ranges tile the same chunks as one map of the
    /// union range (after splitting at the join).
    #[test]
    fn adjacent_maps_tile(l in layout(), offset in 0u64..500_000, a in 1u64..300_000, b in 1u64..300_000) {
        let combined: u64 = l.map(offset, a + b).iter().map(|c| c.len).sum();
        let first: u64 = l.map(offset, a).iter().map(|c| c.len).sum();
        let second: u64 = l.map(offset + a, b).iter().map(|c| c.len).sum();
        prop_assert_eq!(combined, first + second);
    }

    /// Sparse store: write-then-read returns exactly what was written,
    /// regardless of chunk alignment.
    #[test]
    fn sparse_store_roundtrip(
        offset in 0u64..100_000,
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
    ) {
        let mut store = SparseStore::new();
        store.write(FileId(1), offset, &data);
        prop_assert_eq!(store.read(FileId(1), offset, data.len() as u64), data);
    }

    /// Overlapping writes: the later write wins on the overlap.
    #[test]
    fn sparse_store_overwrite(
        base in 0u64..10_000,
        first in proptest::collection::vec(any::<u8>(), 1..5_000),
        second in proptest::collection::vec(any::<u8>(), 1..5_000),
        skew in 0u64..2_000,
    ) {
        let mut store = SparseStore::new();
        store.write(FileId(0), base, &first);
        store.write(FileId(0), base + skew, &second);
        let got = store.read(FileId(0), base + skew, second.len() as u64);
        prop_assert_eq!(got, second);
    }
}
