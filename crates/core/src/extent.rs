//! Byte extents within a file.
//!
//! Noncontiguous I/O (the paper's Set 4, driven by HPIO through MPI-IO data
//! sieving) is described as a list of file regions. An [`Extent`] is one
//! such region; the helpers here normalize region lists and compute the
//! quantities data sieving cares about: the covering hull and the hole
//! bytes between regions.

use serde::{Deserialize, Serialize};

/// A byte range `[offset, offset + len)` within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Extent {
    /// First byte.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Extent {
    /// Construct an extent.
    pub const fn new(offset: u64, len: u64) -> Self {
        Extent { offset, len }
    }

    /// One past the last byte.
    pub const fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// True for zero-length extents.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: &Extent) -> bool {
        self.offset <= other.offset && other.end() <= self.end()
    }

    /// The smallest extent covering both.
    pub fn hull(&self, other: &Extent) -> Extent {
        let offset = self.offset.min(other.offset);
        let end = self.end().max(other.end());
        Extent {
            offset,
            len: end - offset,
        }
    }
}

/// Sort extents by offset and merge overlapping or touching neighbours,
/// dropping empty ones. The result is a minimal disjoint ascending cover of
/// the same bytes.
pub fn normalize(extents: &[Extent]) -> Vec<Extent> {
    let mut v: Vec<Extent> = extents.iter().copied().filter(|e| !e.is_empty()).collect();
    v.sort_unstable_by_key(|e| (e.offset, e.len));
    let mut out: Vec<Extent> = Vec::with_capacity(v.len());
    for e in v {
        match out.last_mut() {
            Some(last) if e.offset <= last.end() => {
                let end = last.end().max(e.end());
                last.len = end - last.offset;
            }
            _ => out.push(e),
        }
    }
    out
}

/// Total bytes covered by a *normalized* extent list.
pub fn covered_bytes(normalized: &[Extent]) -> u64 {
    normalized.iter().map(|e| e.len).sum()
}

/// The covering hull of a non-empty normalized list.
pub fn hull(normalized: &[Extent]) -> Option<Extent> {
    match (normalized.first(), normalized.last()) {
        (Some(a), Some(b)) => Some(a.hull(b)),
        _ => None,
    }
}

/// The holes between consecutive regions of a normalized list — the bytes
/// data sieving reads that the application never asked for.
pub fn holes(normalized: &[Extent]) -> Vec<Extent> {
    normalized
        .windows(2)
        .filter(|w| w[0].end() < w[1].offset)
        .map(|w| Extent {
            offset: w[0].end(),
            len: w[1].offset - w[0].end(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(offset: u64, len: u64) -> Extent {
        Extent::new(offset, len)
    }

    #[test]
    fn normalize_merges_and_sorts() {
        let n = normalize(&[e(10, 5), e(0, 5), e(14, 6), e(30, 0)]);
        assert_eq!(n, vec![e(0, 5), e(10, 10)]);
        assert_eq!(covered_bytes(&n), 15);
    }

    #[test]
    fn touching_extents_merge() {
        let n = normalize(&[e(0, 5), e(5, 5)]);
        assert_eq!(n, vec![e(0, 10)]);
    }

    #[test]
    fn hull_and_holes() {
        let n = normalize(&[e(0, 4), e(10, 4), e(20, 4)]);
        assert_eq!(hull(&n), Some(e(0, 24)));
        assert_eq!(holes(&n), vec![e(4, 6), e(14, 6)]);
        // Hole bytes + covered bytes = hull bytes.
        let hole_bytes: u64 = holes(&n).iter().map(|h| h.len).sum();
        assert_eq!(hole_bytes + covered_bytes(&n), hull(&n).unwrap().len);
    }

    #[test]
    fn empty_inputs() {
        assert!(normalize(&[]).is_empty());
        assert_eq!(hull(&[]), None);
        assert!(holes(&[]).is_empty());
        assert_eq!(covered_bytes(&[]), 0);
    }

    #[test]
    fn contains_and_end() {
        assert!(e(0, 10).contains(&e(2, 3)));
        assert!(!e(0, 10).contains(&e(8, 5)));
        assert!(e(0, 10).contains(&e(0, 10)));
        assert_eq!(e(3, 4).end(), 7);
    }

    #[test]
    fn nested_extents_normalize() {
        let n = normalize(&[e(0, 100), e(10, 5), e(50, 200)]);
        assert_eq!(n, vec![e(0, 250)]);
    }
}
