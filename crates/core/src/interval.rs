//! Overlapped I/O-time computation (paper §III, Figures 2 and 3).
//!
//! The denominator `T` of the BPS equation is *not* the sum of per-request
//! response times and *not* the application wall time. It is the total
//! length of the union of all I/O-active intervals:
//!
//! * idle periods with no in-flight I/O contribute nothing, and
//! * any instant covered by several concurrent requests is counted once.
//!
//! In the paper's Figure 2, four requests R1..R4 with R1–R3 mutually
//! overlapping and R4 disjoint yield `T = Δt1 + Δt2`, where Δt1 spans the
//! merged extent of R1–R3 and Δt2 = T4.
//!
//! Two implementations are provided:
//!
//! * [`union_time`] / [`IntervalSet`] — an independently written
//!   sort-and-sweep union, the one the rest of the workspace uses;
//! * [`paper_union_time`] — a line-by-line port of the pseudocode in the
//!   paper's Figure 3, kept as executable documentation and cross-checked
//!   against `union_time` by property tests.

use crate::time::{Dur, Nanos};
use serde::{Deserialize, Serialize};

/// A half-open time interval `[start, end)` during which an I/O request was
/// in flight. `start == end` is permitted and denotes an instantaneous
/// (zero-cost) access that contributes nothing to `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Moment the request was issued.
    pub start: Nanos,
    /// Moment the request completed.
    pub end: Nanos,
}

impl Interval {
    /// Build an interval, panicking if `end < start`.
    ///
    /// Traces coming from files go through the checked
    /// [`Interval::try_new`] path instead.
    pub fn new(start: Nanos, end: Nanos) -> Self {
        assert!(end >= start, "interval ends before it starts");
        Interval { start, end }
    }

    /// Build an interval, rejecting inverted bounds.
    pub fn try_new(start: Nanos, end: Nanos) -> Result<Self, crate::error::CoreError> {
        if end < start {
            Err(crate::error::CoreError::InvertedInterval {
                start: start.0,
                end: end.0,
            })
        } else {
            Ok(Interval { start, end })
        }
    }

    /// Length of the interval.
    pub fn duration(&self) -> Dur {
        self.end - self.start
    }

    /// True when the two intervals share at least one instant, treating
    /// touching intervals (`a.end == b.start`) as overlapping so they merge
    /// into one busy period — back-to-back I/O has no idle gap.
    pub fn touches(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Smallest interval covering both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The overlap of two intervals, if non-degenerate.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Interval { start, end })
        } else {
            None
        }
    }
}

/// Total overlapped I/O time of a set of intervals: the measure of their
/// union, per the paper's Figure 2. Order of the input is irrelevant.
///
/// Runs in O(n log n) time and O(n) space.
///
/// ```
/// use bps_core::interval::{union_time, Interval};
/// use bps_core::time::{Dur, Nanos};
/// let ms = Nanos::from_millis;
/// // R1=[0,4), R2=[1,5), R3=[3,6) overlap; R4=[8,10) is disjoint.
/// let t = union_time([
///     Interval::new(ms(0), ms(4)),
///     Interval::new(ms(1), ms(5)),
///     Interval::new(ms(3), ms(6)),
///     Interval::new(ms(8), ms(10)),
/// ]);
/// assert_eq!(t, Dur::from_millis(6 + 2)); // Δt1 + Δt2
/// ```
pub fn union_time<I: IntoIterator<Item = Interval>>(intervals: I) -> Dur {
    let mut v: Vec<Interval> = intervals.into_iter().collect();
    if v.is_empty() {
        return Dur::ZERO;
    }
    v.sort_unstable_by_key(|iv| (iv.start, iv.end));
    let mut total = Dur::ZERO;
    let mut cur = v[0];
    for iv in &v[1..] {
        if iv.start <= cur.end {
            cur.end = cur.end.max(iv.end);
        } else {
            total += cur.duration();
            cur = *iv;
        }
    }
    total + cur.duration()
}

/// Faithful port of the pseudocode in the paper's Figure 3 ("BPS time
/// calculating algorithm").
///
/// The paper sorts `col_time` by start time, then walks the records pairwise:
/// disjoint neighbours flush the running record's length into `T`; otherwise
/// the next record is widened to the running hull. The final record's length
/// is added after the loop.
///
/// This port preserves the structure (including the in-place widening of
/// `nextRecord`) and is checked by property tests to agree with
/// [`union_time`] on every input.
pub fn paper_union_time(col_time: &[Interval]) -> Dur {
    if col_time.is_empty() {
        return Dur::ZERO;
    }
    // "sort all records in col_time according to the start time of each record"
    let mut records = col_time.to_vec();
    records.sort_unstable_by_key(|r| r.start);

    let mut t = Dur::ZERO;
    // tempRecord = first Record of col_time
    let mut temp = records[0];
    // while col_time has next do
    for next in records.iter_mut().skip(1) {
        if temp.end < next.start {
            // T += tempRecord.endtime - tempRecord.starttime
            //
            // The paper's listing shows `T = ...`; taken literally that
            // would discard previously accumulated busy periods, which
            // contradicts the prose ("the overall T for these four requests
            // is equal to Δt1 + Δt2"). We implement the accumulation the
            // prose and Figure 2 demand.
            t += temp.end - temp.start;
        } else {
            // nextRecord.starttime = tempRecord.starttime
            next.start = temp.start;
            // if nextRecord.endtime < tempRecord.endtime
            if next.end < temp.end {
                next.end = temp.end;
            }
        }
        // tempRecord = nextRecord
        temp = *next;
    }
    // T += tempRecord.endtime - tempRecord.starttime
    t + (temp.end - temp.start)
}

/// A maintained union of intervals: always stored merged, disjoint, and
/// sorted. Useful for incremental busy-time accounting inside simulator
/// components and for gap (idle period) analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSet {
    /// Merged, disjoint, sorted by start.
    spans: Vec<Interval>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet { spans: Vec::new() }
    }

    /// Build from arbitrary (unsorted, overlapping) intervals.
    pub fn from_unsorted<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        let mut v: Vec<Interval> = intervals.into_iter().collect();
        v.sort_unstable_by_key(|iv| (iv.start, iv.end));
        let mut spans: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match spans.last_mut() {
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => spans.push(iv),
            }
        }
        IntervalSet { spans }
    }

    /// Insert one interval, merging as needed. O(n) worst case, O(1)
    /// amortized for append-mostly (time-ordered) insertion.
    pub fn insert(&mut self, iv: Interval) {
        // Fast path: strictly after everything present.
        match self.spans.last_mut() {
            None => {
                self.spans.push(iv);
                return;
            }
            Some(last) if iv.start > last.end => {
                self.spans.push(iv);
                return;
            }
            Some(last) if iv.start >= last.start => {
                last.end = last.end.max(iv.end);
                return;
            }
            _ => {}
        }
        // General path: find the insertion window by binary search.
        let first = self.spans.partition_point(|s| s.end < iv.start);
        let mut merged = iv;
        let mut last = first;
        while last < self.spans.len() && self.spans[last].start <= merged.end {
            merged = merged.hull(&self.spans[last]);
            last += 1;
        }
        self.spans.splice(first..last, std::iter::once(merged));
    }

    /// Total measure of the union (the paper's `T`).
    pub fn total(&self) -> Dur {
        self.spans
            .iter()
            .fold(Dur::ZERO, |acc, iv| acc + iv.duration())
    }

    /// Number of disjoint busy periods.
    pub fn period_count(&self) -> usize {
        self.spans.len()
    }

    /// True if no interval has been inserted (or all were degenerate —
    /// degenerate intervals are kept but measure zero).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The merged disjoint spans, sorted by start.
    pub fn spans(&self) -> &[Interval] {
        &self.spans
    }

    /// Hull from the earliest start to the latest end, if any.
    pub fn span(&self) -> Option<Interval> {
        match (self.spans.first(), self.spans.last()) {
            (Some(a), Some(b)) => Some(Interval {
                start: a.start,
                end: b.end,
            }),
            _ => None,
        }
    }

    /// The idle gaps between busy periods (the paper's "inactive time",
    /// e.g. `[t6, t7)` in Figure 2).
    pub fn gaps(&self) -> Vec<Interval> {
        self.spans
            .windows(2)
            .filter(|w| w[0].end < w[1].start)
            .map(|w| Interval {
                start: w[0].end,
                end: w[1].start,
            })
            .collect()
    }

    /// Total idle time inside the span.
    pub fn idle_time(&self) -> Dur {
        match self.span() {
            Some(s) => s.duration() - self.total(),
            None => Dur::ZERO,
        }
    }
}

/// Online interval union: maintains the measure of the union *as intervals
/// arrive*, without materializing and re-sweeping the whole set.
///
/// The streaming counterpart of [`union_time`]: after any sequence of
/// [`OnlineUnion::insert`] calls, [`OnlineUnion::total`] equals
/// `union_time` over the same intervals — exactly, since both work in
/// integer nanoseconds. Requests completing in nondecreasing start order
/// (the common case when fed from a simulation or a live recorder) take the
/// O(1) fast path: they either extend the rightmost span or open a new one.
/// Out-of-order arrivals fall back to a binary search + splice, like
/// [`IntervalSet::insert`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OnlineUnion {
    spans: Vec<Interval>,
    total: Dur,
}

impl OnlineUnion {
    /// An empty union.
    pub fn new() -> Self {
        OnlineUnion::default()
    }

    /// Add one interval, merging it into the maintained union.
    #[inline]
    pub fn insert(&mut self, iv: Interval) {
        // Fast paths against the rightmost span.
        match self.spans.last_mut() {
            None => {
                self.total += iv.duration();
                self.spans.push(iv);
                return;
            }
            Some(last) if iv.start > last.end => {
                self.total += iv.duration();
                self.spans.push(iv);
                return;
            }
            Some(last) if iv.start >= last.start => {
                if iv.end > last.end {
                    self.total += iv.end - last.end;
                    last.end = iv.end;
                }
                return;
            }
            _ => {}
        }
        // General path: merge with every overlapping or touching span.
        let first = self.spans.partition_point(|s| s.end < iv.start);
        let mut merged = iv;
        let mut displaced = Dur::ZERO;
        let mut last = first;
        while last < self.spans.len() && self.spans[last].start <= merged.end {
            displaced += self.spans[last].duration();
            merged = merged.hull(&self.spans[last]);
            last += 1;
        }
        self.total = self.total - displaced + merged.duration();
        self.spans.splice(first..last, std::iter::once(merged));
    }

    /// Add a batch of intervals, merging them into the maintained union.
    ///
    /// Exactly equivalent to calling [`OnlineUnion::insert`] once per
    /// interval in order — the final spans and total are identical —
    /// but consecutive intervals that overlap or touch are fused into one
    /// running hull in registers first, so a batch of mutually overlapping
    /// requests (the common shape of one simulated wake) touches the span
    /// vector once instead of once per interval.
    pub fn insert_all(&mut self, ivs: &[Interval]) {
        let mut ivs = ivs.iter();
        let Some(&first) = ivs.next() else { return };
        // The running hull of a consecutive overlapping run. Fusing
        // `next` into it is valid exactly when sequential insertion would
        // have hit a `last`-span fast path: `next.start` inside
        // `[run.start, run.end]`. Anything else flushes the run and
        // starts over, so ordering effects are preserved bit-for-bit.
        let mut run = first;
        for &iv in ivs {
            if iv.start >= run.start && iv.start <= run.end {
                run.end = run.end.max(iv.end);
            } else {
                self.insert(run);
                run = iv;
            }
        }
        self.insert(run);
    }

    /// The measure of the union so far.
    pub fn total(&self) -> Dur {
        self.total
    }

    /// Number of disjoint busy periods so far.
    pub fn period_count(&self) -> usize {
        self.spans.len()
    }

    /// True before any insert.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The disjoint, ascending spans of the union.
    pub fn spans(&self) -> &[Interval] {
        &self.spans
    }
}

/// A step in the concurrency (queue-depth) timeline: from `at` until the
/// next step, exactly `depth` requests are in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthStep {
    /// Instant this depth takes effect.
    pub at: Nanos,
    /// Number of concurrently in-flight requests from `at` onward.
    pub depth: u32,
}

/// Concurrency profile of a set of intervals: the piecewise-constant number
/// of in-flight requests over time, plus summary statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyProfile {
    /// The timeline of depth changes, starting at the first event.
    pub steps: Vec<DepthStep>,
    /// Maximum simultaneous in-flight requests.
    pub max_depth: u32,
    /// Time-weighted mean depth over busy time only (idle excluded).
    pub mean_busy_depth: f64,
}

impl ConcurrencyProfile {
    /// Compute the profile from raw intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        // Event sweep: +1 at start, -1 at end; ends sort before starts at
        // the same instant so half-open adjacency does not inflate depth.
        let mut events: Vec<(Nanos, i32)> = Vec::new();
        for iv in intervals {
            if iv.start == iv.end {
                continue;
            }
            events.push((iv.start, 1));
            events.push((iv.end, -1));
        }
        if events.is_empty() {
            return ConcurrencyProfile::default();
        }
        events.sort_unstable_by_key(|&(t, delta)| (t, delta));

        let mut steps: Vec<DepthStep> = Vec::new();
        let mut depth: i64 = 0;
        let mut max_depth: i64 = 0;
        let mut weighted: f64 = 0.0;
        let mut busy: f64 = 0.0;
        let mut prev = events[0].0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            let dt = (t - prev).as_secs_f64();
            if depth > 0 {
                weighted += depth as f64 * dt;
                busy += dt;
            }
            while i < events.len() && events[i].0 == t {
                depth += i64::from(events[i].1);
                i += 1;
            }
            max_depth = max_depth.max(depth);
            if steps.last().map(|s| s.depth) != Some(depth as u32) {
                steps.push(DepthStep {
                    at: t,
                    depth: depth as u32,
                });
            }
            prev = t;
        }
        ConcurrencyProfile {
            steps,
            max_depth: max_depth as u32,
            mean_busy_depth: if busy > 0.0 { weighted / busy } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }
    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(ms(a), ms(b))
    }

    #[test]
    fn empty_union_is_zero() {
        assert_eq!(union_time([]), Dur::ZERO);
        assert_eq!(paper_union_time(&[]), Dur::ZERO);
    }

    #[test]
    fn figure_2_example() {
        // R1..R3 overlap into Δt1 = [0,6); R4 = [8,10) gives Δt2 = 2ms.
        let records = [iv(0, 4), iv(1, 5), iv(3, 6), iv(8, 10)];
        assert_eq!(union_time(records), Dur::from_millis(8));
        assert_eq!(paper_union_time(&records), Dur::from_millis(8));
    }

    #[test]
    fn touching_intervals_merge() {
        // Back-to-back sequential requests: no idle gap, single busy period.
        let set = IntervalSet::from_unsorted([iv(0, 2), iv(2, 5)]);
        assert_eq!(set.period_count(), 1);
        assert_eq!(set.total(), Dur::from_millis(5));
        assert!(set.gaps().is_empty());
    }

    #[test]
    fn contained_interval_adds_nothing() {
        let t = union_time([iv(0, 10), iv(2, 3)]);
        assert_eq!(t, Dur::from_millis(10));
    }

    #[test]
    fn order_invariance() {
        let a = [iv(5, 9), iv(0, 2), iv(1, 6), iv(20, 21)];
        let mut b = a;
        b.reverse();
        assert_eq!(union_time(a), union_time(b));
        assert_eq!(paper_union_time(&a), paper_union_time(&b));
    }

    #[test]
    fn paper_algorithm_matches_sweep_on_fixed_cases() {
        let cases: Vec<Vec<Interval>> = vec![
            vec![iv(0, 1)],
            vec![iv(0, 1), iv(1, 2)],
            vec![iv(0, 5), iv(1, 2), iv(3, 8), iv(10, 11)],
            vec![iv(0, 0), iv(0, 0)], // degenerate
            vec![iv(3, 3), iv(1, 4)],
            vec![iv(0, 10), iv(0, 10), iv(0, 10)],
        ];
        for c in cases {
            assert_eq!(paper_union_time(&c), union_time(c.iter().copied()), "{c:?}");
        }
    }

    #[test]
    fn interval_set_insert_matches_batch() {
        let data = [iv(4, 7), iv(0, 1), iv(6, 9), iv(2, 3), iv(1, 2)];
        let batch = IntervalSet::from_unsorted(data);
        let mut inc = IntervalSet::new();
        for d in data {
            inc.insert(d);
        }
        assert_eq!(batch, inc);
        assert_eq!(batch.total(), union_time(data));
    }

    #[test]
    fn interval_set_gaps_and_idle() {
        let set = IntervalSet::from_unsorted([iv(0, 2), iv(5, 6), iv(9, 10)]);
        let gaps = set.gaps();
        assert_eq!(gaps, vec![iv(2, 5), iv(6, 9)]);
        assert_eq!(set.idle_time(), Dur::from_millis(6));
        assert_eq!(set.span().unwrap(), iv(0, 10));
    }

    #[test]
    fn insert_merging_across_many_spans() {
        let mut set = IntervalSet::new();
        for k in 0..5 {
            set.insert(iv(k * 10, k * 10 + 2));
        }
        assert_eq!(set.period_count(), 5);
        // One big interval swallows the middle three.
        set.insert(iv(11, 35));
        assert_eq!(set.period_count(), 3);
        assert_eq!(set.span().unwrap(), iv(0, 42));
        // [0,2) + [10,35) + [40,42) = 2 + 25 + 2 ms.
        assert_eq!(set.total(), Dur::from_millis(29));
    }

    #[test]
    fn insert_all_matches_sequential_insert() {
        let cases: Vec<Vec<Interval>> = vec![
            vec![],
            vec![iv(0, 1)],
            vec![iv(0, 4), iv(1, 5), iv(3, 6), iv(8, 10)], // figure 2
            vec![iv(8, 10), iv(0, 4), iv(1, 5), iv(3, 6)], // out of order
            vec![iv(0, 0), iv(0, 0), iv(5, 5)],            // degenerate
            vec![iv(0, 2), iv(2, 4), iv(4, 6)],            // touching chain
            vec![iv(5, 9), iv(0, 2), iv(1, 6), iv(20, 21), iv(3, 4)],
        ];
        for c in &cases {
            let mut seq = OnlineUnion::new();
            for &i in c {
                seq.insert(i);
            }
            let mut batched = OnlineUnion::new();
            batched.insert_all(c);
            assert_eq!(seq, batched, "{c:?}");
        }
    }

    #[test]
    fn insert_all_appends_to_existing_union() {
        let mut seq = OnlineUnion::new();
        let mut batched = OnlineUnion::new();
        for u in [&mut seq, &mut batched] {
            u.insert(iv(0, 3));
            u.insert(iv(10, 12));
        }
        let more = [iv(2, 5), iv(4, 11), iv(30, 31)];
        for i in more {
            seq.insert(i);
        }
        batched.insert_all(&more);
        assert_eq!(seq, batched);
        // [0,3)∪[2,5)∪[4,11)∪[10,12) fuse to [0,12); [30,31) stays apart.
        assert_eq!(seq.total(), Dur::from_millis(13));
    }

    #[test]
    fn intersect_and_hull() {
        assert_eq!(iv(0, 5).intersect(&iv(3, 8)), Some(iv(3, 5)));
        assert_eq!(iv(0, 2).intersect(&iv(2, 4)), None); // touching: empty overlap
        assert_eq!(iv(0, 2).hull(&iv(5, 6)), iv(0, 6));
    }

    #[test]
    fn try_new_rejects_inverted() {
        assert!(Interval::try_new(ms(2), ms(1)).is_err());
        assert!(Interval::try_new(ms(1), ms(1)).is_ok());
    }

    #[test]
    fn concurrency_profile_figure_1c() {
        // Sequential: two requests back to back, depth never exceeds 1.
        let seq = ConcurrencyProfile::from_intervals([iv(0, 2), iv(2, 4)]);
        assert_eq!(seq.max_depth, 1);
        assert!((seq.mean_busy_depth - 1.0).abs() < 1e-9);

        // Concurrent: the same two requests fully overlapped, depth 2.
        let conc = ConcurrencyProfile::from_intervals([iv(0, 2), iv(0, 2)]);
        assert_eq!(conc.max_depth, 2);
        assert!((conc.mean_busy_depth - 2.0).abs() < 1e-9);
    }

    #[test]
    fn concurrency_profile_partial_overlap() {
        // [0,4) and [2,6): depth 1 on [0,2), 2 on [2,4), 1 on [4,6).
        let p = ConcurrencyProfile::from_intervals([iv(0, 4), iv(2, 6)]);
        assert_eq!(p.max_depth, 2);
        assert!((p.mean_busy_depth - (1.0 * 2.0 + 2.0 * 2.0 + 1.0 * 2.0) / 6.0).abs() < 1e-9);
        let depths: Vec<u32> = p.steps.iter().map(|s| s.depth).collect();
        assert_eq!(depths, vec![1, 2, 1, 0]);
    }

    #[test]
    fn concurrency_profile_empty_and_degenerate() {
        let p = ConcurrencyProfile::from_intervals([]);
        assert_eq!(p.max_depth, 0);
        let p = ConcurrencyProfile::from_intervals([iv(1, 1)]);
        assert_eq!(p.max_depth, 0);
        assert_eq!(p.mean_busy_depth, 0.0);
    }
}
