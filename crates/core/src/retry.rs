//! Bounded-backoff retry: the one policy shared by every producer.
//!
//! Earlier revisions carried two retry implementations — the middleware
//! stack's bounded-backoff loop and the parallel file system's degraded
//! failover path — each with its own notion of "try again later". The
//! policy and the loop now live here, in the crate both sides already
//! depend on, so the middleware stack, the cluster-side failover, and the
//! topology component graph all retry through one shared type.
//!
//! Every abandoned attempt is reported through [`RetryIo::on_abandoned`]
//! (producers record it as a `Layer::Retry` record, which never counts
//! toward the paper's four metrics); the successful attempt's completion
//! is returned as-is.

use crate::error::IoError;
use crate::time::{Dur, Nanos};

/// How a producer reacts to failed or over-long requests: bounded retries
/// with exponential backoff and an optional per-request timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try + retries). At least 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff * 2^(n-1)`, capped at
    /// [`RetryPolicy::max_backoff`].
    pub base_backoff: Dur,
    /// Upper bound on a single backoff pause.
    pub max_backoff: Dur,
    /// Abandon an attempt that has not completed after this long
    /// (`None` = wait forever).
    pub timeout: Option<Dur>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Dur::from_millis(1),
            max_backoff: Dur::from_millis(100),
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff pause before retrying after failed attempt `attempt`
    /// (1-based): exponential, capped.
    pub fn backoff(&self, attempt: u32) -> Dur {
        let factor = 1u64 << (attempt - 1).min(16);
        Dur(self.base_backoff.0.saturating_mul(factor)).min(self.max_backoff)
    }
}

/// The I/O environment [`issue_with_retry`] drives: one fallible attempt,
/// plus the observer notified of every abandoned attempt (producers turn
/// that into a `Layer::Retry` record).
pub trait RetryIo {
    /// Issue one attempt at `at`; returns its completion instant.
    fn attempt(&mut self, at: Nanos) -> Result<Nanos, IoError>;

    /// An attempt issued at `start` was abandoned (timeout) or failed
    /// (transient error) at `end`.
    fn on_abandoned(&mut self, start: Nanos, end: Nanos);
}

/// Issue one request under `policy`: transient failures back off
/// exponentially and retry; attempts that outlive the timeout are
/// abandoned and retried; the final attempt's result is accepted as-is.
/// Non-transient errors (EOF) propagate immediately.
pub fn issue_with_retry<C: RetryIo>(
    policy: &RetryPolicy,
    now: Nanos,
    io: &mut C,
) -> Result<Nanos, IoError> {
    use bps_telemetry::Counter;
    let mut t = now;
    let mut attempt = 1u32;
    loop {
        let last = attempt >= policy.max_attempts;
        if attempt > 1 {
            bps_telemetry::incr(Counter::RetryAttempts);
        }
        match io.attempt(t) {
            Ok(done) => {
                match policy.timeout {
                    // An attempt that outlived the timeout was abandoned
                    // by the client even though the work finished — retry
                    // unless this was the last attempt (then take the
                    // slow completion).
                    Some(timeout) if !last && done.since(t) > timeout => {
                        let abandoned = t + timeout;
                        bps_telemetry::incr(Counter::RetryAbandoned);
                        io.on_abandoned(t, abandoned);
                        t = abandoned + policy.backoff(attempt);
                    }
                    _ => return Ok(done),
                }
            }
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) => {
                let detected = e.fail_time().unwrap_or(t);
                bps_telemetry::incr(Counter::RetryAbandoned);
                io.on_abandoned(t, detected);
                if last {
                    bps_telemetry::incr(Counter::RetryExhausted);
                    return Err(IoError::RetriesExhausted {
                        attempts: attempt,
                        at: detected,
                    });
                }
                t = detected + policy.backoff(attempt);
            }
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), Dur::from_millis(1));
        assert_eq!(p.backoff(2), Dur::from_millis(2));
        assert_eq!(p.backoff(3), Dur::from_millis(4));
        assert_eq!(p.backoff(9), Dur::from_millis(100));
        assert_eq!(p.backoff(60), Dur::from_millis(100));
    }

    struct Script {
        fail_first: u32,
        attempts: u32,
        abandoned: Vec<(Nanos, Nanos)>,
        service: Dur,
    }

    impl RetryIo for Script {
        fn attempt(&mut self, at: Nanos) -> Result<Nanos, IoError> {
            self.attempts += 1;
            if self.attempts <= self.fail_first {
                Err(IoError::DeviceFault {
                    server: 0,
                    at: at + Dur::from_micros(10),
                })
            } else {
                Ok(at + self.service)
            }
        }

        fn on_abandoned(&mut self, start: Nanos, end: Nanos) {
            self.abandoned.push((start, end));
        }
    }

    #[test]
    fn transient_failures_back_off_then_succeed() {
        let mut io = Script {
            fail_first: 2,
            attempts: 0,
            abandoned: Vec::new(),
            service: Dur::from_micros(100),
        };
        let p = RetryPolicy::default();
        let done = issue_with_retry(&p, Nanos::ZERO, &mut io).unwrap();
        assert_eq!(io.attempts, 3);
        assert_eq!(io.abandoned.len(), 2);
        // Attempt 1 fails at 10 µs, backs off 1 ms; attempt 2 fails 10 µs
        // later, backs off 2 ms; attempt 3 succeeds after 100 µs.
        let expect = Nanos::ZERO
            + Dur::from_micros(10)
            + Dur::from_millis(1)
            + Dur::from_micros(10)
            + Dur::from_millis(2)
            + Dur::from_micros(100);
        assert_eq!(done, expect);
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        let mut io = Script {
            fail_first: 10,
            attempts: 0,
            abandoned: Vec::new(),
            service: Dur::ZERO,
        };
        let p = RetryPolicy::default();
        match issue_with_retry(&p, Nanos::ZERO, &mut io) {
            Err(IoError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 4),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(io.attempts, 4);
        assert_eq!(io.abandoned.len(), 4);
    }

    #[test]
    fn timeout_abandons_slow_attempts() {
        struct Slow;
        impl RetryIo for Slow {
            fn attempt(&mut self, at: Nanos) -> Result<Nanos, IoError> {
                Ok(at + Dur::from_millis(50))
            }
            fn on_abandoned(&mut self, _s: Nanos, _e: Nanos) {}
        }
        let p = RetryPolicy {
            timeout: Some(Dur::from_millis(10)),
            ..RetryPolicy::default()
        };
        // Every attempt is slow; the last one's completion is accepted.
        let done = issue_with_retry(&p, Nanos::ZERO, &mut Slow).unwrap();
        assert!(done.since(Nanos::ZERO) > Dur::from_millis(50));
    }
}
