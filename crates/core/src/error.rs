//! Error types shared by the BPS core algebra and the simulated I/O path.

use crate::time::Nanos;
use std::fmt;

/// Errors produced when building or analyzing traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A record's end time precedes its start time.
    InvertedInterval {
        /// Start nanoseconds.
        start: u64,
        /// End nanoseconds.
        end: u64,
    },
    /// A metric was asked to evaluate a trace containing no relevant records.
    EmptyTrace {
        /// The metric that was being computed.
        metric: &'static str,
    },
    /// A correlation was requested over series of mismatched or insufficient length.
    BadSeries {
        /// Length of the x series.
        x_len: usize,
        /// Length of the y series.
        y_len: usize,
    },
    /// One of the correlated series has zero variance, so the correlation
    /// coefficient is undefined.
    ZeroVariance,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvertedInterval { start, end } => {
                write!(f, "interval ends ({end}ns) before it starts ({start}ns)")
            }
            CoreError::EmptyTrace { metric } => {
                write!(f, "cannot compute {metric}: no matching records in trace")
            }
            CoreError::BadSeries { x_len, y_len } => write!(
                f,
                "correlation needs two equal-length series of >= 2 points, got {x_len} and {y_len}"
            ),
            CoreError::ZeroVariance => {
                write!(f, "correlation undefined: a series has zero variance")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Errors produced on the simulated I/O request path.
///
/// Most variants carry the *detection instant* `at`: the virtual time at
/// which the client learned of the failure (after the error reply crossed
/// the network, for remote requests). Retry schedulers use it to decide
/// when the next attempt may be issued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// An access extends past the end of the file. Permanent: retrying
    /// cannot help.
    BeyondEof {
        /// Requested byte offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// File size.
        size: u64,
    },
    /// A device completed a request with a transient media/transport error.
    DeviceFault {
        /// Server whose device faulted.
        server: usize,
        /// Client-side detection instant.
        at: Nanos,
    },
    /// The target server is down for a known window (pause-and-recover).
    ServerOffline {
        /// The offline server.
        server: usize,
        /// Client-side detection instant.
        at: Nanos,
        /// When the server is expected back.
        until: Nanos,
    },
    /// The client gave up on an in-flight request after its timeout budget.
    Timeout {
        /// The instant the client abandoned the request.
        at: Nanos,
    },
    /// All retry attempts were exhausted; carries the final failure.
    RetriesExhausted {
        /// Total attempts made.
        attempts: u32,
        /// Detection instant of the last failure.
        at: Nanos,
    },
}

impl IoError {
    /// The virtual instant at which the client detected the failure.
    /// `None` for client-side validation errors detected at issue time
    /// (the caller already knows `now`).
    pub fn fail_time(&self) -> Option<Nanos> {
        match self {
            IoError::BeyondEof { .. } => None,
            IoError::DeviceFault { at, .. }
            | IoError::ServerOffline { at, .. }
            | IoError::Timeout { at }
            | IoError::RetriesExhausted { at, .. } => Some(*at),
        }
    }

    /// True when a retry might succeed (transient faults); false for
    /// permanent errors like [`IoError::BeyondEof`].
    pub fn is_transient(&self) -> bool {
        !matches!(
            self,
            IoError::BeyondEof { .. } | IoError::RetriesExhausted { .. }
        )
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::BeyondEof { offset, len, size } => {
                write!(f, "access [{offset}, {}) beyond EOF {size}", offset + len)
            }
            IoError::DeviceFault { server, at } => {
                write!(f, "device fault on server {server} detected at {at}")
            }
            IoError::ServerOffline { server, at, until } => {
                write!(f, "server {server} offline at {at} (back at {until})")
            }
            IoError::Timeout { at } => write!(f, "request timed out at {at}"),
            IoError::RetriesExhausted { attempts, at } => {
                write!(f, "gave up after {attempts} attempts at {at}")
            }
        }
    }
}

impl std::error::Error for IoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvertedInterval { start: 5, end: 3 };
        assert!(e.to_string().contains("before it starts"));
        let e = CoreError::EmptyTrace { metric: "BPS" };
        assert!(e.to_string().contains("BPS"));
        let e = CoreError::BadSeries { x_len: 1, y_len: 2 };
        assert!(e.to_string().contains("1 and 2"));
        assert!(CoreError::ZeroVariance.to_string().contains("variance"));
    }

    #[test]
    fn io_error_display_and_classification() {
        let eof = IoError::BeyondEof {
            offset: 100,
            len: 50,
            size: 120,
        };
        assert!(eof.to_string().contains("beyond EOF"));
        assert!(!eof.is_transient());
        assert_eq!(eof.fail_time(), None);

        let fault = IoError::DeviceFault {
            server: 2,
            at: Nanos::from_micros(7),
        };
        assert!(fault.is_transient());
        assert_eq!(fault.fail_time(), Some(Nanos::from_micros(7)));

        let off = IoError::ServerOffline {
            server: 0,
            at: Nanos::from_millis(1),
            until: Nanos::from_millis(9),
        };
        assert!(off.is_transient());
        assert!(off.to_string().contains("offline"));

        let gone = IoError::RetriesExhausted {
            attempts: 4,
            at: Nanos::from_millis(3),
        };
        assert!(!gone.is_transient());
        assert!(gone.to_string().contains("4 attempts"));
        assert!(IoError::Timeout {
            at: Nanos::from_millis(2)
        }
        .is_transient());
    }
}
