//! Error types shared by the BPS core algebra.

use std::fmt;

/// Errors produced when building or analyzing traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A record's end time precedes its start time.
    InvertedInterval {
        /// Start nanoseconds.
        start: u64,
        /// End nanoseconds.
        end: u64,
    },
    /// A metric was asked to evaluate a trace containing no relevant records.
    EmptyTrace {
        /// The metric that was being computed.
        metric: &'static str,
    },
    /// A correlation was requested over series of mismatched or insufficient length.
    BadSeries {
        /// Length of the x series.
        x_len: usize,
        /// Length of the y series.
        y_len: usize,
    },
    /// One of the correlated series has zero variance, so the correlation
    /// coefficient is undefined.
    ZeroVariance,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvertedInterval { start, end } => {
                write!(f, "interval ends ({end}ns) before it starts ({start}ns)")
            }
            CoreError::EmptyTrace { metric } => {
                write!(f, "cannot compute {metric}: no matching records in trace")
            }
            CoreError::BadSeries { x_len, y_len } => write!(
                f,
                "correlation needs two equal-length series of >= 2 points, got {x_len} and {y_len}"
            ),
            CoreError::ZeroVariance => {
                write!(f, "correlation undefined: a series has zero variance")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvertedInterval { start: 5, end: 3 };
        assert!(e.to_string().contains("before it starts"));
        let e = CoreError::EmptyTrace { metric: "BPS" };
        assert!(e.to_string().contains("BPS"));
        let e = CoreError::BadSeries { x_len: 1, y_len: 2 };
        assert!(e.to_string().contains("1 and 2"));
        assert!(CoreError::ZeroVariance.to_string().contains("variance"));
    }
}
