//! The per-access I/O record (paper §III.B, Step 1).
//!
//! "We use one record to capture the information of each I/O access of a
//! process. Each record includes process ID, I/O size (blocks), I/O start
//! time, and I/O end time."
//!
//! We additionally tag each record with the *layer* it was observed at,
//! because the paper's whole argument is that metrics measured at different
//! layers disagree: BPS / IOPS / ARPT are defined over what the
//! *application* requested, while bandwidth is defined over what actually
//! moved through the *file system* (which, with data sieving or prefetching,
//! can be much more).

use crate::block::blocks_for_bytes;
use crate::interval::Interval;
use crate::time::{Dur, Nanos};
use serde::{Deserialize, Serialize};

/// Identifier of the process (MPI rank or OS process) that issued an access.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ProcessId(pub u32);

/// Identifier of the file (or device, at the device layer) accessed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct FileId(pub u32);

/// Direction of the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// Data read from the I/O system.
    Read,
    /// Data written to the I/O system.
    Write,
}

/// The layer of the I/O stack at which a record was observed.
///
/// The paper instruments "the I/O middleware layer for MPI-IO applications,
/// or I/O function libraries for ordinary POSIX interface applications" —
/// that is [`Layer::Application`]. The amount of data *actually moved*, used
/// by the bandwidth metric, is observed below the optimizations, at
/// [`Layer::FileSystem`]; [`Layer::Device`] records what the block devices
/// themselves served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// What the application asked for (above all optimizations).
    Application,
    /// What was requested of the (possibly parallel) file system.
    FileSystem,
    /// What the block device actually served.
    Device,
    /// Time a request spent crossing the interconnect between client and
    /// server (request out for writes, reply back for reads). Network
    /// records document transport cost without counting toward any of the
    /// four paper metrics.
    Network,
    /// A failed or abandoned attempt of a retried request. Retry records
    /// are sub-records of the application call that eventually succeeds
    /// (or gives up); they document degraded-mode work without counting
    /// toward any of the four paper metrics.
    Retry,
}

/// One I/O access: the unit of the BPS measurement methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRecord {
    /// Issuing process.
    pub pid: ProcessId,
    /// Read or write.
    pub op: IoOp,
    /// File (or device) accessed.
    pub file: FileId,
    /// Byte offset of the access within the file.
    pub offset: u64,
    /// Size of the access in bytes.
    pub bytes: u64,
    /// Issue time.
    pub start: Nanos,
    /// Completion time.
    pub end: Nanos,
    /// Observation layer.
    pub layer: Layer,
}

impl IoRecord {
    /// Build a record, panicking on inverted times (use in generators that
    /// construct times monotonically; parsers should validate separately).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pid: ProcessId,
        op: IoOp,
        file: FileId,
        offset: u64,
        bytes: u64,
        start: Nanos,
        end: Nanos,
        layer: Layer,
    ) -> Self {
        assert!(end >= start, "I/O record ends before it starts");
        IoRecord {
            pid,
            op,
            file,
            offset,
            bytes,
            start,
            end,
            layer,
        }
    }

    /// Convenience constructor for an application-layer read.
    pub fn app_read(
        pid: ProcessId,
        file: FileId,
        offset: u64,
        bytes: u64,
        start: Nanos,
        end: Nanos,
    ) -> Self {
        Self::new(
            pid,
            IoOp::Read,
            file,
            offset,
            bytes,
            start,
            end,
            Layer::Application,
        )
    }

    /// Convenience constructor for an application-layer write.
    pub fn app_write(
        pid: ProcessId,
        file: FileId,
        offset: u64,
        bytes: u64,
        start: Nanos,
        end: Nanos,
    ) -> Self {
        Self::new(
            pid,
            IoOp::Write,
            file,
            offset,
            bytes,
            start,
            end,
            Layer::Application,
        )
    }

    /// Response time of this access (the quantity ARPT averages).
    pub fn duration(&self) -> Dur {
        self.end - self.start
    }

    /// Number of 512-byte blocks this access required (rounded up).
    pub fn blocks(&self) -> u64 {
        blocks_for_bytes(self.bytes)
    }

    /// The in-flight interval of this access.
    pub fn interval(&self) -> Interval {
        Interval {
            start: self.start,
            end: self.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bytes: u64, s: u64, e: u64) -> IoRecord {
        IoRecord::app_read(
            ProcessId(1),
            FileId(0),
            0,
            bytes,
            Nanos::from_micros(s),
            Nanos::from_micros(e),
        )
    }

    #[test]
    fn blocks_round_up() {
        assert_eq!(rec(0, 0, 1).blocks(), 0);
        assert_eq!(rec(1, 0, 1).blocks(), 1);
        assert_eq!(rec(512, 0, 1).blocks(), 1);
        assert_eq!(rec(1 << 16, 0, 1).blocks(), 128);
    }

    #[test]
    fn duration_and_interval_agree() {
        let r = rec(4096, 10, 35);
        assert_eq!(r.duration(), Dur::from_micros(25));
        assert_eq!(r.interval().duration(), r.duration());
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_record_panics() {
        let _ = rec(1, 5, 4);
    }

    #[test]
    fn serde_roundtrip() {
        let r = rec(4096, 10, 35);
        let json = serde_json::to_string(&r).unwrap();
        let back: IoRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
