//! Traces: the global collection of I/O records (paper §III.B, Step 2).
//!
//! After each process records its accesses, the methodology "gathers the
//! information of all processes into a global collection". A [`Trace`] is
//! that collection, carrying records from every process and — in this
//! reproduction — from every instrumented layer of the I/O stack.

use crate::interval::{union_time, ConcurrencyProfile, Interval, IntervalSet};
use crate::record::{IoOp, IoRecord, Layer, ProcessId};
use crate::time::{Dur, Nanos};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A global, multi-process, multi-layer collection of I/O records, plus the
/// application execution span the metrics are correlated against.
///
/// ```
/// use bps_core::prelude::*;
/// let mut trace = Trace::new();
/// trace.push(IoRecord::app_read(
///     ProcessId(0), FileId(0), 0, 4096,
///     Nanos::ZERO, Nanos::from_micros(100),
/// ));
/// assert_eq!(trace.app_blocks(), 8);
/// assert_eq!(
///     trace.overlapped_io_time(Layer::Application),
///     Dur::from_micros(100),
/// );
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<IoRecord>,
    /// Execution time of the application that produced this trace, if known.
    /// Experiments correlate metrics against this. When absent,
    /// [`Trace::execution_time`] falls back to the span of all records.
    exec_time: Option<Dur>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Build from a vector of records.
    pub fn from_records(records: Vec<IoRecord>) -> Self {
        Trace {
            records,
            exec_time: None,
        }
    }

    /// Append one record.
    pub fn push(&mut self, r: IoRecord) {
        self.records.push(r);
    }

    /// Append a batch of records, preserving their order. One reserve +
    /// memcpy instead of a push per record.
    pub fn extend(&mut self, records: &[IoRecord]) {
        self.records.extend_from_slice(records);
    }

    /// Append all records of another trace (the paper's gather step).
    pub fn merge(&mut self, other: Trace) {
        self.records.extend(other.records);
        self.exec_time = match (self.exec_time, other.exec_time) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Record the application execution time measured alongside this trace.
    pub fn set_execution_time(&mut self, t: Dur) {
        self.exec_time = Some(t);
    }

    /// Application execution time: the explicitly recorded value if set,
    /// otherwise the wall span from the first record start to the last end.
    pub fn execution_time(&self) -> Dur {
        self.exec_time.unwrap_or_else(|| {
            let start = self.records.iter().map(|r| r.start).min();
            let end = self.records.iter().map(|r| r.end).max();
            match (start, end) {
                (Some(s), Some(e)) => e - s,
                _ => Dur::ZERO,
            }
        })
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[IoRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterator over records observed at the given layer.
    pub fn layer(&self, layer: Layer) -> impl Iterator<Item = &IoRecord> + '_ {
        self.records.iter().filter(move |r| r.layer == layer)
    }

    /// Iterator over records of a single process at a given layer.
    pub fn process(&self, layer: Layer, pid: ProcessId) -> impl Iterator<Item = &IoRecord> + '_ {
        self.layer(layer).filter(move |r| r.pid == pid)
    }

    /// The distinct process ids present at a layer, sorted.
    pub fn pids(&self, layer: Layer) -> Vec<ProcessId> {
        let set: BTreeSet<ProcessId> = self.layer(layer).map(|r| r.pid).collect();
        set.into_iter().collect()
    }

    /// Number of records at a layer.
    pub fn op_count(&self, layer: Layer) -> u64 {
        self.layer(layer).count() as u64
    }

    /// Total bytes at a layer (what *moved* if `layer` is below the
    /// optimizations, what was *required* at `Layer::Application`).
    pub fn bytes(&self, layer: Layer) -> u64 {
        self.layer(layer).map(|r| r.bytes).sum()
    }

    /// Total 512-byte blocks at a layer. At `Layer::Application` this is the
    /// `B` of the BPS equation: "all the I/O blocks issued from the
    /// application are counted".
    pub fn blocks(&self, layer: Layer) -> u64 {
        self.layer(layer).map(|r| r.blocks()).sum()
    }

    /// Shorthand for the BPS numerator.
    pub fn app_blocks(&self) -> u64 {
        self.blocks(Layer::Application)
    }

    /// Overlapped I/O time `T` at a layer: the union of all in-flight
    /// intervals (paper Figure 2). Idle time excluded, concurrency counted
    /// once.
    pub fn overlapped_io_time(&self, layer: Layer) -> Dur {
        union_time(self.layer(layer).map(|r| r.interval()))
    }

    /// Sum of the individual response times at a layer — what ARPT averages
    /// and what a naive (non-overlapped) accounting of `T` would use.
    pub fn summed_io_time(&self, layer: Layer) -> Dur {
        self.layer(layer)
            .fold(Dur::ZERO, |acc, r| acc + r.duration())
    }

    /// The merged busy periods at a layer.
    pub fn busy_periods(&self, layer: Layer) -> IntervalSet {
        IntervalSet::from_unsorted(self.layer(layer).map(|r| r.interval()))
    }

    /// The concurrency (queue-depth) profile at a layer.
    pub fn concurrency(&self, layer: Layer) -> ConcurrencyProfile {
        ConcurrencyProfile::from_intervals(self.layer(layer).map(|r| r.interval()))
    }

    /// All in-flight intervals at a layer, unmerged.
    pub fn intervals(&self, layer: Layer) -> Vec<Interval> {
        self.layer(layer).map(|r| r.interval()).collect()
    }

    /// Keep only records satisfying the predicate.
    pub fn retain<F: FnMut(&IoRecord) -> bool>(&mut self, f: F) {
        self.records.retain(f);
    }

    /// A new trace containing only records of the given op at a layer.
    pub fn filter_op(&self, layer: Layer, op: IoOp) -> Trace {
        Trace {
            records: self.layer(layer).filter(|r| r.op == op).copied().collect(),
            exec_time: self.exec_time,
        }
    }

    /// Sort records by (start, end) — the first half of the paper's
    /// Figure 3 algorithm. Metrics do not require sorted input, but
    /// serialized traces are friendlier to inspect sorted.
    pub fn sort_by_start(&mut self) {
        self.records.sort_unstable_by_key(|r| (r.start, r.end));
    }

    /// Earliest record start, if any.
    pub fn first_start(&self) -> Option<Nanos> {
        self.records.iter().map(|r| r.start).min()
    }

    /// Latest record end, if any.
    pub fn last_end(&self) -> Option<Nanos> {
        self.records.iter().map(|r| r.end).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FileId;

    fn rec(pid: u32, layer: Layer, offset: u64, bytes: u64, s_us: u64, e_us: u64) -> IoRecord {
        IoRecord::new(
            ProcessId(pid),
            IoOp::Read,
            FileId(0),
            offset,
            bytes,
            Nanos::from_micros(s_us),
            Nanos::from_micros(e_us),
            layer,
        )
    }

    fn sample() -> Trace {
        let mut t = Trace::new();
        // App layer: two processes, partially overlapping.
        t.push(rec(0, Layer::Application, 0, 4096, 0, 100));
        t.push(rec(1, Layer::Application, 4096, 4096, 50, 150));
        // FS layer moved more data (e.g. sieving holes).
        t.push(rec(0, Layer::FileSystem, 0, 16384, 0, 100));
        t
    }

    #[test]
    fn layer_separation() {
        let t = sample();
        assert_eq!(t.op_count(Layer::Application), 2);
        assert_eq!(t.op_count(Layer::FileSystem), 1);
        assert_eq!(t.bytes(Layer::Application), 8192);
        assert_eq!(t.bytes(Layer::FileSystem), 16384);
        assert_eq!(t.app_blocks(), 16);
    }

    #[test]
    fn overlapped_vs_summed_time() {
        let t = sample();
        assert_eq!(
            t.overlapped_io_time(Layer::Application),
            Dur::from_micros(150)
        );
        assert_eq!(t.summed_io_time(Layer::Application), Dur::from_micros(200));
    }

    #[test]
    fn execution_time_falls_back_to_span() {
        let mut t = sample();
        assert_eq!(t.execution_time(), Dur::from_micros(150));
        t.set_execution_time(Dur::from_micros(500));
        assert_eq!(t.execution_time(), Dur::from_micros(500));
        assert_eq!(Trace::new().execution_time(), Dur::ZERO);
    }

    #[test]
    fn merge_gathers_processes() {
        let mut a = Trace::new();
        a.push(rec(0, Layer::Application, 0, 512, 0, 10));
        a.set_execution_time(Dur::from_micros(10));
        let mut b = Trace::new();
        b.push(rec(1, Layer::Application, 0, 512, 20, 30));
        b.set_execution_time(Dur::from_micros(30));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.pids(Layer::Application), vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(a.execution_time(), Dur::from_micros(30));
        // Idle gap [10,20) excluded from overlapped time.
        assert_eq!(
            a.overlapped_io_time(Layer::Application),
            Dur::from_micros(20)
        );
    }

    #[test]
    fn filter_and_retain() {
        let mut t = sample();
        t.push(IoRecord::app_write(
            ProcessId(0),
            FileId(0),
            0,
            1024,
            Nanos::from_micros(200),
            Nanos::from_micros(210),
        ));
        let reads = t.filter_op(Layer::Application, IoOp::Read);
        assert_eq!(reads.len(), 2);
        let writes = t.filter_op(Layer::Application, IoOp::Write);
        assert_eq!(writes.len(), 1);
        t.retain(|r| r.layer == Layer::Application);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn busy_periods_and_concurrency() {
        let t = sample();
        let periods = t.busy_periods(Layer::Application);
        assert_eq!(periods.period_count(), 1);
        let prof = t.concurrency(Layer::Application);
        assert_eq!(prof.max_depth, 2);
    }

    #[test]
    fn sort_by_start_orders_records() {
        let mut t = Trace::new();
        t.push(rec(0, Layer::Application, 0, 512, 100, 110));
        t.push(rec(0, Layer::Application, 0, 512, 0, 10));
        t.sort_by_start();
        assert!(t.records()[0].start < t.records()[1].start);
        assert_eq!(t.first_start(), Some(Nanos::ZERO));
        assert_eq!(t.last_end(), Some(Nanos::from_micros(110)));
    }
}
